//! Offline stand-in for the `rayon` crate (plus the slice of
//! `crossbeam-deque` that rayon's scheduler is built on).
//!
//! Only the surface the H2H search core actually uses is provided:
//!
//! * [`scope`] / [`Scope`] — structured fork–join. Tasks here are OS
//!   threads via `std::thread::scope` rather than pool workers; callers
//!   spawn a bounded number of long-lived scoring lanes, so the
//!   distinction does not matter for correctness or (at these lane
//!   counts) throughput.
//! * [`par_chunks_map`] — the `par_chunks().map().collect()` shape:
//!   chunk an input slice, process chunks on scoped threads, return the
//!   per-chunk results in input order regardless of completion order.
//! * [`deque`] — a FIFO [`deque::Injector`] with the crossbeam-deque
//!   `push`/`steal` API. The scoring pool distributes frontier batches
//!   through it so lanes work-steal candidates instead of receiving a
//!   fixed round-robin deal. Implemented as a mutex-guarded queue:
//!   consumers steal coarse-grained jobs (one full candidate scoring
//!   transaction each), so lock hold times are nanoseconds against
//!   multi-microsecond jobs and contention is noise.
//!
//! If networked builds become available, swapping in the real crates is
//! a manifest-only change: `Injector`/`Steal` match crossbeam-deque's
//! API, and `scope`/`Scope::spawn` match rayon's shape except that
//! spawn closures take no `&Scope` argument (none of our call sites
//! nest spawns).

use std::thread;

pub mod deque {
    //! Minimal crossbeam-deque stand-in: a shared FIFO injector queue.

    use std::collections::VecDeque;
    use std::sync::Mutex;

    /// Outcome of a steal attempt, matching crossbeam-deque's type
    /// minus the `Retry` variant (a mutex-guarded queue never needs a
    /// caller-side retry loop).
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum Steal<T> {
        /// The queue was empty.
        Empty,
        /// One job was removed from the queue.
        Success(T),
    }

    impl<T> Steal<T> {
        /// The stolen job, if any.
        pub fn success(self) -> Option<T> {
            match self {
                Steal::Success(job) => Some(job),
                Steal::Empty => None,
            }
        }
    }

    /// A FIFO queue any thread can push to or steal from.
    #[derive(Debug, Default)]
    pub struct Injector<T> {
        queue: Mutex<VecDeque<T>>,
    }

    impl<T> Injector<T> {
        pub fn new() -> Self {
            Injector {
                queue: Mutex::new(VecDeque::new()),
            }
        }

        /// Append a job to the back of the queue.
        pub fn push(&self, job: T) {
            self.queue.lock().expect("injector poisoned").push_back(job);
        }

        /// Remove the job at the front of the queue, if any.
        pub fn steal(&self) -> Steal<T> {
            match self.queue.lock().expect("injector poisoned").pop_front() {
                Some(job) => Steal::Success(job),
                None => Steal::Empty,
            }
        }

        pub fn is_empty(&self) -> bool {
            self.queue.lock().expect("injector poisoned").is_empty()
        }

        pub fn len(&self) -> usize {
            self.queue.lock().expect("injector poisoned").len()
        }
    }
}

/// A fork–join scope; spawned tasks may borrow from the enclosing stack
/// frame and are all joined before [`scope`] returns.
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawn a task onto the scope. Unlike real rayon the closure takes
    /// no `&Scope` argument; no call site in this workspace nests
    /// spawns, and dropping the argument keeps the shim closure-compatible
    /// with `std::thread::Scope::spawn`.
    pub fn spawn<F, T>(&self, f: F) -> thread::ScopedJoinHandle<'scope, T>
    where
        F: FnOnce() -> T + Send + 'scope,
        T: Send + 'scope,
    {
        self.inner.spawn(f)
    }
}

/// Create a fork–join scope: every task spawned on it is joined before
/// this function returns, so tasks may borrow local state.
pub fn scope<'env, F, T>(f: F) -> T
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> T,
{
    thread::scope(|s| f(&Scope { inner: s }))
}

/// Process `items` in chunks of `chunk_len` on up to `threads` scoped
/// worker threads, returning per-chunk results in input order. The
/// chunk index queue is work-stolen, so uneven chunks balance across
/// threads; output order is fixed by index, never by completion order.
///
/// With `threads <= 1`, an empty input, or a single chunk, everything
/// runs on the calling thread.
pub fn par_chunks_map<T, R, F>(items: &[T], chunk_len: usize, threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&[T]) -> R + Sync,
{
    assert!(chunk_len > 0, "chunk_len must be positive");
    let chunks: Vec<&[T]> = items.chunks(chunk_len).collect();
    if threads <= 1 || chunks.len() <= 1 {
        return chunks.into_iter().map(f).collect();
    }
    let queue = deque::Injector::new();
    for idx in 0..chunks.len() {
        queue.push(idx);
    }
    let slots: Vec<std::sync::Mutex<Option<R>>> =
        chunks.iter().map(|_| std::sync::Mutex::new(None)).collect();
    scope(|s| {
        for _ in 0..threads.min(chunks.len()) {
            s.spawn(|| {
                while let deque::Steal::Success(idx) = queue.steal() {
                    *slots[idx].lock().expect("result slot poisoned") = Some(f(chunks[idx]));
                }
            });
        }
    });
    slots.into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result slot poisoned")
                .expect("every chunk index was queued and stolen exactly once")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn injector_is_fifo() {
        let q = deque::Injector::new();
        assert!(q.is_empty());
        q.push(1);
        q.push(2);
        q.push(3);
        assert_eq!(q.len(), 3);
        assert_eq!(q.steal(), deque::Steal::Success(1));
        assert_eq!(q.steal().success(), Some(2));
        assert_eq!(q.steal(), deque::Steal::Success(3));
        assert_eq!(q.steal(), deque::Steal::<i32>::Empty);
    }

    #[test]
    fn scope_joins_borrowing_tasks() {
        let data = [1u64, 2, 3, 4];
        let mut totals = [0u64; 2];
        scope(|s| {
            let (lo, hi) = totals.split_at_mut(1);
            s.spawn(|| lo[0] = data[..2].iter().sum());
            s.spawn(|| hi[0] = data[2..].iter().sum());
        });
        assert_eq!(totals, [3, 7]);
    }

    #[test]
    fn par_chunks_map_preserves_input_order() {
        let items: Vec<u32> = (0..37).collect();
        for threads in [0, 1, 2, 8] {
            let sums = par_chunks_map(&items, 5, threads, |chunk| chunk.iter().sum::<u32>());
            let expect: Vec<u32> = items.chunks(5).map(|c| c.iter().sum()).collect();
            assert_eq!(sums, expect, "threads={threads}");
        }
    }

    #[test]
    fn par_chunks_map_handles_empty_input() {
        let none: Vec<u32> = Vec::new();
        assert!(par_chunks_map(&none, 4, 8, |c| c.len()).is_empty());
    }
}
