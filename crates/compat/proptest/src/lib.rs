//! Offline stand-in for the `proptest` crate.
//!
//! Supports the strategy combinators and macros this workspace's
//! property tests use: range strategies, tuples, `prop_map`,
//! `prop_oneof!`, `proptest::collection::vec`, `any::<T>()`, and the
//! `proptest!` test-harness macro. No shrinking — a failing case panics
//! with the generated inputs' `Debug` (cases are deterministic per test
//! name, so failures reproduce).

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// Re-exports matching `proptest::prelude::*`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_oneof, proptest, BoxedStrategy, Just,
        ProptestConfig, Strategy, TestRng,
    };
}

/// Deterministic test RNG (SplitMix64 keyed by the test name).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds from an arbitrary label (the test name).
    pub fn deterministic(label: &str) -> Self {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in label.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        TestRng { state: h }
    }

    /// Next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Run-time configuration of a `proptest!` block.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
    /// Shrink budget — accepted for API parity; this shim never
    /// shrinks (cases are deterministic per test name instead).
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64, max_shrink_iters: 0 }
    }
}

/// A generator of test values.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy (used by `prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<V> = Box<dyn Strategy<Value = V>>;

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        (**self).generate(rng)
    }
}

/// The strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                let span = (hi - lo) as u64 + 1;
                lo + (rng.next_u64() % span) as $t
            }
        }
    )*};
}

int_strategy!(u16, u32, u64, usize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty strategy range");
        self.start + (self.end - self.start) * rng.next_f64()
    }
}

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);
tuple_strategy!(A, B, C, D, E, F, G);

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Draws an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! arb_uint {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

arb_uint!(u8, u16, u32, u64, usize);

/// The strategy returned by [`any`].
#[derive(Debug, Clone, Default)]
pub struct AnyStrategy<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// `any::<T>()` — arbitrary values of `T`.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(PhantomData)
}

/// A uniform choice between boxed strategies (built by `prop_oneof!`).
pub struct Union<V> {
    options: Vec<BoxedStrategy<V>>,
}

impl<V> std::fmt::Debug for Union<V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Union({} options)", self.options.len())
    }
}

impl<V> Union<V> {
    /// Builds from a non-empty option list.
    ///
    /// # Panics
    ///
    /// Panics on an empty list.
    pub fn new(options: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let i = (rng.next_u64() % self.options.len() as u64) as usize;
        self.options[i].generate(rng)
    }
}

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Size specifier: exact or a range.
    #[derive(Debug, Clone)]
    pub enum SizeRange {
        /// Exactly this many elements.
        Exact(usize),
        /// Uniform in `[start, end)`.
        Span(usize, usize),
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange::Exact(n)
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            SizeRange::Span(r.start, r.end)
        }
    }

    /// The strategy returned by [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = match self.size {
                SizeRange::Exact(n) => n,
                SizeRange::Span(lo, hi) => {
                    assert!(lo < hi, "empty vec size range");
                    lo + (rng.next_u64() % (hi - lo) as u64) as usize
                }
            };
            (0..n).map(|_| self.elem.generate(rng)).collect()
        }
    }

    /// A vector of values drawn from `elem`, sized by `size`.
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { elem, size: size.into() }
    }
}

/// Uniform choice among strategies yielding the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strat)),+])
    };
}

/// Assertion inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Equality assertion inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Declares property tests: each `fn name(pat in strategy, ...)` becomes
/// a `#[test]` that draws `config.cases` inputs and runs the body.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_cfg ($cfg); $($rest)*);
    };
    (@with_cfg ($cfg:expr); $(
        #[test]
        fn $name:ident ( $($pat:pat in $strat:expr),+ $(,)? ) $body:block
    )*) => {
        $(
            #[test]
            fn $name() {
                let __config: $crate::ProptestConfig = $cfg;
                let mut __rng = $crate::TestRng::deterministic(concat!(module_path!(), "::", stringify!($name)));
                for __case in 0..__config.cases {
                    let _ = __case;
                    $(let $pat = $crate::Strategy::generate(&($strat), &mut __rng);)+
                    $body
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@with_cfg ($crate::ProptestConfig::default()); $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn ranges_and_maps_generate_in_bounds() {
        let mut rng = TestRng::deterministic("t");
        for _ in 0..200 {
            let x = (3u32..9).generate(&mut rng);
            assert!((3..9).contains(&x));
            let y = (1u16..=4).prop_map(|v| v * 2).generate(&mut rng);
            assert!([2, 4, 6, 8].contains(&y));
            let v = crate::collection::vec(0usize..5, 2..6).generate(&mut rng);
            assert!((2..6).contains(&v.len()));
            let u = prop_oneof![Just(1u8), Just(2u8)].generate(&mut rng);
            assert!(u == 1 || u == 2);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 8, ..ProptestConfig::default() })]

        #[test]
        fn harness_macro_runs((a, b) in (0u32..10, 0u32..10), flip in any::<bool>()) {
            prop_assert!(a < 10 && b < 10);
            prop_assert_eq!(flip, flip);
        }
    }
}
