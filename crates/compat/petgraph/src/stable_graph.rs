//! The append-only directed graph and its index types.

use serde::{Deserialize, Error, Serialize, Value};

use crate::Direction;

/// Index of a node within a [`StableDiGraph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeIndex(u32);

impl NodeIndex {
    /// Wraps a raw index.
    pub fn new(i: usize) -> Self {
        NodeIndex(i as u32)
    }

    /// The raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl Serialize for NodeIndex {
    fn to_value(&self) -> Value {
        Value::U64(self.0 as u64)
    }
}

impl Deserialize for NodeIndex {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(NodeIndex(u32::from_value(v)?))
    }
}

/// Index of an edge within a [`StableDiGraph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EdgeIndex(u32);

impl EdgeIndex {
    /// The raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

#[derive(Debug, Clone)]
struct Edge<E> {
    source: u32,
    target: u32,
    weight: E,
}

/// A directed graph with stable (append-only) indices.
#[derive(Debug, Clone, Default)]
pub struct StableDiGraph<N, E> {
    nodes: Vec<N>,
    edges: Vec<Edge<E>>,
    /// Outgoing edge ids per node, in insertion order.
    out_edges: Vec<Vec<u32>>,
    /// Incoming edge ids per node, in insertion order.
    in_edges: Vec<Vec<u32>>,
}

impl<N, E> StableDiGraph<N, E> {
    /// An empty graph.
    pub fn new() -> Self {
        StableDiGraph {
            nodes: Vec::new(),
            edges: Vec::new(),
            out_edges: Vec::new(),
            in_edges: Vec::new(),
        }
    }

    /// Adds a node, returning its index.
    pub fn add_node(&mut self, weight: N) -> NodeIndex {
        let idx = NodeIndex::new(self.nodes.len());
        self.nodes.push(weight);
        self.out_edges.push(Vec::new());
        self.in_edges.push(Vec::new());
        idx
    }

    /// Adds an edge `a → b`, returning its index.
    ///
    /// # Panics
    ///
    /// Panics if either endpoint is out of bounds.
    pub fn add_edge(&mut self, a: NodeIndex, b: NodeIndex, weight: E) -> EdgeIndex {
        assert!(a.index() < self.nodes.len() && b.index() < self.nodes.len());
        let id = self.edges.len() as u32;
        self.edges.push(Edge { source: a.0, target: b.0, weight });
        self.out_edges[a.index()].push(id);
        self.in_edges[b.index()].push(id);
        EdgeIndex(id)
    }

    /// The node's weight, if the index is in bounds.
    pub fn node_weight(&self, n: NodeIndex) -> Option<&N> {
        self.nodes.get(n.index())
    }

    /// The edge's weight, if the index is in bounds.
    pub fn edge_weight(&self, e: EdgeIndex) -> Option<&E> {
        self.edges.get(e.index()).map(|e| &e.weight)
    }

    /// The first edge `a → b`, if present.
    pub fn find_edge(&self, a: NodeIndex, b: NodeIndex) -> Option<EdgeIndex> {
        self.out_edges
            .get(a.index())?
            .iter()
            .find(|id| self.edges[**id as usize].target == b.0)
            .map(|id| EdgeIndex(*id))
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Iterator over all node indices, in insertion order.
    pub fn node_indices(&self) -> impl Iterator<Item = NodeIndex> + '_ {
        (0..self.nodes.len()).map(NodeIndex::new)
    }

    /// Neighbors of `n` along `dir` edges, in edge-insertion order.
    pub fn neighbors_directed(
        &self,
        n: NodeIndex,
        dir: Direction,
    ) -> impl Iterator<Item = NodeIndex> + '_ {
        let ids: &[u32] = match dir {
            Direction::Outgoing => &self.out_edges[n.index()],
            Direction::Incoming => &self.in_edges[n.index()],
        };
        ids.iter().map(move |id| {
            let e = &self.edges[*id as usize];
            match dir {
                Direction::Outgoing => NodeIndex(e.target),
                Direction::Incoming => NodeIndex(e.source),
            }
        })
    }

    pub(crate) fn raw_edge(&self, id: usize) -> (NodeIndex, NodeIndex, &E) {
        let e = &self.edges[id];
        (NodeIndex(e.source), NodeIndex(e.target), &e.weight)
    }
}

impl<N, E> std::ops::Index<NodeIndex> for StableDiGraph<N, E> {
    type Output = N;
    fn index(&self, n: NodeIndex) -> &N {
        &self.nodes[n.index()]
    }
}

impl<N: Serialize, E: Serialize> Serialize for StableDiGraph<N, E> {
    fn to_value(&self) -> Value {
        let nodes = Value::Array(self.nodes.iter().map(Serialize::to_value).collect());
        let edges = Value::Array(
            self.edges
                .iter()
                .map(|e| {
                    Value::Array(vec![
                        Value::U64(e.source as u64),
                        Value::U64(e.target as u64),
                        e.weight.to_value(),
                    ])
                })
                .collect(),
        );
        Value::Object(vec![("nodes".to_owned(), nodes), ("edges".to_owned(), edges)])
    }
}

impl<N: Deserialize, E: Deserialize> Deserialize for StableDiGraph<N, E> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let mut g = StableDiGraph::new();
        let nodes = v
            .field("nodes")
            .as_array()
            .ok_or_else(|| Error::msg("graph: missing nodes array"))?;
        for n in nodes {
            g.add_node(N::from_value(n)?);
        }
        let edges = v
            .field("edges")
            .as_array()
            .ok_or_else(|| Error::msg("graph: missing edges array"))?;
        for e in edges {
            let triple = e
                .as_array()
                .filter(|a| a.len() == 3)
                .ok_or_else(|| Error::msg("graph: bad edge triple"))?;
            let a = u32::from_value(&triple[0])? as usize;
            let b = u32::from_value(&triple[1])? as usize;
            if a >= g.node_count() || b >= g.node_count() {
                return Err(Error::msg("graph: edge endpoint out of bounds"));
            }
            g.add_edge(NodeIndex::new(a), NodeIndex::new(b), E::from_value(&triple[2])?);
        }
        Ok(g)
    }
}
