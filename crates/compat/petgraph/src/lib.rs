//! Offline stand-in for the `petgraph` crate.
//!
//! Implements exactly the slice of the API `h2h-model` uses: an
//! append-only [`stable_graph::StableDiGraph`] (no node/edge removal is
//! ever requested, so "stable" indices come for free), directed
//! neighbor/edge iteration, Kahn topological sort, and serde (shim)
//! round-tripping. Iteration orders are deterministic: nodes and edges
//! in insertion order, neighbors in edge-insertion order.

pub mod algo;
pub mod stable_graph;
pub mod visit;

/// Edge direction selector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Edges pointing out of a node.
    Outgoing,
    /// Edges pointing into a node.
    Incoming,
}
