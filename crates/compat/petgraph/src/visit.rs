//! Visitor traits mirroring the petgraph names the workspace imports.

use crate::stable_graph::{NodeIndex, StableDiGraph};

/// A reference to one edge: endpoints plus weight.
#[derive(Debug, Clone, Copy)]
pub struct EdgeReference<'a, E> {
    pub(crate) source: NodeIndex,
    pub(crate) target: NodeIndex,
    pub(crate) weight: &'a E,
}

/// Accessors common to edge references.
pub trait EdgeRef {
    /// The edge weight type.
    type Weight;
    /// Source node.
    fn source(&self) -> NodeIndex;
    /// Target node.
    fn target(&self) -> NodeIndex;
    /// Edge payload.
    fn weight(&self) -> &Self::Weight;
}

impl<'a, E> EdgeReference<'a, E> {
    /// Edge payload, borrowing from the graph (not this reference), so
    /// the result outlives the `EdgeReference` — mirrors petgraph's
    /// inherent method that shadows the trait.
    pub fn weight(&self) -> &'a E {
        self.weight
    }
}

impl<'a, E> EdgeRef for EdgeReference<'a, E> {
    type Weight = E;
    fn source(&self) -> NodeIndex {
        self.source
    }
    fn target(&self) -> NodeIndex {
        self.target
    }
    fn weight(&self) -> &E {
        self.weight
    }
}

/// Graphs that can enumerate all their edges.
pub trait IntoEdgeReferences {
    /// The edge-reference type yielded.
    type EdgeRef;
    /// The iterator type.
    type EdgeReferences: Iterator<Item = Self::EdgeRef>;
    /// Iterate over all edges, in insertion order.
    fn edge_references(self) -> Self::EdgeReferences;
}

/// Iterator over a graph's edges.
#[derive(Debug)]
pub struct EdgeReferences<'a, N, E> {
    graph: &'a StableDiGraph<N, E>,
    next: usize,
}

impl<'a, N, E> Iterator for EdgeReferences<'a, N, E> {
    type Item = EdgeReference<'a, E>;
    fn next(&mut self) -> Option<Self::Item> {
        if self.next >= self.graph.edge_count() {
            return None;
        }
        let (source, target, weight) = self.graph.raw_edge(self.next);
        self.next += 1;
        Some(EdgeReference { source, target, weight })
    }
}

impl<'a, N, E> IntoEdgeReferences for &'a StableDiGraph<N, E> {
    type EdgeRef = EdgeReference<'a, E>;
    type EdgeReferences = EdgeReferences<'a, N, E>;
    fn edge_references(self) -> Self::EdgeReferences {
        EdgeReferences { graph: self, next: 0 }
    }
}

/// Graphs whose node indices map into a compact `usize` range.
pub trait NodeIndexable {
    /// Exclusive upper bound on node indices.
    fn node_bound(&self) -> usize;
}

impl<N, E> NodeIndexable for StableDiGraph<N, E> {
    fn node_bound(&self) -> usize {
        self.node_count()
    }
}
