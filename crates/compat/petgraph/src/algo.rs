//! Graph algorithms: Kahn topological sort.

use crate::stable_graph::{NodeIndex, StableDiGraph};
use crate::Direction;

/// Witness of a dependency cycle.
#[derive(Debug, Clone, Copy)]
pub struct Cycle<N = NodeIndex>(N);

impl Cycle<NodeIndex> {
    /// A node on the detected cycle.
    pub fn node_id(&self) -> NodeIndex {
        self.0
    }
}

/// Topological order of `g` (ties broken by insertion index, so the
/// result is deterministic).
///
/// # Errors
///
/// Returns a [`Cycle`] naming one node on a cycle if the graph is not a
/// DAG. The `_space` parameter mirrors petgraph's signature and is
/// ignored.
pub fn toposort<N, E>(
    g: &StableDiGraph<N, E>,
    _space: Option<()>,
) -> Result<Vec<NodeIndex>, Cycle<NodeIndex>> {
    let n = g.node_count();
    let mut indegree = vec![0usize; n];
    for v in g.node_indices() {
        indegree[v.index()] = g.neighbors_directed(v, Direction::Incoming).count();
    }
    let mut ready: std::collections::BinaryHeap<std::cmp::Reverse<usize>> = (0..n)
        .filter(|i| indegree[*i] == 0)
        .map(std::cmp::Reverse)
        .collect();
    let mut order = Vec::with_capacity(n);
    while let Some(std::cmp::Reverse(i)) = ready.pop() {
        let v = NodeIndex::new(i);
        order.push(v);
        for s in g.neighbors_directed(v, Direction::Outgoing) {
            indegree[s.index()] -= 1;
            if indegree[s.index()] == 0 {
                ready.push(std::cmp::Reverse(s.index()));
            }
        }
    }
    if order.len() == n {
        Ok(order)
    } else {
        let stuck = (0..n)
            .find(|i| indegree[*i] > 0)
            .expect("cycle implies a node with remaining in-degree");
        Err(Cycle(NodeIndex::new(stuck)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sorts_a_diamond_and_detects_cycles() {
        let mut g: StableDiGraph<&str, ()> = StableDiGraph::new();
        let a = g.add_node("a");
        let b = g.add_node("b");
        let c = g.add_node("c");
        let d = g.add_node("d");
        g.add_edge(a, b, ());
        g.add_edge(a, c, ());
        g.add_edge(b, d, ());
        g.add_edge(c, d, ());
        let order = toposort(&g, None).unwrap();
        let pos = |n: NodeIndex| order.iter().position(|x| *x == n).unwrap();
        assert!(pos(a) < pos(b) && pos(a) < pos(c));
        assert!(pos(b) < pos(d) && pos(c) < pos(d));

        g.add_edge(d, a, ());
        assert!(toposort(&g, None).is_err());
    }
}
