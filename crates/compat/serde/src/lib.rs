//! Offline stand-in for the `serde` crate.
//!
//! The build environment has no registry access, so this workspace ships
//! a minimal serialization facade with the same import surface the code
//! uses (`use serde::{Deserialize, Serialize};` plus the derive macros).
//! Instead of serde's visitor-based data model, values serialize into a
//! JSON-shaped [`Value`] tree; `serde_json` (also a local shim) renders
//! and parses that tree. The derive macros follow serde's externally
//! tagged conventions so documents look like the real thing:
//!
//! * named structs → objects keyed by field name;
//! * newtype structs → the inner value;
//! * unit enum variants → `"Variant"`;
//! * data-carrying variants → `{"Variant": ...}`.

pub mod value;

pub use serde_derive::{Deserialize, Serialize};
pub use value::Value;

use std::collections::HashSet;
use std::fmt;
use std::hash::Hash;
use std::time::Duration;

/// Serialization/deserialization failure (message-only).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    /// Creates an error carrying `msg`.
    pub fn msg(msg: impl Into<String>) -> Self {
        Error(msg.into())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Types renderable into a [`Value`] tree.
pub trait Serialize {
    /// Converts `self` into a JSON-shaped value.
    fn to_value(&self) -> Value;
}

/// Types reconstructible from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from a JSON-shaped value.
    ///
    /// # Errors
    ///
    /// Returns an [`Error`] when the value's shape does not match.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

macro_rules! ser_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::U64(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let raw = v
                    .as_u64()
                    .ok_or_else(|| Error::msg(format!("expected unsigned integer, got {v:?}")))?;
                <$t>::try_from(raw)
                    .map_err(|_| Error::msg(format!("{raw} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

ser_uint!(u8, u16, u32, u64, usize);

macro_rules! ser_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::I64(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let raw = v
                    .as_i64()
                    .ok_or_else(|| Error::msg(format!("expected integer, got {v:?}")))?;
                <$t>::try_from(raw)
                    .map_err(|_| Error::msg(format!("{raw} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

ser_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_f64()
            .ok_or_else(|| Error::msg(format!("expected number, got {v:?}")))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(*self as f64)
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(f64::from_value(v)? as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::msg(format!("expected bool, got {other:?}"))),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(Error::msg(format!("expected string, got {other:?}"))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for std::sync::Arc<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for std::sync::Arc<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(std::sync::Arc::new(T::from_value(v)?))
    }
}

impl<T: Deserialize> Deserialize for std::sync::Arc<[T]> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(Vec::<T>::from_value(v)?.into())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            None => Value::Null,
            Some(t) => t.to_value(),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => Ok(Some(T::from_value(other)?)),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(Error::msg(format!("expected array, got {other:?}"))),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + Copy + Default, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let items = Vec::<T>::from_value(v)?;
        if items.len() != N {
            return Err(Error::msg(format!("expected {N} elements, got {}", items.len())));
        }
        let mut out = [T::default(); N];
        out.copy_from_slice(&items);
        Ok(out)
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Array(vec![self.0.to_value(), self.1.to_value()])
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) if items.len() == 2 => {
                Ok((A::from_value(&items[0])?, B::from_value(&items[1])?))
            }
            other => Err(Error::msg(format!("expected 2-element array, got {other:?}"))),
        }
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn to_value(&self) -> Value {
        Value::Array(vec![self.0.to_value(), self.1.to_value(), self.2.to_value()])
    }
}

impl<A: Deserialize, B: Deserialize, C: Deserialize> Deserialize for (A, B, C) {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) if items.len() == 3 => Ok((
                A::from_value(&items[0])?,
                B::from_value(&items[1])?,
                C::from_value(&items[2])?,
            )),
            other => Err(Error::msg(format!("expected 3-element array, got {other:?}"))),
        }
    }
}

// Hash sets serialize sorted so equal sets render identically.
impl<T: Serialize + Ord + Clone> Serialize for HashSet<T> {
    fn to_value(&self) -> Value {
        let mut items: Vec<T> = self.iter().cloned().collect();
        items.sort();
        Value::Array(items.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + Eq + Hash> Deserialize for HashSet<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(Error::msg(format!("expected array, got {other:?}"))),
        }
    }
}

impl Serialize for Duration {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            ("secs".to_owned(), Value::U64(self.as_secs())),
            ("nanos".to_owned(), Value::U64(self.subsec_nanos() as u64)),
        ])
    }
}

impl Deserialize for Duration {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let secs = u64::from_value(v.field("secs"))?;
        let nanos = u32::from_value(v.field("nanos"))?;
        Ok(Duration::new(secs, nanos))
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}
