//! The JSON-shaped value tree shared by the `serde`/`serde_json` shims.

use std::fmt;
use std::ops::Index;

/// A dynamically typed JSON value.
///
/// Integers keep their signedness so 64-bit byte counts round-trip
/// exactly; floats hold anything written with a fraction or exponent.
/// Objects preserve insertion order (struct field declaration order),
/// which keeps serialized documents deterministic.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A non-negative integer.
    U64(u64),
    /// A negative (or arbitrary signed) integer.
    I64(i64),
    /// A floating-point number.
    F64(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Value>),
    /// An object as ordered `(key, value)` pairs.
    Object(Vec<(String, Value)>),
}

static NULL: Value = Value::Null;

impl Value {
    /// Object member by key; [`Value::Null`] when absent or not an
    /// object (mirrors `serde_json`'s infallible indexing).
    pub fn field(&self, key: &str) -> &Value {
        match self {
            Value::Object(pairs) => pairs
                .iter()
                .find(|(k, _)| k == key)
                .map(|(_, v)| v)
                .unwrap_or(&NULL),
            _ => &NULL,
        }
    }

    /// Object member by key, `None` when absent.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as an `f64` (integers widen), if numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::U64(u) => Some(*u as f64),
            Value::I64(i) => Some(*i as f64),
            Value::F64(f) => Some(*f),
            _ => None,
        }
    }

    /// The value as a `u64`, if a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::U64(u) => Some(*u),
            Value::I64(i) if *i >= 0 => Some(*i as u64),
            _ => None,
        }
    }

    /// The value as an `i64`, if an integer in range.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::U64(u) => i64::try_from(*u).ok(),
            Value::I64(i) => Some(*i),
            _ => None,
        }
    }

    /// The value as a bool, if boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as a string slice, if a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array, if an array.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The value as ordered object pairs, if an object.
    pub fn as_object(&self) -> Option<&Vec<(String, Value)>> {
        match self {
            Value::Object(pairs) => Some(pairs),
            _ => None,
        }
    }

    /// True for `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }
}

impl Index<&str> for Value {
    type Output = Value;
    fn index(&self, key: &str) -> &Value {
        self.field(key)
    }
}

impl Index<usize> for Value {
    type Output = Value;
    fn index(&self, idx: usize) -> &Value {
        match self {
            Value::Array(items) => items.get(idx).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

impl PartialEq<str> for Value {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == Some(other)
    }
}

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}

impl PartialEq<String> for Value {
    fn eq(&self, other: &String) -> bool {
        self.as_str() == Some(other.as_str())
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str("null"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::U64(u) => write!(f, "{u}"),
            Value::I64(i) => write!(f, "{i}"),
            Value::F64(x) => write!(f, "{x}"),
            Value::Str(s) => write!(f, "\"{s}\""),
            Value::Array(_) | Value::Object(_) => f.write_str("<composite>"),
        }
    }
}
