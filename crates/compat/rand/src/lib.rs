//! Offline stand-in for the `rand` crate (0.9-style method names).
//!
//! Provides the deterministic subset `h2h-model`'s synthetic generator
//! uses: a seedable RNG plus `random_bool` / `random_range`. The
//! underlying generator is SplitMix64 — statistically fine for model
//! synthesis, deterministic per seed (the only property tests rely on).

use std::ops::{Range, RangeInclusive};

/// RNG implementations.
pub mod rngs {
    /// The standard (shim) RNG: SplitMix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        pub(crate) state: u64,
    }
}

use rngs::StdRng;

/// Construction from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Builds the RNG from `seed`; equal seeds yield equal streams.
    fn seed_from_u64(seed: u64) -> Self;
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        StdRng { state: seed.wrapping_add(0x9E37_79B9_7F4A_7C15) }
    }
}

/// Sampling interface.
pub trait Rng {
    /// Next raw 64-bit output.
    fn next_u64(&mut self) -> u64;

    /// A uniform draw in `[0, 1)`.
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    fn random_bool(&mut self, p: f64) -> bool {
        self.next_f64() < p.clamp(0.0, 1.0)
    }

    /// A uniform draw from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }
}

impl Rng for StdRng {
    fn next_u64(&mut self) -> u64 {
        // SplitMix64.
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Ranges a value of type `T` can be drawn from.
pub trait SampleRange<T> {
    /// Draws one value.
    fn sample<R: Rng>(self, rng: &mut R) -> T;
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: Rng>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<R: Rng>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi - lo) as u64 + 1;
                lo + (rng.next_u64() % span) as $t
            }
        }
    )*};
}

int_range!(u16, u32, u64, usize);

macro_rules! signed_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: Rng>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i64 - self.start as i64) as u64;
                (self.start as i64 + (rng.next_u64() % span) as i64) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<R: Rng>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi as i64 - lo as i64) as u64 + 1;
                (lo as i64 + (rng.next_u64() % span) as i64) as $t
            }
        }
    )*};
}

signed_range!(i32, i64);

impl SampleRange<f64> for Range<f64> {
    fn sample<R: Rng>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range");
        self.start + (self.end - self.start) * rng.next_f64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed_and_in_range() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x = r.random_range(3u32..=7);
            assert!((3..=7).contains(&x));
            let y = r.random_range(10usize..20);
            assert!((10..20).contains(&y));
            let f = r.random_range(0.5f64..2.0);
            assert!((0.5..2.0).contains(&f));
        }
        let mut heads = 0;
        for _ in 0..1000 {
            if r.random_bool(0.5) {
                heads += 1;
            }
        }
        assert!((300..700).contains(&heads));
    }
}
