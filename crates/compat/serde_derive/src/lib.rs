//! Offline stand-in for `serde_derive`: `#[derive(Serialize)]` and
//! `#[derive(Deserialize)]` generating impls of the local `serde` shim's
//! traits (`to_value` / `from_value` over `serde::Value`).
//!
//! The parser handles exactly the item shapes this workspace derives on:
//! non-generic named structs, tuple/newtype structs, and enums whose
//! variants are unit, newtype/tuple, or struct-like. Conventions match
//! serde's externally tagged defaults so rendered JSON looks canonical.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug)]
enum Fields {
    Unit,
    Named(Vec<String>),
    Tuple(usize),
}

#[derive(Debug)]
enum Item {
    Struct { name: String, fields: Fields },
    Enum { name: String, variants: Vec<(String, Fields)> },
}

fn skip_attrs_and_vis(toks: &[TokenTree], mut i: usize) -> usize {
    loop {
        match toks.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                // `#[...]` attribute (doc comments included).
                i += 1;
                if let Some(TokenTree::Group(g)) = toks.get(i) {
                    if g.delimiter() == Delimiter::Bracket {
                        i += 1;
                        continue;
                    }
                }
                panic!("serde_derive shim: malformed attribute");
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                i += 1;
                // Optional `pub(...)` restriction.
                if let Some(TokenTree::Group(g)) = toks.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1;
                    }
                }
            }
            _ => return i,
        }
    }
}

/// Consumes tokens until a `,` at angle-bracket depth zero (the end of a
/// type in a field list); returns the index *after* the comma (or the end
/// of the stream).
fn skip_type(toks: &[TokenTree], mut i: usize) -> usize {
    let mut depth = 0i32;
    while let Some(t) = toks.get(i) {
        if let TokenTree::Punct(p) = t {
            match p.as_char() {
                '<' => depth += 1,
                '>' => depth -= 1,
                ',' if depth == 0 => return i + 1,
                _ => {}
            }
        }
        i += 1;
    }
    i
}

fn parse_named_fields(group: &proc_macro::Group) -> Vec<String> {
    let toks: Vec<TokenTree> = group.stream().into_iter().collect();
    let mut names = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        i = skip_attrs_and_vis(&toks, i);
        let Some(TokenTree::Ident(name)) = toks.get(i) else { break };
        names.push(name.to_string());
        i += 1;
        match toks.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => panic!("serde_derive shim: expected `:` after field, got {other:?}"),
        }
        i = skip_type(&toks, i);
    }
    names
}

fn count_tuple_fields(group: &proc_macro::Group) -> usize {
    let toks: Vec<TokenTree> = group.stream().into_iter().collect();
    if toks.is_empty() {
        return 0;
    }
    let mut n = 0;
    let mut i = 0;
    while i < toks.len() {
        i = skip_attrs_and_vis(&toks, i);
        if i >= toks.len() {
            break;
        }
        n += 1;
        i = skip_type(&toks, i);
    }
    n
}

fn parse_item(input: TokenStream) -> Item {
    let toks: Vec<TokenTree> = input.into_iter().collect();
    let mut i = skip_attrs_and_vis(&toks, 0);
    let kind = match toks.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive shim: expected struct/enum, got {other:?}"),
    };
    i += 1;
    let name = match toks.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive shim: expected type name, got {other:?}"),
    };
    i += 1;
    // Skip generics if present (unused in this workspace, kept for safety).
    if let Some(TokenTree::Punct(p)) = toks.get(i) {
        if p.as_char() == '<' {
            let mut depth = 0i32;
            while let Some(t) = toks.get(i) {
                if let TokenTree::Punct(p) = t {
                    match p.as_char() {
                        '<' => depth += 1,
                        '>' => {
                            depth -= 1;
                            if depth == 0 {
                                i += 1;
                                break;
                            }
                        }
                        _ => {}
                    }
                }
                i += 1;
            }
        }
    }
    match kind.as_str() {
        "struct" => {
            let fields = match toks.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    Fields::Named(parse_named_fields(g))
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    Fields::Tuple(count_tuple_fields(g))
                }
                _ => Fields::Unit,
            };
            Item::Struct { name, fields }
        }
        "enum" => {
            let Some(TokenTree::Group(body)) = toks.get(i) else {
                panic!("serde_derive shim: enum without body");
            };
            let vt: Vec<TokenTree> = body.stream().into_iter().collect();
            let mut variants = Vec::new();
            let mut j = 0;
            while j < vt.len() {
                j = skip_attrs_and_vis(&vt, j);
                let Some(TokenTree::Ident(vname)) = vt.get(j) else { break };
                let vname = vname.to_string();
                j += 1;
                let fields = match vt.get(j) {
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                        j += 1;
                        Fields::Named(parse_named_fields(g))
                    }
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                        j += 1;
                        Fields::Tuple(count_tuple_fields(g))
                    }
                    _ => Fields::Unit,
                };
                // Skip to the comma separating variants.
                while let Some(t) = vt.get(j) {
                    if matches!(t, TokenTree::Punct(p) if p.as_char() == ',') {
                        j += 1;
                        break;
                    }
                    j += 1;
                }
                variants.push((vname, fields));
            }
            Item::Enum { name, variants }
        }
        other => panic!("serde_derive shim: cannot derive for `{other}`"),
    }
}

/// Derives `serde::Serialize` (shim) for structs and enums.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let code = match &item {
        Item::Struct { name, fields } => {
            let body = match fields {
                Fields::Unit => "::serde::Value::Null".to_owned(),
                Fields::Tuple(1) => "::serde::Serialize::to_value(&self.0)".to_owned(),
                Fields::Tuple(n) => {
                    let elems: Vec<String> = (0..*n)
                        .map(|k| format!("::serde::Serialize::to_value(&self.{k})"))
                        .collect();
                    format!("::serde::Value::Array(vec![{}])", elems.join(", "))
                }
                Fields::Named(names) => {
                    let pairs: Vec<String> = names
                        .iter()
                        .map(|f| {
                            format!(
                                "(\"{f}\".to_owned(), ::serde::Serialize::to_value(&self.{f}))"
                            )
                        })
                        .collect();
                    format!("::serde::Value::Object(vec![{}])", pairs.join(", "))
                }
            };
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let arms: Vec<String> = variants
                .iter()
                .map(|(v, fields)| match fields {
                    Fields::Unit => format!(
                        "{name}::{v} => ::serde::Value::Str(\"{v}\".to_owned()),"
                    ),
                    Fields::Tuple(1) => format!(
                        "{name}::{v}(__f0) => ::serde::Value::Object(vec![(\"{v}\".to_owned(), \
                         ::serde::Serialize::to_value(__f0))]),"
                    ),
                    Fields::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|k| format!("__f{k}")).collect();
                        let elems: Vec<String> = binds
                            .iter()
                            .map(|b| format!("::serde::Serialize::to_value({b})"))
                            .collect();
                        format!(
                            "{name}::{v}({}) => ::serde::Value::Object(vec![(\"{v}\".to_owned(), \
                             ::serde::Value::Array(vec![{}]))]),",
                            binds.join(", "),
                            elems.join(", ")
                        )
                    }
                    Fields::Named(fs) => {
                        let binds = fs.join(", ");
                        let pairs: Vec<String> = fs
                            .iter()
                            .map(|f| {
                                format!(
                                    "(\"{f}\".to_owned(), ::serde::Serialize::to_value({f}))"
                                )
                            })
                            .collect();
                        format!(
                            "{name}::{v} {{ {binds} }} => ::serde::Value::Object(vec![\
                             (\"{v}\".to_owned(), ::serde::Value::Object(vec![{}]))]),",
                            pairs.join(", ")
                        )
                    }
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         match self {{\n{}\n}}\n\
                     }}\n\
                 }}",
                arms.join("\n")
            )
        }
    };
    code.parse().expect("serde_derive shim: generated invalid Serialize impl")
}

/// Derives `serde::Deserialize` (shim) for structs and enums.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let code = match &item {
        Item::Struct { name, fields } => {
            let body = match fields {
                Fields::Unit => format!("Ok({name})"),
                Fields::Tuple(1) => {
                    format!("Ok({name}(::serde::Deserialize::from_value(__v)?))")
                }
                Fields::Tuple(n) => {
                    let elems: Vec<String> = (0..*n)
                        .map(|k| {
                            format!(
                                "::serde::Deserialize::from_value(\
                                 __items.get({k}).unwrap_or(&::serde::Value::Null))?"
                            )
                        })
                        .collect();
                    format!(
                        "let __items = __v.as_array().ok_or_else(|| \
                         ::serde::Error::msg(\"expected array for tuple struct {name}\"))?;\n\
                         Ok({name}({}))",
                        elems.join(", ")
                    )
                }
                Fields::Named(names) => {
                    let inits: Vec<String> = names
                        .iter()
                        .map(|f| {
                            format!("{f}: ::serde::Deserialize::from_value(__v.field(\"{f}\"))?")
                        })
                        .collect();
                    format!("Ok({name} {{ {} }})", inits.join(", "))
                }
            };
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(__v: &::serde::Value) -> \
                         ::std::result::Result<Self, ::serde::Error> {{\n{body}\n}}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|(_, f)| matches!(f, Fields::Unit))
                .map(|(v, _)| format!("\"{v}\" => Ok({name}::{v}),"))
                .collect();
            let data_arms: Vec<String> = variants
                .iter()
                .filter_map(|(v, fields)| match fields {
                    Fields::Unit => None,
                    Fields::Tuple(1) => Some(format!(
                        "\"{v}\" => Ok({name}::{v}(::serde::Deserialize::from_value(__inner)?)),"
                    )),
                    Fields::Tuple(n) => {
                        let elems: Vec<String> = (0..*n)
                            .map(|k| {
                                format!(
                                    "::serde::Deserialize::from_value(\
                                     __items.get({k}).unwrap_or(&::serde::Value::Null))?"
                                )
                            })
                            .collect();
                        Some(format!(
                            "\"{v}\" => {{ let __items = __inner.as_array().ok_or_else(|| \
                             ::serde::Error::msg(\"expected array for variant {v}\"))?; \
                             Ok({name}::{v}({})) }},",
                            elems.join(", ")
                        ))
                    }
                    Fields::Named(fs) => {
                        let inits: Vec<String> = fs
                            .iter()
                            .map(|f| {
                                format!(
                                    "{f}: ::serde::Deserialize::from_value(__inner.field(\"{f}\"))?"
                                )
                            })
                            .collect();
                        Some(format!(
                            "\"{v}\" => Ok({name}::{v} {{ {} }}),",
                            inits.join(", ")
                        ))
                    }
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(__v: &::serde::Value) -> \
                         ::std::result::Result<Self, ::serde::Error> {{\n\
                         match __v {{\n\
                             ::serde::Value::Str(__s) => match __s.as_str() {{\n\
                                 {}\n\
                                 __other => Err(::serde::Error::msg(format!(\
                                     \"unknown {name} variant `{{__other}}`\"))),\n\
                             }},\n\
                             ::serde::Value::Object(__pairs) if __pairs.len() == 1 => {{\n\
                                 let (__tag, __inner) = &__pairs[0];\n\
                                 match __tag.as_str() {{\n\
                                     {}\n\
                                     __other => Err(::serde::Error::msg(format!(\
                                         \"unknown {name} variant `{{__other}}`\"))),\n\
                                 }}\n\
                             }},\n\
                             __other => Err(::serde::Error::msg(format!(\
                                 \"bad value for enum {name}: {{__other:?}}\"))),\n\
                         }}\n\
                     }}\n\
                 }}",
                unit_arms.join("\n"),
                data_arms.join("\n")
            )
        }
    };
    code.parse().expect("serde_derive shim: generated invalid Deserialize impl")
}
