//! Offline stand-in for the `criterion` benchmark harness.
//!
//! Provides the `criterion_group!`/`criterion_main!` macros, benchmark
//! groups with `sample_size`/`measurement_time`, and a [`Bencher`] with
//! `iter`. Measurement is a simple calibrated loop: per benchmark it
//! auto-scales the iteration count toward ~1/10 of the measurement
//! budget per sample, reports mean ns/iter over the samples, and prints
//! one line per benchmark — enough to track perf trajectories offline.

use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Re-export of `std::hint::black_box` under criterion's name.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// The top-level harness handle.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        eprintln!("group {name}");
        BenchmarkGroup {
            _c: self,
            name,
            sample_size: 10,
            measurement_time: Duration::from_secs(3),
        }
    }
}

/// A group of related benchmarks sharing sampling settings.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _c: &'a mut Criterion,
    name: String,
    sample_size: usize,
    measurement_time: Duration,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the measurement budget per benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        // Calibrate iterations per sample from a one-shot warmup.
        let mut b = Bencher { iters: 1, elapsed: Duration::ZERO };
        f(&mut b);
        let per_iter = b.elapsed.max(Duration::from_nanos(1));
        let budget = self.measurement_time / self.sample_size.max(1) as u32;
        let iters = (budget.as_nanos() / per_iter.as_nanos().max(1)).clamp(1, 1_000_000) as u64;

        let mut total = Duration::ZERO;
        let mut total_iters = 0u64;
        for _ in 0..self.sample_size {
            let mut b = Bencher { iters, elapsed: Duration::ZERO };
            f(&mut b);
            total += b.elapsed;
            total_iters += iters;
        }
        let ns = total.as_nanos() as f64 / total_iters.max(1) as f64;
        eprintln!("  {}/{id}: {:.1} ns/iter ({total_iters} iters)", self.name, ns);
        self
    }

    /// Ends the group (printing only; kept for API parity).
    pub fn finish(&mut self) {
        eprintln!("group {} done", self.name);
    }
}

/// Timing loop handle passed to benchmark closures.
#[derive(Debug)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `f` over this sample's iteration count.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std_black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

/// Declares a benchmark group runner function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
