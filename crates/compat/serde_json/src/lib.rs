//! Offline stand-in for `serde_json`: renders/parses the `serde` shim's
//! [`Value`] tree as standard JSON text.
//!
//! Floats print via Rust's shortest-roundtrip `Display`, so
//! serialize→parse round-trips are exact; integers keep 64-bit
//! precision. Only the API surface this workspace touches is provided:
//! [`to_string`], [`to_string_pretty`], [`from_str`] and [`Value`].

use std::fmt::Write as _;

pub use serde::value::Value;
pub use serde::Error;

use serde::{Deserialize, Serialize};

/// Serializes `value` as compact JSON.
///
/// # Errors
///
/// Infallible in this shim; the `Result` mirrors the real API.
pub fn to_string<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serializes `value` as two-space-indented JSON.
///
/// # Errors
///
/// Infallible in this shim; the `Result` mirrors the real API.
pub fn to_string_pretty<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Parses JSON text into any shim-`Deserialize` type (including
/// [`Value`] itself).
///
/// # Errors
///
/// Returns an [`Error`] for malformed JSON or a shape mismatch.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser { bytes: s.as_bytes(), pos: 0 };
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::msg(format!("trailing characters at byte {}", p.pos)));
    }
    T::from_value(&v)
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    let (nl, pad, pad_in) = match indent {
        Some(w) => (
            "\n",
            " ".repeat(w * depth),
            " ".repeat(w * (depth + 1)),
        ),
        None => ("", String::new(), String::new()),
    };
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => {
            let _ = write!(out, "{b}");
        }
        Value::U64(u) => {
            let _ = write!(out, "{u}");
        }
        Value::I64(i) => {
            let _ = write!(out, "{i}");
        }
        Value::F64(x) => {
            if x.is_finite() {
                let _ = write!(out, "{x}");
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_escaped(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(nl);
                out.push_str(&pad_in);
                write_value(out, item, indent, depth + 1);
            }
            out.push_str(nl);
            out.push_str(&pad);
            out.push(']');
        }
        Value::Object(pairs) => {
            if pairs.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, item)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(nl);
                out.push_str(&pad_in);
                write_escaped(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, depth + 1);
            }
            out.push_str(nl);
            out.push_str(&pad);
            out.push('}');
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::msg(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.bytes.get(self.pos) {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.parse_string()?)),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.bytes.get(self.pos) == Some(&b']') {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                loop {
                    items.push(self.parse_value()?);
                    self.skip_ws();
                    match self.bytes.get(self.pos) {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Array(items));
                        }
                        _ => return Err(Error::msg(format!("bad array at byte {}", self.pos))),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut pairs = Vec::new();
                self.skip_ws();
                if self.bytes.get(self.pos) == Some(&b'}') {
                    self.pos += 1;
                    return Ok(Value::Object(pairs));
                }
                loop {
                    self.skip_ws();
                    let key = self.parse_string()?;
                    self.expect(b':')?;
                    let val = self.parse_value()?;
                    pairs.push((key, val));
                    self.skip_ws();
                    match self.bytes.get(self.pos) {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Object(pairs));
                        }
                        _ => return Err(Error::msg(format!("bad object at byte {}", self.pos))),
                    }
                }
            }
            Some(_) => self.parse_number(),
            None => Err(Error::msg("unexpected end of input")),
        }
    }

    fn literal(&mut self, text: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(v)
        } else {
            Err(Error::msg(format!("bad literal at byte {}", self.pos)))
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        if self.bytes.get(self.pos) != Some(&b'"') {
            return Err(Error::msg(format!("expected string at byte {}", self.pos)));
        }
        self.pos += 1;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos) {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.bytes.get(self.pos) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error::msg("truncated \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error::msg("bad \\u escape"))?,
                                16,
                            )
                            .map_err(|_| Error::msg("bad \\u escape"))?;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        other => {
                            return Err(Error::msg(format!("bad escape {other:?}")));
                        }
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| Error::msg("invalid UTF-8 in string"))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
                None => return Err(Error::msg("unterminated string")),
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' | b'-' | b'+' => self.pos += 1,
                b'.' | b'e' | b'E' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::msg("invalid number"))?;
        if text.is_empty() {
            return Err(Error::msg(format!("expected value at byte {start}")));
        }
        if !is_float {
            if let Some(stripped) = text.strip_prefix('-') {
                if let Ok(i) = stripped.parse::<u64>() {
                    if i <= i64::MAX as u64 {
                        return Ok(Value::I64(-(i as i64)));
                    }
                }
            } else if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::U64(u));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| Error::msg(format!("bad number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_compound() {
        let v = Value::Object(vec![
            ("a".to_owned(), Value::Array(vec![Value::U64(1), Value::F64(2.5)])),
            ("b".to_owned(), Value::Str("x \"y\"\n".to_owned())),
            ("c".to_owned(), Value::Null),
            ("d".to_owned(), Value::I64(-3)),
        ]);
        let s = to_string(&v).unwrap();
        let back: Value = from_str(&s).unwrap();
        assert_eq!(v, back);
        let pretty = to_string_pretty(&v).unwrap();
        let back2: Value = from_str(&pretty).unwrap();
        assert_eq!(v, back2);
    }

    #[test]
    fn float_roundtrip_is_exact() {
        for x in [1.0e-12, 0.1 + 0.2, std::f64::consts::PI, 1e300] {
            let s = to_string(&x).unwrap();
            let back: f64 = from_str(&s).unwrap();
            assert_eq!(x, back);
        }
    }

    #[test]
    fn indexing_and_comparisons() {
        let v: Value = from_str(r#"{"ph":"X","dur":1.5,"xs":[1,2]}"#).unwrap();
        assert!(v["ph"] == "X");
        assert_eq!(v["dur"].as_f64(), Some(1.5));
        assert_eq!(v["xs"].as_array().unwrap().len(), 2);
        assert!(v["missing"].is_null());
    }
}
