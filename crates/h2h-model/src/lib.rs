//! # h2h-model — heterogeneous MMMT model formalism
//!
//! The model half of the H2H (DAC'22) formulation: multi-modality
//! multi-task (MMMT) DNNs as directed acyclic graphs of Conv / FC / LSTM
//! layers (paper §3, Table 1), plus the six-model evaluation zoo
//! (paper Table 2).
//!
//! ## Quick tour
//!
//! ```
//! use h2h_model::builder::ModelBuilder;
//! use h2h_model::stats::ModelStats;
//! use h2h_model::tensor::TensorShape;
//!
//! // A two-modality toy model with a fusion head.
//! let mut b = ModelBuilder::new("toy-mmmt");
//! b.modality(Some("vision"));
//! let img = b.input("img", TensorShape::Feature { c: 3, h: 64, w: 64 });
//! let conv = b.conv("conv", img, 32, 3, 2)?;
//! let feat = b.global_pool("gap", conv)?;
//! b.modality(Some("audio"));
//! let wav = b.input("wav", TensorShape::Sequence { steps: 128, features: 40 });
//! let lstm = b.lstm("lstm", wav, 64, 1, false)?;
//! b.modality(None);
//! let fused = b.concat("fuse", &[feat, lstm])?;
//! b.fc("head", fused, 10)?;
//! let model = b.finish()?;
//!
//! let stats = ModelStats::of(&model);
//! assert_eq!(stats.modalities.len(), 2);
//! # Ok::<(), h2h_model::graph::ModelError>(())
//! ```
//!
//! The real evaluation models live in [`zoo`]:
//!
//! ```
//! let vlocnet = h2h_model::zoo::vlocnet();
//! assert!(h2h_model::stats::ModelStats::of(&vlocnet).params_m() > 150.0);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod blocks;
pub mod builder;
pub mod graph;
pub mod layer;
pub mod parse;
pub mod stats;
pub mod synth;
pub mod tensor;
pub mod units;
pub mod zoo;

pub use graph::{LayerId, ModelError, ModelGraph};
pub use layer::{Layer, LayerClass, LayerOp};
pub use stats::ModelStats;
pub use tensor::{DataType, TensorShape};
