//! Shape-propagating builder for heterogeneous model graphs.
//!
//! The zoo generators (VLocNet, CASIA-SURF, …) chain hundreds of layers;
//! writing raw [`ConvParams`] for each would be error-prone. The builder
//! tracks every layer's output shape and derives the next layer's input
//! parameters, rejecting shape-inconsistent graphs at construction time
//! (dynamic enforcement per C-VALIDATE).
//!
//! # Examples
//!
//! ```
//! use h2h_model::builder::ModelBuilder;
//! use h2h_model::tensor::TensorShape;
//!
//! let mut b = ModelBuilder::new("demo");
//! let img = b.input("img", TensorShape::Feature { c: 3, h: 224, w: 224 });
//! let c1 = b.conv("c1", img, 64, 7, 2)?;
//! let p1 = b.max_pool("p1", c1, 3, 2)?;
//! let g = b.global_pool("gap", p1)?;
//! let logits = b.fc("fc", g, 1000)?;
//! let model = b.finish()?;
//! assert_eq!(model.num_layers(), 5);
//! # let _ = logits;
//! # Ok::<(), h2h_model::graph::ModelError>(())
//! ```

use std::collections::HashMap;

use crate::graph::{LayerId, ModelError, ModelGraph};
use crate::layer::{ConvParams, FcParams, Layer, LayerOp, LstmParams, PoolKind, PoolParams};
use crate::tensor::TensorShape;

/// Output spatial size under "same" padding: `ceil(in / stride)`.
fn same_out(dim: u32, stride: u32) -> u32 {
    dim.div_ceil(stride)
}

/// A fluent, shape-checked builder for [`ModelGraph`].
#[derive(Debug)]
pub struct ModelBuilder {
    graph: ModelGraph,
    shapes: HashMap<LayerId, TensorShape>,
    modality: Option<String>,
}

impl ModelBuilder {
    /// Starts a new model.
    pub fn new(name: impl Into<String>) -> Self {
        ModelBuilder { graph: ModelGraph::new(name), shapes: HashMap::new(), modality: None }
    }

    /// Sets the modality tag applied to subsequently created layers
    /// (`None` marks shared/fusion layers). Returns `&mut self` for
    /// chaining.
    pub fn modality(&mut self, tag: Option<&str>) -> &mut Self {
        self.modality = tag.map(str::to_owned);
        self
    }

    /// The output shape of a previously created layer.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not created by this builder.
    pub fn shape(&self, id: LayerId) -> TensorShape {
        self.shapes[&id]
    }

    fn push(&mut self, name: &str, op: LayerOp, inputs: &[LayerId]) -> Result<LayerId, ModelError> {
        let layer = match &self.modality {
            Some(m) => Layer::with_modality(name, op, m.clone()),
            None => Layer::new(name, op),
        };
        let shape = layer.ofm_shape();
        let id = self.graph.add_layer(layer);
        for &src in inputs {
            self.graph.connect(src, id)?;
        }
        self.shapes.insert(id, shape);
        Ok(id)
    }

    /// Adds a model input producing `shape`.
    pub fn input(&mut self, name: &str, shape: TensorShape) -> LayerId {
        self.push(name, LayerOp::Input { shape }, &[])
            .expect("input layers cannot fail shape checks")
    }

    /// Adds a 2-D convolution (`same` padding, square kernel `k`, stride
    /// `s`) reading from `from`.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::ShapeMismatch`] unless `from` produces a
    /// spatial feature map.
    pub fn conv(
        &mut self,
        name: &str,
        from: LayerId,
        out_channels: u32,
        k: u32,
        s: u32,
    ) -> Result<LayerId, ModelError> {
        match self.shape(from) {
            TensorShape::Feature { c, h, w } => {
                let p = ConvParams::square(out_channels, c, same_out(h, s), same_out(w, s), k, s);
                self.push(name, LayerOp::Conv(p), &[from])
            }
            other => Err(ModelError::ShapeMismatch(format!(
                "conv `{name}` needs a Feature input, got {other:?}"
            ))),
        }
    }

    /// Adds a 1-D convolution over a sequence (`K×1` kernel), the building
    /// block of VD-CNN-style text backbones and speech/motion frontends.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::ShapeMismatch`] unless `from` produces a
    /// sequence.
    pub fn conv1d(
        &mut self,
        name: &str,
        from: LayerId,
        out_channels: u32,
        k: u32,
        s: u32,
    ) -> Result<LayerId, ModelError> {
        match self.shape(from) {
            TensorShape::Sequence { steps, features } => {
                let p = ConvParams {
                    out_channels,
                    in_channels: features,
                    out_h: same_out(steps, s),
                    out_w: 1,
                    kernel_h: k,
                    kernel_w: 1,
                    stride: s,
                };
                // The op's natural OFM is a Feature map (C×T×1); re-expose
                // it as a sequence so LSTM/conv1d layers can follow.
                let id = self.push(name, LayerOp::Conv(p), &[from])?;
                self.shapes.insert(
                    id,
                    TensorShape::Sequence { steps: same_out(steps, s), features: out_channels },
                );
                Ok(id)
            }
            other => Err(ModelError::ShapeMismatch(format!(
                "conv1d `{name}` needs a Sequence input, got {other:?}"
            ))),
        }
    }

    /// Adds a fully-connected layer; any input shape is flattened.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::ShapeMismatch`] if the flattened input width
    /// exceeds `u32::MAX`.
    pub fn fc(&mut self, name: &str, from: LayerId, out_features: u32) -> Result<LayerId, ModelError> {
        let inf = self.shape(from).flat_features();
        let in_features = u32::try_from(inf).map_err(|_| {
            ModelError::ShapeMismatch(format!("fc `{name}` input too wide: {inf}"))
        })?;
        self.push(name, LayerOp::Fc(FcParams { in_features, out_features }), &[from])
    }

    /// Adds an LSTM stack reading a sequence.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::ShapeMismatch`] unless `from` produces a
    /// sequence.
    pub fn lstm(
        &mut self,
        name: &str,
        from: LayerId,
        hidden: u32,
        layers: u32,
        return_sequences: bool,
    ) -> Result<LayerId, ModelError> {
        match self.shape(from) {
            TensorShape::Sequence { steps, features } => self.push(
                name,
                LayerOp::Lstm(LstmParams {
                    in_size: features,
                    hidden,
                    layers,
                    seq_len: steps,
                    return_sequences,
                }),
                &[from],
            ),
            other => Err(ModelError::ShapeMismatch(format!(
                "lstm `{name}` needs a Sequence input, got {other:?}"
            ))),
        }
    }

    fn pool(
        &mut self,
        name: &str,
        from: LayerId,
        k: u32,
        s: u32,
        kind: PoolKind,
    ) -> Result<LayerId, ModelError> {
        match self.shape(from) {
            TensorShape::Feature { c, h, w } => self.push(
                name,
                LayerOp::Pool(PoolParams {
                    kernel: k,
                    stride: s,
                    kind,
                    channels: c,
                    out_h: same_out(h, s),
                    out_w: same_out(w, s),
                }),
                &[from],
            ),
            other => Err(ModelError::ShapeMismatch(format!(
                "pool `{name}` needs a Feature input, got {other:?}"
            ))),
        }
    }

    /// Adds a max-pooling layer.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::ShapeMismatch`] unless `from` produces a
    /// spatial feature map.
    pub fn max_pool(&mut self, name: &str, from: LayerId, k: u32, s: u32) -> Result<LayerId, ModelError> {
        self.pool(name, from, k, s, PoolKind::Max)
    }

    /// Adds an average-pooling layer.
    ///
    /// # Errors
    ///
    /// See [`ModelBuilder::max_pool`].
    pub fn avg_pool(&mut self, name: &str, from: LayerId, k: u32, s: u32) -> Result<LayerId, ModelError> {
        self.pool(name, from, k, s, PoolKind::Avg)
    }

    /// Adds global average pooling (`C×H×W → C`).
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::ShapeMismatch`] unless `from` produces a
    /// spatial feature map.
    pub fn global_pool(&mut self, name: &str, from: LayerId) -> Result<LayerId, ModelError> {
        match self.shape(from) {
            TensorShape::Feature { c, h, w } => {
                self.push(name, LayerOp::GlobalPool { channels: c, in_h: h, in_w: w }, &[from])
            }
            other => Err(ModelError::ShapeMismatch(format!(
                "global_pool `{name}` needs a Feature input, got {other:?}"
            ))),
        }
    }

    /// Adds an elementwise residual addition of two or more equal-shaped
    /// tensors.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::ShapeMismatch`] if the input shapes differ or
    /// fewer than two inputs are given.
    pub fn add(&mut self, name: &str, inputs: &[LayerId]) -> Result<LayerId, ModelError> {
        let [first, rest @ ..] = inputs else {
            return Err(ModelError::ShapeMismatch(format!("add `{name}` needs >= 2 inputs")));
        };
        if rest.is_empty() {
            return Err(ModelError::ShapeMismatch(format!("add `{name}` needs >= 2 inputs")));
        }
        let shape = self.shape(*first);
        for id in rest {
            let s = self.shape(*id);
            if !shape.same_as(&s) {
                return Err(ModelError::ShapeMismatch(format!(
                    "add `{name}`: {shape:?} vs {s:?}"
                )));
            }
        }
        self.push(name, LayerOp::Add { shape }, inputs)
    }

    /// Adds a concatenation (modality-fusion point). Feature maps must
    /// agree on `H×W` and concatenate channels; sequences must agree on
    /// step count and concatenate features; anything else flattens to a
    /// vector.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::ShapeMismatch`] on incompatible spatial or
    /// temporal extents, or fewer than two inputs.
    pub fn concat(&mut self, name: &str, inputs: &[LayerId]) -> Result<LayerId, ModelError> {
        if inputs.len() < 2 {
            return Err(ModelError::ShapeMismatch(format!("concat `{name}` needs >= 2 inputs")));
        }
        let shapes: Vec<TensorShape> = inputs.iter().map(|id| self.shape(*id)).collect();
        let out = match shapes[0] {
            TensorShape::Feature { h, w, .. }
                if shapes.iter().all(
                    |s| matches!(s, TensorShape::Feature { h: h2, w: w2, .. } if *h2 == h && *w2 == w),
                ) =>
            {
                let c: u32 = shapes
                    .iter()
                    .map(|s| match s {
                        TensorShape::Feature { c, .. } => *c,
                        _ => unreachable!(),
                    })
                    .sum();
                TensorShape::Feature { c, h, w }
            }
            TensorShape::Sequence { steps, .. }
                if shapes
                    .iter()
                    .all(|s| matches!(s, TensorShape::Sequence { steps: t2, .. } if *t2 == steps)) =>
            {
                let features: u32 = shapes
                    .iter()
                    .map(|s| match s {
                        TensorShape::Sequence { features, .. } => *features,
                        _ => unreachable!(),
                    })
                    .sum();
                TensorShape::Sequence { steps, features }
            }
            _ => {
                let total: u64 = shapes.iter().map(TensorShape::flat_features).sum();
                let features = u32::try_from(total).map_err(|_| {
                    ModelError::ShapeMismatch(format!("concat `{name}` output too wide: {total}"))
                })?;
                TensorShape::Vector { features }
            }
        };
        self.push(name, LayerOp::Concat { out }, inputs)
    }

    /// Reinterprets a spatial feature map as a sequence (`C×H×W` →
    /// `steps=H·W, features=C`), the standard bridge from a CNN frontend
    /// into an LSTM (CNN-LSTM activity recognition).
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::ShapeMismatch`] unless `from` produces a
    /// spatial feature map.
    pub fn to_sequence(&mut self, name: &str, from: LayerId) -> Result<LayerId, ModelError> {
        match self.shape(from) {
            TensorShape::Feature { c, h, w } => {
                let out = TensorShape::Sequence { steps: h * w, features: c };
                self.push(name, LayerOp::Concat { out }, &[from]).map_err(|e| match e {
                    ModelError::ShapeMismatch(m) => ModelError::ShapeMismatch(m),
                    other => other,
                })
            }
            other => Err(ModelError::ShapeMismatch(format!(
                "to_sequence `{name}` needs a Feature input, got {other:?}"
            ))),
        }
    }

    /// Finalizes and validates the model.
    ///
    /// # Errors
    ///
    /// Propagates any [`ModelError`] found by [`ModelGraph::validate`].
    pub fn finish(self) -> Result<ModelGraph, ModelError> {
        self.graph.validate()?;
        Ok(self.graph)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::LayerClass;

    #[test]
    fn conv_shape_propagation_same_padding() {
        let mut b = ModelBuilder::new("t");
        let i = b.input("i", TensorShape::Feature { c: 3, h: 224, w: 224 });
        let c = b.conv("c", i, 64, 7, 2).unwrap();
        assert_eq!(b.shape(c), TensorShape::Feature { c: 64, h: 112, w: 112 });
        let p = b.max_pool("p", c, 3, 2).unwrap();
        assert_eq!(b.shape(p), TensorShape::Feature { c: 64, h: 56, w: 56 });
    }

    #[test]
    fn conv_rejects_vector_input() {
        let mut b = ModelBuilder::new("t");
        let i = b.input("i", TensorShape::Vector { features: 10 });
        assert!(matches!(b.conv("c", i, 8, 3, 1), Err(ModelError::ShapeMismatch(_))));
    }

    #[test]
    fn conv1d_keeps_sequence_shape() {
        let mut b = ModelBuilder::new("t");
        let i = b.input("i", TensorShape::Sequence { steps: 128, features: 16 });
        let c = b.conv1d("c", i, 64, 3, 2).unwrap();
        assert_eq!(b.shape(c), TensorShape::Sequence { steps: 64, features: 64 });
        // And it can feed an LSTM.
        let l = b.lstm("l", c, 128, 1, false).unwrap();
        assert_eq!(b.shape(l), TensorShape::Vector { features: 128 });
    }

    #[test]
    fn fc_flattens_feature_maps() {
        let mut b = ModelBuilder::new("t");
        let i = b.input("i", TensorShape::Feature { c: 512, h: 7, w: 7 });
        let f = b.fc("f", i, 4096).unwrap();
        assert_eq!(b.shape(f), TensorShape::Vector { features: 4096 });
        let model = b.finish().unwrap();
        let (_, fc_layer) = model.layers().find(|(_, l)| l.name() == "f").unwrap();
        assert_eq!(fc_layer.weight_elems(), 512 * 49 * 4096 + 4096);
    }

    #[test]
    fn lstm_rejects_feature_input() {
        let mut b = ModelBuilder::new("t");
        let i = b.input("i", TensorShape::Feature { c: 3, h: 8, w: 8 });
        assert!(matches!(b.lstm("l", i, 64, 1, true), Err(ModelError::ShapeMismatch(_))));
    }

    #[test]
    fn add_requires_matching_shapes() {
        let mut b = ModelBuilder::new("t");
        let i = b.input("i", TensorShape::Feature { c: 8, h: 4, w: 4 });
        let a = b.conv("a", i, 8, 3, 1).unwrap();
        let c = b.conv("c", i, 16, 3, 1).unwrap();
        assert!(matches!(b.add("bad", &[a, c]), Err(ModelError::ShapeMismatch(_))));
        let d = b.conv("d", i, 8, 3, 1).unwrap();
        let ok = b.add("ok", &[a, d]).unwrap();
        assert_eq!(b.shape(ok), TensorShape::Feature { c: 8, h: 4, w: 4 });
    }

    #[test]
    fn add_requires_two_inputs() {
        let mut b = ModelBuilder::new("t");
        let i = b.input("i", TensorShape::Vector { features: 4 });
        assert!(matches!(b.add("one", &[i]), Err(ModelError::ShapeMismatch(_))));
    }

    #[test]
    fn concat_feature_maps_sums_channels() {
        let mut b = ModelBuilder::new("t");
        let i = b.input("i", TensorShape::Feature { c: 8, h: 4, w: 4 });
        let a = b.conv("a", i, 8, 3, 1).unwrap();
        let c = b.conv("c", i, 16, 3, 1).unwrap();
        let cat = b.concat("cat", &[a, c]).unwrap();
        assert_eq!(b.shape(cat), TensorShape::Feature { c: 24, h: 4, w: 4 });
    }

    #[test]
    fn concat_mixed_shapes_flattens() {
        let mut b = ModelBuilder::new("t");
        let v = b.input("v", TensorShape::Vector { features: 100 });
        let s = b.input("s", TensorShape::Sequence { steps: 10, features: 8 });
        let cat = b.concat("cat", &[v, s]).unwrap();
        assert_eq!(b.shape(cat), TensorShape::Vector { features: 180 });
    }

    #[test]
    fn concat_sequences_requires_same_steps() {
        let mut b = ModelBuilder::new("t");
        let a = b.input("a", TensorShape::Sequence { steps: 10, features: 8 });
        let c = b.input("c", TensorShape::Sequence { steps: 10, features: 4 });
        let cat = b.concat("cat", &[a, c]).unwrap();
        assert_eq!(b.shape(cat), TensorShape::Sequence { steps: 10, features: 12 });
    }

    #[test]
    fn modality_tags_apply_to_scope() {
        let mut b = ModelBuilder::new("t");
        b.modality(Some("rgb"));
        let i = b.input("i", TensorShape::Feature { c: 3, h: 8, w: 8 });
        b.modality(None);
        let g = b.global_pool("g", i).unwrap();
        let model = b.finish().unwrap();
        let by_name = |n: &str| model.layers().find(|(_, l)| l.name() == n).unwrap().1.clone();
        assert_eq!(by_name("i").modality(), Some("rgb"));
        assert_eq!(by_name("g").modality(), None);
        let _ = g;
    }

    #[test]
    fn to_sequence_bridges_cnn_to_lstm() {
        let mut b = ModelBuilder::new("t");
        let i = b.input("i", TensorShape::Feature { c: 32, h: 4, w: 4 });
        let s = b.to_sequence("s", i).unwrap();
        assert_eq!(b.shape(s), TensorShape::Sequence { steps: 16, features: 32 });
        b.lstm("l", s, 64, 2, false).unwrap();
        b.finish().unwrap();
    }

    #[test]
    fn builder_classes_roundtrip() {
        let mut b = ModelBuilder::new("t");
        let i = b.input("i", TensorShape::Feature { c: 3, h: 16, w: 16 });
        let c = b.conv("c", i, 8, 3, 1).unwrap();
        let g = b.global_pool("g", c).unwrap();
        let f = b.fc("f", g, 10).unwrap();
        let m = b.finish().unwrap();
        let classes: Vec<LayerClass> = m.topo_order().iter().map(|id| m.layer(*id).class()).collect();
        assert_eq!(
            classes,
            vec![LayerClass::Aux, LayerClass::Conv, LayerClass::Aux, LayerClass::Fc]
        );
        let _ = f;
    }
}
