//! FaceBagNet (Shen et al., CVPR-W'19): bag-of-local-features model for
//! multi-modal face anti-spoofing. ResNet variants, ≈25M parameters
//! (paper Table 2).
//!
//! Reconstruction: three patch-level ResNet-18-variant branches (RGB,
//! Depth, IR) at 0.75 width over random face patches, with a late
//! feature-level fusion trunk of residual blocks — FaceBagNet's "modal
//! feature erasing" operates at this fusion trunk, which we model as
//! shared (untagged) layers.

use crate::blocks::{basic_block, image_input, resnet18_trunk, scale_channels};
use crate::builder::ModelBuilder;
use crate::graph::{ModelError, ModelGraph};

const WIDTH: f64 = 0.75;

/// Builds FaceBag.
///
/// # Panics
///
/// Panics only on internal shape-rule violations, ruled out by tests.
pub fn facebag() -> ModelGraph {
    try_build().expect("facebag generator is shape-consistent")
}

fn try_build() -> Result<ModelGraph, ModelError> {
    let mut b = ModelBuilder::new("FaceBag");

    let mut feats = Vec::new();
    for modality in ["rgb", "depth", "ir"] {
        b.modality(Some(modality));
        // Patch input: FaceBagNet trains on 48×48 patches; at inference
        // we model the 96×96 center-crop variant.
        let input = image_input(&mut b, &format!("{modality}_patch"), 96);
        let trunk = resnet18_trunk(&mut b, modality, input, WIDTH)?;
        feats.push(trunk);
    }

    // Shared fusion trunk: concat channel-wise, squeeze, two residual
    // blocks, classify.
    b.modality(None);
    let cat = b.concat("fuse.cat", &feats)?;
    let squeeze = b.conv("fuse.squeeze", cat, scale_channels(512, WIDTH), 1, 1)?;
    let rb1 = basic_block(&mut b, "fuse.rb1", squeeze, scale_channels(512, WIDTH), 1)?;
    let rb2 = basic_block(&mut b, "fuse.rb2", rb1, scale_channels(512, WIDTH), 1)?;
    let gap = b.global_pool("fuse.gap", rb2)?;
    let fc1 = b.fc("head.fc1", gap, 512)?;
    b.fc("head.fc2", fc1, 2)?;

    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::ModelStats;

    #[test]
    fn params_near_25m() {
        let s = ModelStats::of(&facebag());
        assert!(
            (22.5..=27.5).contains(&s.params_m()),
            "FaceBag params {:.2}M (paper: 25M)",
            s.params_m()
        );
    }

    #[test]
    fn three_patch_branches() {
        let m = facebag();
        assert_eq!(m.sources().len(), 3);
        let s = ModelStats::of(&m);
        assert_eq!(s.modalities.len(), 3);
        assert_eq!(s.lstm_layers, 0);
    }

    #[test]
    fn fusion_trunk_is_shared() {
        let m = facebag();
        let fuse_layers: Vec<_> = m
            .layers()
            .filter(|(_, l)| l.name().starts_with("fuse.") || l.name().starts_with("head."))
            .collect();
        assert!(fuse_layers.len() >= 8);
        assert!(fuse_layers.iter().all(|(_, l)| l.modality().is_none()));
    }
}
