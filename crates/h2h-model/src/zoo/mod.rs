//! The six heterogeneous MMMT evaluation models (paper Table 2).
//!
//! | Domain | Model | Backbones | Params |
//! |--------|-------|-----------|--------|
//! | Augmented Reality | VLocNet | ResNet-50 variants | 192M |
//! | Face Recognition | CASIA-SURF | ResNet-18 variants | 13.2M |
//! | Sentiment Analysis | VFS | VGG and VD-CNN variants | 365M |
//! | Face Recognition | FaceBag | ResNet variants | 25M |
//! | Activity Recognition | CNN-LSTM | ConvNet and LSTM variants | 16M |
//! | Emotion Recognition | MoCap | Convolution and LSTM units | 8M |
//!
//! The paper does not publish the layer-by-layer definitions; these
//! generators reconstruct each model from its cited architecture and are
//! calibrated (see each module's tests) to the paper's reported parameter
//! counts (±10%) and layer counts (VLocNet ≈ 141 layers, CNN-LSTM and
//! MoCap < 30 layers). See DESIGN.md §3 for the substitution rationale.

mod casia_surf;
mod cnn_lstm;
mod facebag;
mod mocap;
mod vfs;
mod vlocnet;

pub use casia_surf::casia_surf;
pub use cnn_lstm::cnn_lstm;
pub use facebag::facebag;
pub use mocap::mocap;
pub use vfs::vfs;
pub use vlocnet::vlocnet;

use crate::graph::ModelGraph;

/// All six evaluation models, in the paper's Table 2 / Figure 4 order.
pub fn all_models() -> Vec<ModelGraph> {
    vec![vlocnet(), casia_surf(), vfs(), facebag(), cnn_lstm(), mocap()]
}

/// Resolves a zoo model from its Table-2 name, case-insensitively
/// (`"VLocNet"`, `"casia-surf"`, …) — the one lookup every bench/CLI
/// front end shares. (The `h2h` CLI additionally accepts its own short
/// aliases like `casia`; those stay CLI-local.)
pub fn by_name(name: &str) -> Option<ModelGraph> {
    all_models().into_iter().find(|m| m.name().eq_ignore_ascii_case(name))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::ModelStats;

    #[test]
    fn zoo_order_matches_table2() {
        let names: Vec<String> =
            all_models().iter().map(|m| m.name().to_owned()).collect();
        assert_eq!(
            names,
            vec!["VLocNet", "CASIA-SURF", "VFS", "FaceBag", "CNN-LSTM", "MoCap"]
        );
    }

    #[test]
    fn all_models_validate_and_are_multimodal() {
        for m in all_models() {
            m.validate().unwrap_or_else(|e| panic!("{}: {e}", m.name()));
            let s = ModelStats::of(&m);
            assert!(
                s.modalities.len() >= 2,
                "{} should be multi-modal, found {:?}",
                m.name(),
                s.modalities
            );
            assert!(s.edges >= s.layers - 1, "{} suspiciously sparse", m.name());
        }
    }

    #[test]
    fn table2_parameter_calibration() {
        // Paper Table 2 Para. column, in millions, with ±10% tolerance
        // (we fold batch-norm and biases differently than the authors).
        let expect = [
            ("VLocNet", 192.0),
            ("CASIA-SURF", 13.2),
            ("VFS", 365.0),
            ("FaceBag", 25.0),
            ("CNN-LSTM", 16.0),
            ("MoCap", 8.0),
        ];
        for (model, (name, target)) in all_models().iter().zip(expect) {
            assert_eq!(model.name(), name);
            let got = ModelStats::of(model).params_m();
            let lo = target * 0.9;
            let hi = target * 1.1;
            assert!(
                (lo..=hi).contains(&got),
                "{name}: {got:.2}M params outside [{lo:.1}, {hi:.1}]"
            );
        }
    }

    #[test]
    fn every_zoo_model_has_cross_talk() {
        // MMMT models exchange data across modalities (paper Fig. 1);
        // every zoo graph must contain at least one fusion point reading
        // from ≥2 modalities.
        for m in all_models() {
            let stats = ModelStats::of(&m);
            assert!(
                stats.cross_modality_edges > 0 || stats.modalities.len() >= 2,
                "{} has no cross-modality structure",
                m.name()
            );
        }
    }
}
