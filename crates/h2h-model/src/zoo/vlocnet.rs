//! VLocNet (Valada et al., ICRA'18): visual localization + odometry for
//! augmented reality. ResNet-50 variants, ≈192M parameters, 141 layers
//! (paper Table 2 / §5.2).
//!
//! Reconstruction: two ResNet-50 trunks-to-stage-3 encode the previous
//! and current frame; the odometry stream concatenates both and runs its
//! own stage 4 + regression head; the global pose stream reuses the
//! current-frame trunk (hard parameter sharing, as in the original
//! paper), runs a separate stage 4, and — the auxiliary-learning
//! cross-talk — consumes the odometry head's embedding in its own
//! regressor. The giant flattened-feature FC layers carry most of the
//! 192M parameters, exactly the weight-locality pressure the H2H paper
//! exploits.

use crate::blocks::{bottleneck_block, image_input, resnet_stem};
use crate::builder::ModelBuilder;
use crate::graph::{LayerId, ModelError, ModelGraph};

/// ResNet-50 stages 1–3 (`[3, 4, 6]` bottlenecks), emitting the
/// `1024 × side/16 × side/16` feature map.
fn r50_to_stage3(
    b: &mut ModelBuilder,
    prefix: &str,
    from: LayerId,
) -> Result<LayerId, ModelError> {
    let mut x = resnet_stem(b, prefix, from, 1.0)?;
    for (stage, (mid, blocks)) in [(64u32, 3u32), (128, 4), (256, 6)].into_iter().enumerate() {
        for blk in 0..blocks {
            let stride = if stage > 0 && blk == 0 { 2 } else { 1 };
            x = bottleneck_block(b, &format!("{prefix}.s{}b{}", stage + 1, blk + 1), x, mid, stride)?;
        }
    }
    Ok(x)
}

/// ResNet-50 stage 4 (`[3]` bottlenecks at mid=512), from an arbitrary
/// input channel count.
fn r50_stage4(b: &mut ModelBuilder, prefix: &str, from: LayerId) -> Result<LayerId, ModelError> {
    let mut x = from;
    for blk in 0..3u32 {
        let stride = if blk == 0 { 2 } else { 1 };
        x = bottleneck_block(b, &format!("{prefix}.s4b{}", blk + 1), x, 512, stride)?;
    }
    Ok(x)
}

/// Builds VLocNet.
///
/// # Panics
///
/// Panics only on internal shape-rule violations, which the unit tests
/// rule out; the generator is deterministic.
pub fn vlocnet() -> ModelGraph {
    try_build().expect("vlocnet generator is shape-consistent")
}

fn try_build() -> Result<ModelGraph, ModelError> {
    let mut b = ModelBuilder::new("VLocNet");

    // Odometry modality: previous frame trunk.
    b.modality(Some("odometry"));
    let img_prev = image_input(&mut b, "img_prev", 224);
    let feat_prev = r50_to_stage3(&mut b, "odo_prev", img_prev)?;

    // Shared current-frame trunk (serves both tasks → untagged).
    b.modality(Some("pose"));
    let img_cur = image_input(&mut b, "img_cur", 224);
    b.modality(None);
    let feat_cur = r50_to_stage3(&mut b, "shared_cur", img_cur)?;

    // Odometry stream: concat(prev, cur) -> stage4 -> FC regressor.
    b.modality(Some("odometry"));
    let odo_cat = b.concat("odo.cat", &[feat_prev, feat_cur])?;
    let odo_s4 = r50_stage4(&mut b, "odo", odo_cat)?;
    let odo_fc1 = b.fc("odo.fc1", odo_s4, 448)?;
    let odo_out = b.fc("odo.fc2", odo_fc1, 6)?; // SE(3) twist

    // Global pose stream: cur trunk -> stage4 -> FC regressor that also
    // consumes the odometry embedding (auxiliary-learning cross-talk).
    b.modality(Some("pose"));
    let pose_s4 = r50_stage4(&mut b, "pose", feat_cur)?;
    let pose_cat = b.concat("pose.cat", &[pose_s4, odo_fc1])?;
    let pose_fc1 = b.fc("pose.fc1", pose_cat, 960)?;
    let pose_out = b.fc("pose.fc2", pose_fc1, 7)?; // xyz + quaternion

    let _ = (odo_out, pose_out);
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::ModelStats;

    #[test]
    fn layer_count_near_paper_141() {
        let m = vlocnet();
        let s = ModelStats::of(&m);
        assert!(
            (130..=155).contains(&s.layers),
            "VLocNet layer count {} (paper: 141)",
            s.layers
        );
    }

    #[test]
    fn params_near_192m() {
        let s = ModelStats::of(&vlocnet());
        assert!(
            (172.0..=212.0).contains(&s.params_m()),
            "VLocNet params {:.1}M (paper: 192M)",
            s.params_m()
        );
    }

    #[test]
    fn conv_dominated_with_fc_heads() {
        let s = ModelStats::of(&vlocnet());
        assert!(s.conv_layers > 90, "conv layers {}", s.conv_layers);
        assert_eq!(s.fc_layers, 4);
        assert_eq!(s.lstm_layers, 0);
    }

    #[test]
    fn has_odometry_to_pose_cross_talk() {
        let m = vlocnet();
        let s = ModelStats::of(&m);
        assert!(s.cross_modality_edges >= 1, "odometry embedding must feed pose head");
        assert_eq!(s.modalities, vec!["odometry".to_owned(), "pose".to_owned()]);
    }

    #[test]
    fn two_image_inputs() {
        let m = vlocnet();
        assert_eq!(m.sources().len(), 2);
    }
}
