//! CNN-LSTM (Li et al., arXiv:1702.01638): concurrent activity
//! recognition from video + wearable sensors. ConvNet and LSTM variants,
//! ≈16M parameters, fewer than 30 layers (paper Table 2 / §5.2).
//!
//! Reconstruction: the video branch consumes a frame-stacked clip
//! (16 frames × RGB = 48 input channels at 112×112 — the standard
//! clip-stacking approximation of a per-frame 2-D CNN) through five
//! convolutions, reinterprets the final feature map as a sequence and
//! runs a two-layer LSTM; three wearable streams (two IMUs + one EMG)
//! each run a small 1-D ConvNet and an LSTM. The early video feature
//! maps are megabytes while the whole network holds only ~15M
//! parameters, so once weights are pinned (step 2) the remaining cost is
//! dominated by activation movement — which is why the paper's Table 4
//! shows activation fusion (step 3) cutting this model's latency to a
//! third, its biggest single-step effect after VLocNet's remap.

use crate::blocks::sensor_convnet;
use crate::builder::ModelBuilder;
use crate::graph::{ModelError, ModelGraph};
use crate::tensor::TensorShape;

/// Builds CNN-LSTM.
///
/// # Panics
///
/// Panics only on internal shape-rule violations, ruled out by tests.
pub fn cnn_lstm() -> ModelGraph {
    try_build().expect("cnn-lstm generator is shape-consistent")
}

fn try_build() -> Result<ModelGraph, ModelError> {
    let mut b = ModelBuilder::new("CNN-LSTM");

    // Video stream: 16-frame stacked clip through a compact ConvNet,
    // then a stacked LSTM over the spatial-temporal feature sequence.
    b.modality(Some("video"));
    let clip = b.input("video_in", TensorShape::Feature { c: 48, h: 112, w: 112 });
    let v1 = b.conv("video.conv1", clip, 64, 3, 1)?;
    let v2 = b.conv("video.conv2", v1, 96, 3, 2)?;
    let v3 = b.conv("video.conv3", v2, 128, 3, 1)?;
    let v4 = b.conv("video.conv4", v3, 192, 3, 2)?;
    let v5 = b.conv("video.conv5", v4, 256, 3, 1)?;
    let vseq = b.to_sequence("video.seq", v5)?;
    let v_lstm = b.lstm("video.lstm", vseq, 640, 2, false)?;

    // Wearable streams: 4 s at 100 Hz.
    let mut feats = vec![v_lstm];
    for (name, channels) in [("imu_wrist", 6u32), ("imu_ankle", 6), ("emg", 8)] {
        b.modality(Some(name));
        let s_in = b.input(
            &format!("{name}_in"),
            TensorShape::Sequence { steps: 400, features: channels },
        );
        let enc = sensor_convnet(&mut b, name, s_in, &[64, 128])?;
        let s_lstm = b.lstm(&format!("{name}.lstm"), enc, 256, 1, false)?;
        feats.push(s_lstm);
    }

    // Fusion + concurrent-activity heads (multi-task: activity class and
    // intensity estimate).
    b.modality(None);
    let cat = b.concat("fuse.cat", &feats)?;
    let f1 = b.fc("fuse.fc1", cat, 2560)?;
    let f2 = b.fc("fuse.fc2", f1, 2048)?;
    b.fc("head.activity", f2, 25)?;
    b.fc("head.intensity", f2, 3)?;

    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::ModelStats;

    #[test]
    fn params_near_16m() {
        let s = ModelStats::of(&cnn_lstm());
        assert!(
            (14.4..=17.6).contains(&s.params_m()),
            "CNN-LSTM params {:.2}M (paper: 16M)",
            s.params_m()
        );
    }

    #[test]
    fn under_30_layers() {
        let s = ModelStats::of(&cnn_lstm());
        assert!(s.layers < 30, "CNN-LSTM layer count {} (paper: <30)", s.layers);
    }

    #[test]
    fn four_modalities_with_lstms() {
        let s = ModelStats::of(&cnn_lstm());
        assert_eq!(s.modalities.len(), 4);
        assert_eq!(s.lstm_layers, 4);
        assert!(s.conv_layers >= 10, "5 video + 6 sensor convs, got {}", s.conv_layers);
    }

    #[test]
    fn multi_task_heads() {
        let m = cnn_lstm();
        assert_eq!(m.sinks().len(), 2, "activity + intensity heads");
    }

    #[test]
    fn video_chain_is_activation_heavy() {
        // The video convolution edges carry megabytes; this is the
        // traffic activation fusion removes (paper Table 4 step 3).
        let m = cnn_lstm();
        let conv1 = m.layers().find(|(_, l)| l.name() == "video.conv1").unwrap().0;
        let conv2 = m.layers().find(|(_, l)| l.name() == "video.conv2").unwrap().0;
        let bytes = m.edge_bytes(conv1, conv2).unwrap();
        assert!(bytes.as_u64() > 3_000_000, "conv1->conv2 edge {bytes}");
    }
}
