//! VFS (Thuseethan et al., WI-IAT'20): visual-textual sentiment analysis
//! from web data. VGG and VD-CNN variants, ≈365M parameters — the
//! heaviest model in the zoo (paper Table 2).
//!
//! Reconstruction: three backbones (the paper notes 3–5 backbones per
//! MMMT model): a VGG-16 on the main web image, a second
//! VGG-13-variant on the detected face/salient region, and a
//! VD-CNN-style character-level text stream, fused through wide FC
//! layers. VGG-style FC heads put ~2/3 of the parameters in a handful of
//! layers, which stresses the knapsack weight-locality step.

use crate::blocks::{image_input, vdcnn_trunk, vgg16_trunk, vgg_head};
use crate::builder::ModelBuilder;
use crate::graph::{LayerId, ModelError, ModelGraph};
use crate::tensor::TensorShape;

/// VGG-13 variant trunk (two convs per stage).
fn vgg13_trunk(
    b: &mut ModelBuilder,
    prefix: &str,
    from: LayerId,
) -> Result<LayerId, ModelError> {
    let cfg: &[(u32, u32)] = &[(64, 2), (128, 2), (256, 2), (512, 2), (512, 2)];
    let mut x = from;
    for (stage, &(channels, convs)) in cfg.iter().enumerate() {
        for i in 0..convs {
            x = b.conv(&format!("{prefix}.s{}c{}", stage + 1, i + 1), x, channels, 3, 1)?;
        }
        x = b.max_pool(&format!("{prefix}.pool{}", stage + 1), x, 2, 2)?;
    }
    Ok(x)
}

/// Builds VFS.
///
/// # Panics
///
/// Panics only on internal shape-rule violations, ruled out by tests.
pub fn vfs() -> ModelGraph {
    try_build().expect("vfs generator is shape-consistent")
}

fn try_build() -> Result<ModelGraph, ModelError> {
    let mut b = ModelBuilder::new("VFS");

    // Visual stream 1: whole web image through VGG-16.
    b.modality(Some("image"));
    let img = image_input(&mut b, "img_in", 224);
    let v1 = vgg16_trunk(&mut b, "vgg16", img, 1.0)?;
    let v1_head = vgg_head(&mut b, "vgg16.head", v1, 4096, 1024)?;

    // Visual stream 2: salient/face region through a VGG-13 variant.
    b.modality(Some("region"));
    let region = image_input(&mut b, "region_in", 224);
    let v2 = vgg13_trunk(&mut b, "vgg13", region)?;
    let v2_fc1 = b.fc("vgg13.fc1", v2, 4096)?;
    let v2_head = b.fc("vgg13.fc2", v2_fc1, 1024)?;

    // Text stream: character-level VD-CNN (depth 29 flavour: 4 blocks
    // per stage → 2 convs each + downsampling).
    b.modality(Some("text"));
    let text = b.input("text_in", TensorShape::Sequence { steps: 1024, features: 16 });
    let t = vdcnn_trunk(&mut b, "vdcnn", text, 1.0, 3)?;
    let t_fc1 = b.fc("vdcnn.fc1", t, 2048)?;
    let t_head = b.fc("vdcnn.fc2", t_fc1, 1024)?;

    // Fusion head.
    b.modality(None);
    let cat = b.concat("fuse.cat", &[v1_head, v2_head, t_head])?;
    let f1 = b.fc("fuse.fc1", cat, 4096)?;
    let f2 = b.fc("fuse.fc2", f1, 4096)?;
    b.fc("fuse.out", f2, 3)?; // positive / neutral / negative

    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::ModelStats;

    #[test]
    fn params_near_365m() {
        let s = ModelStats::of(&vfs());
        assert!(
            (328.0..=402.0).contains(&s.params_m()),
            "VFS params {:.1}M (paper: 365M)",
            s.params_m()
        );
    }

    #[test]
    fn three_backbones_three_modalities() {
        let s = ModelStats::of(&vfs());
        assert_eq!(
            s.modalities,
            vec!["image".to_owned(), "region".to_owned(), "text".to_owned()]
        );
        assert_eq!(vfs().sources().len(), 3);
    }

    #[test]
    fn fc_layers_carry_most_parameters() {
        let m = vfs();
        let fc_params: u64 = m
            .layers()
            .filter(|(_, l)| l.class() == crate::layer::LayerClass::Fc)
            .map(|(_, l)| l.weight_elems())
            .sum();
        assert!(
            fc_params * 2 > m.param_count(),
            "FC layers should hold > half the parameters ({fc_params} of {})",
            m.param_count()
        );
    }

    #[test]
    fn text_stream_is_conv1d() {
        let m = vfs();
        let embed = m
            .layers()
            .find(|(_, l)| l.name() == "vdcnn.embed")
            .expect("vdcnn embed layer")
            .1;
        match embed.op() {
            crate::layer::LayerOp::Conv(p) => {
                assert_eq!(p.kernel_w, 1, "text convs are K×1");
                assert_eq!(p.kernel_h, 3);
            }
            other => panic!("unexpected op {other:?}"),
        }
    }
}
