//! CASIA-SURF (Zhang et al., CVPR'19; spelled "CASUA-SURF" in the H2H
//! paper): multi-modal face anti-spoofing over RGB + Depth + IR streams.
//! ResNet-18 variants, ≈13.2M parameters (paper Table 2).
//!
//! Reconstruction: three half-width ResNet-18 branches (one per imaging
//! modality) fused at two scales — after stage 3 (squeeze-and-fuse, as
//! in the original's multi-scale fusion) and after stage 4 — followed by
//! a shared classification trunk.

use crate::blocks::{basic_block, image_input, resnet_stem, scale_channels};
use crate::builder::ModelBuilder;
use crate::graph::{LayerId, ModelError, ModelGraph};

const WIDTH: f64 = 0.5;

/// Half-width ResNet-18 trunk split at stage 3 so the fusion points can
/// tap both scales. Returns `(stage3_out, stage4_out)`.
fn branch(
    b: &mut ModelBuilder,
    prefix: &str,
    from: LayerId,
) -> Result<(LayerId, LayerId), ModelError> {
    let mut x = resnet_stem(b, prefix, from, WIDTH)?;
    for (stage, channels) in [64u32, 128, 256].into_iter().enumerate() {
        let c = scale_channels(channels, WIDTH);
        for blk in 0..2u32 {
            let stride = if stage > 0 && blk == 0 { 2 } else { 1 };
            x = basic_block(b, &format!("{prefix}.s{}b{}", stage + 1, blk + 1), x, c, stride)?;
        }
    }
    let stage3 = x;
    let c4 = scale_channels(512, WIDTH);
    let mut y = stage3;
    for blk in 0..2u32 {
        let stride = if blk == 0 { 2 } else { 1 };
        y = basic_block(b, &format!("{prefix}.s4b{}", blk + 1), y, c4, stride)?;
    }
    Ok((stage3, y))
}

/// Builds CASIA-SURF.
///
/// # Panics
///
/// Panics only on internal shape-rule violations, ruled out by tests.
pub fn casia_surf() -> ModelGraph {
    try_build().expect("casia-surf generator is shape-consistent")
}

fn try_build() -> Result<ModelGraph, ModelError> {
    let mut b = ModelBuilder::new("CASIA-SURF");

    let mut mids = Vec::new();
    let mut lates = Vec::new();
    for modality in ["rgb", "depth", "ir"] {
        b.modality(Some(modality));
        let input = image_input(&mut b, &format!("{modality}_in"), 112);
        let (s3, s4) = branch(&mut b, modality, input)?;
        mids.push(s3);
        lates.push(s4);
    }

    // Shared fusion trunk (untagged).
    b.modality(None);
    // Mid-level fusion: concat stage-3 maps, squeeze, then downsample to
    // stage-4 scale.
    let mid_cat = b.concat("fuse.mid_cat", &mids)?;
    let mid_sq = b.conv("fuse.mid_squeeze", mid_cat, scale_channels(256, WIDTH), 1, 1)?;
    let mid_down = b.conv("fuse.mid_down", mid_sq, scale_channels(512, WIDTH), 3, 2)?;

    // Late fusion: concat stage-4 maps with the fused mid-level path.
    let mut late_inputs = lates.clone();
    late_inputs.push(mid_down);
    let late_cat = b.concat("fuse.late_cat", &late_inputs)?;
    let fused = b.conv("fuse.late_conv", late_cat, 512, 3, 1)?;
    let gap = b.global_pool("fuse.gap", fused)?;
    let fc1 = b.fc("head.fc1", gap, 512)?;
    b.fc("head.fc2", fc1, 2)?; // live / spoof

    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::ModelStats;

    #[test]
    fn params_near_13_2m() {
        let s = ModelStats::of(&casia_surf());
        assert!(
            (11.8..=14.6).contains(&s.params_m()),
            "CASIA-SURF params {:.2}M (paper: 13.2M)",
            s.params_m()
        );
    }

    #[test]
    fn three_modalities() {
        let s = ModelStats::of(&casia_surf());
        assert_eq!(
            s.modalities,
            vec!["depth".to_owned(), "ir".to_owned(), "rgb".to_owned()]
        );
        assert_eq!(casia_surf().sources().len(), 3);
    }

    #[test]
    fn pure_cnn_model() {
        let s = ModelStats::of(&casia_surf());
        assert_eq!(s.lstm_layers, 0);
        assert_eq!(s.fc_layers, 2);
        assert!(s.conv_layers >= 60, "conv layers {}", s.conv_layers);
    }

    #[test]
    fn dropping_a_modality_keeps_fusion_trunk() {
        let m = casia_surf();
        let sub = m.retain_modalities(&["rgb", "depth"]);
        sub.validate().unwrap();
        let s = ModelStats::of(&sub);
        assert_eq!(s.modalities, vec!["depth".to_owned(), "rgb".to_owned()]);
        // Fusion layers (untagged) survive.
        assert!(sub.layers().any(|(_, l)| l.name() == "fuse.late_cat"));
    }
}
