//! MoCap (Tripathi et al., arXiv:1804.05788): multi-modal emotion
//! recognition on IEMOCAP — motion-capture, speech and text streams.
//! Convolution and LSTM units, ≈8M parameters, fewer than 30 layers
//! (paper Table 2 / §5.2).
//!
//! Reconstruction: IEMOCAP dialogues run minutes, so the motion-capture
//! and speech streams arrive as very long frame sequences. Their 1-D
//! convolutional frontends *expand* the channel dimension (64→512)
//! before temporal pooling, so the first intermediate activation of each
//! stream is ~50 MB against a total weight footprint of ~30 MB — the
//! communication-dominated extreme of the zoo. The H2H paper reports the
//! matching signature: a computation share of only 21% before mapping
//! rising to 94% after (Fig. 5a), and the largest end-to-end gain
//! (≈74%, Table 4).

use crate::builder::ModelBuilder;
use crate::graph::{ModelError, ModelGraph};
use crate::tensor::TensorShape;

/// Builds MoCap.
///
/// # Panics
///
/// Panics only on internal shape-rule violations, ruled out by tests.
pub fn mocap() -> ModelGraph {
    try_build().expect("mocap generator is shape-consistent")
}

fn try_build() -> Result<ModelGraph, ModelError> {
    let mut b = ModelBuilder::new("MoCap");

    // Motion-capture stream: 4 min at 100 Hz, 64-d marker/rotation frame.
    b.modality(Some("mocap"));
    let mc = b.input("mocap_in", TensorShape::Sequence { steps: 24_000, features: 64 });
    let mc1 = b.conv1d("mocap.conv1", mc, 512, 5, 1)?;
    let mc2 = b.conv1d("mocap.conv2", mc1, 128, 5, 4)?;
    let mc_lstm = b.lstm("mocap.lstm", mc2, 256, 1, false)?;

    // Speech stream: frame-level spectral features at the same rate.
    b.modality(Some("speech"));
    let sp = b.input("speech_in", TensorShape::Sequence { steps: 24_000, features: 32 });
    let sp1 = b.conv1d("speech.conv1", sp, 512, 5, 1)?;
    let sp2 = b.conv1d("speech.conv2", sp1, 128, 5, 4)?;
    let sp_lstm = b.lstm("speech.lstm", sp2, 256, 1, false)?;

    // Text stream: transcribed dialogue, 300-d word embeddings.
    b.modality(Some("text"));
    let tx = b.input("text_in", TensorShape::Sequence { steps: 2_000, features: 300 });
    let tx_lstm = b.lstm("text.lstm", tx, 256, 2, false)?;

    // Fusion and emotion head.
    b.modality(None);
    let cat = b.concat("fuse.cat", &[mc_lstm, sp_lstm, tx_lstm])?;
    let f1 = b.fc("fuse.fc1", cat, 3072)?;
    let f2 = b.fc("fuse.fc2", f1, 768)?;
    b.fc("head.emotion", f2, 4)?; // angry / happy / sad / neutral

    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::ModelStats;
    use crate::units::Bytes;

    #[test]
    fn params_near_8m() {
        let s = ModelStats::of(&mocap());
        assert!(
            (7.2..=8.8).contains(&s.params_m()),
            "MoCap params {:.2}M (paper: 8M)",
            s.params_m()
        );
    }

    #[test]
    fn under_30_layers() {
        let s = ModelStats::of(&mocap());
        assert!(s.layers < 30, "MoCap layer count {} (paper: <30)", s.layers);
    }

    #[test]
    fn activations_dwarf_weights() {
        // The communication-dominated regime: total activation traffic
        // must exceed the full weight footprint by a wide margin.
        let s = ModelStats::of(&mocap());
        assert!(
            s.activation_bytes > Bytes::new(s.weight_bytes.as_u64() * 3),
            "activations {} vs weights {}",
            s.activation_bytes,
            s.weight_bytes
        );
    }

    #[test]
    fn inputs_are_small_relative_to_internal_edges() {
        // The big transfers must be *internal* (optimizable by fusion),
        // not raw inputs (which always cross Ethernet once).
        let m = mocap();
        let input_bytes: u64 = m
            .sources()
            .iter()
            .flat_map(|s| m.successors(*s).map(|t| m.edge_bytes(*s, t).unwrap().as_u64()))
            .sum();
        let total: u64 = m.edges().map(|(_, _, e)| e.bytes().as_u64()).sum();
        assert!(
            input_bytes * 4 < total,
            "inputs {input_bytes} should be <25% of total activation traffic {total}"
        );
    }

    #[test]
    fn three_modalities_conv_plus_lstm() {
        let s = ModelStats::of(&mocap());
        assert_eq!(
            s.modalities,
            vec!["mocap".to_owned(), "speech".to_owned(), "text".to_owned()]
        );
        assert_eq!(s.lstm_layers, 3);
        assert_eq!(s.conv_layers, 4);
    }
}
