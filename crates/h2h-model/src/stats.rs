//! Aggregate model statistics (layer census, parameter and compute
//! volume), used by the zoo calibration tests and the reporting harness.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::graph::ModelGraph;
use crate::layer::LayerClass;
use crate::tensor::DataType;
use crate::units::{Bytes, Macs};

/// A census of a model graph.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelStats {
    /// Model name.
    pub name: String,
    /// Total layer count (all vertices, including aux ops).
    pub layers: usize,
    /// Convolution layer count.
    pub conv_layers: usize,
    /// FC layer count.
    pub fc_layers: usize,
    /// LSTM layer count.
    pub lstm_layers: usize,
    /// Auxiliary op count (inputs, pools, adds, concats).
    pub aux_layers: usize,
    /// Edge count.
    pub edges: usize,
    /// Trainable parameters.
    pub params: u64,
    /// Total compute volume.
    pub macs: Macs,
    /// Total weight bytes at F32.
    pub weight_bytes: Bytes,
    /// Sum of all edge activation volumes at F32.
    pub activation_bytes: Bytes,
    /// Edges that cross modality boundaries (MMMT cross-talk).
    pub cross_modality_edges: usize,
    /// Distinct modalities.
    pub modalities: Vec<String>,
}

impl ModelStats {
    /// Computes the census for `model`.
    pub fn of(model: &ModelGraph) -> Self {
        let mut conv = 0;
        let mut fc = 0;
        let mut lstm = 0;
        let mut aux = 0;
        for (_, l) in model.layers() {
            match l.class() {
                LayerClass::Conv => conv += 1,
                LayerClass::Fc => fc += 1,
                LayerClass::Lstm => lstm += 1,
                LayerClass::Aux => aux += 1,
            }
        }
        let weight_bytes = model
            .layers()
            .map(|(_, l)| l.weight_bytes(DataType::F32))
            .sum();
        let activation_bytes = model.edges().map(|(_, _, e)| e.bytes()).sum();
        let cross_modality_edges = model
            .edges()
            .filter(|(a, b, _)| {
                let ma = model.layer(*a).modality();
                let mb = model.layer(*b).modality();
                ma.is_some() && mb.is_some() && ma != mb
            })
            .count();
        ModelStats {
            name: model.name().to_owned(),
            layers: model.num_layers(),
            conv_layers: conv,
            fc_layers: fc,
            lstm_layers: lstm,
            aux_layers: aux,
            edges: model.num_edges(),
            params: model.param_count(),
            macs: model.total_macs(),
            weight_bytes,
            activation_bytes,
            cross_modality_edges,
            modalities: model.modalities(),
        }
    }

    /// Parameters in millions (the unit of Table 2's `Para.` column).
    pub fn params_m(&self) -> f64 {
        self.params as f64 / 1e6
    }
}

impl fmt::Display for ModelStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{}: {} layers ({} conv / {} fc / {} lstm / {} aux), {} edges",
            self.name, self.layers, self.conv_layers, self.fc_layers, self.lstm_layers,
            self.aux_layers, self.edges
        )?;
        write!(
            f,
            "  {:.1}M params ({}), {}, activations {}, {} modalities, {} cross-talk edges",
            self.params_m(),
            self.weight_bytes,
            self.macs,
            self.activation_bytes,
            self.modalities.len(),
            self.cross_modality_edges
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ModelBuilder;
    use crate::tensor::TensorShape;

    #[test]
    fn stats_census_counts_classes() {
        let mut b = ModelBuilder::new("census");
        b.modality(Some("a"));
        let ia = b.input("ia", TensorShape::Feature { c: 3, h: 32, w: 32 });
        let ca = b.conv("ca", ia, 16, 3, 1).unwrap();
        let ga = b.global_pool("gpa", ca).unwrap();
        b.modality(Some("v"));
        let iv = b.input("iv", TensorShape::Sequence { steps: 16, features: 8 });
        let lv = b.lstm("lv", iv, 32, 1, false).unwrap();
        b.modality(None);
        let cat = b.concat("fuse", &[ga, lv]).unwrap();
        b.fc("head", cat, 4).unwrap();
        let m = b.finish().unwrap();
        let s = ModelStats::of(&m);
        assert_eq!(s.layers, 7);
        assert_eq!(s.conv_layers, 1);
        assert_eq!(s.fc_layers, 1);
        assert_eq!(s.lstm_layers, 1);
        assert_eq!(s.aux_layers, 4);
        assert_eq!(s.modalities, vec!["a".to_owned(), "v".to_owned()]);
        assert_eq!(s.cross_modality_edges, 0);
        assert_eq!(s.params, m.param_count());
        let shown = format!("{s}");
        assert!(shown.contains("census"));
    }

    #[test]
    fn cross_modality_edges_detected() {
        let mut b = ModelBuilder::new("xtalk");
        b.modality(Some("a"));
        let ia = b.input("ia", TensorShape::Vector { features: 8 });
        let fa = b.fc("fa", ia, 8).unwrap();
        b.modality(Some("v"));
        let iv = b.input("iv", TensorShape::Vector { features: 8 });
        // Cross-talk: modality "v" layer consumes modality "a" output.
        let xt = b.add("xadd", &[fa, iv]).unwrap();
        let m = b.finish().unwrap();
        let s = ModelStats::of(&m);
        assert_eq!(s.cross_modality_edges, 1, "fa(a) -> xadd(v)");
        let _ = xt;
    }
}
