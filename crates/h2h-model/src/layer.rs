//! Layer formalism: the vertex payload of the heterogeneous model graph.
//!
//! Mirrors the paper's Table 1:
//!
//! | Acc type | parameters | meaning |
//! |----------|------------|---------|
//! | Conv | `<N, M, R, C, K, S>` | ofm channels, ifm channels, ofm height, ofm width, kernel, stride |
//! | FC   | `<N, M>` | in features, out features |
//! | LSTM | `<N, H, L>` | in size, hidden size, layers |
//!
//! plus the auxiliary glue ops (pooling, residual add, concatenation,
//! model inputs) that real MMMT graphs need. Auxiliary ops carry no
//! weights and negligible compute; they can execute on any accelerator.

use serde::{Deserialize, Serialize};

use crate::tensor::{DataType, TensorShape};
use crate::units::{Bytes, Macs};

/// Convolution layer parameters `<N, M, R, C, K, S>` (Table 1).
///
/// Table 1 uses a single square kernel size `K`; this struct keeps the
/// height/width extents separate so that the 1-D convolutions in text and
/// speech backbones (VD-CNN in VFS, the MoCap speech stream) are counted
/// correctly (`K×1` kernels). For 2-D convs use [`ConvParams::square`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ConvParams {
    /// `N`: output channels.
    pub out_channels: u32,
    /// `M`: input channels.
    pub in_channels: u32,
    /// `R`: output height.
    pub out_h: u32,
    /// `C`: output width.
    pub out_w: u32,
    /// Kernel extent along the height axis.
    pub kernel_h: u32,
    /// Kernel extent along the width axis (`1` for 1-D convolutions).
    pub kernel_w: u32,
    /// `S`: stride.
    pub stride: u32,
}

impl ConvParams {
    /// Standard square-kernel 2-D convolution (`K = kernel_h = kernel_w`).
    pub fn square(out_channels: u32, in_channels: u32, out_h: u32, out_w: u32, k: u32, s: u32) -> Self {
        ConvParams {
            out_channels,
            in_channels,
            out_h,
            out_w,
            kernel_h: k,
            kernel_w: k,
            stride: s,
        }
    }

    /// True for square `K×K` kernels of size `k` (dataflow specialization
    /// checks, e.g. Winograd only accelerates 3×3 stride-1 convs).
    pub fn is_square(&self, k: u32) -> bool {
        self.kernel_h == k && self.kernel_w == k
    }

    /// MAC count: `N·M·R·C·Kh·Kw`.
    pub fn macs(&self) -> Macs {
        Macs::new(
            self.out_channels as u64
                * self.in_channels as u64
                * self.out_h as u64
                * self.out_w as u64
                * self.kernel_h as u64
                * self.kernel_w as u64,
        )
    }

    /// Weight element count: `N·M·Kh·Kw + N` (bias).
    pub fn weight_elems(&self) -> u64 {
        self.out_channels as u64
            * self.in_channels as u64
            * self.kernel_h as u64
            * self.kernel_w as u64
            + self.out_channels as u64
    }

    /// Output feature-map shape.
    pub fn ofm_shape(&self) -> TensorShape {
        TensorShape::Feature { c: self.out_channels, h: self.out_h, w: self.out_w }
    }
}

/// Fully-connected layer parameters `<N, M>` (Table 1: in, out features).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct FcParams {
    /// `N`: input features.
    pub in_features: u32,
    /// `M`: output features.
    pub out_features: u32,
}

impl FcParams {
    /// MAC count: `N·M`.
    pub fn macs(&self) -> Macs {
        Macs::new(self.in_features as u64 * self.out_features as u64)
    }

    /// Weight element count: `N·M + M` (bias).
    pub fn weight_elems(&self) -> u64 {
        self.in_features as u64 * self.out_features as u64 + self.out_features as u64
    }

    /// Output shape.
    pub fn ofm_shape(&self) -> TensorShape {
        TensorShape::Vector { features: self.out_features }
    }
}

/// LSTM stack parameters `<N, H, L>` (Table 1) plus the sequence length
/// needed to turn the recurrence into a compute volume.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct LstmParams {
    /// `N`: input feature size.
    pub in_size: u32,
    /// `H`: hidden size.
    pub hidden: u32,
    /// `L`: stacked layers.
    pub layers: u32,
    /// `T`: sequence length processed per inference.
    pub seq_len: u32,
    /// Whether the full output sequence (`T×H`) or only the final hidden
    /// state (`H`) is emitted.
    pub return_sequences: bool,
}

impl LstmParams {
    /// Weight element count: four gates per layer, input + recurrent +
    /// bias: `4·(N·H + H² + H)` for layer 0, `4·(H² + H² + H)` after.
    pub fn weight_elems(&self) -> u64 {
        let n = self.in_size as u64;
        let h = self.hidden as u64;
        let first = 4 * (n * h + h * h + h);
        let rest = 4 * (2 * h * h + h);
        first + rest * (self.layers as u64).saturating_sub(1)
    }

    /// MAC count: weights (minus biases) applied once per time step.
    pub fn macs(&self) -> Macs {
        let n = self.in_size as u64;
        let h = self.hidden as u64;
        let first = 4 * (n * h + h * h);
        let rest = 4 * (2 * h * h);
        let per_step = first + rest * (self.layers as u64).saturating_sub(1);
        Macs::new(per_step * self.seq_len as u64)
    }

    /// Output shape.
    pub fn ofm_shape(&self) -> TensorShape {
        if self.return_sequences {
            TensorShape::Sequence { steps: self.seq_len, features: self.hidden }
        } else {
            TensorShape::Vector { features: self.hidden }
        }
    }
}

/// Pooling flavour.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PoolKind {
    /// Max pooling.
    Max,
    /// Average pooling.
    Avg,
}

/// Pooling layer over spatial feature maps.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct PoolParams {
    /// Pooling window.
    pub kernel: u32,
    /// Stride.
    pub stride: u32,
    /// Max or average.
    pub kind: PoolKind,
    /// Channels (pass-through).
    pub channels: u32,
    /// Output height.
    pub out_h: u32,
    /// Output width.
    pub out_w: u32,
}

impl PoolParams {
    /// Comparison/add count — bookkept as MACs for uniformity.
    pub fn macs(&self) -> Macs {
        Macs::new(
            self.channels as u64
                * self.out_h as u64
                * self.out_w as u64
                * (self.kernel as u64).pow(2),
        )
    }

    /// Output shape.
    pub fn ofm_shape(&self) -> TensorShape {
        TensorShape::Feature { c: self.channels, h: self.out_h, w: self.out_w }
    }
}

/// The operation computed by a layer vertex.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LayerOp {
    /// A model input: zero compute, emits the raw modality tensor (which
    /// always streams in from the host over Ethernet).
    Input {
        /// The tensor this input produces.
        shape: TensorShape,
    },
    /// Convolution (Table 1 `<N,M,R,C,K,S>`).
    Conv(ConvParams),
    /// Fully connected (Table 1 `<N,M>`).
    Fc(FcParams),
    /// LSTM stack (Table 1 `<N,H,L>` + sequence length).
    Lstm(LstmParams),
    /// Spatial pooling.
    Pool(PoolParams),
    /// Global average pooling: `C×H×W → C`.
    GlobalPool {
        /// Input channels (= output features).
        channels: u32,
        /// Input height.
        in_h: u32,
        /// Input width.
        in_w: u32,
    },
    /// Elementwise residual addition of equal-shaped tensors.
    Add {
        /// Shape of all inputs and the output.
        shape: TensorShape,
    },
    /// Feature concatenation (modality fusion point).
    Concat {
        /// Resulting concatenated shape.
        out: TensorShape,
    },
}

/// Coarse layer classification used for accelerator capability matching.
///
/// Matches the paper's three accelerator types; `Aux` covers the glue ops
/// every accelerator can execute (pool/add/concat/input).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LayerClass {
    /// Convolution.
    Conv,
    /// Fully connected.
    Fc,
    /// Recurrent (LSTM).
    Lstm,
    /// Auxiliary glue (pooling, add, concat, inputs).
    Aux,
}

impl LayerOp {
    /// Classification for accelerator capability checks.
    pub fn class(&self) -> LayerClass {
        match self {
            LayerOp::Conv(_) => LayerClass::Conv,
            LayerOp::Fc(_) => LayerClass::Fc,
            LayerOp::Lstm(_) => LayerClass::Lstm,
            LayerOp::Input { .. }
            | LayerOp::Pool(_)
            | LayerOp::GlobalPool { .. }
            | LayerOp::Add { .. }
            | LayerOp::Concat { .. } => LayerClass::Aux,
        }
    }

    /// MAC volume of the op.
    pub fn macs(&self) -> Macs {
        match self {
            LayerOp::Conv(p) => p.macs(),
            LayerOp::Fc(p) => p.macs(),
            LayerOp::Lstm(p) => p.macs(),
            LayerOp::Pool(p) => p.macs(),
            LayerOp::GlobalPool { channels, in_h, in_w } => {
                Macs::new(*channels as u64 * *in_h as u64 * *in_w as u64)
            }
            LayerOp::Add { shape } => Macs::new(shape.elements()),
            LayerOp::Concat { .. } | LayerOp::Input { .. } => Macs::ZERO,
        }
    }

    /// Weight element count (zero for all auxiliary ops).
    pub fn weight_elems(&self) -> u64 {
        match self {
            LayerOp::Conv(p) => p.weight_elems(),
            LayerOp::Fc(p) => p.weight_elems(),
            LayerOp::Lstm(p) => p.weight_elems(),
            _ => 0,
        }
    }

    /// Output tensor shape.
    pub fn ofm_shape(&self) -> TensorShape {
        match self {
            LayerOp::Input { shape } => *shape,
            LayerOp::Conv(p) => p.ofm_shape(),
            LayerOp::Fc(p) => p.ofm_shape(),
            LayerOp::Lstm(p) => p.ofm_shape(),
            LayerOp::Pool(p) => p.ofm_shape(),
            LayerOp::GlobalPool { channels, .. } => TensorShape::Vector { features: *channels },
            LayerOp::Add { shape } => *shape,
            LayerOp::Concat { out } => *out,
        }
    }
}

/// A vertex of the heterogeneous model graph: a named, modality-tagged op.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Layer {
    name: String,
    op: LayerOp,
    modality: Option<String>,
}

impl Layer {
    /// Creates a layer with no modality tag.
    pub fn new(name: impl Into<String>, op: LayerOp) -> Self {
        Layer { name: name.into(), op, modality: None }
    }

    /// Creates a layer tagged with the modality (sub-network) it belongs
    /// to; used by the dynamic-modality extension (paper §4.5).
    pub fn with_modality(name: impl Into<String>, op: LayerOp, modality: impl Into<String>) -> Self {
        Layer { name: name.into(), op, modality: Some(modality.into()) }
    }

    /// Layer name (unique within a model by construction in the builder).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The operation.
    pub fn op(&self) -> &LayerOp {
        &self.op
    }

    /// The modality tag, if any.
    pub fn modality(&self) -> Option<&str> {
        self.modality.as_deref()
    }

    /// Classification for accelerator capability checks.
    pub fn class(&self) -> LayerClass {
        self.op.class()
    }

    /// MAC volume.
    pub fn macs(&self) -> Macs {
        self.op.macs()
    }

    /// Weight element count.
    pub fn weight_elems(&self) -> u64 {
        self.op.weight_elems()
    }

    /// Weight byte volume at `dtype` precision.
    pub fn weight_bytes(&self, dtype: DataType) -> Bytes {
        Bytes::new(self.weight_elems() * dtype.bytes_per_elem())
    }

    /// Output feature-map shape.
    pub fn ofm_shape(&self) -> TensorShape {
        self.op.ofm_shape()
    }

    /// Output feature-map byte volume at `dtype` precision.
    pub fn ofm_bytes(&self, dtype: DataType) -> Bytes {
        self.ofm_shape().bytes(dtype)
    }

    /// True for layers that carry trainable weights.
    pub fn has_weights(&self) -> bool {
        self.weight_elems() > 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn conv() -> ConvParams {
        ConvParams::square(64, 3, 112, 112, 7, 2)
    }

    #[test]
    fn conv_macs_and_weights() {
        let p = conv();
        assert_eq!(p.macs().as_u64(), 64 * 3 * 112 * 112 * 49);
        assert_eq!(p.weight_elems(), 64 * 3 * 49 + 64);
        assert_eq!(p.ofm_shape(), TensorShape::Feature { c: 64, h: 112, w: 112 });
    }

    #[test]
    fn conv1d_counts_linear_kernel() {
        let p = ConvParams {
            out_channels: 128,
            in_channels: 64,
            out_h: 100,
            out_w: 1,
            kernel_h: 3,
            kernel_w: 1,
            stride: 1,
        };
        assert_eq!(p.macs().as_u64(), 128 * 64 * 100 * 3);
        assert_eq!(p.weight_elems(), 128 * 64 * 3 + 128);
        assert!(!p.is_square(3));
        assert!(conv().is_square(7));
    }

    #[test]
    fn fc_macs_and_weights() {
        let p = FcParams { in_features: 2048, out_features: 1000 };
        assert_eq!(p.macs().as_u64(), 2048 * 1000);
        assert_eq!(p.weight_elems(), 2048 * 1000 + 1000);
    }

    #[test]
    fn lstm_weight_formula() {
        // Single layer: 4*(N*H + H^2 + H).
        let p = LstmParams { in_size: 128, hidden: 256, layers: 1, seq_len: 10, return_sequences: true };
        assert_eq!(p.weight_elems(), 4 * (128 * 256 + 256 * 256 + 256));
        // Two layers add 4*(2H^2 + H).
        let p2 = LstmParams { layers: 2, ..p };
        assert_eq!(
            p2.weight_elems(),
            4 * (128 * 256 + 256 * 256 + 256) + 4 * (2 * 256 * 256 + 256)
        );
    }

    #[test]
    fn lstm_macs_scale_with_seq_len() {
        let p = LstmParams { in_size: 64, hidden: 64, layers: 1, seq_len: 1, return_sequences: false };
        let p10 = LstmParams { seq_len: 10, ..p };
        assert_eq!(p10.macs().as_u64(), 10 * p.macs().as_u64());
    }

    #[test]
    fn lstm_output_shape_follows_return_sequences() {
        let p = LstmParams { in_size: 64, hidden: 32, layers: 1, seq_len: 7, return_sequences: true };
        assert_eq!(p.ofm_shape(), TensorShape::Sequence { steps: 7, features: 32 });
        let p2 = LstmParams { return_sequences: false, ..p };
        assert_eq!(p2.ofm_shape(), TensorShape::Vector { features: 32 });
    }

    #[test]
    fn aux_ops_have_no_weights() {
        let add = LayerOp::Add { shape: TensorShape::Vector { features: 10 } };
        assert_eq!(add.weight_elems(), 0);
        assert_eq!(add.class(), LayerClass::Aux);
        let cat = LayerOp::Concat { out: TensorShape::Vector { features: 10 } };
        assert_eq!(cat.macs(), Macs::ZERO);
        let inp = LayerOp::Input { shape: TensorShape::Vector { features: 10 } };
        assert_eq!(inp.class(), LayerClass::Aux);
    }

    #[test]
    fn layer_byte_accessors() {
        let l = Layer::with_modality("c1", LayerOp::Conv(conv()), "rgb");
        assert_eq!(l.modality(), Some("rgb"));
        assert_eq!(l.weight_bytes(DataType::F32).as_u64(), (64 * 3 * 49 + 64) * 4);
        assert!(l.has_weights());
        assert_eq!(l.ofm_bytes(DataType::F32).as_u64(), 64 * 112 * 112 * 4);
        assert_eq!(l.class(), LayerClass::Conv);
    }

    #[test]
    fn global_pool_shape() {
        let op = LayerOp::GlobalPool { channels: 512, in_h: 7, in_w: 7 };
        assert_eq!(op.ofm_shape(), TensorShape::Vector { features: 512 });
        assert_eq!(op.macs().as_u64(), 512 * 49);
    }
}
