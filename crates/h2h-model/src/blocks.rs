//! Reusable backbone generators for the MMMT model zoo.
//!
//! The paper's six models (Table 2) are built from ResNet-18/50, VGG,
//! VD-CNN and ConvNet+LSTM variants. These helpers emit those backbones
//! through a [`ModelBuilder`], parameterized by a channel-width multiplier
//! so the zoo generators can calibrate total parameter counts to the
//! figures the paper reports.

use crate::builder::ModelBuilder;
use crate::graph::{LayerId, ModelError};
use crate::tensor::TensorShape;

/// Scales a channel count by `width`, staying ≥ 8 and 8-aligned (hardware
/// friendly channel counts).
pub fn scale_channels(c: u32, width: f64) -> u32 {
    let scaled = (c as f64 * width).round() as u32;
    scaled.max(8).div_ceil(8) * 8
}

/// ResNet stem: 7×7 stride-2 convolution + 3×3 stride-2 max pool.
///
/// # Errors
///
/// Propagates shape errors from the builder (input must be spatial).
pub fn resnet_stem(
    b: &mut ModelBuilder,
    prefix: &str,
    from: LayerId,
    width: f64,
) -> Result<LayerId, ModelError> {
    let c = b.conv(&format!("{prefix}.stem"), from, scale_channels(64, width), 7, 2)?;
    b.max_pool(&format!("{prefix}.stem_pool"), c, 3, 2)
}

/// A ResNet *basic* block (two 3×3 convs + identity/projection skip).
///
/// # Errors
///
/// Propagates shape errors from the builder.
pub fn basic_block(
    b: &mut ModelBuilder,
    prefix: &str,
    from: LayerId,
    out_channels: u32,
    stride: u32,
) -> Result<LayerId, ModelError> {
    let c1 = b.conv(&format!("{prefix}.conv1"), from, out_channels, 3, stride)?;
    let c2 = b.conv(&format!("{prefix}.conv2"), c1, out_channels, 3, 1)?;
    let skip = if b.shape(from).same_as(&b.shape(c2)) {
        from
    } else {
        b.conv(&format!("{prefix}.proj"), from, out_channels, 1, stride)?
    };
    b.add(&format!("{prefix}.add"), &[c2, skip])
}

/// A ResNet *bottleneck* block (1×1 reduce, 3×3, 1×1 expand ×4 + skip).
///
/// # Errors
///
/// Propagates shape errors from the builder.
pub fn bottleneck_block(
    b: &mut ModelBuilder,
    prefix: &str,
    from: LayerId,
    mid_channels: u32,
    stride: u32,
) -> Result<LayerId, ModelError> {
    let out_channels = mid_channels * 4;
    let c1 = b.conv(&format!("{prefix}.conv1"), from, mid_channels, 1, 1)?;
    let c2 = b.conv(&format!("{prefix}.conv2"), c1, mid_channels, 3, stride)?;
    let c3 = b.conv(&format!("{prefix}.conv3"), c2, out_channels, 1, 1)?;
    let skip = if b.shape(from).same_as(&b.shape(c3)) {
        from
    } else {
        b.conv(&format!("{prefix}.proj"), from, out_channels, 1, stride)?
    };
    b.add(&format!("{prefix}.add"), &[c3, skip])
}

/// ResNet-18 trunk: stem + 4 stages of 2 basic blocks. Emits the final
/// spatial feature map (`512·width × H/32 × W/32`).
///
/// # Errors
///
/// Propagates shape errors from the builder.
pub fn resnet18_trunk(
    b: &mut ModelBuilder,
    prefix: &str,
    from: LayerId,
    width: f64,
) -> Result<LayerId, ModelError> {
    let mut x = resnet_stem(b, prefix, from, width)?;
    for (stage, (channels, blocks)) in [(64u32, 2u32), (128, 2), (256, 2), (512, 2)]
        .into_iter()
        .enumerate()
    {
        let c = scale_channels(channels, width);
        for blk in 0..blocks {
            let stride = if stage > 0 && blk == 0 { 2 } else { 1 };
            x = basic_block(b, &format!("{prefix}.s{}b{}", stage + 1, blk + 1), x, c, stride)?;
        }
    }
    Ok(x)
}

/// ResNet-50 trunk: stem + bottleneck stages `[3, 4, 6, 3]`. Emits the
/// final spatial feature map (`2048·width × H/32 × W/32`).
///
/// # Errors
///
/// Propagates shape errors from the builder.
pub fn resnet50_trunk(
    b: &mut ModelBuilder,
    prefix: &str,
    from: LayerId,
    width: f64,
) -> Result<LayerId, ModelError> {
    let mut x = resnet_stem(b, prefix, from, width)?;
    for (stage, (mid, blocks)) in [(64u32, 3u32), (128, 4), (256, 6), (512, 3)]
        .into_iter()
        .enumerate()
    {
        let m = scale_channels(mid, width);
        for blk in 0..blocks {
            let stride = if stage > 0 && blk == 0 { 2 } else { 1 };
            x = bottleneck_block(b, &format!("{prefix}.s{}b{}", stage + 1, blk + 1), x, m, stride)?;
        }
    }
    Ok(x)
}

/// VGG-16 convolutional trunk (13 convs + 5 pools). Emits the
/// `512·width × H/32 × W/32` feature map; FC heads are the caller's
/// responsibility (they carry most of VGG's 138M parameters).
///
/// # Errors
///
/// Propagates shape errors from the builder.
pub fn vgg16_trunk(
    b: &mut ModelBuilder,
    prefix: &str,
    from: LayerId,
    width: f64,
) -> Result<LayerId, ModelError> {
    let cfg: &[(u32, u32)] = &[(64, 2), (128, 2), (256, 3), (512, 3), (512, 3)];
    let mut x = from;
    for (stage, &(channels, convs)) in cfg.iter().enumerate() {
        let c = scale_channels(channels, width);
        for i in 0..convs {
            x = b.conv(&format!("{prefix}.s{}c{}", stage + 1, i + 1), x, c, 3, 1)?;
        }
        x = b.max_pool(&format!("{prefix}.pool{}", stage + 1), x, 2, 2)?;
    }
    Ok(x)
}

/// Classic VGG classifier head: two hidden FC layers + output FC.
///
/// # Errors
///
/// Propagates shape errors from the builder.
pub fn vgg_head(
    b: &mut ModelBuilder,
    prefix: &str,
    from: LayerId,
    hidden: u32,
    out: u32,
) -> Result<LayerId, ModelError> {
    let f1 = b.fc(&format!("{prefix}.fc1"), from, hidden)?;
    let f2 = b.fc(&format!("{prefix}.fc2"), f1, hidden)?;
    b.fc(&format!("{prefix}.fc3"), f2, out)
}

/// VD-CNN-style character-level text trunk: an embedding-width 1-D conv
/// followed by `blocks_per_stage` pairs of 1-D convs per channel stage,
/// halving the sequence between stages. Emits a sequence
/// (`steps/2^4 × 512·width`).
///
/// # Errors
///
/// Propagates shape errors from the builder (input must be a sequence).
pub fn vdcnn_trunk(
    b: &mut ModelBuilder,
    prefix: &str,
    from: LayerId,
    width: f64,
    blocks_per_stage: u32,
) -> Result<LayerId, ModelError> {
    let mut x = b.conv1d(&format!("{prefix}.embed"), from, scale_channels(64, width), 3, 1)?;
    for (stage, channels) in [64u32, 128, 256, 512].into_iter().enumerate() {
        let c = scale_channels(channels, width);
        for blk in 0..blocks_per_stage {
            x = b.conv1d(&format!("{prefix}.s{}a{}", stage + 1, blk + 1), x, c, 3, 1)?;
            x = b.conv1d(&format!("{prefix}.s{}b{}", stage + 1, blk + 1), x, c, 3, 1)?;
        }
        // Stage transition halves the temporal extent.
        x = b.conv1d(&format!("{prefix}.down{}", stage + 1), x, c, 3, 2)?;
    }
    Ok(x)
}

/// Small sensor ConvNet frontend over a sequence: `depth` strided 1-D
/// convolutions (the per-sensor encoder in CNN-LSTM activity
/// recognition). Emits a sequence.
///
/// # Errors
///
/// Propagates shape errors from the builder.
pub fn sensor_convnet(
    b: &mut ModelBuilder,
    prefix: &str,
    from: LayerId,
    channels: &[u32],
) -> Result<LayerId, ModelError> {
    let mut x = from;
    for (i, &c) in channels.iter().enumerate() {
        let stride = if i == 0 { 1 } else { 2 };
        x = b.conv1d(&format!("{prefix}.conv{}", i + 1), x, c, 5, stride)?;
    }
    Ok(x)
}

/// Convenience: standard image input (`3 × side × side`).
pub fn image_input(b: &mut ModelBuilder, name: &str, side: u32) -> LayerId {
    b.input(name, TensorShape::Feature { c: 3, h: side, w: side })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::LayerClass;

    fn count_class(m: &crate::graph::ModelGraph, class: LayerClass) -> usize {
        m.layers().filter(|(_, l)| l.class() == class).count()
    }

    #[test]
    fn resnet18_param_count_near_reference() {
        let mut b = ModelBuilder::new("r18");
        let i = image_input(&mut b, "in", 224);
        let t = resnet18_trunk(&mut b, "r18", i, 1.0).unwrap();
        let g = b.global_pool("gap", t).unwrap();
        b.fc("fc", g, 1000).unwrap();
        let m = b.finish().unwrap();
        let params = m.param_count();
        // torchvision resnet18: 11.69M (we fold BN, so slightly less).
        assert!(
            (10_500_000..12_500_000).contains(&params),
            "resnet18 params {params}"
        );
    }

    #[test]
    fn resnet50_param_count_near_reference() {
        let mut b = ModelBuilder::new("r50");
        let i = image_input(&mut b, "in", 224);
        let t = resnet50_trunk(&mut b, "r50", i, 1.0).unwrap();
        let g = b.global_pool("gap", t).unwrap();
        b.fc("fc", g, 1000).unwrap();
        let m = b.finish().unwrap();
        let params = m.param_count();
        // torchvision resnet50: 25.56M.
        assert!(
            (23_000_000..27_000_000).contains(&params),
            "resnet50 params {params}"
        );
    }

    #[test]
    fn vgg16_param_count_near_reference() {
        let mut b = ModelBuilder::new("vgg");
        let i = image_input(&mut b, "in", 224);
        let t = vgg16_trunk(&mut b, "vgg", i, 1.0).unwrap();
        vgg_head(&mut b, "head", t, 4096, 1000).unwrap();
        let m = b.finish().unwrap();
        let params = m.param_count();
        // Reference VGG-16: 138.36M.
        assert!(
            (132_000_000..145_000_000).contains(&params),
            "vgg16 params {params}"
        );
    }

    #[test]
    fn width_multiplier_shrinks_models() {
        let full = {
            let mut b = ModelBuilder::new("r18");
            let i = image_input(&mut b, "in", 224);
            resnet18_trunk(&mut b, "r18", i, 1.0).unwrap();
            b.finish().unwrap().param_count()
        };
        let half = {
            let mut b = ModelBuilder::new("r18h");
            let i = image_input(&mut b, "in", 224);
            resnet18_trunk(&mut b, "r18h", i, 0.5).unwrap();
            b.finish().unwrap().param_count()
        };
        // Half width ≈ quarter params.
        assert!(half < full / 3, "half {half} vs full {full}");
    }

    #[test]
    fn basic_block_uses_projection_only_when_needed() {
        let mut b = ModelBuilder::new("bb");
        let i = b.input("in", TensorShape::Feature { c: 64, h: 56, w: 56 });
        basic_block(&mut b, "same", i, 64, 1).unwrap();
        let m1 = b.finish().unwrap();
        assert_eq!(count_class(&m1, LayerClass::Conv), 2, "identity skip needs no proj");

        let mut b = ModelBuilder::new("bb2");
        let i = b.input("in", TensorShape::Feature { c: 64, h: 56, w: 56 });
        basic_block(&mut b, "down", i, 128, 2).unwrap();
        let m2 = b.finish().unwrap();
        assert_eq!(count_class(&m2, LayerClass::Conv), 3, "downsample needs projection");
    }

    #[test]
    fn vdcnn_trunk_is_sequence_out() {
        let mut b = ModelBuilder::new("vd");
        let i = b.input("in", TensorShape::Sequence { steps: 256, features: 16 });
        let t = vdcnn_trunk(&mut b, "vd", i, 1.0, 2).unwrap();
        match b.shape(t) {
            TensorShape::Sequence { steps, features } => {
                assert_eq!(steps, 16); // 256 / 2^4
                assert_eq!(features, 512);
            }
            other => panic!("unexpected {other:?}"),
        }
        b.finish().unwrap();
    }

    #[test]
    fn sensor_convnet_strides_halve_sequence() {
        let mut b = ModelBuilder::new("sc");
        let i = b.input("in", TensorShape::Sequence { steps: 400, features: 6 });
        let t = sensor_convnet(&mut b, "imu", i, &[32, 64, 128]).unwrap();
        assert_eq!(b.shape(t), TensorShape::Sequence { steps: 100, features: 128 });
        b.finish().unwrap();
    }
}
