//! Tensor shapes flowing along the edges of a heterogeneous model graph.
//!
//! The H2H formulation (paper §3, Table 1) needs just enough shape
//! information to derive three quantities per layer: weight volume,
//! input-feature-map (IFM) volume and output-feature-map (OFM) volume.
//! Three shape families cover the MMMT zoo: spatial feature maps
//! (convolutional backbones), flat vectors (FC heads) and sequences
//! (LSTM branches).

use serde::{Deserialize, Serialize};

use crate::units::Bytes;

/// Element width of tensors and weights.
///
/// The reproduction transfers all inter-accelerator data in `F32`
/// (the paper does not model quantized transfers); narrower types exist so
/// custom accelerator plug-ins can model quantized local storage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[derive(Default)]
pub enum DataType {
    /// 32-bit float (default model precision).
    #[default]
    F32,
    /// 16-bit float.
    F16,
    /// 8-bit integer.
    I8,
}

impl DataType {
    /// Bytes per element.
    pub const fn bytes_per_elem(self) -> u64 {
        match self {
            DataType::F32 => 4,
            DataType::F16 => 2,
            DataType::I8 => 1,
        }
    }
}


/// Logical shape of an activation tensor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TensorShape {
    /// A `C × H × W` spatial feature map (vision backbones).
    Feature {
        /// Channel count.
        c: u32,
        /// Height.
        h: u32,
        /// Width.
        w: u32,
    },
    /// A flat feature vector (FC layers, pooled embeddings).
    Vector {
        /// Feature count.
        features: u32,
    },
    /// A `T × F` sequence (LSTM branches, text/speech/motion streams).
    Sequence {
        /// Time steps.
        steps: u32,
        /// Features per step.
        features: u32,
    },
}

impl TensorShape {
    /// Total element count of the tensor.
    ///
    /// ```
    /// use h2h_model::tensor::TensorShape;
    /// assert_eq!(TensorShape::Feature { c: 3, h: 4, w: 5 }.elements(), 60);
    /// assert_eq!(TensorShape::Vector { features: 128 }.elements(), 128);
    /// assert_eq!(TensorShape::Sequence { steps: 10, features: 8 }.elements(), 80);
    /// ```
    pub fn elements(&self) -> u64 {
        match *self {
            TensorShape::Feature { c, h, w } => c as u64 * h as u64 * w as u64,
            TensorShape::Vector { features } => features as u64,
            TensorShape::Sequence { steps, features } => steps as u64 * features as u64,
        }
    }

    /// Byte volume at the given precision.
    pub fn bytes(&self, dtype: DataType) -> Bytes {
        Bytes::new(self.elements() * dtype.bytes_per_elem())
    }

    /// The "feature dimension" used when this tensor feeds an FC or LSTM
    /// layer: channels×H×W flatten, vectors pass through, sequences expose
    /// their per-step feature width.
    pub fn flat_features(&self) -> u64 {
        match *self {
            TensorShape::Feature { c, h, w } => c as u64 * h as u64 * w as u64,
            TensorShape::Vector { features } => features as u64,
            TensorShape::Sequence { steps, features } => steps as u64 * features as u64,
        }
    }

    /// True if two shapes can be summed elementwise (residual adds).
    pub fn same_as(&self, other: &TensorShape) -> bool {
        self == other
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dtype_widths() {
        assert_eq!(DataType::F32.bytes_per_elem(), 4);
        assert_eq!(DataType::F16.bytes_per_elem(), 2);
        assert_eq!(DataType::I8.bytes_per_elem(), 1);
        assert_eq!(DataType::default(), DataType::F32);
    }

    #[test]
    fn byte_volume() {
        let fm = TensorShape::Feature { c: 64, h: 56, w: 56 };
        assert_eq!(fm.bytes(DataType::F32).as_u64(), 64 * 56 * 56 * 4);
        assert_eq!(fm.bytes(DataType::I8).as_u64(), 64 * 56 * 56);
    }

    #[test]
    fn flat_features_flattens_spatial() {
        let fm = TensorShape::Feature { c: 512, h: 7, w: 7 };
        assert_eq!(fm.flat_features(), 512 * 49);
        let seq = TensorShape::Sequence { steps: 20, features: 128 };
        assert_eq!(seq.flat_features(), 20 * 128);
    }

    #[test]
    fn shape_equality_for_residuals() {
        let a = TensorShape::Feature { c: 64, h: 8, w: 8 };
        let b = TensorShape::Feature { c: 64, h: 8, w: 8 };
        let c = TensorShape::Feature { c: 32, h: 8, w: 8 };
        assert!(a.same_as(&b));
        assert!(!a.same_as(&c));
    }
}
