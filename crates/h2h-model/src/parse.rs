//! Text-format model ingestion — the glue that lets externally exported
//! DNN graphs (e.g. dumped from a framework's tracer) enter the H2H
//! pipeline without writing Rust.
//!
//! The format is line-based; one layer per line, `#` comments, layers
//! referenced by name, an optional trailing `@modality` tag:
//!
//! ```text
//! model tiny-demo
//! input  cam   img 3 64 64        @vision
//! conv   c1    cam 32 3 2         @vision
//! gap    feat  c1                 @vision
//! input  txt   seq 128 300        @text
//! lstm   enc   txt 128 1 last     @text
//! concat fuse  feat enc
//! fc     head  fuse 10
//! ```
//!
//! Grammar per op:
//!
//! | line | meaning |
//! |------|---------|
//! | `model <name>` | model name (first non-comment line) |
//! | `input <name> img <c> <h> <w>` | image input |
//! | `input <name> vec <features>` | vector input |
//! | `input <name> seq <steps> <features>` | sequence input |
//! | `conv <name> <from> <out_c> <k> <s>` | 2-D convolution |
//! | `conv1d <name> <from> <out_c> <k> <s>` | 1-D convolution |
//! | `fc <name> <from> <out>` | fully connected |
//! | `lstm <name> <from> <hidden> <layers> seq\|last` | LSTM stack |
//! | `maxpool\|avgpool <name> <from> <k> <s>` | pooling |
//! | `gap <name> <from>` | global average pool |
//! | `add <name> <a> <b> [...]` | residual add |
//! | `concat <name> <a> <b> [...]` | concatenation |
//! | `toseq <name> <from>` | feature map → sequence bridge |

use std::collections::HashMap;
use std::fmt;

use crate::builder::ModelBuilder;
use crate::graph::{LayerId, ModelError, ModelGraph};
use crate::tensor::TensorShape;

/// Errors raised while parsing a model description.
#[derive(Debug, Clone, PartialEq)]
pub enum ParseError {
    /// Lexical or arity problem on a line (1-based line number, message).
    Syntax(usize, String),
    /// A layer line references an unknown source name.
    UnknownName(usize, String),
    /// The resulting graph violates a model constraint.
    Model(ModelError),
    /// The description contains no layers.
    Empty,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseError::Syntax(line, msg) => write!(f, "line {line}: {msg}"),
            ParseError::UnknownName(line, name) => {
                write!(f, "line {line}: unknown layer `{name}`")
            }
            ParseError::Model(e) => write!(f, "model error: {e}"),
            ParseError::Empty => write!(f, "no layers in description"),
        }
    }
}

impl std::error::Error for ParseError {}

impl From<ModelError> for ParseError {
    fn from(e: ModelError) -> Self {
        ParseError::Model(e)
    }
}

fn parse_u32(line: usize, tok: &str, what: &str) -> Result<u32, ParseError> {
    tok.parse::<u32>()
        .map_err(|_| ParseError::Syntax(line, format!("bad {what} `{tok}`")))
}

/// Parses a model description (see module docs for the grammar).
///
/// # Errors
///
/// Returns the first [`ParseError`] encountered; the graph is validated
/// before being returned.
pub fn parse_model(text: &str) -> Result<ModelGraph, ParseError> {
    let mut name = String::from("unnamed");
    let mut b: Option<ModelBuilder> = None;
    let mut by_name: HashMap<String, LayerId> = HashMap::new();
    let mut any_layer = false;

    for (ln, raw) in text.lines().enumerate() {
        let ln = ln + 1;
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        // Optional trailing @modality tag.
        let (line, modality) = match line.rsplit_once('@') {
            Some((head, tag)) if !tag.trim().is_empty() => {
                (head.trim(), Some(tag.trim().to_owned()))
            }
            _ => (line, None),
        };
        let toks: Vec<&str> = line.split_whitespace().collect();
        let op = toks[0];

        if op == "model" {
            if toks.len() != 2 {
                return Err(ParseError::Syntax(ln, "model takes one name".into()));
            }
            name = toks[1].to_owned();
            continue;
        }
        let builder = b.get_or_insert_with(|| ModelBuilder::new(name.clone()));
        builder.modality(modality.as_deref());

        let need = |n: usize| -> Result<(), ParseError> {
            if toks.len() == n {
                Ok(())
            } else {
                Err(ParseError::Syntax(
                    ln,
                    format!("`{op}` expects {} operands, got {}", n - 1, toks.len() - 1),
                ))
            }
        };
        let lookup = |tok: &str, map: &HashMap<String, LayerId>| -> Result<LayerId, ParseError> {
            map.get(tok)
                .copied()
                .ok_or_else(|| ParseError::UnknownName(ln, tok.to_owned()))
        };

        let id = match op {
            "input" => {
                if toks.len() < 4 {
                    return Err(ParseError::Syntax(ln, "input needs a kind".into()));
                }
                let shape = match toks[2] {
                    "img" => {
                        need(6)?;
                        TensorShape::Feature {
                            c: parse_u32(ln, toks[3], "channels")?,
                            h: parse_u32(ln, toks[4], "height")?,
                            w: parse_u32(ln, toks[5], "width")?,
                        }
                    }
                    "vec" => {
                        need(4)?;
                        TensorShape::Vector { features: parse_u32(ln, toks[3], "features")? }
                    }
                    "seq" => {
                        need(5)?;
                        TensorShape::Sequence {
                            steps: parse_u32(ln, toks[3], "steps")?,
                            features: parse_u32(ln, toks[4], "features")?,
                        }
                    }
                    other => {
                        return Err(ParseError::Syntax(
                            ln,
                            format!("unknown input kind `{other}` (img|vec|seq)"),
                        ))
                    }
                };
                builder.input(toks[1], shape)
            }
            "conv" | "conv1d" => {
                need(6)?;
                let from = lookup(toks[2], &by_name)?;
                let c = parse_u32(ln, toks[3], "channels")?;
                let k = parse_u32(ln, toks[4], "kernel")?;
                let s = parse_u32(ln, toks[5], "stride")?;
                if op == "conv" {
                    builder.conv(toks[1], from, c, k, s)?
                } else {
                    builder.conv1d(toks[1], from, c, k, s)?
                }
            }
            "fc" => {
                need(4)?;
                let from = lookup(toks[2], &by_name)?;
                builder.fc(toks[1], from, parse_u32(ln, toks[3], "features")?)?
            }
            "lstm" => {
                need(6)?;
                let from = lookup(toks[2], &by_name)?;
                let hidden = parse_u32(ln, toks[3], "hidden")?;
                let layers = parse_u32(ln, toks[4], "layers")?;
                let return_sequences = match toks[5] {
                    "seq" => true,
                    "last" => false,
                    other => {
                        return Err(ParseError::Syntax(
                            ln,
                            format!("lstm mode `{other}` (seq|last)"),
                        ))
                    }
                };
                builder.lstm(toks[1], from, hidden, layers, return_sequences)?
            }
            "maxpool" | "avgpool" => {
                need(5)?;
                let from = lookup(toks[2], &by_name)?;
                let k = parse_u32(ln, toks[3], "kernel")?;
                let s = parse_u32(ln, toks[4], "stride")?;
                if op == "maxpool" {
                    builder.max_pool(toks[1], from, k, s)?
                } else {
                    builder.avg_pool(toks[1], from, k, s)?
                }
            }
            "gap" => {
                need(3)?;
                let from = lookup(toks[2], &by_name)?;
                builder.global_pool(toks[1], from)?
            }
            "toseq" => {
                need(3)?;
                let from = lookup(toks[2], &by_name)?;
                builder.to_sequence(toks[1], from)?
            }
            "add" | "concat" => {
                if toks.len() < 4 {
                    return Err(ParseError::Syntax(ln, format!("`{op}` needs >=2 sources")));
                }
                let srcs: Result<Vec<LayerId>, ParseError> =
                    toks[2..].iter().map(|t| lookup(t, &by_name)).collect();
                let srcs = srcs?;
                if op == "add" {
                    builder.add(toks[1], &srcs)?
                } else {
                    builder.concat(toks[1], &srcs)?
                }
            }
            other => {
                return Err(ParseError::Syntax(ln, format!("unknown op `{other}`")));
            }
        };
        if by_name.insert(toks[1].to_owned(), id).is_some() {
            return Err(ParseError::Model(ModelError::DuplicateName(toks[1].to_owned())));
        }
        any_layer = true;
    }

    if !any_layer {
        return Err(ParseError::Empty);
    }
    Ok(b.expect("layers imply a builder").finish()?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::ModelStats;

    const DEMO: &str = r"
# A two-modality toy (the module-docs example).
model tiny-demo
input  cam   img 3 64 64        @vision
conv   c1    cam 32 3 2         @vision
gap    feat  c1                 @vision
input  txt   seq 128 300        @text
lstm   enc   txt 128 1 last     @text
concat fuse  feat enc
fc     head  fuse 10
";

    #[test]
    fn demo_parses_and_validates() {
        let m = parse_model(DEMO).unwrap();
        assert_eq!(m.name(), "tiny-demo");
        assert_eq!(m.num_layers(), 7);
        let s = ModelStats::of(&m);
        assert_eq!(s.modalities, vec!["text".to_owned(), "vision".to_owned()]);
        assert_eq!(s.conv_layers, 1);
        assert_eq!(s.lstm_layers, 1);
    }

    #[test]
    fn all_ops_roundtrip() {
        let text = r"
model everything
input a img 8 32 32
conv c a 16 3 1
maxpool p c 2 2
avgpool q p 2 2
toseq ts q
lstm l ts 32 2 seq
conv1d c1 l 16 3 2
input v vec 64
fc f v 64
add s f f2   # forward reference error exercised below; here use valid:
";
        // The `add` line references `f2` which does not exist -> error.
        assert!(matches!(parse_model(text), Err(ParseError::UnknownName(_, n)) if n == "f2"));

        let ok = r"
model everything
input a img 8 32 32
conv c a 16 3 1
maxpool p c 2 2
avgpool q p 2 2
gap g q
input v vec 576
fc f v 576
fc f2 f 576
add s f f2
concat cat s g
fc head cat 4
";
        let m = parse_model(ok).unwrap();
        assert_eq!(m.num_layers(), 11);
        m.validate().unwrap();
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let m = parse_model("# lead\n\nmodel x\ninput i vec 4 # trailing\nfc f i 2\n").unwrap();
        assert_eq!(m.num_layers(), 2);
    }

    #[test]
    fn syntax_errors_carry_line_numbers() {
        match parse_model("model x\ninput i vec four\n") {
            Err(ParseError::Syntax(2, msg)) => assert!(msg.contains("four")),
            other => panic!("expected syntax error, got {other:?}"),
        }
        match parse_model("model x\nfrobnicate f\n") {
            Err(ParseError::Syntax(2, msg)) => assert!(msg.contains("frobnicate")),
            other => panic!("expected syntax error, got {other:?}"),
        }
    }

    #[test]
    fn arity_is_checked() {
        assert!(matches!(
            parse_model("input i img 3 64\n"),
            Err(ParseError::Syntax(1, _))
        ));
        assert!(matches!(
            parse_model("model a b\n"),
            Err(ParseError::Syntax(1, _))
        ));
    }

    #[test]
    fn duplicate_names_rejected() {
        let text = "input i vec 4\nfc i i 2\n";
        assert!(matches!(
            parse_model(text),
            Err(ParseError::Model(ModelError::DuplicateName(_)))
        ));
    }

    #[test]
    fn empty_input_rejected() {
        assert!(matches!(parse_model("# nothing\n"), Err(ParseError::Empty)));
        assert!(matches!(parse_model(""), Err(ParseError::Empty)));
    }

    #[test]
    fn shape_errors_surface_as_model_errors() {
        // LSTM from a vector input is a shape mismatch.
        let text = "input i vec 4\nlstm l i 8 1 last\n";
        assert!(matches!(
            parse_model(text),
            Err(ParseError::Model(ModelError::ShapeMismatch(_)))
        ));
    }

    #[test]
    fn parsed_model_maps_end_to_end() {
        // The ingestion glue feeds the real pipeline.
        let m = parse_model(DEMO).unwrap();
        assert!(m.param_count() > 0);
        assert!(m.total_macs().as_u64() > 0);
    }
}
