//! Newtyped physical units shared across the whole workspace.
//!
//! The H2H cost model mixes byte counts, transfer rates, latencies and
//! energies in almost every formula. Newtypes keep those quantities from
//! being accidentally combined the wrong way (a classic source of silent
//! errors in EDA cost models) while still being zero-cost wrappers.
//!
//! # Examples
//!
//! ```
//! use h2h_model::units::{Bytes, BytesPerSec, Seconds};
//!
//! let weights = Bytes::new(125_000_000);
//! let ethernet = BytesPerSec::from_gbps(0.125); // 1 GbE
//! let t: Seconds = ethernet.transfer_time(weights);
//! assert!((t.as_f64() - 1.0).abs() < 1e-9);
//! ```

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

use serde::{Deserialize, Serialize};

/// A byte count (weights, activations, DRAM budgets).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Bytes(u64);

impl Bytes {
    /// Zero bytes.
    pub const ZERO: Bytes = Bytes(0);

    /// Wraps a raw byte count.
    pub const fn new(bytes: u64) -> Self {
        Bytes(bytes)
    }

    /// `mib` mebibytes (2^20 bytes).
    pub const fn from_mib(mib: u64) -> Self {
        Bytes(mib * (1 << 20))
    }

    /// `gib` gibibytes (2^30 bytes).
    pub const fn from_gib(gib: u64) -> Self {
        Bytes(gib * (1 << 30))
    }

    /// The raw count.
    pub const fn as_u64(self) -> u64 {
        self.0
    }

    /// The raw count as a float, for rate arithmetic.
    pub const fn as_f64(self) -> f64 {
        self.0 as f64
    }

    /// Saturating subtraction; useful for "remaining budget" math.
    pub const fn saturating_sub(self, rhs: Bytes) -> Bytes {
        Bytes(self.0.saturating_sub(rhs.0))
    }

    /// Checked subtraction.
    pub fn checked_sub(self, rhs: Bytes) -> Option<Bytes> {
        self.0.checked_sub(rhs.0).map(Bytes)
    }
}

impl Add for Bytes {
    type Output = Bytes;
    fn add(self, rhs: Bytes) -> Bytes {
        Bytes(self.0 + rhs.0)
    }
}

impl AddAssign for Bytes {
    fn add_assign(&mut self, rhs: Bytes) {
        self.0 += rhs.0;
    }
}

impl Sub for Bytes {
    type Output = Bytes;
    fn sub(self, rhs: Bytes) -> Bytes {
        Bytes(self.0 - rhs.0)
    }
}

impl SubAssign for Bytes {
    fn sub_assign(&mut self, rhs: Bytes) {
        self.0 -= rhs.0;
    }
}

impl Sum for Bytes {
    fn sum<I: Iterator<Item = Bytes>>(iter: I) -> Bytes {
        Bytes(iter.map(|b| b.0).sum())
    }
}

impl Mul<u64> for Bytes {
    type Output = Bytes;
    fn mul(self, rhs: u64) -> Bytes {
        Bytes(self.0 * rhs)
    }
}

impl fmt::Display for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let b = self.0 as f64;
        if self.0 >= (1 << 30) {
            write!(f, "{:.2} GiB", b / (1u64 << 30) as f64)
        } else if self.0 >= (1 << 20) {
            write!(f, "{:.2} MiB", b / (1u64 << 20) as f64)
        } else if self.0 >= (1 << 10) {
            write!(f, "{:.2} KiB", b / (1u64 << 10) as f64)
        } else {
            write!(f, "{} B", self.0)
        }
    }
}

/// A latency or duration in seconds.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
pub struct Seconds(f64);

impl Seconds {
    /// Zero seconds.
    pub const ZERO: Seconds = Seconds(0.0);

    /// Wraps a raw seconds value.
    ///
    /// # Panics
    ///
    /// Panics (debug builds only) if `s` is negative or NaN: durations in
    /// the cost model are always non-negative.
    pub fn new(s: f64) -> Self {
        debug_assert!(s.is_finite() && s >= 0.0, "invalid duration: {s}");
        Seconds(s)
    }

    /// The raw value.
    pub const fn as_f64(self) -> f64 {
        self.0
    }

    /// Milliseconds view, for reporting.
    pub fn as_millis(self) -> f64 {
        self.0 * 1e3
    }

    /// Microseconds view, for reporting.
    pub fn as_micros(self) -> f64 {
        self.0 * 1e6
    }

    /// Larger of two durations.
    pub fn max(self, rhs: Seconds) -> Seconds {
        Seconds(self.0.max(rhs.0))
    }

    /// Smaller of two durations.
    pub fn min(self, rhs: Seconds) -> Seconds {
        Seconds(self.0.min(rhs.0))
    }

    /// Saturating subtraction clamped at zero (duration differences).
    pub fn saturating_sub(self, rhs: Seconds) -> Seconds {
        Seconds((self.0 - rhs.0).max(0.0))
    }
}

impl Add for Seconds {
    type Output = Seconds;
    fn add(self, rhs: Seconds) -> Seconds {
        Seconds(self.0 + rhs.0)
    }
}

impl AddAssign for Seconds {
    fn add_assign(&mut self, rhs: Seconds) {
        self.0 += rhs.0;
    }
}

impl Sub for Seconds {
    type Output = Seconds;
    fn sub(self, rhs: Seconds) -> Seconds {
        Seconds(self.0 - rhs.0)
    }
}

impl Mul<f64> for Seconds {
    type Output = Seconds;
    fn mul(self, rhs: f64) -> Seconds {
        Seconds(self.0 * rhs)
    }
}

impl Div<f64> for Seconds {
    type Output = Seconds;
    fn div(self, rhs: f64) -> Seconds {
        Seconds(self.0 / rhs)
    }
}

impl Sum for Seconds {
    fn sum<I: Iterator<Item = Seconds>>(iter: I) -> Seconds {
        Seconds(iter.map(|s| s.0).sum())
    }
}

impl fmt::Display for Seconds {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1.0 {
            write!(f, "{:.3} s", self.0)
        } else if self.0 >= 1e-3 {
            write!(f, "{:.3} ms", self.0 * 1e3)
        } else {
            write!(f, "{:.3} us", self.0 * 1e6)
        }
    }
}

/// An energy in joules.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
pub struct Joules(f64);

impl Joules {
    /// Zero joules.
    pub const ZERO: Joules = Joules(0.0);

    /// Wraps a raw joules value.
    pub fn new(j: f64) -> Self {
        debug_assert!(j.is_finite() && j >= 0.0, "invalid energy: {j}");
        Joules(j)
    }

    /// The raw value.
    pub const fn as_f64(self) -> f64 {
        self.0
    }
}

impl Add for Joules {
    type Output = Joules;
    fn add(self, rhs: Joules) -> Joules {
        Joules(self.0 + rhs.0)
    }
}

impl AddAssign for Joules {
    fn add_assign(&mut self, rhs: Joules) {
        self.0 += rhs.0;
    }
}

impl Sub for Joules {
    type Output = Joules;
    fn sub(self, rhs: Joules) -> Joules {
        Joules(self.0 - rhs.0)
    }
}

impl Mul<f64> for Joules {
    type Output = Joules;
    fn mul(self, rhs: f64) -> Joules {
        Joules(self.0 * rhs)
    }
}

impl Sum for Joules {
    fn sum<I: Iterator<Item = Joules>>(iter: I) -> Joules {
        Joules(iter.map(|j| j.0).sum())
    }
}

impl fmt::Display for Joules {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1.0 {
            write!(f, "{:.3} J", self.0)
        } else {
            write!(f, "{:.3} mJ", self.0 * 1e3)
        }
    }
}

/// A transfer rate in bytes per second.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Serialize, Deserialize)]
pub struct BytesPerSec(f64);

impl BytesPerSec {
    /// Wraps a raw bytes-per-second rate.
    ///
    /// # Panics
    ///
    /// Panics (debug builds only) if the rate is not strictly positive:
    /// a zero-bandwidth channel would produce infinite latencies.
    pub fn new(rate: f64) -> Self {
        debug_assert!(rate.is_finite() && rate > 0.0, "invalid rate: {rate}");
        BytesPerSec(rate)
    }

    /// Rate from GB/s (decimal gigabytes, as used in the paper's
    /// Ethernet classes: 0.125 GB/s == 1 GbE).
    pub fn from_gbps(gb_per_s: f64) -> Self {
        BytesPerSec::new(gb_per_s * 1e9)
    }

    /// The raw rate.
    pub const fn as_f64(self) -> f64 {
        self.0
    }

    /// Time to move `bytes` across this channel.
    pub fn transfer_time(self, bytes: Bytes) -> Seconds {
        Seconds::new(bytes.as_f64() / self.0)
    }
}

impl fmt::Display for BytesPerSec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3} GB/s", self.0 / 1e9)
    }
}

/// A multiply-accumulate count (the compute volume of a layer).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Macs(u64);

impl Macs {
    /// Zero MACs.
    pub const ZERO: Macs = Macs(0);

    /// Wraps a raw MAC count.
    pub const fn new(macs: u64) -> Self {
        Macs(macs)
    }

    /// The raw count.
    pub const fn as_u64(self) -> u64 {
        self.0
    }

    /// The raw count as a float.
    pub const fn as_f64(self) -> f64 {
        self.0 as f64
    }
}

impl Add for Macs {
    type Output = Macs;
    fn add(self, rhs: Macs) -> Macs {
        Macs(self.0 + rhs.0)
    }
}

impl AddAssign for Macs {
    fn add_assign(&mut self, rhs: Macs) {
        self.0 += rhs.0;
    }
}

impl Sum for Macs {
    fn sum<I: Iterator<Item = Macs>>(iter: I) -> Macs {
        Macs(iter.map(|m| m.0).sum())
    }
}

impl fmt::Display for Macs {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let m = self.0 as f64;
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.2} GMAC", m / 1e9)
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.2} MMAC", m / 1e6)
        } else {
            write!(f, "{} MAC", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bytes_constructors_and_display() {
        assert_eq!(Bytes::from_mib(1).as_u64(), 1 << 20);
        assert_eq!(Bytes::from_gib(2).as_u64(), 2 << 30);
        assert_eq!(format!("{}", Bytes::new(512)), "512 B");
        assert_eq!(format!("{}", Bytes::from_mib(3)), "3.00 MiB");
        assert_eq!(format!("{}", Bytes::from_gib(1)), "1.00 GiB");
    }

    #[test]
    fn bytes_arithmetic() {
        let a = Bytes::new(100);
        let b = Bytes::new(40);
        assert_eq!(a + b, Bytes::new(140));
        assert_eq!(a - b, Bytes::new(60));
        assert_eq!(b.saturating_sub(a), Bytes::ZERO);
        assert_eq!(a.checked_sub(b), Some(Bytes::new(60)));
        assert_eq!(b.checked_sub(a), None);
        let total: Bytes = [a, b, b].into_iter().sum();
        assert_eq!(total, Bytes::new(180));
    }

    #[test]
    fn transfer_time_matches_rate() {
        let bw = BytesPerSec::from_gbps(1.25);
        let t = bw.transfer_time(Bytes::new(1_250_000_000));
        assert!((t.as_f64() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn seconds_ordering_and_math() {
        let a = Seconds::new(2.0);
        let b = Seconds::new(0.5);
        assert!(a > b);
        assert_eq!((a + b).as_f64(), 2.5);
        assert_eq!(a.max(b), a);
        assert_eq!(a.min(b), b);
        assert_eq!(b.saturating_sub(a), Seconds::ZERO);
        assert_eq!((a * 2.0).as_f64(), 4.0);
        assert_eq!((a / 2.0).as_f64(), 1.0);
    }

    #[test]
    fn display_formats_scale() {
        assert_eq!(format!("{}", Seconds::new(1.5)), "1.500 s");
        assert_eq!(format!("{}", Seconds::new(0.0125)), "12.500 ms");
        assert_eq!(format!("{}", Seconds::new(2.5e-6)), "2.500 us");
        assert_eq!(format!("{}", Joules::new(3.25)), "3.250 J");
        assert_eq!(format!("{}", Macs::new(2_500_000)), "2.50 MMAC");
    }

    #[test]
    fn macs_sum() {
        let total: Macs = [Macs::new(1), Macs::new(2), Macs::new(3)].into_iter().sum();
        assert_eq!(total.as_u64(), 6);
    }
}
