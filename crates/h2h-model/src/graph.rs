//! The heterogeneous model graph `G_model = (V, E)` (paper §3).
//!
//! Vertices are [`Layer`]s; edges carry the producer's output feature map
//! (OFM) to its consumers. MMMT cross-talk (edges between modality
//! backbones) is just an ordinary edge — nothing distinguishes it
//! structurally, which is exactly why clustering-based mappers struggle
//! (paper §2) and why H2H reasons about per-edge transfer volumes instead.

use std::collections::HashSet;
use std::fmt;

use petgraph::stable_graph::{NodeIndex, StableDiGraph};
use petgraph::visit::{EdgeRef, IntoEdgeReferences, NodeIndexable};
use petgraph::Direction;
use serde::{Deserialize, Serialize};

use crate::layer::{Layer, LayerClass};
use crate::tensor::DataType;
use crate::units::{Bytes, Macs};

/// Opaque handle to a layer vertex inside a [`ModelGraph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct LayerId(NodeIndex);

impl LayerId {
    /// Stable dense-ish index of the layer; usable as a map key or a
    /// vector slot (indices are never reused because the graph is
    /// append-only).
    pub fn index(self) -> usize {
        self.0.index()
    }

    /// Rebuilds the handle from [`LayerId::index`] — the inverse
    /// round-trip, for data-oriented code that stores layers as raw
    /// indices in flat arrays. The index must have come from a layer of
    /// the same graph; this is not checked.
    pub fn from_index(index: usize) -> Self {
        LayerId(NodeIndex::new(index))
    }
}

impl fmt::Display for LayerId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "L{}", self.0.index())
    }
}

/// Payload of a dependency edge: the byte volume of the activation that
/// crosses it (the producer's OFM at model precision).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct EdgeData {
    bytes: Bytes,
}

impl EdgeData {
    /// Activation bytes transferred along this edge.
    pub fn bytes(&self) -> Bytes {
        self.bytes
    }
}

/// Errors raised while constructing or validating a model graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ModelError {
    /// The graph contains a dependency cycle (layer names on the cycle).
    Cycle(String),
    /// `connect` was called with an unknown layer handle.
    UnknownLayer(String),
    /// The same edge was added twice.
    DuplicateEdge(String, String),
    /// A self-loop was requested.
    SelfLoop(String),
    /// A layer name is used twice.
    DuplicateName(String),
    /// A shape constraint is violated (builder-level detail inside).
    ShapeMismatch(String),
    /// The graph has no layers.
    Empty,
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::Cycle(n) => write!(f, "dependency cycle through layer `{n}`"),
            ModelError::UnknownLayer(n) => write!(f, "unknown layer `{n}`"),
            ModelError::DuplicateEdge(a, b) => write!(f, "duplicate edge `{a}` -> `{b}`"),
            ModelError::SelfLoop(n) => write!(f, "self loop on layer `{n}`"),
            ModelError::DuplicateName(n) => write!(f, "duplicate layer name `{n}`"),
            ModelError::ShapeMismatch(msg) => write!(f, "shape mismatch: {msg}"),
            ModelError::Empty => write!(f, "model graph has no layers"),
        }
    }
}

impl std::error::Error for ModelError {}

/// The heterogeneous model graph: a DAG of layers with activation-volume
/// annotated edges.
///
/// # Examples
///
/// ```
/// use h2h_model::graph::ModelGraph;
/// use h2h_model::layer::{Layer, LayerOp, FcParams};
/// use h2h_model::tensor::TensorShape;
///
/// let mut g = ModelGraph::new("tiny");
/// let input = g.add_layer(Layer::new(
///     "in",
///     LayerOp::Input { shape: TensorShape::Vector { features: 128 } },
/// ));
/// let fc = g.add_layer(Layer::new(
///     "fc",
///     LayerOp::Fc(FcParams { in_features: 128, out_features: 10 }),
/// ));
/// g.connect(input, fc)?;
/// g.validate()?;
/// assert_eq!(g.num_layers(), 2);
/// # Ok::<(), h2h_model::graph::ModelError>(())
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ModelGraph {
    name: String,
    graph: StableDiGraph<Layer, EdgeData>,
}

impl ModelGraph {
    /// Creates an empty model graph.
    pub fn new(name: impl Into<String>) -> Self {
        ModelGraph { name: name.into(), graph: StableDiGraph::new() }
    }

    /// Model name (e.g. `"VLocNet"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Adds a layer vertex and returns its handle.
    pub fn add_layer(&mut self, layer: Layer) -> LayerId {
        LayerId(self.graph.add_node(layer))
    }

    /// Adds a dependency edge `from -> to`, annotated with `from`'s OFM
    /// byte volume at model precision (F32).
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::UnknownLayer`], [`ModelError::SelfLoop`] or
    /// [`ModelError::DuplicateEdge`] on malformed requests. Cycles are
    /// detected later by [`ModelGraph::validate`].
    pub fn connect(&mut self, from: LayerId, to: LayerId) -> Result<(), ModelError> {
        if from == to {
            return Err(ModelError::SelfLoop(self.layer_name_or_id(from)));
        }
        let bytes = {
            let producer = self
                .graph
                .node_weight(from.0)
                .ok_or_else(|| ModelError::UnknownLayer(format!("{from}")))?;
            if self.graph.node_weight(to.0).is_none() {
                return Err(ModelError::UnknownLayer(format!("{to}")));
            }
            producer.ofm_bytes(DataType::F32)
        };
        if self.graph.find_edge(from.0, to.0).is_some() {
            return Err(ModelError::DuplicateEdge(
                self.layer_name_or_id(from),
                self.layer_name_or_id(to),
            ));
        }
        self.graph.add_edge(from.0, to.0, EdgeData { bytes });
        Ok(())
    }

    fn layer_name_or_id(&self, id: LayerId) -> String {
        self.graph
            .node_weight(id.0)
            .map(|l| l.name().to_owned())
            .unwrap_or_else(|| format!("{id}"))
    }

    /// Validates the graph: non-empty, acyclic, unique layer names.
    ///
    /// # Errors
    ///
    /// Returns the first violated constraint.
    pub fn validate(&self) -> Result<(), ModelError> {
        if self.graph.node_count() == 0 {
            return Err(ModelError::Empty);
        }
        let mut names = HashSet::new();
        for id in self.layer_ids() {
            let name = self.layer(id).name();
            if !names.insert(name.to_owned()) {
                return Err(ModelError::DuplicateName(name.to_owned()));
            }
        }
        match petgraph::algo::toposort(&self.graph, None) {
            Ok(_) => Ok(()),
            Err(cycle) => Err(ModelError::Cycle(
                self.graph
                    .node_weight(cycle.node_id())
                    .map(|l| l.name().to_owned())
                    .unwrap_or_default(),
            )),
        }
    }

    /// Number of layer vertices.
    pub fn num_layers(&self) -> usize {
        self.graph.node_count()
    }

    /// Exclusive upper bound on [`LayerId::index`] values, for building
    /// dense per-layer tables (`Vec` indexed by layer).
    pub fn id_bound(&self) -> usize {
        self.graph.node_bound()
    }

    /// Number of dependency edges.
    pub fn num_edges(&self) -> usize {
        self.graph.edge_count()
    }

    /// Borrow a layer by handle.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this graph.
    pub fn layer(&self, id: LayerId) -> &Layer {
        &self.graph[id.0]
    }

    /// Iterate over all layer handles (in insertion order).
    pub fn layer_ids(&self) -> impl Iterator<Item = LayerId> + '_ {
        self.graph.node_indices().map(LayerId)
    }

    /// Iterate over `(handle, layer)` pairs.
    pub fn layers(&self) -> impl Iterator<Item = (LayerId, &Layer)> + '_ {
        self.graph.node_indices().map(move |n| (LayerId(n), &self.graph[n]))
    }

    /// Iterate over `(producer, consumer, edge)` triples.
    pub fn edges(&self) -> impl Iterator<Item = (LayerId, LayerId, &EdgeData)> + '_ {
        self.graph
            .edge_references()
            .map(|e| (LayerId(e.source()), LayerId(e.target()), e.weight()))
    }

    /// Activation bytes crossing the `from -> to` edge, if it exists.
    pub fn edge_bytes(&self, from: LayerId, to: LayerId) -> Option<Bytes> {
        self.graph
            .find_edge(from.0, to.0)
            .and_then(|e| self.graph.edge_weight(e))
            .map(|d| d.bytes)
    }

    /// Direct predecessors of a layer.
    pub fn predecessors(&self, id: LayerId) -> impl Iterator<Item = LayerId> + '_ {
        self.graph.neighbors_directed(id.0, Direction::Incoming).map(LayerId)
    }

    /// Direct successors of a layer.
    pub fn successors(&self, id: LayerId) -> impl Iterator<Item = LayerId> + '_ {
        self.graph.neighbors_directed(id.0, Direction::Outgoing).map(LayerId)
    }

    /// Layers with no predecessors (model inputs).
    pub fn sources(&self) -> Vec<LayerId> {
        self.layer_ids()
            .filter(|id| self.predecessors(*id).next().is_none())
            .collect()
    }

    /// Layers with no successors (model outputs).
    pub fn sinks(&self) -> Vec<LayerId> {
        self.layer_ids()
            .filter(|id| self.successors(*id).next().is_none())
            .collect()
    }

    /// Deterministic topological order (stable across runs: ties broken
    /// by insertion index).
    ///
    /// # Panics
    ///
    /// Panics if the graph is cyclic; call [`ModelGraph::validate`] first.
    pub fn topo_order(&self) -> Vec<LayerId> {
        let ranks = self.asap_ranks();
        let mut order: Vec<LayerId> = self.layer_ids().collect();
        order.sort_by_key(|id| (ranks[id.index()], id.index()));
        order
    }

    /// ASAP rank per layer (longest-path depth from any source), indexed
    /// by `LayerId::index()`. Sparse slots (never allocated ids) hold 0.
    pub fn asap_ranks(&self) -> Vec<u32> {
        let cap = self.graph.node_bound();
        let mut rank = vec![0u32; cap];
        let order = petgraph::algo::toposort(&self.graph, None)
            .expect("asap_ranks requires an acyclic graph (run validate() first)");
        for n in order {
            let r = self
                .graph
                .neighbors_directed(n, Direction::Incoming)
                .map(|p| rank[p.index()] + 1)
                .max()
                .unwrap_or(0);
            rank[n.index()] = r;
        }
        rank
    }

    /// The mapping frontier: layers not yet in `mapped` whose predecessors
    /// are all in `mapped` (paper Algorithm 1, step 1: "nodes without
    /// predecessors").
    pub fn frontier(&self, mapped: &HashSet<LayerId>) -> Vec<LayerId> {
        let mut f: Vec<LayerId> = self
            .layer_ids()
            .filter(|id| !mapped.contains(id))
            .filter(|id| self.predecessors(*id).all(|p| mapped.contains(&p)))
            .collect();
        f.sort_by_key(|id| id.index());
        f
    }

    /// Total trainable parameter count.
    pub fn param_count(&self) -> u64 {
        self.layers().map(|(_, l)| l.weight_elems()).sum()
    }

    /// Total MAC volume.
    pub fn total_macs(&self) -> Macs {
        self.layers().map(|(_, l)| l.macs()).sum()
    }

    /// All distinct modality tags present, sorted.
    pub fn modalities(&self) -> Vec<String> {
        let mut tags: Vec<String> = self
            .layers()
            .filter_map(|(_, l)| l.modality().map(str::to_owned))
            .collect::<HashSet<_>>()
            .into_iter()
            .collect();
        tags.sort();
        tags
    }

    /// Builds the sub-model in which only `active` modalities (plus all
    /// untagged shared layers) remain — the workload shape produced by a
    /// dynamic modality change (paper §4.5). Edges touching removed layers
    /// disappear; fusion layers keep their remaining inputs.
    pub fn retain_modalities(&self, active: &[&str]) -> ModelGraph {
        let keep: HashSet<LayerId> = self
            .layers()
            .filter(|(_, l)| match l.modality() {
                None => true,
                Some(m) => active.contains(&m),
            })
            .map(|(id, _)| id)
            .collect();
        let mut out = ModelGraph::new(format!("{}[{}]", self.name, active.join("+")));
        // Preserve original indices order; remap ids.
        let mut remap = std::collections::HashMap::new();
        let mut ids: Vec<LayerId> = keep.iter().copied().collect();
        ids.sort_by_key(|id| id.index());
        for id in ids {
            let new_id = out.add_layer(self.layer(id).clone());
            remap.insert(id, new_id);
        }
        for (a, b, _) in self.edges() {
            if let (Some(&na), Some(&nb)) = (remap.get(&a), remap.get(&b)) {
                out.connect(na, nb).expect("remapped edges are unique and non-self");
            }
        }
        out
    }

    /// Graphviz DOT rendering (layers labelled `name\nclass`), for
    /// debugging model generators.
    pub fn to_dot(&self) -> String {
        let mut s = String::from("digraph model {\n  rankdir=LR;\n");
        for (id, l) in self.layers() {
            let color = match l.class() {
                LayerClass::Conv => "lightblue",
                LayerClass::Fc => "lightyellow",
                LayerClass::Lstm => "lightpink",
                LayerClass::Aux => "lightgray",
            };
            s.push_str(&format!(
                "  n{} [label=\"{}\\n{:?}\" style=filled fillcolor={}];\n",
                id.index(),
                l.name(),
                l.class(),
                color
            ));
        }
        for (a, b, e) in self.edges() {
            s.push_str(&format!(
                "  n{} -> n{} [label=\"{}\"];\n",
                a.index(),
                b.index(),
                e.bytes()
            ));
        }
        s.push_str("}\n");
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::{FcParams, LayerOp};
    use crate::tensor::TensorShape;

    fn vec_input(g: &mut ModelGraph, name: &str, features: u32) -> LayerId {
        g.add_layer(Layer::new(name, LayerOp::Input { shape: TensorShape::Vector { features } }))
    }

    fn fc(g: &mut ModelGraph, name: &str, inf: u32, outf: u32) -> LayerId {
        g.add_layer(Layer::new(
            name,
            LayerOp::Fc(FcParams { in_features: inf, out_features: outf }),
        ))
    }

    fn diamond() -> (ModelGraph, [LayerId; 4]) {
        let mut g = ModelGraph::new("diamond");
        let a = vec_input(&mut g, "in", 16);
        let b = fc(&mut g, "left", 16, 32);
        let c = fc(&mut g, "right", 16, 32);
        let d = g.add_layer(Layer::new(
            "join",
            LayerOp::Add { shape: TensorShape::Vector { features: 32 } },
        ));
        g.connect(a, b).unwrap();
        g.connect(a, c).unwrap();
        g.connect(b, d).unwrap();
        g.connect(c, d).unwrap();
        (g, [a, b, c, d])
    }

    #[test]
    fn diamond_is_valid() {
        let (g, _) = diamond();
        g.validate().unwrap();
        assert_eq!(g.num_layers(), 4);
        assert_eq!(g.num_edges(), 4);
    }

    #[test]
    fn sources_and_sinks() {
        let (g, [a, _, _, d]) = diamond();
        assert_eq!(g.sources(), vec![a]);
        assert_eq!(g.sinks(), vec![d]);
    }

    #[test]
    fn topo_order_respects_dependencies() {
        let (g, ids) = diamond();
        let order = g.topo_order();
        let pos = |id: LayerId| order.iter().position(|x| *x == id).unwrap();
        assert!(pos(ids[0]) < pos(ids[1]));
        assert!(pos(ids[0]) < pos(ids[2]));
        assert!(pos(ids[1]) < pos(ids[3]));
        assert!(pos(ids[2]) < pos(ids[3]));
    }

    #[test]
    fn frontier_walk_covers_graph_in_waves() {
        let (g, ids) = diamond();
        let mut mapped = HashSet::new();
        let f0 = g.frontier(&mapped);
        assert_eq!(f0, vec![ids[0]]);
        mapped.insert(ids[0]);
        let f1 = g.frontier(&mapped);
        assert_eq!(f1, vec![ids[1], ids[2]]);
        mapped.extend(f1);
        let f2 = g.frontier(&mapped);
        assert_eq!(f2, vec![ids[3]]);
        mapped.extend(f2);
        assert!(g.frontier(&mapped).is_empty());
    }

    #[test]
    fn cycle_detected() {
        let (mut g, ids) = diamond();
        g.connect(ids[3], ids[0]).unwrap();
        assert!(matches!(g.validate(), Err(ModelError::Cycle(_))));
    }

    #[test]
    fn rejects_self_loop_and_duplicate_edges() {
        let (mut g, ids) = diamond();
        assert!(matches!(g.connect(ids[1], ids[1]), Err(ModelError::SelfLoop(_))));
        assert!(matches!(
            g.connect(ids[0], ids[1]),
            Err(ModelError::DuplicateEdge(_, _))
        ));
    }

    #[test]
    fn duplicate_names_rejected() {
        let mut g = ModelGraph::new("dups");
        vec_input(&mut g, "x", 4);
        vec_input(&mut g, "x", 4);
        assert!(matches!(g.validate(), Err(ModelError::DuplicateName(_))));
    }

    #[test]
    fn empty_graph_rejected() {
        let g = ModelGraph::new("empty");
        assert_eq!(g.validate(), Err(ModelError::Empty));
    }

    #[test]
    fn edge_bytes_match_producer_ofm() {
        let (g, ids) = diamond();
        // Producer "in" emits 16 f32 = 64 bytes.
        assert_eq!(g.edge_bytes(ids[0], ids[1]), Some(Bytes::new(64)));
        // left (32 features) -> join carries 128 bytes.
        assert_eq!(g.edge_bytes(ids[1], ids[3]), Some(Bytes::new(128)));
        assert_eq!(g.edge_bytes(ids[3], ids[0]), None);
    }

    #[test]
    fn asap_ranks_longest_path() {
        let (g, ids) = diamond();
        let ranks = g.asap_ranks();
        assert_eq!(ranks[ids[0].index()], 0);
        assert_eq!(ranks[ids[1].index()], 1);
        assert_eq!(ranks[ids[2].index()], 1);
        assert_eq!(ranks[ids[3].index()], 2);
    }

    #[test]
    fn modality_retention_drops_subgraph() {
        let mut g = ModelGraph::new("mm");
        let a = g.add_layer(Layer::with_modality(
            "rgb_in",
            LayerOp::Input { shape: TensorShape::Vector { features: 8 } },
            "rgb",
        ));
        let b = g.add_layer(Layer::with_modality(
            "depth_in",
            LayerOp::Input { shape: TensorShape::Vector { features: 8 } },
            "depth",
        ));
        let head = g.add_layer(Layer::new(
            "fuse",
            LayerOp::Concat { out: TensorShape::Vector { features: 16 } },
        ));
        g.connect(a, head).unwrap();
        g.connect(b, head).unwrap();
        let sub = g.retain_modalities(&["rgb"]);
        assert_eq!(sub.num_layers(), 2);
        assert_eq!(sub.num_edges(), 1);
        assert_eq!(sub.modalities(), vec!["rgb".to_owned()]);
        sub.validate().unwrap();
    }

    #[test]
    fn serde_roundtrip() {
        let (g, _) = diamond();
        let json = serde_json::to_string(&g).unwrap();
        let back: ModelGraph = serde_json::from_str(&json).unwrap();
        assert_eq!(back.num_layers(), g.num_layers());
        assert_eq!(back.num_edges(), g.num_edges());
        assert_eq!(back.param_count(), g.param_count());
        back.validate().unwrap();
    }

    #[test]
    fn dot_output_mentions_all_layers() {
        let (g, _) = diamond();
        let dot = g.to_dot();
        for (_, l) in g.layers() {
            assert!(dot.contains(l.name()));
        }
    }
}
