//! Synthetic MMMT model generator — the scaling substrate behind the
//! paper's closing remark that H2H "can be easily configured to catch up
//! with … the growing size of DNN models" (§6).
//!
//! Generates parameterized families of multi-modality multi-task graphs
//! in the shape of Fig. 1: per-modality backbones (vision ConvNets or
//! sequence Conv1d+LSTM stacks), optional cross-talk summaries exchanged
//! between branches, and a shared fusion trunk with multiple task heads.
//! Deterministic per seed, so scaling experiments are reproducible.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::builder::ModelBuilder;
use crate::graph::{LayerId, ModelError, ModelGraph};
use crate::tensor::TensorShape;

/// Parameters of a synthetic MMMT family.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SyntheticConfig {
    /// Number of modality branches (≥ 1).
    pub modalities: usize,
    /// Weighted layers per branch (≥ 2).
    pub depth: usize,
    /// Fraction of branches that are vision (2-D conv) rather than
    /// sequence (conv1d + LSTM), in `[0, 1]`.
    pub vision_fraction: f64,
    /// Probability that an ordered branch pair exchanges a cross-talk
    /// summary (the MMMT "cross-talk" of Fig. 1), in `[0, 1]`.
    pub cross_talk: f64,
    /// Task heads on the fusion trunk (≥ 1).
    pub tasks: usize,
    /// RNG seed; equal seeds give identical graphs.
    pub seed: u64,
}

impl Default for SyntheticConfig {
    fn default() -> Self {
        SyntheticConfig {
            modalities: 3,
            depth: 8,
            vision_fraction: 0.6,
            cross_talk: 0.35,
            tasks: 2,
            seed: 7,
        }
    }
}

/// Generates a synthetic MMMT model.
///
/// # Panics
///
/// Panics if `modalities == 0`, `depth < 2` or `tasks == 0`; generated
/// graphs are otherwise valid by construction (asserted by tests).
pub fn synthetic_mmmt(cfg: &SyntheticConfig) -> ModelGraph {
    assert!(cfg.modalities >= 1, "need at least one modality");
    assert!(cfg.depth >= 2, "need at least two layers per branch");
    assert!(cfg.tasks >= 1, "need at least one task head");
    try_build(cfg).expect("synthetic models are valid by construction")
}

fn try_build(cfg: &SyntheticConfig) -> Result<ModelGraph, ModelError> {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut b = ModelBuilder::new(format!(
        "synth-m{}-d{}-s{}",
        cfg.modalities, cfg.depth, cfg.seed
    ));

    // Per-branch outputs: (mid-level summary vector, final vector).
    let mut summaries: Vec<LayerId> = Vec::new();
    let mut finals: Vec<LayerId> = Vec::new();

    for m in 0..cfg.modalities {
        let tag = format!("mod{m}");
        b.modality(Some(&tag));
        let vision = (m as f64 + 0.5) / cfg.modalities as f64 <= cfg.vision_fraction;
        let (summary, fin) = if vision {
            vision_branch(&mut b, &tag, cfg.depth, &mut rng)?
        } else {
            sequence_branch(&mut b, &tag, cfg.depth, &mut rng)?
        };
        summaries.push(summary);
        finals.push(fin);
    }

    // Cross-talk: branch j consumes branch i's mid-level summary through
    // a private adapter FC (keeps shapes trivially compatible).
    b.modality(None);
    let mut head_inputs = finals.clone();
    let mut summary_used = vec![false; cfg.modalities];
    for i in 0..cfg.modalities {
        for j in 0..cfg.modalities {
            if i == j || cfg.modalities < 2 {
                continue;
            }
            if rng.random_bool(cfg.cross_talk.clamp(0.0, 1.0)) {
                let adapter = b.fc(
                    &format!("xt.{i}to{j}"),
                    summaries[i],
                    rng.random_range(32..=128),
                )?;
                head_inputs.push(adapter);
                summary_used[i] = true;
            }
        }
    }
    // Summaries that fed no adapter still reach the fusion trunk, so no
    // branch output dangles (sinks are exactly the task heads).
    for (i, summary) in summaries.iter().enumerate() {
        if !summary_used[i] && !head_inputs.contains(summary) {
            head_inputs.push(*summary);
        }
    }

    // Fusion trunk + task heads.
    let cat = if head_inputs.len() >= 2 {
        b.concat("fuse.cat", &head_inputs)?
    } else {
        head_inputs[0]
    };
    let f1 = b.fc("fuse.fc1", cat, rng.random_range(512..=2048))?;
    let f2 = b.fc("fuse.fc2", f1, rng.random_range(256..=1024))?;
    for t in 0..cfg.tasks {
        b.fc(&format!("head.task{t}"), f2, rng.random_range(2..=64))?;
    }
    b.finish()
}

fn vision_branch(
    b: &mut ModelBuilder,
    tag: &str,
    depth: usize,
    rng: &mut StdRng,
) -> Result<(LayerId, LayerId), ModelError> {
    let side = *[96u32, 112, 128, 160].get(rng.random_range(0..4usize)).expect("static") ;
    let input = b.input(&format!("{tag}.in"), TensorShape::Feature { c: 3, h: side, w: side });
    let mut channels = 8 * rng.random_range(4u32..=8);
    let mut x = b.conv(&format!("{tag}.stem"), input, channels, rng.random_range(3..=7), 2)?;
    let mut summary = None;
    for d in 0..depth.saturating_sub(1) {
        let stride = if rng.random_bool(0.4) { 2 } else { 1 };
        if stride == 2 {
            channels = (channels * 2).min(512);
        }
        let k = if rng.random_bool(0.25) { 1 } else { 3 };
        let conv = b.conv(&format!("{tag}.conv{d}"), x, channels, k, stride)?;
        // Residual add when shapes survived.
        x = if k == 3 && stride == 1 && b.shape(conv).same_as(&b.shape(x)) {
            b.add(&format!("{tag}.res{d}"), &[conv, x])?
        } else {
            conv
        };
        if d + 1 == depth / 2 {
            summary = Some(b.global_pool(&format!("{tag}.mid_gap"), x)?);
        }
    }
    let gap = b.global_pool(&format!("{tag}.gap"), x)?;
    Ok((summary.unwrap_or(gap), gap))
}

fn sequence_branch(
    b: &mut ModelBuilder,
    tag: &str,
    depth: usize,
    rng: &mut StdRng,
) -> Result<(LayerId, LayerId), ModelError> {
    let steps = rng.random_range(500..=4000);
    let features = 8 * rng.random_range(2u32..=16);
    let input = b.input(&format!("{tag}.in"), TensorShape::Sequence { steps, features });
    let mut x = input;
    let conv_layers = depth / 2;
    let mut channels = 8 * rng.random_range(8u32..=32);
    for d in 0..conv_layers {
        let stride = if rng.random_bool(0.5) { 2 } else { 1 };
        x = b.conv1d(&format!("{tag}.c1d{d}"), x, channels, rng.random_range(3..=5), stride)?;
        channels = (channels + 64).min(512);
    }
    let hidden = 8 * rng.random_range(16u32..=64);
    let mut summary = None;
    for d in 0..(depth - conv_layers).max(1) {
        let last = d + 1 == (depth - conv_layers).max(1);
        x = b.lstm(&format!("{tag}.lstm{d}"), x, hidden, 1, !last)?;
        if !last && summary.is_none() {
            // Mid-level summary: adapter over the running sequence.
            summary = Some(b.fc(&format!("{tag}.mid_fc"), x, 64)?);
        }
    }
    let fin = b.fc(&format!("{tag}.out_fc"), x, hidden)?;
    Ok((summary.unwrap_or(fin), fin))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::ModelStats;

    #[test]
    fn default_config_generates_valid_mmmt() {
        let m = synthetic_mmmt(&SyntheticConfig::default());
        m.validate().unwrap();
        let s = ModelStats::of(&m);
        assert_eq!(s.modalities.len(), 3);
        assert!(s.conv_layers > 0);
        assert!(s.lstm_layers > 0, "default has a sequence branch");
        assert!(s.fc_layers >= 4, "fusion trunk + heads");
    }

    #[test]
    fn deterministic_per_seed() {
        let cfg = SyntheticConfig::default();
        let a = synthetic_mmmt(&cfg);
        let c = synthetic_mmmt(&cfg);
        assert_eq!(
            serde_json::to_string(&a).unwrap(),
            serde_json::to_string(&c).unwrap(),
            "same seed must generate identical graphs"
        );
        let d = synthetic_mmmt(&SyntheticConfig { seed: 8, ..cfg });
        assert_ne!(
            serde_json::to_string(&a).unwrap(),
            serde_json::to_string(&d).unwrap(),
            "different seeds should differ"
        );
    }

    #[test]
    fn scales_with_modalities_and_depth() {
        let small = ModelStats::of(&synthetic_mmmt(&SyntheticConfig {
            modalities: 2,
            depth: 4,
            ..Default::default()
        }));
        let big = ModelStats::of(&synthetic_mmmt(&SyntheticConfig {
            modalities: 6,
            depth: 12,
            ..Default::default()
        }));
        assert!(big.layers > small.layers * 2);
        assert_eq!(big.modalities.len(), 6);
    }

    #[test]
    fn cross_talk_dial_adds_edges() {
        let none = synthetic_mmmt(&SyntheticConfig { cross_talk: 0.0, ..Default::default() });
        let full = synthetic_mmmt(&SyntheticConfig { cross_talk: 1.0, ..Default::default() });
        let n0 = ModelStats::of(&none);
        let n1 = ModelStats::of(&full);
        assert!(
            n1.layers > n0.layers,
            "cross-talk adapters should add layers ({} vs {})",
            n1.layers,
            n0.layers
        );
        // 3 modalities, all ordered pairs -> 6 adapters.
        let adapters = n1.layers - n0.layers;
        assert_eq!(adapters, 6);
    }

    #[test]
    fn pure_vision_family_has_no_lstm() {
        let m = synthetic_mmmt(&SyntheticConfig {
            vision_fraction: 1.0,
            ..Default::default()
        });
        assert_eq!(ModelStats::of(&m).lstm_layers, 0);
    }

    #[test]
    fn task_count_controls_sinks() {
        let m = synthetic_mmmt(&SyntheticConfig { tasks: 4, ..Default::default() });
        assert_eq!(m.sinks().len(), 4);
    }

    #[test]
    #[should_panic(expected = "at least two layers")]
    fn rejects_degenerate_depth() {
        let _ = synthetic_mmmt(&SyntheticConfig { depth: 1, ..Default::default() });
    }
}
