//! Property tests on the model formalism: cost formulas, shape
//! propagation, frontier walks and modality filtering.

use proptest::prelude::*;

use h2h_model::builder::ModelBuilder;
use h2h_model::layer::{ConvParams, FcParams, LstmParams};
use h2h_model::tensor::{DataType, TensorShape};

proptest! {
    #[test]
    fn conv_cost_formulas_are_consistent(
        n in 1u32..512, m in 1u32..512, r in 1u32..64, c in 1u32..64,
        kh in 1u32..8, kw in 1u32..8, s in 1u32..3,
    ) {
        let p = ConvParams {
            out_channels: n, in_channels: m, out_h: r, out_w: c,
            kernel_h: kh, kernel_w: kw, stride: s,
        };
        prop_assert_eq!(
            p.macs().as_u64(),
            n as u64 * m as u64 * r as u64 * c as u64 * kh as u64 * kw as u64
        );
        prop_assert_eq!(p.weight_elems(), n as u64 * m as u64 * kh as u64 * kw as u64 + n as u64);
        prop_assert_eq!(p.ofm_shape().elements(), n as u64 * r as u64 * c as u64);
    }

    #[test]
    fn fc_weights_exceed_macs_by_bias(inf in 1u32..4096, outf in 1u32..4096) {
        let p = FcParams { in_features: inf, out_features: outf };
        prop_assert_eq!(p.weight_elems(), p.macs().as_u64() + outf as u64);
    }

    #[test]
    fn lstm_macs_scale_linearly_in_seq_len(
        n in 1u32..256, h in 1u32..256, layers in 1u32..4, t in 1u32..64,
    ) {
        let base = LstmParams { in_size: n, hidden: h, layers, seq_len: 1, return_sequences: false };
        let long = LstmParams { seq_len: t, ..base };
        prop_assert_eq!(long.macs().as_u64(), base.macs().as_u64() * t as u64);
        // Weights are independent of sequence length.
        prop_assert_eq!(long.weight_elems(), base.weight_elems());
    }

    #[test]
    fn bytes_scale_with_dtype(cc in 1u32..64, h in 1u32..64, w in 1u32..64) {
        let shape = TensorShape::Feature { c: cc, h, w };
        let f32b = shape.bytes(DataType::F32).as_u64();
        prop_assert_eq!(shape.bytes(DataType::F16).as_u64() * 2, f32b);
        prop_assert_eq!(shape.bytes(DataType::I8).as_u64() * 4, f32b);
    }

    #[test]
    fn fc_chain_frontier_walk_visits_every_layer_once(widths in proptest::collection::vec(1u32..512, 1..20)) {
        let mut b = ModelBuilder::new("chain");
        let mut prev = b.input("in", TensorShape::Vector { features: 7 });
        for (i, w) in widths.iter().enumerate() {
            prev = b.fc(&format!("fc{i}"), prev, *w).unwrap();
        }
        let m = b.finish().unwrap();
        let mut mapped = std::collections::HashSet::new();
        let mut visited = 0usize;
        loop {
            let f = m.frontier(&mapped);
            if f.is_empty() { break; }
            // A chain's frontier is always exactly one layer.
            prop_assert_eq!(f.len(), 1);
            visited += 1;
            mapped.extend(f);
        }
        prop_assert_eq!(visited, m.num_layers());
    }

    #[test]
    fn conv_tower_shapes_never_vanish(
        side in 16u32..256,
        channels in proptest::collection::vec(8u32..128, 1..8),
    ) {
        let mut b = ModelBuilder::new("tower");
        let mut x = b.input("in", TensorShape::Feature { c: 3, h: side, w: side });
        for (i, c) in channels.iter().enumerate() {
            x = b.conv(&format!("c{i}"), x, *c, 3, 2).unwrap();
            match b.shape(x) {
                TensorShape::Feature { c: oc, h, w } => {
                    prop_assert_eq!(oc, *c);
                    prop_assert!(h >= 1 && w >= 1, "same-padding never reaches zero");
                }
                other => prop_assert!(false, "unexpected shape {:?}", other),
            }
        }
        b.finish().unwrap().validate().unwrap();
    }

    #[test]
    fn retain_modalities_always_validates(keep_a in any::<bool>(), keep_b in any::<bool>()) {
        let mut b = ModelBuilder::new("mm");
        b.modality(Some("a"));
        let ia = b.input("ia", TensorShape::Vector { features: 8 });
        let fa = b.fc("fa", ia, 8).unwrap();
        b.modality(Some("b"));
        let ib = b.input("ib", TensorShape::Vector { features: 8 });
        let fb = b.fc("fb", ib, 8).unwrap();
        b.modality(None);
        let cat = b.concat("cat", &[fa, fb]).unwrap();
        b.fc("head", cat, 2).unwrap();
        let m = b.finish().unwrap();

        let mut keep: Vec<&str> = Vec::new();
        if keep_a { keep.push("a"); }
        if keep_b { keep.push("b"); }
        let sub = m.retain_modalities(&keep);
        if sub.num_layers() > 0 {
            sub.validate().unwrap();
        }
        if !keep.is_empty() {
            // One model input per retained modality; with no modalities
            // retained only the (now input-less) shared trunk remains.
            prop_assert_eq!(sub.sources().len(), keep.len());
        }
    }
}
