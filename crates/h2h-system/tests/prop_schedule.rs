//! Property tests on the scheduler stack: evaluator well-formedness on
//! random systems, incremental↔full equivalence, and event-sim
//! agreement, all over randomized FC-chain workloads and constant-cost
//! accelerators (exact arithmetic, no catalog noise).

use proptest::prelude::*;

use h2h_model::builder::ModelBuilder;
use h2h_model::graph::{LayerId, ModelGraph};
use h2h_model::tensor::TensorShape;
use h2h_model::units::Seconds;
use h2h_system::incremental::IncrementalSchedule;
use h2h_system::locality::LocalityState;
use h2h_system::mapping::Mapping;
use h2h_system::schedule::Evaluator;
use h2h_system::sim::{simulate, SimConfig};
use h2h_system::system::AccId;
use h2h_system::testutil::{const_system, ConstAccel};

fn build_chains(branches: &[Vec<u32>]) -> ModelGraph {
    let mut b = ModelBuilder::new("prop-sys");
    let mut tails = Vec::new();
    for (bi, widths) in branches.iter().enumerate() {
        let mut prev = b.input(&format!("in{bi}"), TensorShape::Vector { features: 17 });
        for (i, w) in widths.iter().enumerate() {
            prev = b.fc(&format!("b{bi}f{i}"), prev, *w).unwrap();
        }
        tails.push(prev);
    }
    if tails.len() >= 2 {
        let cat = b.concat("cat", &tails).unwrap();
        b.fc("head", cat, 3).unwrap();
    } else {
        b.fc("head", tails[0], 3).unwrap();
    }
    b.finish().unwrap()
}

fn strategy() -> impl Strategy<Value = (ModelGraph, Vec<usize>, Vec<f64>)> {
    (
        proptest::collection::vec(proptest::collection::vec(1u32..700, 1..6), 1..4),
        proptest::collection::vec(0usize..4, 40),
        proptest::collection::vec(1e-4f64..5e-3, 4),
    )
        .prop_map(|(branches, picks, speeds)| (build_chains(&branches), picks, speeds))
}

fn setup(
    model: &ModelGraph,
    picks: &[usize],
    speeds: &[f64],
) -> (h2h_system::SystemSpec, Mapping) {
    let sys = const_system(
        speeds
            .iter()
            .enumerate()
            .map(|(i, s)| ConstAccel::universal(&format!("u{i}"), *s))
            .collect(),
        2e6,
    );
    let mut map = Mapping::new(model);
    for (i, id) in model.topo_order().into_iter().enumerate() {
        map.set(id, AccId::new(picks.get(i).copied().unwrap_or(0) % speeds.len()));
    }
    (sys, map)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

    #[test]
    fn evaluator_invariants((model, picks, speeds) in strategy()) {
        let (sys, map) = setup(&model, &picks, &speeds);
        let ev = Evaluator::new(&model, &sys);
        let sched = ev.evaluate(&map, &LocalityState::new(&sys));
        let mut max = 0.0f64;
        for id in model.layer_ids() {
            let t = sched.timing(id).unwrap();
            prop_assert!(t.finish >= t.start);
            max = max.max(t.finish.as_f64());
            for p in model.predecessors(id) {
                prop_assert!(t.start.as_f64() >= sched.timing(p).unwrap().finish.as_f64() - 1e-15);
            }
        }
        prop_assert!((sched.makespan().as_f64() - max).abs() < 1e-15);
        // Busy accounting: the makespan can never exceed total busy time
        // and never undercuts the busiest accelerator.
        let busiest = sched.per_acc_busy().iter().map(|s| s.as_f64()).fold(0.0, f64::max);
        prop_assert!(sched.makespan().as_f64() >= busiest - 1e-12);
    }

    #[test]
    fn incremental_equals_full_after_random_changes(
        (model, picks, speeds) in strategy(),
        victims in proptest::collection::vec((0usize..64, 1e-5f64..1e-2), 1..5),
    ) {
        let (sys, map) = setup(&model, &picks, &speeds);
        let ev = Evaluator::new(&model, &sys);
        let loc = LocalityState::new(&sys);
        let mut inc = IncrementalSchedule::new(&ev, &map, &loc);

        // Apply random duration overrides and propagate.
        let order = model.topo_order();
        let mut changed: Vec<(LayerId, Seconds)> = Vec::new();
        for (vi, d) in &victims {
            let layer = order[vi % order.len()];
            changed.push((layer, Seconds::new(*d)));
        }
        for (l, d) in &changed {
            inc.set_duration(*l, *d);
        }
        let seeds: Vec<LayerId> = changed.iter().map(|(l, _)| *l).collect();
        inc.propagate(&seeds);
        let mk_inc = inc.makespan().as_f64();

        // Reference: recompute the same recurrence from scratch.
        let full = ev.evaluate(&map, &loc);
        let mut dur: Vec<f64> = model
            .layer_ids()
            .map(|id| {
                let t = full.timing(id).unwrap();
                (t.finish - t.start).as_f64()
            })
            .collect::<Vec<_>>();
        // Dense index mapping (ids are dense for builder-made graphs).
        for (l, d) in &changed {
            dur[l.index()] = d.as_f64();
        }
        let mut finish = vec![0.0f64; model.id_bound()];
        let mut acc_ready = vec![0.0f64; sys.num_accs()];
        let mut mk_ref = 0.0f64;
        for id in model.topo_order() {
            let deps = model
                .predecessors(id)
                .map(|p| finish[p.index()])
                .fold(0.0f64, f64::max);
            let a = map.acc_of(id).index();
            let start = deps.max(acc_ready[a]);
            let end = start + dur[id.index()];
            finish[id.index()] = end;
            acc_ready[a] = end;
            mk_ref = mk_ref.max(end);
        }
        prop_assert!((mk_inc - mk_ref).abs() < 1e-12, "incremental {mk_inc} vs reference {mk_ref}");
    }

    #[test]
    fn random_star_topologies_keep_incremental_and_sim_exact(
        (model, picks, speeds) in strategy(),
        links in proptest::collection::vec(5e5f64..5e6, 4),
        host in 5e5f64..5e6,
        moves in proptest::collection::vec((0usize..64, 0usize..4), 1..6),
    ) {
        // Per-link rates: after arbitrary move/refresh/propagate
        // sequences the incremental schedule must still equal a fresh
        // full evaluation, and the dedicated-link event sim must agree
        // with the analytical makespan — the whole evaluator/delta/sim
        // triangle stays exact on non-uniform fabrics.
        use h2h_model::units::BytesPerSec;
        use h2h_system::topology::Topology;
        let (sys, mut map) = setup(&model, &picks, &speeds);
        let n = sys.num_accs();
        let topo = Topology::star(
            BytesPerSec::new(host),
            links.iter().take(n).map(|r| BytesPerSec::new(*r)).collect(),
        );
        let sys = sys.with_topology(topo);
        let ev = Evaluator::new(&model, &sys);
        let loc = LocalityState::new(&sys);
        let mut inc = IncrementalSchedule::new(&ev, &map, &loc);
        let order = model.topo_order();
        for (vi, acc) in &moves {
            let layer = order[vi % order.len()];
            let to = AccId::new(acc % n);
            if map.acc_of(layer) == to {
                continue;
            }
            map.set(layer, to);
            let mut seeds = inc.move_layer(layer, to);
            seeds.extend(inc.refresh_costs(&ev, &map, &loc, model.layer_ids()));
            inc.propagate(&seeds);
        }
        inc.assert_matches_full(&ev, &map, &loc);
        let analytic = ev.evaluate(&map, &loc).makespan().as_f64();
        let mk_inc = inc.makespan().as_f64();
        prop_assert!((analytic - mk_inc).abs() <= analytic.max(1e-12) * 1e-12);
        let sim = simulate(&model, &sys, &map, &loc, SimConfig::dedicated()).makespan().as_f64();
        prop_assert!(
            (analytic - sim).abs() <= analytic.max(1e-12) * 1e-6,
            "analytic {analytic} vs sim {sim}"
        );
    }

    #[test]
    fn flat_layer_cost_is_bitwise_equal_to_pointer_chasing_reference(
        model_sel in 0usize..8,
        fabric_sel in 0usize..3,
        batch_sel in 0usize..3,
        picks in proptest::collection::vec(0usize..64, 160),
        pin_mask in proptest::collection::vec(any::<bool>(), 160),
        fuse_mask in proptest::collection::vec(any::<bool>(), 320),
        keep_mask in proptest::collection::vec(any::<bool>(), 160),
    ) {
        // The SoA kernel (`layer_cost`) must reproduce the retained
        // pointer-chasing implementation (`layer_cost_reference`)
        // *bitwise* — every `LayerCost` field, not just the makespan —
        // across the zoo, the three bench fabrics, random valid
        // mappings, random pin/fuse states and serving batch sizes.
        use h2h_system::system::{BandwidthClass, SystemSpec};

        let models = h2h_model::zoo::all_models();
        let model = &models[model_sel % models.len()];
        let fabric = ["uniform", "skewed", "switched"][fabric_sel];
        let sys = SystemSpec::standard_with_topology(
            BandwidthClass::LowMinus,
            Some(fabric),
        ).unwrap();
        let batch = [1u32, 4, 16][batch_sel];

        let order = model.topo_order();
        let mut map = Mapping::new(model);
        for (i, id) in order.iter().copied().enumerate() {
            let supp: Vec<AccId> = sys
                .acc_ids()
                .filter(|a| sys.acc(*a).supports(model.layer(id)))
                .collect();
            prop_assert!(!supp.is_empty());
            map.set(id, supp[picks.get(i).copied().unwrap_or(0) % supp.len()]);
        }
        let mut loc = LocalityState::new(&sys);
        for (i, id) in order.iter().copied().enumerate() {
            if pin_mask.get(i).copied().unwrap_or(false) && model.layer(id).has_weights() {
                let _ = loc.try_pin(model, &sys, id, map.acc_of(id));
            }
        }
        for (i, (from, to, _)) in model.edges().enumerate() {
            if fuse_mask.get(i).copied().unwrap_or(false) && map.acc_of(from) == map.acc_of(to) {
                let _ = loc.try_fuse(model, &sys, from, to, map.acc_of(from));
            }
        }

        let ev = Evaluator::new(model, &sys).with_batch(batch);
        for id in order.iter().copied() {
            let flat = ev.layer_cost(&map, &loc, id);
            let reference = ev.layer_cost_reference(&map, &loc, id);
            prop_assert_eq!(flat, reference, "layer {:?} on {}/{}", id, model.name(), fabric);
        }

        // Partially mapped states (the frontier search of step 1):
        // unmapped producers and consumers route through the host in
        // both implementations.
        let mut partial = Mapping::new(model);
        for (i, id) in order.iter().copied().enumerate() {
            if keep_mask.get(i).copied().unwrap_or(true) {
                partial.set(id, map.acc_of(id));
            }
        }
        let empty = LocalityState::new(&sys);
        for (i, id) in order.iter().copied().enumerate() {
            if keep_mask.get(i).copied().unwrap_or(true) {
                let flat = ev.layer_cost(&partial, &empty, id);
                let reference = ev.layer_cost_reference(&partial, &empty, id);
                prop_assert_eq!(flat, reference, "partial layer {:?} on {}", id, model.name());
            }
        }
    }

    #[test]
    fn sim_matches_analytic_with_random_locality(
        (model, picks, speeds) in strategy(),
        pin_mask in proptest::collection::vec(any::<bool>(), 40),
        fuse_mask in proptest::collection::vec(any::<bool>(), 40),
    ) {
        let (sys, map) = setup(&model, &picks, &speeds);
        let mut loc = LocalityState::new(&sys);
        for (i, id) in model.topo_order().into_iter().enumerate() {
            if pin_mask.get(i).copied().unwrap_or(false) && model.layer(id).has_weights() {
                let _ = loc.try_pin(&model, &sys, id, map.acc_of(id));
            }
        }
        for (i, (from, to, _)) in model.edges().enumerate() {
            if fuse_mask.get(i).copied().unwrap_or(false) && map.acc_of(from) == map.acc_of(to) {
                let _ = loc.try_fuse(&model, &sys, from, to, map.acc_of(from));
            }
        }
        let ev = Evaluator::new(&model, &sys);
        let analytic = ev.evaluate(&map, &loc).makespan().as_f64();
        let sim = simulate(&model, &sys, &map, &loc, SimConfig::dedicated()).makespan().as_f64();
        prop_assert!(
            (analytic - sim).abs() <= analytic.max(1e-12) * 1e-6,
            "analytic {analytic} vs sim {sim}"
        );
    }
}
