//! Property tests of the incremental delta engine against the full
//! evaluator: over every zoo model × every bandwidth class, randomized
//! move sequences (re-queue a layer onto another capable accelerator,
//! refresh its costs, propagate the affected cone) must reproduce the
//! full evaluation's makespan — and rollback must restore the exact
//! pre-move state.

use proptest::prelude::*;

use h2h_model::graph::{LayerId, ModelGraph};
use h2h_system::incremental::IncrementalSchedule;
use h2h_system::locality::LocalityState;
use h2h_system::mapping::Mapping;
use h2h_system::schedule::Evaluator;
use h2h_system::system::{AccId, BandwidthClass, SystemSpec};

/// First-capable-accelerator mapping (valid for every zoo model on the
/// standard system).
fn base_mapping(model: &ModelGraph, system: &SystemSpec) -> Mapping {
    let mut mapping = Mapping::new(model);
    for (id, layer) in model.layers() {
        let acc = system
            .acc_ids()
            .find(|a| system.acc(*a).supports(layer))
            .expect("standard system supports every zoo layer");
        mapping.set(id, acc);
    }
    mapping
}

/// Applies one randomized move through the delta path: re-queue,
/// refresh both touched accelerators' layers, propagate.
fn apply_move(
    inc: &mut IncrementalSchedule,
    ev: &Evaluator<'_>,
    mapping: &mut Mapping,
    loc: &LocalityState,
    layer: LayerId,
    to: AccId,
) {
    let from = mapping.acc_of(layer);
    mapping.set(layer, to);
    let mut seeds = inc.move_layer(layer, to);
    let dirty: Vec<LayerId> = inc
        .queue(from)
        .iter()
        .chain(inc.queue(to).iter())
        .copied()
        .collect();
    seeds.extend(inc.refresh_costs(ev, mapping, loc, dirty));
    inc.propagate(&seeds);
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 3, ..ProptestConfig::default() })]

    #[test]
    fn randomized_move_sequences_match_full_evaluation(
        picks in proptest::collection::vec((any::<usize>(), any::<usize>()), 12),
    ) {
        for model in h2h_model::zoo::all_models() {
            for bw in BandwidthClass::ALL {
                let system = SystemSpec::standard(bw);
                let ev = Evaluator::new(&model, &system);
                let mut mapping = base_mapping(&model, &system);
                // Random (but capacity-valid) pins exercise the
                // weight-term branch of the cost derivation.
                let mut loc = LocalityState::new(&system);
                for (k, id) in model.topo_order().into_iter().enumerate() {
                    if k % 3 == 0 && model.layer(id).has_weights() {
                        let _ = loc.try_pin(&model, &system, id, mapping.acc_of(id));
                    }
                }
                let mut inc = IncrementalSchedule::new(&ev, &mapping, &loc);
                let layers = model.topo_order();
                for (layer_pick, acc_pick) in &picks {
                    let layer = layers[layer_pick % layers.len()];
                    // Moving a pinned layer would strand its pin on the
                    // old accelerator; production strips pins first, so
                    // the equivalence exercise skips those layers.
                    if loc.is_pinned(layer) {
                        continue;
                    }
                    let capable: Vec<AccId> = system
                        .acc_ids()
                        .filter(|a| system.acc(*a).supports(model.layer(layer)))
                        .collect();
                    let to = capable[acc_pick % capable.len()];
                    if to == mapping.acc_of(layer) {
                        continue;
                    }
                    apply_move(&mut inc, &ev, &mut mapping, &loc, layer, to);
                }
                let full = ev.evaluate(&mapping, &loc);
                let inc_mk = inc.makespan().as_f64();
                let full_mk = full.makespan().as_f64();
                prop_assert!(
                    (inc_mk - full_mk).abs() <= full_mk * 1e-12,
                    "{} at {}: incremental {inc_mk} vs full {full_mk}",
                    model.name(),
                    bw.label()
                );
                inc.assert_matches_full(&ev, &mapping, &loc);
                // Aggregate coherence: proxy energy/bottleneck track the
                // full schedule (float re-association tolerance).
                let proxy = inc.proxy();
                let full_energy = full.energy().total().as_f64();
                prop_assert!(
                    (proxy.energy_total - full_energy).abs()
                        <= full_energy.abs().max(1e-12) * 1e-9,
                    "energy drift: {} vs {}",
                    proxy.energy_total,
                    full_energy
                );
                prop_assert!(
                    (proxy.bottleneck_busy.as_f64() - full.bottleneck_busy().as_f64()).abs()
                        <= full.bottleneck_busy().as_f64() * 1e-9
                );
            }
        }
    }

    #[test]
    fn savepoint_toggle_then_fast_revert_equals_never_toggled(
        picks in proptest::collection::vec((any::<usize>(), any::<usize>()), 5),
        toggles in proptest::collection::vec(any::<usize>(), 4),
    ) {
        // The O(cone) guard-revert contract: after random moves inside a
        // transaction, mark a savepoint, apply toggle-like mutations
        // (cost refreshes against a perturbed locality + propagation),
        // and roll back to the savepoint — timings, durations, queues,
        // aggregates and makespan must all equal the never-toggled state
        // bitwise. A full rollback afterwards must still restore the
        // pre-transaction state exactly (savepoint entries must not
        // corrupt the outer undo log).
        for model in h2h_model::zoo::all_models() {
            let system = SystemSpec::standard(BandwidthClass::LowMinus);
            let ev = Evaluator::new(&model, &system);
            let mut mapping = base_mapping(&model, &system);
            let loc = LocalityState::new(&system);
            let mut inc = IncrementalSchedule::new(&ev, &mapping, &loc);
            let reference = inc.clone();
            let layers = model.topo_order();

            inc.begin();
            for (layer_pick, acc_pick) in &picks {
                let layer = layers[layer_pick % layers.len()];
                let capable: Vec<AccId> = system
                    .acc_ids()
                    .filter(|a| system.acc(*a).supports(model.layer(layer)))
                    .collect();
                let to = capable[acc_pick % capable.len()];
                if to == mapping.acc_of(layer) {
                    continue;
                }
                apply_move(&mut inc, &ev, &mut mapping, &loc, layer, to);
            }
            let at_savepoint = inc.clone();
            let sp = inc.savepoint();

            // Toggle-like mutations: pin-perturbed cost refreshes plus
            // propagation, exactly the shape of a risky-guard toggle.
            let mut toggled_loc = loc.clone();
            for layer_pick in &toggles {
                let layer = layers[layer_pick % layers.len()];
                if model.layer(layer).has_weights() {
                    let _ = toggled_loc.try_pin(&model, &system, layer, mapping.acc_of(layer));
                }
            }
            let seeds = inc.refresh_costs(&ev, &mapping, &toggled_loc, model.layer_ids());
            inc.propagate(&seeds);

            inc.rollback_to(&sp);
            prop_assert!(inc.makespan() == at_savepoint.makespan());
            for id in model.layer_ids() {
                prop_assert!(inc.start_of(id) == at_savepoint.start_of(id));
                prop_assert!(inc.finish_of(id) == at_savepoint.finish_of(id));
                prop_assert!(inc.duration_of(id) == at_savepoint.duration_of(id));
            }
            for acc in system.acc_ids() {
                prop_assert!(inc.queue(acc) == at_savepoint.queue(acc));
            }
            prop_assert!(inc.proxy() == at_savepoint.proxy());

            // Touches after the savepoint revert must journal correctly,
            // including through a savepoint that is *committed* (never
            // rolled back — its duplicate journal entries exercise the
            // reverse-order outer rollback): mutate again under a fresh
            // savepoint, keep it, then fully roll back to the
            // pre-transaction state.
            let _committed = inc.savepoint();
            let seeds = inc.refresh_costs(&ev, &mapping, &toggled_loc, model.layer_ids());
            inc.propagate(&seeds);
            inc.rollback();
            prop_assert!(inc.makespan() == reference.makespan());
            for id in model.layer_ids() {
                prop_assert!(inc.finish_of(id) == reference.finish_of(id));
                prop_assert!(inc.duration_of(id) == reference.duration_of(id));
            }
            for acc in system.acc_ids() {
                prop_assert!(inc.queue(acc) == reference.queue(acc));
            }
            prop_assert!(inc.proxy() == reference.proxy());
        }
    }

    #[test]
    fn transactional_moves_roll_back_to_exact_state(
        picks in proptest::collection::vec((any::<usize>(), any::<usize>()), 6),
    ) {
        for model in h2h_model::zoo::all_models() {
            let system = SystemSpec::standard(BandwidthClass::LowMinus);
            let ev = Evaluator::new(&model, &system);
            let mut mapping = base_mapping(&model, &system);
            let loc = LocalityState::new(&system);
            let mut inc = IncrementalSchedule::new(&ev, &mapping, &loc);
            let reference = inc.clone();
            let reference_mapping = mapping.clone();

            inc.begin();
            let layers = model.topo_order();
            for (layer_pick, acc_pick) in &picks {
                let layer = layers[layer_pick % layers.len()];
                let capable: Vec<AccId> = system
                    .acc_ids()
                    .filter(|a| system.acc(*a).supports(model.layer(layer)))
                    .collect();
                let to = capable[acc_pick % capable.len()];
                if to == mapping.acc_of(layer) {
                    continue;
                }
                apply_move(&mut inc, &ev, &mut mapping, &loc, layer, to);
            }
            inc.rollback();
            mapping = reference_mapping;
            let _ = &mapping;

            prop_assert!(inc.makespan() == reference.makespan());
            for id in model.layer_ids() {
                prop_assert!(inc.finish_of(id) == reference.finish_of(id));
                prop_assert!(inc.duration_of(id) == reference.duration_of(id));
            }
            for acc in system.acc_ids() {
                prop_assert!(inc.queue(acc) == reference.queue(acc));
            }
            prop_assert!(inc.proxy() == reference.proxy());
        }
    }
}
