//! ASCII Gantt rendering of a schedule — the textual equivalent of the
//! paper's Fig. 3 timeline blocks, used by examples and for debugging
//! mapping decisions.
//!
//! Each accelerator gets one row; layer executions appear as labelled
//! blocks scaled to a fixed character width, idle time as dots:
//!
//! ```text
//! A0 JZ |conv1~~~~~~~~....conv3~~~~|
//! A1 TM |......conv2~~~~~..........|
//! ```

use h2h_model::graph::ModelGraph;
use h2h_model::units::Seconds;

use crate::mapping::Mapping;
use crate::schedule::Schedule;
use crate::system::SystemSpec;

/// Renders `schedule` as an ASCII Gantt chart `width` characters wide.
/// Accelerators with no layers are omitted. Layer names are truncated to
/// fit their blocks; sub-character blocks render as `#`.
pub fn render_gantt(
    model: &ModelGraph,
    system: &SystemSpec,
    mapping: &Mapping,
    schedule: &Schedule,
    width: usize,
) -> String {
    let width = width.max(10);
    let span = schedule.makespan().as_f64().max(1e-12);
    let scale = width as f64 / span;
    let mut out = String::new();
    out.push_str(&format!(
        "makespan {} — one row per accelerator, {width} cols\n",
        schedule.makespan()
    ));

    for acc in system.acc_ids() {
        let mut layers: Vec<_> = model
            .layer_ids()
            .filter(|id| mapping.get(*id) == Some(acc))
            .filter_map(|id| schedule.timing(id).map(|t| (id, *t)))
            .collect();
        if layers.is_empty() {
            continue;
        }
        layers.sort_by(|a, b| a.1.start.partial_cmp(&b.1.start).expect("finite times"));

        let mut row = vec![b'.'; width];
        for (id, t) in &layers {
            let s = ((t.start.as_f64() * scale) as usize).min(width - 1);
            let e = ((t.finish.as_f64() * scale).ceil() as usize).clamp(s + 1, width);
            let name = model.layer(*id).name();
            let cells = e - s;
            let label: Vec<u8> = if cells == 1 {
                vec![b'#']
            } else {
                name.bytes()
                    .chain(std::iter::repeat(b'~'))
                    .take(cells)
                    .collect()
            };
            row[s..e].copy_from_slice(&label);
        }
        let busy: Seconds = layers
            .iter()
            .map(|(_, t)| t.finish - t.start)
            .fold(Seconds::ZERO, |a, b| a + Seconds::new(b.as_f64().max(0.0)));
        out.push_str(&format!(
            "{:<3}{:<4}|{}| {:>5.1}% busy\n",
            format!("{acc}"),
            system.acc(acc).meta().id,
            String::from_utf8(row).expect("ascii"),
            100.0 * busy.as_f64() / span,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::locality::LocalityState;
    use crate::schedule::Evaluator;
    use crate::system::AccId;
    use crate::testutil::{const_system, ConstAccel};
    use h2h_model::builder::ModelBuilder;
    use h2h_model::tensor::TensorShape;

    fn setup() -> (ModelGraph, crate::system::SystemSpec, Mapping, Schedule) {
        let mut b = ModelBuilder::new("g");
        let i = b.input("in", TensorShape::Vector { features: 64 });
        let f1 = b.fc("alpha", i, 64).unwrap();
        let f2 = b.fc("beta", i, 64).unwrap();
        let j = b.add("join", &[f1, f2]).unwrap();
        let _ = j;
        let m = b.finish().unwrap();
        let sys = const_system(
            vec![ConstAccel::universal("u0", 1e-3), ConstAccel::universal("u1", 1e-3)],
            1e9,
        );
        let ids = m.topo_order();
        let mut map = Mapping::new(&m);
        map.set(ids[0], AccId::new(0));
        map.set(ids[1], AccId::new(0));
        map.set(ids[2], AccId::new(1));
        map.set(ids[3], AccId::new(0));
        let ev = Evaluator::new(&m, &sys);
        let sched = ev.evaluate(&map, &LocalityState::new(&sys));
        (m, sys, map, sched)
    }

    #[test]
    fn gantt_shows_used_accelerators_only() {
        let (m, sys, map, sched) = setup();
        let g = render_gantt(&m, &sys, &map, &sched, 60);
        assert!(g.contains("u0"));
        assert!(g.contains("u1"));
        assert!(g.contains("alpha") || g.contains("al"));
        assert!(g.contains("beta") || g.contains("be"));
        assert!(g.contains("% busy"));
    }

    #[test]
    fn rows_have_requested_width() {
        let (m, sys, map, sched) = setup();
        let g = render_gantt(&m, &sys, &map, &sched, 40);
        for line in g.lines().skip(1) {
            let inner = line.split('|').nth(1).expect("framed row");
            assert_eq!(inner.len(), 40, "row `{line}`");
        }
    }

    #[test]
    fn width_is_clamped() {
        let (m, sys, map, sched) = setup();
        let g = render_gantt(&m, &sys, &map, &sched, 1);
        // Clamped to 10 columns, still renders.
        assert!(g.lines().count() >= 2);
    }

    #[test]
    fn renders_real_zoo_schedule() {
        let m = h2h_model::zoo::mocap();
        let sys = crate::system::SystemSpec::standard(crate::system::BandwidthClass::Mid);
        let mut map = Mapping::new(&m);
        for (id, layer) in m.layers() {
            let acc = sys.acc_ids().find(|a| sys.acc(*a).supports(layer)).unwrap();
            map.set(id, acc);
        }
        let ev = Evaluator::new(&m, &sys);
        let sched = ev.evaluate(&map, &LocalityState::new(&sys));
        let g = render_gantt(&m, &sys, &map, &sched, 100);
        assert!(g.contains("makespan"));
    }
}
