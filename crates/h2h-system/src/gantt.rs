//! ASCII Gantt rendering of a schedule — the textual equivalent of the
//! paper's Fig. 3 timeline blocks, used by examples and for debugging
//! mapping decisions.
//!
//! Each accelerator gets one row; layer executions appear as labelled
//! blocks scaled to a fixed character width, idle time as dots:
//!
//! ```text
//! A0 JZ |conv1~~~~~~~~....conv3~~~~|
//! A1 TM |......conv2~~~~~..........|
//! ```

use h2h_model::graph::ModelGraph;
use h2h_model::layer::LayerOp;
use h2h_model::units::Seconds;

use crate::locality::LocalityState;
use crate::mapping::Mapping;
use crate::schedule::Schedule;
use crate::system::{AccId, SystemSpec};
use crate::topology::Endpoint;

/// Renders `schedule` as an ASCII Gantt chart `width` characters wide.
/// Accelerators with no layers are omitted. Layer names are truncated to
/// fit their blocks; sub-character blocks render as `#`.
pub fn render_gantt(
    model: &ModelGraph,
    system: &SystemSpec,
    mapping: &Mapping,
    schedule: &Schedule,
    width: usize,
) -> String {
    let width = width.max(10);
    let span = schedule.makespan().as_f64().max(1e-12);
    let scale = width as f64 / span;
    let mut out = String::new();
    out.push_str(&format!(
        "makespan {} — one row per accelerator, {width} cols\n",
        schedule.makespan()
    ));

    for acc in system.acc_ids() {
        let mut layers: Vec<_> = model
            .layer_ids()
            .filter(|id| mapping.get(*id) == Some(acc))
            .filter_map(|id| schedule.timing(id).map(|t| (id, *t)))
            .collect();
        if layers.is_empty() {
            continue;
        }
        layers.sort_by(|a, b| a.1.start.partial_cmp(&b.1.start).expect("finite times"));

        let mut row = vec![b'.'; width];
        for (id, t) in &layers {
            let s = ((t.start.as_f64() * scale) as usize).min(width - 1);
            let e = ((t.finish.as_f64() * scale).ceil() as usize).clamp(s + 1, width);
            let name = model.layer(*id).name();
            let cells = e - s;
            let label: Vec<u8> = if cells == 1 {
                vec![b'#']
            } else {
                name.bytes()
                    .chain(std::iter::repeat(b'~'))
                    .take(cells)
                    .collect()
            };
            row[s..e].copy_from_slice(&label);
        }
        let busy: Seconds = layers
            .iter()
            .map(|(_, t)| t.finish - t.start)
            .fold(Seconds::ZERO, |a, b| a + Seconds::new(b.as_f64().max(0.0)));
        out.push_str(&format!(
            "{:<3}{:<4}|{}| {:>5.1}% busy\n",
            format!("{acc}"),
            system.acc(acc).meta().id,
            String::from_utf8(row).expect("ascii"),
            100.0 * busy.as_f64() / span,
        ));
    }
    out
}

/// One interconnect lane: a host↔accelerator link or a direct peer
/// link, plus the transfer spans scheduled on it.
struct Lane {
    label: String,
    rate: h2h_model::units::BytesPerSec,
    /// `(from_col, to_col)` character spans of transfers on this lane.
    spans: Vec<(usize, usize)>,
}

/// Renders the interconnect side of `schedule` as one ASCII lane **per
/// link** — host↔accelerator links and (switched fabrics) direct peer
/// links — instead of a single shared "Ethernet" row, so contended
/// links are visible: cells carrying one transfer render as `#`,
/// cells where `n > 1` transfers overlap render the digit `n` (`+`
/// beyond 9). Transfer spans are read off the schedule's per-layer
/// decomposition (weight download, IFM downloads, OFM upload) and
/// placed on every link their route crosses; pinned weights and fused
/// edges move no interconnect data and draw nothing.
pub fn render_link_gantt(
    model: &ModelGraph,
    system: &SystemSpec,
    mapping: &Mapping,
    locality: &LocalityState,
    schedule: &Schedule,
    width: usize,
) -> String {
    let width = width.max(10);
    let topo = system.topology();
    let span = schedule.makespan().as_f64().max(1e-12);
    let scale = width as f64 / span;
    let n = system.num_accs();

    // Lane 0..n: host <-> A<i>; then one lane per direct peer link.
    let mut lanes: Vec<Lane> = (0..n)
        .map(|i| Lane {
            label: format!("host<->A{i}"),
            rate: topo.link(AccId::new(i)),
            spans: Vec::new(),
        })
        .collect();
    let mut peer_lane = vec![usize::MAX; n * n];
    for (a, b, r) in topo.peers() {
        peer_lane[a * n + b] = lanes.len();
        lanes.push(Lane { label: format!("A{a}<->A{b}"), rate: *r, spans: Vec::new() });
    }

    let cols = |from: f64, to: f64| -> (usize, usize) {
        let s = ((from * scale) as usize).min(width - 1);
        let e = ((to * scale).ceil() as usize).clamp(s + 1, width);
        (s, e)
    };
    // Every link the `src → dst` route crosses gets the span: both
    // endpoint links of a host relay, the single lane of a direct peer.
    let mark = |lanes: &mut Vec<Lane>, src: Endpoint, dst: Endpoint, s: usize, e: usize| {
        match (src, dst) {
            (Endpoint::Host, Endpoint::Acc(a)) | (Endpoint::Acc(a), Endpoint::Host) => {
                lanes[a.index()].spans.push((s, e));
            }
            (Endpoint::Acc(a), Endpoint::Acc(b)) => {
                let (lo, hi) = (a.index().min(b.index()), a.index().max(b.index()));
                let pl = peer_lane[lo * n + hi];
                if pl != usize::MAX {
                    lanes[pl].spans.push((s, e));
                } else {
                    lanes[a.index()].spans.push((s, e));
                    if lo != hi {
                        lanes[b.index()].spans.push((s, e));
                    }
                }
            }
            (Endpoint::Host, Endpoint::Host) => {}
        }
    };

    let edge_is_local = |from, to| locality.edge_is_local(model, mapping, from, to);

    for id in model.layer_ids() {
        let Some(t) = schedule.timing(id) else { continue };
        let acc = mapping.acc_of(id);
        let here = Endpoint::Acc(acc);
        let dram_bw = system.acc(acc).dram_bandwidth();
        // Weight download first, then IFM, compute, OFM — the exact
        // serialization `LayerCost::duration` charges. A pinned
        // layer's weight term is a pure DRAM read and draws nothing.
        let w_end = t.start.as_f64() + t.weight_xfer.as_f64();
        if t.weight_xfer > Seconds::ZERO && !locality.is_pinned(id) {
            let (s, e) = cols(t.start.as_f64(), w_end);
            mark(&mut lanes, Endpoint::Host, here, s, e);
        }
        // The IFM window mixes interconnect downloads with fused-edge
        // DRAM reads, serialized in predecessor order (layer_cost's
        // term order). Carve it proportionally — the proportions are
        // batch-invariant, every IFM term scales by the batch factor —
        // and mark only the interconnect terms on their routes.
        if t.ifm_xfer > Seconds::ZERO {
            let terms: Vec<(Option<Endpoint>, f64)> = model
                .predecessors(id)
                .map(|pred| {
                    let bytes = model.edge_bytes(pred, id).expect("edge exists");
                    if edge_is_local(pred, id) {
                        (None, dram_bw.transfer_time(bytes).as_f64())
                    } else {
                        let src = crate::topology::edge_src(model, mapping, pred);
                        (Some(src), topo.path_bw(src, here).transfer_time(bytes).as_f64())
                    }
                })
                .collect();
            let total: f64 = terms.iter().map(|(_, d)| d).sum();
            if total > 0.0 {
                let window = t.ifm_xfer.as_f64();
                let mut off = 0.0;
                for (src, d) in terms {
                    let from = w_end + off / total * window;
                    off += d;
                    let to = w_end + off / total * window;
                    if let (Some(src), true) = (src, d > 0.0) {
                        let (s, e) = cols(from, to);
                        mark(&mut lanes, src, here, s, e);
                    }
                }
            }
        }
        // Likewise the OFM window: the interconnect upload comes first,
        // a fused-consumer DRAM write second (layer_cost's term order).
        if t.ofm_xfer > Seconds::ZERO
            && !matches!(model.layer(id).op(), LayerOp::Input { .. })
        {
            let obytes = model.layer(id).ofm_bytes(h2h_model::tensor::DataType::F32);
            let is_output = model.successors(id).next().is_none();
            let any_local = model.successors(id).any(|succ| edge_is_local(id, succ));
            let eth_secs = topo
                .ofm_route(model, mapping, locality, id)
                .map(|(bw, _)| bw.transfer_time(obytes).as_f64())
                .unwrap_or(0.0);
            let dram_secs =
                if any_local { dram_bw.transfer_time(obytes).as_f64() } else { 0.0 };
            let total = eth_secs + dram_secs;
            if eth_secs > 0.0 && total > 0.0 {
                let window = t.ofm_xfer.as_f64();
                let o_start = (t.finish.as_f64() - window).max(0.0);
                let eth_end = o_start + eth_secs / total * window;
                let (s, e) = cols(o_start, eth_end);
                for succ in model.successors(id) {
                    if !edge_is_local(id, succ) {
                        mark(&mut lanes, here, Endpoint::Acc(mapping.acc_of(succ)), s, e);
                    }
                }
                if is_output {
                    mark(&mut lanes, here, Endpoint::Host, s, e);
                }
            }
        }
    }

    let mut out = String::new();
    out.push_str(&format!(
        "interconnect lanes (one per link, {width} cols; digits = overlapping transfers)\n"
    ));
    for lane in &lanes {
        if lane.spans.is_empty() {
            continue;
        }
        let mut depth = vec![0u32; width];
        let mut busy_cols = 0usize;
        for (s, e) in &lane.spans {
            for d in &mut depth[*s..*e] {
                *d += 1;
            }
        }
        let row: String = depth
            .iter()
            .map(|d| match d {
                0 => '.',
                1 => '#',
                2..=9 => char::from_digit(*d, 10).expect("single digit"),
                _ => '+',
            })
            .collect();
        for d in &depth {
            if *d > 0 {
                busy_cols += 1;
            }
        }
        out.push_str(&format!(
            "{:<10}|{}| {:>5.1}% busy @ {}\n",
            lane.label,
            row,
            100.0 * busy_cols as f64 / width as f64,
            lane.rate,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::locality::LocalityState;
    use crate::schedule::Evaluator;
    use crate::system::AccId;
    use crate::testutil::{const_system, ConstAccel};
    use h2h_model::builder::ModelBuilder;
    use h2h_model::tensor::TensorShape;

    fn setup() -> (ModelGraph, crate::system::SystemSpec, Mapping, Schedule) {
        let mut b = ModelBuilder::new("g");
        let i = b.input("in", TensorShape::Vector { features: 64 });
        let f1 = b.fc("alpha", i, 64).unwrap();
        let f2 = b.fc("beta", i, 64).unwrap();
        let j = b.add("join", &[f1, f2]).unwrap();
        let _ = j;
        let m = b.finish().unwrap();
        let sys = const_system(
            vec![ConstAccel::universal("u0", 1e-3), ConstAccel::universal("u1", 1e-3)],
            1e9,
        );
        let ids = m.topo_order();
        let mut map = Mapping::new(&m);
        map.set(ids[0], AccId::new(0));
        map.set(ids[1], AccId::new(0));
        map.set(ids[2], AccId::new(1));
        map.set(ids[3], AccId::new(0));
        let ev = Evaluator::new(&m, &sys);
        let sched = ev.evaluate(&map, &LocalityState::new(&sys));
        (m, sys, map, sched)
    }

    #[test]
    fn gantt_shows_used_accelerators_only() {
        let (m, sys, map, sched) = setup();
        let g = render_gantt(&m, &sys, &map, &sched, 60);
        assert!(g.contains("u0"));
        assert!(g.contains("u1"));
        assert!(g.contains("alpha") || g.contains("al"));
        assert!(g.contains("beta") || g.contains("be"));
        assert!(g.contains("% busy"));
    }

    #[test]
    fn rows_have_requested_width() {
        let (m, sys, map, sched) = setup();
        let g = render_gantt(&m, &sys, &map, &sched, 40);
        for line in g.lines().skip(1) {
            let inner = line.split('|').nth(1).expect("framed row");
            assert_eq!(inner.len(), 40, "row `{line}`");
        }
    }

    #[test]
    fn width_is_clamped() {
        let (m, sys, map, sched) = setup();
        let g = render_gantt(&m, &sys, &map, &sched, 1);
        // Clamped to 10 columns, still renders.
        assert!(g.lines().count() >= 2);
    }

    #[test]
    fn link_lanes_show_per_link_traffic_and_contention() {
        let (m, sys, map, sched) = setup();
        let loc = LocalityState::new(&sys);
        let g = render_link_gantt(&m, &sys, &map, &loc, &sched, 60);
        // Both host links carry traffic (layers sit on both boards).
        assert!(g.contains("host<->A0"), "{g}");
        assert!(g.contains("host<->A1"), "{g}");
        assert!(g.contains('#'), "{g}");
        assert!(g.contains("% busy"), "{g}");
    }

    #[test]
    fn link_lanes_exclude_local_dram_shares() {
        // A fused co-located edge moves through DRAM: its IFM/OFM share
        // of the timing windows must not be painted on any link lane.
        // With the interconnect rate equal to the DRAM rate, fusing
        // swaps equal-duration terms, so both schedules (and the chart
        // scale) are identical in time — only the painted lane cells
        // may differ, and they must strictly shrink.
        // Weightless Add layers with a huge j -> k edge, so the edge's
        // transfer dominates the chart and its disappearance from the
        // lanes is many columns wide.
        let mut b = ModelBuilder::new("fused");
        let i1 = b.input("i1", TensorShape::Vector { features: 4_000_000 });
        let i2 = b.input("i2", TensorShape::Vector { features: 4_000_000 });
        let j = b.add("j", &[i1, i2]).unwrap();
        let k = b.add("k", &[j, i1]).unwrap();
        let _ = k;
        let m = b.finish().unwrap();
        // ConstAccel DRAM is 1e9; match the interconnect to it.
        let sys = const_system(vec![ConstAccel::universal("u0", 1e-3)], 1e9);
        let mut map = Mapping::new(&m);
        for id in m.layer_ids() {
            map.set(id, AccId::new(0));
        }
        let ev = Evaluator::new(&m, &sys);
        let busy_cells = |loc: &LocalityState| {
            let sched = ev.evaluate(&map, loc);
            render_link_gantt(&m, &sys, &map, loc, &sched, 80)
                .lines()
                .filter_map(|l| l.split('|').nth(1))
                .flat_map(|row| row.chars())
                .filter(|c| *c != '.')
                .count()
        };
        let unfused = busy_cells(&LocalityState::new(&sys));
        let mut loc = LocalityState::new(&sys);
        assert!(loc.try_fuse(&m, &sys, j, k, AccId::new(0)));
        let fused = busy_cells(&loc);
        assert!(
            fused < unfused,
            "fusing the j->k edge must reduce lane occupancy ({fused} vs {unfused})"
        );
    }

    #[test]
    fn peer_links_get_their_own_lane() {
        use crate::topology::Topology;
        use h2h_model::units::BytesPerSec;
        let mut b = ModelBuilder::new("peer");
        let i = b.input("in", TensorShape::Vector { features: 512 });
        let f1 = b.fc("up", i, 512).unwrap();
        let f2 = b.fc("down", f1, 64).unwrap();
        let _ = f2;
        let m = b.finish().unwrap();
        let sys = const_system(
            vec![ConstAccel::universal("u0", 1e-3), ConstAccel::universal("u1", 1e-3)],
            1e6,
        )
        .with_topology(Topology::switched(
            BytesPerSec::new(1e6),
            vec![BytesPerSec::new(1e6); 2],
            vec![(0, 1, BytesPerSec::new(1e8))],
        ));
        let ids = m.topo_order();
        let mut map = Mapping::new(&m);
        map.set(ids[0], AccId::new(0));
        map.set(ids[1], AccId::new(0));
        map.set(ids[2], AccId::new(1));
        let ev = Evaluator::new(&m, &sys);
        let loc = LocalityState::new(&sys);
        let sched = ev.evaluate(&map, &loc);
        let g = render_link_gantt(&m, &sys, &map, &loc, &sched, 60);
        assert!(g.contains("A0<->A1"), "direct link lane expected: {g}");
    }

    #[test]
    fn renders_real_zoo_schedule() {
        let m = h2h_model::zoo::mocap();
        let sys = crate::system::SystemSpec::standard(crate::system::BandwidthClass::Mid);
        let mut map = Mapping::new(&m);
        for (id, layer) in m.layers() {
            let acc = sys.acc_ids().find(|a| sys.acc(*a).supports(layer)).unwrap();
            map.set(id, acc);
        }
        let ev = Evaluator::new(&m, &sys);
        let sched = ev.evaluate(&map, &LocalityState::new(&sys));
        let g = render_gantt(&m, &sys, &map, &sched, 100);
        assert!(g.contains("makespan"));
    }
}
