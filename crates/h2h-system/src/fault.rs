//! Fault model: timed board/link/host fault events and the
//! degraded-fabric view the repair pipeline searches against.
//!
//! Production fabrics are not the fabric the mapping was searched on:
//! boards die, links degrade, boards throttle, and the host NIC itself
//! can falter mid-serve. This module gives those events a first-class,
//! deterministic representation:
//!
//! * [`FaultEvent`] — one timed fault at an absolute onset `at` with an
//!   optional recovery time. The full [`FaultKind`] surface:
//!   - `board:IDX@T[-T2]` — [`FaultKind::BoardDown`], the board is
//!     offline;
//!   - `link:IDX/F@T[-T2]` — [`FaultKind::LinkDegraded`], the board's
//!     host link runs at `1/F`;
//!   - `slow:IDX/F@T[-T2]` — [`FaultKind::BoardDegraded`], the board
//!     computes at `1/F` speed (thermal throttle / partial
//!     reconfiguration) but stays placeable;
//!   - `host:F@T[-T2]` — [`FaultKind::HostDegraded`], the host NIC runs
//!     at `1/F`, re-pricing every via-host route and weight stream;
//!   - `host:down@T[-T2]` — [`FaultKind::HostDown`], the host is
//!     offline: via-host traffic, weight reloads, admissions and
//!     evictions stall, while peer-linked traffic and on-board compute
//!     survive.
//! * [`FaultPlan`] — an ordered set of events plus a parser
//!   ([`FaultPlan::parse`]) shared by the CLI/bench front ends.
//! * [`FaultState`] — the instantaneous condition of the fabric at one
//!   time ([`FaultPlan::state_at`]): a down mask, per-board link and
//!   compute slowdown factors, and the host's own condition. Applying a
//!   state to a fabric ([`crate::topology::Topology::degrade`] /
//!   [`crate::system::SystemSpec::degrade`]) rebuilds the route table
//!   with the degraded link and NIC rates and with peer links of dead
//!   boards severed — cheap (O(n²) on a handful of boards) and exact: a
//!   healthy state returns a bitwise-identical fabric. Compute
//!   slowdowns ride on the degraded [`crate::system::SystemSpec`] and
//!   are applied at cost-*read* time, so a healthy-system
//!   [`crate::schedule::CostCache`] stays valid on every degraded view.
//!
//! The event simulator replays a timeline through the fault window
//! ([`crate::sim::simulate_with_faults`]); the mapping-repair path in
//! `h2h-core` uses [`FaultState`] to evacuate dead boards and re-price
//! every route-crossing edge on the degraded fabric. An empty plan is
//! the no-fault fast path everywhere — bit-identical to the historical
//! code paths, asserted zoo-wide — and plans using only the original
//! board/link kinds reproduce the pre-host-fault behavior bitwise.

use h2h_model::units::Seconds;

use crate::system::AccId;

/// What went wrong with one board's attachment to the fabric.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultKind {
    /// The board is offline: it computes nothing and its pinned weights
    /// are stranded. Its peer links are severed; host-relayed data
    /// already produced remains reachable (the host keeps the copies it
    /// relayed).
    BoardDown,
    /// The board's host link runs at `1/factor` of its healthy rate
    /// (`factor > 1`). Direct peer links are unaffected.
    LinkDegraded {
        /// Slowdown divisor applied to the host link rate.
        factor: f64,
    },
    /// The board computes at `1/factor` of its healthy speed
    /// (`factor > 1`) — a thermal throttle or partial reconfiguration.
    /// The board stays placeable; only its compute phases stretch
    /// (transfers and DRAM traffic are unaffected).
    BoardDegraded {
        /// Slowdown divisor applied to per-layer compute times.
        factor: f64,
    },
    /// The host NIC runs at `1/factor` of its healthy rate
    /// (`factor > 1`): every via-host route and weight stream
    /// re-prices. Host-scoped — the event's `acc` field is ignored.
    HostDegraded {
        /// Slowdown divisor applied to the host NIC rate.
        factor: f64,
    },
    /// The host is offline: via-host transfers, weight reloads,
    /// admissions and evictions stall until recovery, while peer-linked
    /// traffic and on-board compute survive. Host-scoped — the event's
    /// `acc` field is ignored. Fabric rates are left untouched
    /// (liveness is enforced by the sim and the serve loop, not by
    /// zeroed bandwidths).
    HostDown,
}

impl FaultKind {
    /// Whether this kind affects the host rather than one board (the
    /// event's `acc` field is then a placeholder).
    pub fn is_host_scoped(self) -> bool {
        matches!(self, FaultKind::HostDegraded { .. } | FaultKind::HostDown)
    }
}

/// One timed fault event, optionally recovering.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultEvent {
    /// The affected board. Host-scoped kinds
    /// ([`FaultKind::is_host_scoped`]) ignore it; use `AccId::new(0)`
    /// as the conventional placeholder.
    pub acc: AccId,
    /// What happens to it.
    pub kind: FaultKind,
    /// Absolute onset time (seconds on the serve/sim clock).
    pub at: Seconds,
    /// Absolute recovery time; `None` means the fault persists.
    pub recover_at: Option<Seconds>,
}

impl FaultEvent {
    /// Whether this event is in force at time `t` (`at <= t`, and
    /// before recovery when one is scheduled).
    pub fn active_at(&self, t: Seconds) -> bool {
        self.at <= t && self.recover_at.is_none_or(|r| t < r)
    }
}

/// A deterministic fault schedule: the full set of timed events one
/// serve window (or one simulation) replays through.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultPlan {
    events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// The empty plan — the no-fault fast path.
    pub fn empty() -> Self {
        FaultPlan::default()
    }

    /// A single permanent board outage at `at`.
    pub fn board_down(acc: AccId, at: Seconds) -> Self {
        FaultPlan {
            events: vec![FaultEvent { acc, kind: FaultKind::BoardDown, at, recover_at: None }],
        }
    }

    /// Appends an event (builder style).
    pub fn with_event(mut self, event: FaultEvent) -> Self {
        self.events.push(event);
        self
    }

    /// The scheduled events, in insertion order.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// True when no event is scheduled.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Every time at which the fault state can change (onsets and
    /// recoveries), sorted ascending and deduplicated.
    pub fn boundaries(&self) -> Vec<f64> {
        let mut times: Vec<f64> = self
            .events
            .iter()
            .flat_map(|e| [Some(e.at), e.recover_at])
            .flatten()
            .map(Seconds::as_f64)
            .collect();
        times.sort_by(|a, b| a.partial_cmp(b).expect("fault times are finite"));
        times.dedup();
        times
    }

    /// The instantaneous fabric condition at time `t` over `n_accs`
    /// boards: each active event contributes its down bit / slowdown
    /// factor (factors of stacked events on one board — or on the host
    /// — multiply).
    pub fn state_at(&self, t: Seconds, n_accs: usize) -> FaultState {
        let mut state = FaultState::healthy(n_accs);
        for e in self.events.iter().filter(|e| e.active_at(t)) {
            let i = e.acc.index();
            match e.kind {
                FaultKind::BoardDown => state.down[i] = true,
                FaultKind::LinkDegraded { factor } => state.link_factor[i] *= factor,
                FaultKind::BoardDegraded { factor } => state.compute_factor[i] *= factor,
                FaultKind::HostDegraded { factor } => state.host_factor *= factor,
                FaultKind::HostDown => state.host_down = true,
            }
        }
        state
    }

    /// Parses a fault spec string against the board count. Events are
    /// `;`-separated; accepted forms:
    ///
    /// * `board:IDX@T` / `board:IDX@T-T2` — board `IDX` down from `T`
    ///   seconds, optionally recovering at `T2`;
    /// * `link:IDX/F@T` / `link:IDX/F@T-T2` — board `IDX`'s host link
    ///   degraded to `1/F` of its rate (`F > 1`) from `T`, optionally
    ///   recovering at `T2`;
    /// * `slow:IDX/F@T` / `slow:IDX/F@T-T2` — board `IDX` computing at
    ///   `1/F` speed (`F > 1`) from `T`, optionally recovering at `T2`;
    /// * `host:F@T` / `host:F@T-T2` — the host NIC degraded to `1/F` of
    ///   its rate (`F > 1`);
    /// * `host:down@T` / `host:down@T-T2` — the host offline.
    ///
    /// Host windows must not overlap one another: a timeline where two
    /// host events are simultaneously in force is almost always a typo
    /// (and a down host makes a concurrent NIC slowdown meaningless),
    /// so the parser rejects it. Programmatic plans built with
    /// [`FaultPlan::with_event`] are not restricted.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message for malformed specs: unknown
    /// event kinds, out-of-range board indices, factors not above 1,
    /// negative or non-finite times, recoveries not after onsets,
    /// overlapping host windows.
    pub fn parse(spec: &str, n_accs: usize) -> Result<FaultPlan, String> {
        let secs = |s: &str| -> Result<Seconds, String> {
            let v: f64 =
                s.trim().parse().map_err(|_| format!("bad time `{s}` (seconds expected)"))?;
            if !v.is_finite() || v < 0.0 {
                return Err(format!("time `{s}` must be non-negative and finite"));
            }
            Ok(Seconds::new(v))
        };
        let window = |s: &str| -> Result<(Seconds, Option<Seconds>), String> {
            let (at, recover_at) = match s.split_once('-') {
                Some((a, r)) => (secs(a)?, Some(secs(r)?)),
                None => (secs(s)?, None),
            };
            if let Some(r) = recover_at {
                if r <= at {
                    return Err(format!("recovery `{}` must be after onset `{}`", r, at));
                }
            }
            Ok((at, recover_at))
        };
        let board = |s: &str| -> Result<AccId, String> {
            let idx: usize =
                s.trim().parse().map_err(|_| format!("bad board index `{s}`"))?;
            if idx >= n_accs {
                return Err(format!("board {idx} out of range for {n_accs} accelerators"));
            }
            Ok(AccId::new(idx))
        };
        let mut plan = FaultPlan::empty();
        for event in spec.split(';').filter(|e| !e.is_empty()) {
            let (kind, rest) = event
                .split_once(':')
                .ok_or_else(|| format!("event `{event}` is not kind:…"))?;
            match kind {
                "board" => {
                    let (idx, times) = rest
                        .split_once('@')
                        .ok_or_else(|| format!("board event `{rest}` is not IDX@T[-T2]"))?;
                    let acc = board(idx)?;
                    let (at, recover_at) = window(times)?;
                    plan.events.push(FaultEvent {
                        acc,
                        kind: FaultKind::BoardDown,
                        at,
                        recover_at,
                    });
                }
                "link" | "slow" => {
                    let (target, times) = rest
                        .split_once('@')
                        .ok_or_else(|| format!("{kind} event `{rest}` is not IDX/F@T[-T2]"))?;
                    let (idx, factor) = target
                        .split_once('/')
                        .ok_or_else(|| format!("{kind} target `{target}` is not IDX/F"))?;
                    let acc = board(idx)?;
                    let f: f64 = factor
                        .trim()
                        .parse()
                        .map_err(|_| format!("bad slowdown factor `{factor}`"))?;
                    if !f.is_finite() || f <= 1.0 {
                        return Err("slowdown factor must be finite and exceed 1".into());
                    }
                    let (at, recover_at) = window(times)?;
                    let kind = if kind == "link" {
                        FaultKind::LinkDegraded { factor: f }
                    } else {
                        FaultKind::BoardDegraded { factor: f }
                    };
                    plan.events.push(FaultEvent { acc, kind, at, recover_at });
                }
                "host" => {
                    let (what, times) = rest
                        .split_once('@')
                        .ok_or_else(|| format!("host event `{rest}` is not F@T[-T2] or down@T[-T2]"))?;
                    let kind = if what.trim() == "down" {
                        FaultKind::HostDown
                    } else {
                        let f: f64 = what
                            .trim()
                            .parse()
                            .map_err(|_| format!("bad slowdown factor `{what}`"))?;
                        if !f.is_finite() || f <= 1.0 {
                            return Err("slowdown factor must be finite and exceed 1".into());
                        }
                        FaultKind::HostDegraded { factor: f }
                    };
                    let (at, recover_at) = window(times)?;
                    plan.events.push(FaultEvent {
                        acc: AccId::new(0),
                        kind,
                        at,
                        recover_at,
                    });
                }
                other => {
                    return Err(format!(
                        "unknown fault kind `{other}` (board:IDX@T[-T2] | link:IDX/F@T[-T2] | \
                         slow:IDX/F@T[-T2] | host:F@T[-T2] | host:down@T[-T2])"
                    ))
                }
            }
        }
        if plan.is_empty() {
            return Err("fault spec contains no events".into());
        }
        let hosts: Vec<&FaultEvent> =
            plan.events.iter().filter(|e| e.kind.is_host_scoped()).collect();
        for (i, a) in hosts.iter().enumerate() {
            for b in &hosts[i + 1..] {
                let a_end = a.recover_at.map_or(f64::INFINITY, Seconds::as_f64);
                let b_end = b.recover_at.map_or(f64::INFINITY, Seconds::as_f64);
                if a.at.as_f64() < b_end && b.at.as_f64() < a_end {
                    return Err(format!(
                        "host fault windows overlap (onsets `{}` and `{}`) — host events \
                         must not be simultaneously in force",
                        a.at, b.at
                    ));
                }
            }
        }
        Ok(plan)
    }
}

/// The instantaneous condition of the fabric: a board down mask,
/// per-board host-link and compute slowdown factors (`1.0` = healthy),
/// plus the host's own condition (down flag and NIC slowdown).
#[derive(Debug, Clone, PartialEq)]
pub struct FaultState {
    down: Vec<bool>,
    link_factor: Vec<f64>,
    compute_factor: Vec<f64>,
    host_down: bool,
    host_factor: f64,
}

impl FaultState {
    /// All boards up, all links at full rate.
    pub fn healthy(n_accs: usize) -> Self {
        FaultState {
            down: vec![false; n_accs],
            link_factor: vec![1.0; n_accs],
            compute_factor: vec![1.0; n_accs],
            host_down: false,
            host_factor: 1.0,
        }
    }

    /// Number of boards this state describes.
    pub fn num_accs(&self) -> usize {
        self.down.len()
    }

    /// True when nothing is down and nothing is degraded.
    pub fn is_healthy(&self) -> bool {
        !self.down.iter().any(|d| *d)
            && self.link_factor.iter().all(|f| *f == 1.0)
            && self.compute_factor.iter().all(|f| *f == 1.0)
            && !self.host_down
            && self.host_factor == 1.0
    }

    /// Whether a board is up (alive, possibly with a degraded link).
    pub fn acc_is_up(&self, acc: AccId) -> bool {
        !self.down[acc.index()]
    }

    /// The host-link slowdown divisor of one board (`1.0` = healthy).
    pub fn link_factor(&self, acc: AccId) -> f64 {
        self.link_factor[acc.index()]
    }

    /// Marks a board down (test/constructor convenience).
    pub fn set_down(&mut self, acc: AccId) {
        self.down[acc.index()] = true;
    }

    /// Sets a board's link slowdown divisor.
    pub fn set_link_factor(&mut self, acc: AccId, factor: f64) {
        assert!(factor.is_finite() && factor >= 1.0, "slowdown factor must be >= 1");
        self.link_factor[acc.index()] = factor;
    }

    /// The compute slowdown divisor of one board (`1.0` = full speed).
    pub fn compute_factor(&self, acc: AccId) -> f64 {
        self.compute_factor[acc.index()]
    }

    /// Sets a board's compute slowdown divisor.
    pub fn set_compute_factor(&mut self, acc: AccId, factor: f64) {
        assert!(factor.is_finite() && factor >= 1.0, "slowdown factor must be >= 1");
        self.compute_factor[acc.index()] = factor;
    }

    /// True when any board is compute-throttled.
    pub fn any_compute_degraded(&self) -> bool {
        self.compute_factor.iter().any(|f| *f != 1.0)
    }

    /// Whether the host is reachable (its NIC may still be degraded).
    pub fn host_is_up(&self) -> bool {
        !self.host_down
    }

    /// The host NIC slowdown divisor (`1.0` = full rate).
    pub fn host_factor(&self) -> f64 {
        self.host_factor
    }

    /// Marks the host down (test/constructor convenience).
    pub fn set_host_down(&mut self) {
        self.host_down = true;
    }

    /// Sets the host NIC slowdown divisor.
    pub fn set_host_factor(&mut self, factor: f64) {
        assert!(factor.is_finite() && factor >= 1.0, "slowdown factor must be >= 1");
        self.host_factor = factor;
    }

    /// Boards currently down, ascending.
    pub fn down_accs(&self) -> impl Iterator<Item = AccId> + '_ {
        self.down
            .iter()
            .enumerate()
            .filter(|(_, d)| **d)
            .map(|(i, _)| AccId::new(i))
    }
}

/// Strips a `--faults <spec>` flag (and its value) out of a raw
/// argv-style list, shared by the CLI front ends (mirrors
/// [`crate::topology::take_topology_flag`]).
///
/// # Errors
///
/// Errors when the flag is present without a value.
pub fn take_faults_flag(args: &mut Vec<String>) -> Result<Option<String>, String> {
    let Some(pos) = args.iter().position(|a| a == "--faults") else {
        return Ok(None);
    };
    if pos + 1 >= args.len() {
        return Err("--faults needs a value".into());
    }
    let spec = args.remove(pos + 1);
    args.remove(pos);
    Ok(Some(spec))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_accepts_board_and_link_events() {
        let plan = FaultPlan::parse("board:3@2.5;link:1/4@0.5-2", 12).unwrap();
        assert_eq!(plan.events().len(), 2);
        assert_eq!(plan.events()[0].acc, AccId::new(3));
        assert!(matches!(plan.events()[0].kind, FaultKind::BoardDown));
        assert_eq!(plan.events()[0].at, Seconds::new(2.5));
        assert_eq!(plan.events()[0].recover_at, None);
        assert!(
            matches!(plan.events()[1].kind, FaultKind::LinkDegraded { factor } if factor == 4.0)
        );
        assert_eq!(plan.events()[1].recover_at, Some(Seconds::new(2.0)));
        assert_eq!(plan.boundaries(), vec![0.5, 2.0, 2.5]);
    }

    #[test]
    fn parse_accepts_host_and_slow_events() {
        let plan =
            FaultPlan::parse("slow:2/3@1-4;host:2.5@5-6;host:down@7", 12).unwrap();
        assert_eq!(plan.events().len(), 3);
        assert!(
            matches!(plan.events()[0].kind, FaultKind::BoardDegraded { factor } if factor == 3.0)
        );
        assert_eq!(plan.events()[0].acc, AccId::new(2));
        assert!(
            matches!(plan.events()[1].kind, FaultKind::HostDegraded { factor } if factor == 2.5)
        );
        assert!(plan.events()[1].kind.is_host_scoped());
        assert!(matches!(plan.events()[2].kind, FaultKind::HostDown));
        assert_eq!(plan.events()[2].recover_at, None);
        assert_eq!(plan.boundaries(), vec![1.0, 4.0, 5.0, 6.0, 7.0]);
    }

    #[test]
    fn parse_rejects_malformed_specs() {
        let cases: &[(&str, &str)] = &[
            ("", "no events"),
            ("pause:1@2", "unknown fault kind"),
            ("board:12@1", "out of range"),
            ("board:x@1", "bad board index"),
            ("board:1", "not IDX@T"),
            ("board:1@-2", "bad time"),
            ("board:1@nan", "non-negative and finite"),
            ("board:1@3-2", "must be after onset"),
            ("board:1@3-3", "must be after onset"),
            ("link:1@2", "not IDX/F"),
            ("link:1/1@2", "exceed 1"),
            ("link:1/0.5@2", "exceed 1"),
            ("link:1/inf@2", "finite"),
            ("link:1/x@2", "bad slowdown factor"),
            ("slow:1@2", "not IDX/F"),
            ("slow:12/2@1", "out of range"),
            ("slow:1/1@2", "exceed 1"),
            ("slow:1/x@2", "bad slowdown factor"),
            ("host:2", "not F@T"),
            ("host:1@2", "exceed 1"),
            ("host:0.5@2", "exceed 1"),
            ("host:inf@2", "finite"),
            ("host:x@2", "bad slowdown factor"),
            ("host:down@3-2", "must be after onset"),
            ("host:2@1-5;host:down@3", "host fault windows overlap"),
            ("host:down@1;host:3@4-5", "host fault windows overlap"),
            ("host:2@1-3;host:2@1-3", "host fault windows overlap"),
        ];
        for (spec, needle) in cases {
            let err = FaultPlan::parse(spec, 12).unwrap_err();
            assert!(err.contains(needle), "`{spec}`: `{err}` lacks `{needle}`");
        }
        // Back-to-back host windows (recovery == next onset) do not
        // overlap: recovery is exclusive.
        assert!(FaultPlan::parse("host:2@1-3;host:down@3-4", 12).is_ok());
    }

    #[test]
    fn state_at_tracks_windows_and_stacks_factors() {
        let plan = FaultPlan::parse("board:0@1-3;link:2/2@0;link:2/3@2-4", 4).unwrap();
        let at = |t: f64| plan.state_at(Seconds::new(t), 4);
        assert!(at(0.5).acc_is_up(AccId::new(0)));
        assert!(!at(1.0).acc_is_up(AccId::new(0)), "onset is inclusive");
        assert!(at(3.0).acc_is_up(AccId::new(0)), "recovery is exclusive");
        assert_eq!(at(0.0).link_factor(AccId::new(2)), 2.0);
        assert_eq!(at(2.5).link_factor(AccId::new(2)), 6.0, "stacked factors multiply");
        assert_eq!(at(4.0).link_factor(AccId::new(2)), 2.0);
        assert!(!at(2.0).is_healthy());
        assert!(FaultPlan::empty().state_at(Seconds::new(9.0), 4).is_healthy());
    }

    #[test]
    fn state_at_tracks_host_and_compute_windows() {
        let plan =
            FaultPlan::parse("slow:1/2@0-9;slow:1/3@2-4;host:4@1-2;host:down@2-3", 4)
                .unwrap();
        let at = |t: f64| plan.state_at(Seconds::new(t), 4);
        assert_eq!(at(0.5).compute_factor(AccId::new(1)), 2.0);
        assert_eq!(at(3.0).compute_factor(AccId::new(1)), 6.0, "stacked factors multiply");
        assert!(at(3.0).any_compute_degraded());
        assert_eq!(at(9.0).compute_factor(AccId::new(1)), 1.0);
        assert_eq!(at(1.5).host_factor(), 4.0);
        assert!(at(1.5).host_is_up());
        assert_eq!(at(2.5).host_factor(), 1.0);
        assert!(!at(2.5).host_is_up(), "down window replaces the NIC slowdown");
        assert!(at(2.5).acc_is_up(AccId::new(0)), "host events leave boards up");
        assert!(at(3.5).host_is_up());
        assert!(!at(3.5).is_healthy(), "the compute throttle is still in force");
        assert!(at(9.5).is_healthy());
    }

    #[test]
    fn take_faults_flag_strips_the_pair() {
        let mut args: Vec<String> =
            ["serve", "--faults", "board:1@2", "mocap"].map(String::from).to_vec();
        assert_eq!(take_faults_flag(&mut args).unwrap().as_deref(), Some("board:1@2"));
        assert_eq!(args, ["serve", "mocap"]);
        let mut dangling: Vec<String> = ["serve", "--faults"].map(String::from).to_vec();
        assert!(take_faults_flag(&mut dangling).is_err());
        let mut none: Vec<String> = ["serve"].map(String::from).to_vec();
        assert_eq!(take_faults_flag(&mut none).unwrap(), None);
    }
}
