//! Fault model: timed board/link fault events and the degraded-fabric
//! view the repair pipeline searches against.
//!
//! Production fabrics are not the fabric the mapping was searched on:
//! boards die and links degrade mid-serve. This module gives those
//! events a first-class, deterministic representation:
//!
//! * [`FaultEvent`] — one board goes down, or one board's host link
//!   degrades to `1/factor` of its healthy rate, at an absolute time
//!   `at`, with an optional recovery time.
//! * [`FaultPlan`] — an ordered set of events plus a parser
//!   ([`FaultPlan::parse`]) shared by the CLI/bench front ends.
//! * [`FaultState`] — the instantaneous condition of every board at one
//!   time ([`FaultPlan::state_at`]): a down mask plus per-board link
//!   slowdown factors. Applying a state to a fabric
//!   ([`crate::topology::Topology::degrade`] /
//!   [`crate::system::SystemSpec::degrade`]) rebuilds the route table
//!   with the degraded link rates and with peer links of dead boards
//!   severed — cheap (O(n²) on a handful of boards) and exact: a
//!   healthy state returns a bitwise-identical fabric.
//!
//! The event simulator replays a timeline through the fault window
//! ([`crate::sim::simulate_with_faults`]); the mapping-repair path in
//! `h2h-core` uses [`FaultState`] to evacuate dead boards and re-price
//! every route-crossing edge on the degraded fabric. An empty plan is
//! the no-fault fast path everywhere — bit-identical to the historical
//! code paths, asserted zoo-wide.

use h2h_model::units::Seconds;

use crate::system::AccId;

/// What went wrong with one board's attachment to the fabric.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultKind {
    /// The board is offline: it computes nothing and its pinned weights
    /// are stranded. Its peer links are severed; host-relayed data
    /// already produced remains reachable (the host keeps the copies it
    /// relayed).
    BoardDown,
    /// The board's host link runs at `1/factor` of its healthy rate
    /// (`factor > 1`). Direct peer links are unaffected.
    LinkDegraded {
        /// Slowdown divisor applied to the host link rate.
        factor: f64,
    },
}

/// One timed fault event, optionally recovering.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultEvent {
    /// The affected board.
    pub acc: AccId,
    /// What happens to it.
    pub kind: FaultKind,
    /// Absolute onset time (seconds on the serve/sim clock).
    pub at: Seconds,
    /// Absolute recovery time; `None` means the fault persists.
    pub recover_at: Option<Seconds>,
}

impl FaultEvent {
    /// Whether this event is in force at time `t` (`at <= t`, and
    /// before recovery when one is scheduled).
    pub fn active_at(&self, t: Seconds) -> bool {
        self.at <= t && self.recover_at.is_none_or(|r| t < r)
    }
}

/// A deterministic fault schedule: the full set of timed events one
/// serve window (or one simulation) replays through.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultPlan {
    events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// The empty plan — the no-fault fast path.
    pub fn empty() -> Self {
        FaultPlan::default()
    }

    /// A single permanent board outage at `at`.
    pub fn board_down(acc: AccId, at: Seconds) -> Self {
        FaultPlan {
            events: vec![FaultEvent { acc, kind: FaultKind::BoardDown, at, recover_at: None }],
        }
    }

    /// Appends an event (builder style).
    pub fn with_event(mut self, event: FaultEvent) -> Self {
        self.events.push(event);
        self
    }

    /// The scheduled events, in insertion order.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// True when no event is scheduled.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Every time at which the fault state can change (onsets and
    /// recoveries), sorted ascending and deduplicated.
    pub fn boundaries(&self) -> Vec<f64> {
        let mut times: Vec<f64> = self
            .events
            .iter()
            .flat_map(|e| [Some(e.at), e.recover_at])
            .flatten()
            .map(Seconds::as_f64)
            .collect();
        times.sort_by(|a, b| a.partial_cmp(b).expect("fault times are finite"));
        times.dedup();
        times
    }

    /// The instantaneous fabric condition at time `t` over `n_accs`
    /// boards: each active event contributes its down bit / slowdown
    /// factor (factors of stacked events on one board multiply).
    pub fn state_at(&self, t: Seconds, n_accs: usize) -> FaultState {
        let mut state = FaultState::healthy(n_accs);
        for e in self.events.iter().filter(|e| e.active_at(t)) {
            let i = e.acc.index();
            match e.kind {
                FaultKind::BoardDown => state.down[i] = true,
                FaultKind::LinkDegraded { factor } => state.link_factor[i] *= factor,
            }
        }
        state
    }

    /// Parses a fault spec string against the board count. Events are
    /// `;`-separated; accepted forms:
    ///
    /// * `board:IDX@T` / `board:IDX@T-T2` — board `IDX` down from `T`
    ///   seconds, optionally recovering at `T2`;
    /// * `link:IDX/F@T` / `link:IDX/F@T-T2` — board `IDX`'s host link
    ///   degraded to `1/F` of its rate (`F > 1`) from `T`, optionally
    ///   recovering at `T2`.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message for malformed specs: unknown
    /// event kinds, out-of-range board indices, factors not above 1,
    /// negative or non-finite times, recoveries not after onsets.
    pub fn parse(spec: &str, n_accs: usize) -> Result<FaultPlan, String> {
        let secs = |s: &str| -> Result<Seconds, String> {
            let v: f64 =
                s.trim().parse().map_err(|_| format!("bad time `{s}` (seconds expected)"))?;
            if !v.is_finite() || v < 0.0 {
                return Err(format!("time `{s}` must be non-negative and finite"));
            }
            Ok(Seconds::new(v))
        };
        let window = |s: &str| -> Result<(Seconds, Option<Seconds>), String> {
            let (at, recover_at) = match s.split_once('-') {
                Some((a, r)) => (secs(a)?, Some(secs(r)?)),
                None => (secs(s)?, None),
            };
            if let Some(r) = recover_at {
                if r <= at {
                    return Err(format!("recovery `{}` must be after onset `{}`", r, at));
                }
            }
            Ok((at, recover_at))
        };
        let board = |s: &str| -> Result<AccId, String> {
            let idx: usize =
                s.trim().parse().map_err(|_| format!("bad board index `{s}`"))?;
            if idx >= n_accs {
                return Err(format!("board {idx} out of range for {n_accs} accelerators"));
            }
            Ok(AccId::new(idx))
        };
        let mut plan = FaultPlan::empty();
        for event in spec.split(';').filter(|e| !e.is_empty()) {
            let (kind, rest) = event
                .split_once(':')
                .ok_or_else(|| format!("event `{event}` is not kind:…"))?;
            match kind {
                "board" => {
                    let (idx, times) = rest
                        .split_once('@')
                        .ok_or_else(|| format!("board event `{rest}` is not IDX@T[-T2]"))?;
                    let acc = board(idx)?;
                    let (at, recover_at) = window(times)?;
                    plan.events.push(FaultEvent {
                        acc,
                        kind: FaultKind::BoardDown,
                        at,
                        recover_at,
                    });
                }
                "link" => {
                    let (target, times) = rest
                        .split_once('@')
                        .ok_or_else(|| format!("link event `{rest}` is not IDX/F@T[-T2]"))?;
                    let (idx, factor) = target
                        .split_once('/')
                        .ok_or_else(|| format!("link target `{target}` is not IDX/F"))?;
                    let acc = board(idx)?;
                    let f: f64 = factor
                        .trim()
                        .parse()
                        .map_err(|_| format!("bad slowdown factor `{factor}`"))?;
                    if !f.is_finite() || f <= 1.0 {
                        return Err("slowdown factor must be finite and exceed 1".into());
                    }
                    let (at, recover_at) = window(times)?;
                    plan.events.push(FaultEvent {
                        acc,
                        kind: FaultKind::LinkDegraded { factor: f },
                        at,
                        recover_at,
                    });
                }
                other => {
                    return Err(format!(
                        "unknown fault kind `{other}` (board:IDX@T[-T2] | link:IDX/F@T[-T2])"
                    ))
                }
            }
        }
        if plan.is_empty() {
            return Err("fault spec contains no events".into());
        }
        Ok(plan)
    }
}

/// The instantaneous condition of every board: a down mask plus
/// per-board host-link slowdown factors (`1.0` = healthy).
#[derive(Debug, Clone, PartialEq)]
pub struct FaultState {
    down: Vec<bool>,
    link_factor: Vec<f64>,
}

impl FaultState {
    /// All boards up, all links at full rate.
    pub fn healthy(n_accs: usize) -> Self {
        FaultState { down: vec![false; n_accs], link_factor: vec![1.0; n_accs] }
    }

    /// Number of boards this state describes.
    pub fn num_accs(&self) -> usize {
        self.down.len()
    }

    /// True when nothing is down and nothing is degraded.
    pub fn is_healthy(&self) -> bool {
        !self.down.iter().any(|d| *d) && self.link_factor.iter().all(|f| *f == 1.0)
    }

    /// Whether a board is up (alive, possibly with a degraded link).
    pub fn acc_is_up(&self, acc: AccId) -> bool {
        !self.down[acc.index()]
    }

    /// The host-link slowdown divisor of one board (`1.0` = healthy).
    pub fn link_factor(&self, acc: AccId) -> f64 {
        self.link_factor[acc.index()]
    }

    /// Marks a board down (test/constructor convenience).
    pub fn set_down(&mut self, acc: AccId) {
        self.down[acc.index()] = true;
    }

    /// Sets a board's link slowdown divisor.
    pub fn set_link_factor(&mut self, acc: AccId, factor: f64) {
        assert!(factor.is_finite() && factor >= 1.0, "slowdown factor must be >= 1");
        self.link_factor[acc.index()] = factor;
    }

    /// Boards currently down, ascending.
    pub fn down_accs(&self) -> impl Iterator<Item = AccId> + '_ {
        self.down
            .iter()
            .enumerate()
            .filter(|(_, d)| **d)
            .map(|(i, _)| AccId::new(i))
    }
}

/// Strips a `--faults <spec>` flag (and its value) out of a raw
/// argv-style list, shared by the CLI front ends (mirrors
/// [`crate::topology::take_topology_flag`]).
///
/// # Errors
///
/// Errors when the flag is present without a value.
pub fn take_faults_flag(args: &mut Vec<String>) -> Result<Option<String>, String> {
    let Some(pos) = args.iter().position(|a| a == "--faults") else {
        return Ok(None);
    };
    if pos + 1 >= args.len() {
        return Err("--faults needs a value".into());
    }
    let spec = args.remove(pos + 1);
    args.remove(pos);
    Ok(Some(spec))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_accepts_board_and_link_events() {
        let plan = FaultPlan::parse("board:3@2.5;link:1/4@0.5-2", 12).unwrap();
        assert_eq!(plan.events().len(), 2);
        assert_eq!(plan.events()[0].acc, AccId::new(3));
        assert!(matches!(plan.events()[0].kind, FaultKind::BoardDown));
        assert_eq!(plan.events()[0].at, Seconds::new(2.5));
        assert_eq!(plan.events()[0].recover_at, None);
        assert!(
            matches!(plan.events()[1].kind, FaultKind::LinkDegraded { factor } if factor == 4.0)
        );
        assert_eq!(plan.events()[1].recover_at, Some(Seconds::new(2.0)));
        assert_eq!(plan.boundaries(), vec![0.5, 2.0, 2.5]);
    }

    #[test]
    fn parse_rejects_malformed_specs() {
        let cases: &[(&str, &str)] = &[
            ("", "no events"),
            ("pause:1@2", "unknown fault kind"),
            ("board:12@1", "out of range"),
            ("board:x@1", "bad board index"),
            ("board:1", "not IDX@T"),
            ("board:1@-2", "bad time"),
            ("board:1@nan", "non-negative and finite"),
            ("board:1@3-2", "must be after onset"),
            ("board:1@3-3", "must be after onset"),
            ("link:1@2", "not IDX/F"),
            ("link:1/1@2", "exceed 1"),
            ("link:1/0.5@2", "exceed 1"),
            ("link:1/inf@2", "finite"),
            ("link:1/x@2", "bad slowdown factor"),
        ];
        for (spec, needle) in cases {
            let err = FaultPlan::parse(spec, 12).unwrap_err();
            assert!(err.contains(needle), "`{spec}`: `{err}` lacks `{needle}`");
        }
    }

    #[test]
    fn state_at_tracks_windows_and_stacks_factors() {
        let plan = FaultPlan::parse("board:0@1-3;link:2/2@0;link:2/3@2-4", 4).unwrap();
        let at = |t: f64| plan.state_at(Seconds::new(t), 4);
        assert!(at(0.5).acc_is_up(AccId::new(0)));
        assert!(!at(1.0).acc_is_up(AccId::new(0)), "onset is inclusive");
        assert!(at(3.0).acc_is_up(AccId::new(0)), "recovery is exclusive");
        assert_eq!(at(0.0).link_factor(AccId::new(2)), 2.0);
        assert_eq!(at(2.5).link_factor(AccId::new(2)), 6.0, "stacked factors multiply");
        assert_eq!(at(4.0).link_factor(AccId::new(2)), 2.0);
        assert!(!at(2.0).is_healthy());
        assert!(FaultPlan::empty().state_at(Seconds::new(9.0), 4).is_healthy());
    }

    #[test]
    fn take_faults_flag_strips_the_pair() {
        let mut args: Vec<String> =
            ["serve", "--faults", "board:1@2", "mocap"].map(String::from).to_vec();
        assert_eq!(take_faults_flag(&mut args).unwrap().as_deref(), Some("board:1@2"));
        assert_eq!(args, ["serve", "mocap"]);
        let mut dangling: Vec<String> = ["serve", "--faults"].map(String::from).to_vec();
        assert!(take_faults_flag(&mut dangling).is_err());
        let mut none: Vec<String> = ["serve"].map(String::from).to_vec();
        assert_eq!(take_faults_flag(&mut none).unwrap(), None);
    }
}
