//! # h2h-system — the heterogeneous multi-FPGA system model
//!
//! `G_sys` of the H2H (DAC'22) formulation: a host node plus plugged-in
//! accelerators behind an explicit interconnect fabric
//! ([`topology::Topology`] — the paper's scalar `BW_acc` uniform star
//! by default, per-link rates and direct peer links beyond it), the
//! mapping and data-locality state the H2H algorithm manipulates, the
//! analytical list scheduler that computes `Sys_latency` /
//! `Sys_energy`, and a discrete-event simulator that cross-validates
//! the scheduler and models host-NIC contention the analytical
//! abstraction ignores.
//!
//! ```
//! use h2h_system::locality::LocalityState;
//! use h2h_system::mapping::Mapping;
//! use h2h_system::schedule::Evaluator;
//! use h2h_system::system::{BandwidthClass, SystemSpec};
//!
//! let model = h2h_model::zoo::mocap();
//! let sys = SystemSpec::standard(BandwidthClass::LowMinus);
//!
//! // Map everything onto the first capable accelerator (a terrible
//! // mapping — the h2h-core crate does much better).
//! let mut mapping = Mapping::new(&model);
//! for (id, layer) in model.layers() {
//!     let acc = sys.acc_ids().find(|a| sys.acc(*a).supports(layer)).unwrap();
//!     mapping.set(id, acc);
//! }
//! mapping.validate(&model, &sys)?;
//!
//! let schedule = Evaluator::new(&model, &sys).evaluate(&mapping, &LocalityState::new(&sys));
//! assert!(schedule.makespan().as_f64() > 0.0);
//! # Ok::<(), h2h_system::mapping::MappingError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod fault;
pub mod gantt;
pub mod incremental;
pub mod locality;
pub mod mapping;
pub mod schedule;
pub mod sim;
pub mod system;
pub mod topology;
pub mod trace;

#[doc(hidden)]
pub mod testutil;

pub use fault::{FaultEvent, FaultKind, FaultPlan, FaultState};
pub use gantt::{render_gantt, render_link_gantt};
pub use incremental::IncrementalSchedule;
pub use locality::LocalityState;
pub use mapping::{Mapping, MappingError};
pub use schedule::{CostCache, EnergyBreakdown, Evaluator, LayerTiming, Schedule};
pub use sim::{simulate, simulate_with_faults, SimConfig, SimError, SimReport};
pub use system::{AccId, BandwidthClass, SystemSpec};
pub use topology::{Endpoint, Topology};
