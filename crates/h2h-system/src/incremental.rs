//! Incremental schedule updates (paper §4.2: *"since changing the
//! latency and scheduling of one layer can affect all its successor
//! layers, we update the layer scheduling recursively … in each
//! iteration, we only update a node's direct successor neighbors without
//! traversing the entire graph"*).
//!
//! [`IncrementalSchedule`] mirrors the full [`Evaluator`]'s list
//! schedule as mutable per-layer state and re-derives start/finish times
//! along only the *affected cone* of a change: the changed layers, their
//! graph successors, and queue successors on the owning accelerators.
//! On top of the original duration-delta API
//! ([`IncrementalSchedule::set_duration`] +
//! [`IncrementalSchedule::propagate`]) it supports the full search-move
//! primitive: [`IncrementalSchedule::move_layer`] re-queues a layer onto
//! another accelerator and [`IncrementalSchedule::refresh_costs`]
//! re-derives per-layer cost decompositions from a tentative locality
//! state, keeping running aggregates (Ethernet/DRAM busy time, energy,
//! per-accelerator busy) in sync so any [`crate::schedule::Schedule`]-level
//! objective can be scored without a full re-evaluation.
//!
//! # Invariants the delta engine maintains
//!
//! 1. **Cost fidelity** — `dur[l]` always equals
//!    `LayerCost::duration()` of the layer's last refreshed cost, and
//!    costs come from [`Evaluator::layer_cost`], the same primitive the
//!    full evaluator sums. Identical durations + an identical start-time
//!    recurrence ⇒ after propagation over the full affected cone, every
//!    start/finish equals the full evaluation *bitwise*.
//! 2. **Queue order** — each accelerator executes its layers in the
//!    single global topological priority (`Evaluator`'s `topo_order`);
//!    [`IncrementalSchedule::move_layer`] re-inserts at the sorted
//!    position, so queue order never depends on move history.
//! 3. **Aggregate coherence** — `eth_busy`/`dram_busy`/`comp_busy`/
//!    energy/`per_acc_busy` are updated by exact add/subtract of layer
//!    cost terms on every refresh and move, so they can drift from a
//!    fresh sum by float re-association only (≈ulp per operation).
//!    [`IncrementalSchedule::resum_aggregates`] eliminates even that:
//!    it re-sums in the evaluator's exact iteration order, after which
//!    the proxy quantities are bitwise-equal to a full
//!    [`Evaluator::evaluate`] of the same state — search loops call it
//!    before reading a candidate's score.
//! 4. **Transactionality** — between [`IncrementalSchedule::begin`] and
//!    [`IncrementalSchedule::rollback`] every mutation is journaled
//!    (first-touch undo log for times/costs, move list, aggregate
//!    snapshot); rollback restores the pre-transaction state exactly, so
//!    a rejected candidate move costs only its cone size. Within an open
//!    transaction, [`IncrementalSchedule::savepoint`] marks a nested
//!    restore point: the journal keeps recording (first touch *per
//!    savepoint region*), and [`IncrementalSchedule::rollback_to`]
//!    undoes just the suffix — an `O(touched)` memcpy-style restore of
//!    the recorded set, no re-propagation. The fusion pass uses this to
//!    revert a rejected risky-guard toggle at the cost of the cone it
//!    touched instead of a second propagation round.
//!
//! Equivalence with full re-evaluation is asserted by unit tests here,
//! by `prop_schedule.rs`/`prop_incremental.rs` property suites, and
//! measured by the `incremental` criterion bench.

use std::sync::Arc;

use h2h_model::graph::LayerId;
use h2h_model::units::Seconds;

use crate::locality::LocalityState;
use crate::mapping::Mapping;
use crate::schedule::{Evaluator, LayerCost};
use crate::system::AccId;

/// Schedule-level quantities derivable from the incremental aggregates —
/// enough to score any mapping objective (latency, energy, EDP,
/// pipelined throughput) without building a full
/// [`crate::schedule::Schedule`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScheduleProxy {
    /// End-to-end latency (max finish).
    pub makespan: Seconds,
    /// Total modeled energy (compute + Ethernet + DRAM).
    pub energy_total: f64,
    /// Busy time of the bottleneck accelerator.
    pub bottleneck_busy: Seconds,
    /// Total Ethernet busy time.
    pub eth_busy: Seconds,
}

/// Undo log of one open transaction.
///
/// Entries are first-touch *per savepoint region*: a layer touched
/// before and after a [`IncrementalSchedule::savepoint`] appears once
/// per region, with the region-entry value. Rollback therefore applies
/// entries in **reverse** order so the earliest (pre-transaction) value
/// wins.
#[derive(Debug, Clone, Default)]
struct Journal {
    /// `(layer, old_start, old_finish)`, first touch per region.
    times: Vec<(usize, f64, f64)>,
    /// `(layer, old_cost, old_dur)`, first touch per region.
    costs: Vec<(usize, LayerCost, f64)>,
    /// `(layer, from_acc)` in application order.
    moves: Vec<(LayerId, usize)>,
    /// Aggregate snapshot taken at `begin`.
    eth_busy: f64,
    comp_busy: f64,
    dram_busy: f64,
    dram_bytes: f64,
    compute_energy: f64,
    per_acc_busy: Vec<f64>,
}

/// A nested restore point inside an open transaction (see
/// [`IncrementalSchedule::savepoint`]): the journal lengths at creation
/// time plus an aggregate snapshot. [`IncrementalSchedule::rollback_to`]
/// undoes exactly the journal suffix recorded since — the touched set of
/// whatever ran in between — without re-propagating anything.
#[derive(Debug, Clone)]
pub struct Savepoint {
    times_len: usize,
    costs_len: usize,
    moves_len: usize,
    eth_busy: f64,
    comp_busy: f64,
    dram_busy: f64,
    dram_bytes: f64,
    compute_energy: f64,
    per_acc_busy: Vec<f64>,
}

/// Read-only per-(model, system) data shared by every clone of an
/// [`IncrementalSchedule`]: the global topological priority and the
/// energy-model constants. The parallel search core forks one schedule
/// per scoring worker, so this is split behind an [`Arc`] to keep those
/// clones to the mutable scratch only.
#[derive(Debug)]
struct IncShared {
    /// Rank of each layer in the global topological priority.
    topo_pos: Vec<usize>,
    /// The global topological priority itself (the evaluator's
    /// iteration order, used by exact aggregate resummation).
    order: Vec<LayerId>,
    /// CSR-flattened adjacency (by raw layer index): predecessor ids of
    /// layer `i` live in `preds[pred_off[i]..pred_off[i + 1]]`, and
    /// likewise for successors. The propagate hot loop re-times a
    /// million-plus layer visits per large-model search run; reading
    /// neighbours from these flat arrays instead of the graph's
    /// indirect edge storage is what keeps a visit to a handful of
    /// cache lines.
    pred_off: Vec<u32>,
    preds: Vec<u32>,
    succ_off: Vec<u32>,
    /// Successors stored as topological *ranks* (CSR payload for
    /// `succ_off`): the propagate wavefront stamps pending layers by
    /// rank, and storing the ranks pre-translated saves a `topo_pos`
    /// gather per edge in the hottest loop of the search core.
    succ_ranks: Vec<u32>,
    // Energy-model constants captured at seed time.
    eth_power_w: f64,
    dram_pj_per_byte: f64,
}

/// A mutable schedule supporting localized updates and transactional
/// candidate evaluation (see module docs for the invariants).
#[derive(Debug, Clone)]
pub struct IncrementalSchedule {
    /// Layer duration (weight + IFM + compute + OFM), seconds.
    dur: Vec<f64>,
    /// Last refreshed cost decomposition per layer.
    costs: Vec<LayerCost>,
    start: Vec<f64>,
    finish: Vec<f64>,
    /// Per-accelerator execution order (global topological priority).
    acc_queue: Vec<Vec<LayerId>>,
    /// Position of each layer in its accelerator queue.
    queue_pos: Vec<usize>,
    /// Flat queue links: raw index of the layer scheduled immediately
    /// before/after each layer on its accelerator (`u32::MAX` at the
    /// ends). Derived state, kept in sync by `requeue`; the propagate
    /// wavefront reads these instead of chasing `acc_queue[a][pos]`
    /// through two bounds-checked indirections per visit.
    queue_prev: Vec<u32>,
    queue_next: Vec<u32>,
    /// Accelerator index per layer (`usize::MAX` for sparse slots).
    acc_of: Vec<usize>,
    /// Shared read-only topology/energy data (see [`IncShared`]).
    shared: Arc<IncShared>,
    /// Busy seconds per accelerator.
    per_acc_busy: Vec<f64>,
    // Running aggregates (see invariant 3).
    eth_busy: f64,
    comp_busy: f64,
    dram_busy: f64,
    dram_bytes: f64,
    compute_energy: f64,
    /// Layers touched by the last [`IncrementalSchedule::propagate`].
    touched: usize,
    /// First-touch epoch stamps for time/cost journaling.
    time_stamp: Vec<u64>,
    cost_stamp: Vec<u64>,
    epoch: u64,
    /// Rank-indexed pending stamps for the `propagate` wavefront
    /// (persistent, so the hot path allocates nothing per call).
    queued_stamp: Vec<u64>,
    prop_epoch: u64,
    /// Set once the duration-only legacy path (`set_duration`) is used;
    /// the aggregate-backed proxy is then meaningless.
    duration_only: bool,
    journal: Option<Journal>,
    /// Retired journal kept for buffer reuse (one transaction per
    /// scored candidate — the hot loop should not allocate).
    spare_journal: Option<Journal>,
}

impl IncrementalSchedule {
    /// Seeds the incremental state from `(mapping, locality)` using the
    /// exact per-layer costs and recurrence of [`Evaluator::evaluate`].
    ///
    /// # Panics
    ///
    /// Panics if the mapping is incomplete (validate first).
    pub fn new(
        ev: &Evaluator<'_>,
        mapping: &Mapping,
        locality: &LocalityState,
    ) -> Self {
        let model = ev.model();
        let system = ev.system();
        let bound = model.id_bound();
        let n_accs = system.num_accs();
        let emodel = system.energy_model();
        let order = model.topo_order();
        let mut topo_pos = vec![usize::MAX; bound];
        for (rank, id) in order.iter().enumerate() {
            topo_pos[id.index()] = rank;
        }
        let mut pred_off = vec![0u32; bound + 1];
        let mut succ_off = vec![0u32; bound + 1];
        for id in model.layer_ids() {
            pred_off[id.index() + 1] = model.predecessors(id).count() as u32;
            succ_off[id.index() + 1] = model.successors(id).count() as u32;
        }
        for i in 0..bound {
            pred_off[i + 1] += pred_off[i];
            succ_off[i + 1] += succ_off[i];
        }
        let mut preds = vec![0u32; pred_off[bound] as usize];
        let mut succs = vec![0u32; succ_off[bound] as usize];
        for id in model.layer_ids() {
            let i = id.index();
            for (k, p) in model.predecessors(id).enumerate() {
                preds[pred_off[i] as usize + k] = p.index() as u32;
            }
            for (k, s) in model.successors(id).enumerate() {
                succs[succ_off[i] as usize + k] = s.index() as u32;
            }
        }
        let succ_ranks: Vec<u32> =
            succs.into_iter().map(|s| topo_pos[s as usize] as u32).collect();
        let mut inc = IncrementalSchedule {
            dur: vec![0.0; bound],
            costs: vec![LayerCost::default(); bound],
            start: vec![0.0; bound],
            finish: vec![0.0; bound],
            acc_queue: vec![Vec::new(); n_accs],
            queue_pos: vec![0usize; bound],
            queue_prev: vec![u32::MAX; bound],
            queue_next: vec![u32::MAX; bound],
            acc_of: vec![usize::MAX; bound],
            shared: Arc::new(IncShared {
                topo_pos,
                order,
                pred_off,
                preds,
                succ_off,
                succ_ranks,
                eth_power_w: emodel.eth_link_power_w,
                dram_pj_per_byte: emodel.dram_pj_per_byte,
            }),
            per_acc_busy: vec![0.0; n_accs],
            eth_busy: 0.0,
            comp_busy: 0.0,
            dram_busy: 0.0,
            dram_bytes: 0.0,
            compute_energy: 0.0,
            touched: 0,
            time_stamp: vec![0; bound],
            cost_stamp: vec![0; bound],
            epoch: 0,
            queued_stamp: vec![0; bound],
            prop_epoch: 0,
            duration_only: false,
            journal: None,
            spare_journal: None,
        };
        let mut acc_ready = vec![0.0f64; n_accs];
        let shared = inc.shared.clone();
        for id in shared.order.iter().copied() {
            let i = id.index();
            let cost = ev.layer_cost(mapping, locality, id);
            let dur = cost.duration().as_f64();
            let a = mapping.acc_of(id).index();
            inc.acc_of[i] = a;
            inc.queue_pos[i] = inc.acc_queue[a].len();
            if let Some(prev) = inc.acc_queue[a].last() {
                inc.queue_prev[i] = prev.index() as u32;
                inc.queue_next[prev.index()] = i as u32;
            }
            inc.acc_queue[a].push(id);
            inc.costs[i] = cost;
            inc.dur[i] = dur;
            inc.eth_busy += cost.eth_time.as_f64();
            inc.comp_busy += cost.compute.as_f64();
            inc.dram_busy += cost.dram_time.as_f64();
            inc.dram_bytes += cost.dram_bytes.as_f64();
            inc.compute_energy += cost.compute_energy.as_f64();
            inc.per_acc_busy[a] += dur;
            let deps = model
                .predecessors(id)
                .map(|p| inc.finish[p.index()])
                .fold(0.0f64, f64::max);
            let s = deps.max(acc_ready[a]);
            inc.start[i] = s;
            inc.finish[i] = s + dur;
            acc_ready[a] = s + dur;
        }
        inc
    }

    /// Current makespan (max finish over all layers).
    ///
    /// Computed as the max over each accelerator's *last-queued* layer:
    /// along one queue, `start >= avail = previous finish` and
    /// durations are non-negative, so finish times are non-decreasing
    /// and the queue tail dominates. Every layer sits in exactly one
    /// queue, so this is the same max — the same IEEE value the
    /// all-layers fold produces (`f64::max` is order-insensitive on the
    /// non-negative, NaN-free finish times) — read in `O(accelerators)`
    /// instead of `O(layers)`. The fusion pass reads the makespan at
    /// every guard, so on large models this scan was itself a hot path.
    pub fn makespan(&self) -> Seconds {
        let mut max = 0.0f64;
        for queue in &self.acc_queue {
            if let Some(last) = queue.last() {
                max = max.max(self.finish[last.index()]);
            }
        }
        Seconds::new(max)
    }

    /// Finish time of one layer.
    pub fn finish_of(&self, layer: LayerId) -> Seconds {
        Seconds::new(self.finish[layer.index()])
    }

    /// Start time of one layer.
    pub fn start_of(&self, layer: LayerId) -> Seconds {
        Seconds::new(self.start[layer.index()])
    }

    /// The layer scheduled immediately after `layer` on its accelerator
    /// queue (`None` if it runs last). Together with the graph
    /// successors, this is exactly the set of layers whose start times
    /// read `layer`'s finish — the guard-dominance check of the fusion
    /// pass walks it to prove a duration change is absorbed locally.
    pub fn queue_successor(&self, layer: LayerId) -> Option<LayerId> {
        let next = self.queue_next[layer.index()];
        (next != u32::MAX).then(|| LayerId::from_index(next as usize))
    }

    /// Duration currently assumed for one layer.
    pub fn duration_of(&self, layer: LayerId) -> Seconds {
        Seconds::new(self.dur[layer.index()])
    }

    /// The full cost decomposition currently assumed for one layer —
    /// after a flush of deferred refreshes, bitwise what
    /// [`Evaluator::layer_cost`] returns for the current `(mapping,
    /// locality)` state. The fusion-guard dominance proof reads the
    /// unchanged terms from here instead of recomputing them.
    pub fn cost_of(&self, layer: LayerId) -> &LayerCost {
        &self.costs[layer.index()]
    }

    /// The accelerator queue (global topological priority order).
    pub fn queue(&self, acc: AccId) -> &[LayerId] {
        &self.acc_queue[acc.index()]
    }

    /// Number of layers whose times were recomputed by the last
    /// propagation (the paper's locality-of-update argument).
    pub fn touched(&self) -> usize {
        self.touched
    }

    /// Recomputes every running aggregate by a fresh summation over the
    /// per-layer costs in the evaluator's exact iteration order. After
    /// this call the [`ScheduleProxy`] quantities are bitwise-equal to
    /// a full [`Evaluator::evaluate`] of the same `(mapping, locality)`
    /// state — delta updates can only differ from a fresh sum by float
    /// re-association, and this removes that.
    pub fn resum_aggregates(&mut self) {
        let mut eth = 0.0f64;
        let mut comp = 0.0f64;
        let mut dram = 0.0f64;
        let mut dram_bytes = 0u64;
        let mut energy = 0.0f64;
        // In-place re-accumulation (any open transaction snapshotted
        // `per_acc_busy` at `begin`, so rollback still restores it).
        self.per_acc_busy.fill(0.0);
        for k in 0..self.shared.order.len() {
            let i = self.shared.order[k].index();
            let c = &self.costs[i];
            eth += c.eth_time.as_f64();
            comp += c.compute.as_f64();
            dram += c.dram_time.as_f64();
            dram_bytes += c.dram_bytes.as_u64();
            energy += c.compute_energy.as_f64();
            self.per_acc_busy[self.acc_of[i]] += self.dur[i];
        }
        self.eth_busy = eth;
        self.comp_busy = comp;
        self.dram_busy = dram;
        self.dram_bytes = dram_bytes as f64;
        self.compute_energy = energy;
    }

    /// Schedule-level scores derived from the running aggregates.
    ///
    /// # Panics
    ///
    /// Debug-asserts that the duration-only legacy path
    /// ([`IncrementalSchedule::set_duration`]) was never used on this
    /// instance — it leaves the cost aggregates stale.
    pub fn proxy(&self) -> ScheduleProxy {
        debug_assert!(
            !self.duration_only,
            "proxy() after set_duration(): aggregates are stale; use refresh_costs"
        );
        let energy_total = self.compute_energy
            + self.eth_busy * self.shared.eth_power_w
            + self.dram_bytes * self.shared.dram_pj_per_byte * 1e-12;
        ScheduleProxy {
            makespan: self.makespan(),
            energy_total,
            bottleneck_busy: Seconds::new(
                self.per_acc_busy.iter().cloned().fold(0.0, f64::max),
            ),
            eth_busy: Seconds::new(self.eth_busy.max(0.0)),
        }
    }

    /// Opens a transaction: every subsequent mutation is journaled until
    /// [`IncrementalSchedule::commit`] or
    /// [`IncrementalSchedule::rollback`].
    ///
    /// # Panics
    ///
    /// Panics if a transaction is already open.
    pub fn begin(&mut self) {
        assert!(self.journal.is_none(), "transaction already open");
        self.epoch += 1;
        let mut journal = self.spare_journal.take().unwrap_or_default();
        journal.times.clear();
        journal.costs.clear();
        journal.moves.clear();
        journal.eth_busy = self.eth_busy;
        journal.comp_busy = self.comp_busy;
        journal.dram_busy = self.dram_busy;
        journal.dram_bytes = self.dram_bytes;
        journal.compute_energy = self.compute_energy;
        journal.per_acc_busy.clone_from(&self.per_acc_busy);
        self.journal = Some(journal);
    }

    /// Discards the open transaction, keeping all changes.
    pub fn commit(&mut self) {
        self.spare_journal = self.journal.take();
    }

    /// Reverts every change made since [`IncrementalSchedule::begin`].
    ///
    /// # Panics
    ///
    /// Panics if no transaction is open.
    pub fn rollback(&mut self) {
        let journal = self.journal.take().expect("no open transaction");
        // Undo queue surgery in reverse order; the canonical sorted
        // insertion restores exact positions. Costs/times also apply in
        // reverse: savepoint regions may have journaled a layer more
        // than once, and the earliest entry (the pre-transaction value)
        // must win.
        for (layer, from_acc) in journal.moves.iter().rev() {
            self.requeue(*layer, *from_acc);
        }
        for (i, cost, dur) in journal.costs.iter().rev() {
            self.costs[*i] = *cost;
            self.dur[*i] = *dur;
        }
        for (i, s, f) in journal.times.iter().rev() {
            self.start[*i] = *s;
            self.finish[*i] = *f;
        }
        self.eth_busy = journal.eth_busy;
        self.comp_busy = journal.comp_busy;
        self.dram_busy = journal.dram_busy;
        self.dram_bytes = journal.dram_bytes;
        self.compute_energy = journal.compute_energy;
        self.per_acc_busy.clone_from(&journal.per_acc_busy);
        self.spare_journal = Some(journal);
    }

    /// Marks a nested restore point inside the open transaction. Every
    /// mutation after this call is journaled with its at-savepoint value
    /// (even for layers already touched earlier in the transaction), so
    /// [`IncrementalSchedule::rollback_to`] can restore exactly the
    /// state as of this call by replaying the recorded suffix — an
    /// `O(touched)` operation, no re-propagation.
    ///
    /// Savepoints nest implicitly: a later savepoint's suffix is a
    /// prefix-stable extension of an earlier one's, so rolling back to
    /// an earlier savepoint after a later one also restores correctly
    /// (later-region entries sit above the earlier marks). A savepoint
    /// that is *not* rolled back needs no explicit release — its extra
    /// journal entries are harmless because full
    /// [`IncrementalSchedule::rollback`] applies in reverse order.
    ///
    /// # Panics
    ///
    /// Panics if no transaction is open.
    pub fn savepoint(&mut self) -> Savepoint {
        let j = self.journal.as_ref().expect("savepoint requires an open transaction");
        // New epoch: layers first-touched before this savepoint must be
        // re-journaled (with their current, i.e. at-savepoint, values)
        // when touched inside the region.
        self.epoch += 1;
        Savepoint {
            times_len: j.times.len(),
            costs_len: j.costs.len(),
            moves_len: j.moves.len(),
            eth_busy: self.eth_busy,
            comp_busy: self.comp_busy,
            dram_busy: self.dram_busy,
            dram_bytes: self.dram_bytes,
            compute_energy: self.compute_energy,
            per_acc_busy: self.per_acc_busy.clone(),
        }
    }

    /// Restores the exact state as of `sp`'s [`IncrementalSchedule::savepoint`]
    /// call by undoing the journal suffix recorded since (reverse
    /// order) and reinstating the aggregate snapshot. Costs, durations,
    /// start/finish times, queues and aggregates all come back bitwise;
    /// the transaction stays open.
    ///
    /// # Panics
    ///
    /// Panics if no transaction is open. `sp` must come from this
    /// instance's current transaction (debug-asserted via the journal
    /// marks).
    pub fn rollback_to(&mut self, sp: &Savepoint) {
        // Take the journal out so `requeue` can borrow `self` freely.
        let mut journal = self.journal.take().expect("rollback_to requires an open transaction");
        debug_assert!(
            sp.times_len <= journal.times.len()
                && sp.costs_len <= journal.costs.len()
                && sp.moves_len <= journal.moves.len(),
            "savepoint does not belong to this transaction"
        );
        while journal.moves.len() > sp.moves_len {
            let (layer, from_acc) = journal.moves.pop().expect("length checked");
            self.requeue(layer, from_acc);
        }
        for (i, cost, dur) in journal.costs.drain(sp.costs_len..).rev() {
            self.costs[i] = cost;
            self.dur[i] = dur;
        }
        for (i, s, f) in journal.times.drain(sp.times_len..).rev() {
            self.start[i] = s;
            self.finish[i] = f;
        }
        self.eth_busy = sp.eth_busy;
        self.comp_busy = sp.comp_busy;
        self.dram_busy = sp.dram_busy;
        self.dram_bytes = sp.dram_bytes;
        self.compute_energy = sp.compute_energy;
        self.per_acc_busy.clone_from(&sp.per_acc_busy);
        self.journal = Some(journal);
        // New epoch: the popped entries' layers carry region stamps, so
        // later touches must journal their (just restored) values anew.
        self.epoch += 1;
    }

    fn journal_cost(&mut self, i: usize) {
        if let Some(j) = self.journal.as_mut() {
            if self.cost_stamp[i] != self.epoch {
                self.cost_stamp[i] = self.epoch;
                j.costs.push((i, self.costs[i], self.dur[i]));
            }
        }
    }

    /// Removes `layer` from its current queue and re-inserts it into
    /// `to_acc`'s queue at the global-topological-priority position
    /// (no journaling — shared by `move_layer` and rollback).
    fn requeue(&mut self, layer: LayerId, to_acc: usize) {
        let i = layer.index();
        let from_acc = self.acc_of[i];
        let pos = self.queue_pos[i];
        // Unlink from the old queue (the flat links are derived state;
        // every queue mutation funnels through here, so updating them
        // in place keeps them exact across rollback replays too).
        let (prev, next) = (self.queue_prev[i], self.queue_next[i]);
        if prev != u32::MAX {
            self.queue_next[prev as usize] = next;
        }
        if next != u32::MAX {
            self.queue_prev[next as usize] = prev;
        }
        self.acc_queue[from_acc].remove(pos);
        for k in pos..self.acc_queue[from_acc].len() {
            self.queue_pos[self.acc_queue[from_acc][k].index()] = k;
        }
        let rank = self.shared.topo_pos[i];
        let queue = &self.acc_queue[to_acc];
        let insert_at = queue.partition_point(|l| self.shared.topo_pos[l.index()] < rank);
        // Link into the new queue at the insertion point.
        let new_prev = insert_at
            .checked_sub(1)
            .map_or(u32::MAX, |k| queue[k].index() as u32);
        let new_next = queue.get(insert_at).map_or(u32::MAX, |l| l.index() as u32);
        self.queue_prev[i] = new_prev;
        self.queue_next[i] = new_next;
        if new_prev != u32::MAX {
            self.queue_next[new_prev as usize] = i as u32;
        }
        if new_next != u32::MAX {
            self.queue_prev[new_next as usize] = i as u32;
        }
        self.acc_queue[to_acc].insert(insert_at, layer);
        for k in insert_at..self.acc_queue[to_acc].len() {
            self.queue_pos[self.acc_queue[to_acc][k].index()] = k;
        }
        self.per_acc_busy[from_acc] -= self.dur[i];
        self.per_acc_busy[to_acc] += self.dur[i];
        self.acc_of[i] = to_acc;
    }

    /// Moves `layer` onto `to_acc`'s queue (journaled). Returns the
    /// propagation seeds the move creates: the layer itself plus the
    /// layers whose queue predecessor changed (the old queue successor
    /// and the new one). Durations are *not* recomputed — call
    /// [`IncrementalSchedule::refresh_costs`] with the tentative
    /// locality, then [`IncrementalSchedule::propagate`].
    pub fn move_layer(&mut self, layer: LayerId, to_acc: AccId) -> Vec<LayerId> {
        let mut seeds = Vec::with_capacity(3);
        self.move_layer_into(layer, to_acc, &mut seeds);
        seeds
    }

    /// [`IncrementalSchedule::move_layer`], appending the propagation
    /// seeds into a caller-owned buffer (the search core reuses one
    /// across candidates).
    pub fn move_layer_into(&mut self, layer: LayerId, to_acc: AccId, seeds: &mut Vec<LayerId>) {
        let i = layer.index();
        let from_acc = self.acc_of[i];
        let old_pos = self.queue_pos[i];
        seeds.push(layer);
        if from_acc == to_acc.index() {
            return;
        }
        if let Some(j) = self.journal.as_mut() {
            j.moves.push((layer, from_acc));
        }
        self.requeue(layer, to_acc.index());
        // The old queue successor (now sitting at `old_pos`) lost its
        // predecessor…
        if let Some(succ) = self.acc_queue[from_acc].get(old_pos) {
            seeds.push(*succ);
        }
        // …and the new queue successor gained one.
        if let Some(succ) = self.acc_queue[to_acc.index()].get(self.queue_pos[i] + 1) {
            seeds.push(*succ);
        }
    }

    /// Re-derives the cost decomposition of `layers` from `(mapping,
    /// locality)` (journaled), updating durations and aggregates.
    /// Returns the subset whose duration actually changed — the seeds a
    /// subsequent [`IncrementalSchedule::propagate`] needs.
    pub fn refresh_costs(
        &mut self,
        ev: &Evaluator<'_>,
        mapping: &Mapping,
        locality: &LocalityState,
        layers: impl IntoIterator<Item = LayerId>,
    ) -> Vec<LayerId> {
        let mut changed = Vec::new();
        self.refresh_costs_into(ev, mapping, locality, layers, &mut changed);
        changed
    }

    /// [`IncrementalSchedule::refresh_costs`], appending the changed
    /// layers into a caller-owned buffer (the search core reuses one
    /// across candidates).
    pub fn refresh_costs_into(
        &mut self,
        ev: &Evaluator<'_>,
        mapping: &Mapping,
        locality: &LocalityState,
        layers: impl IntoIterator<Item = LayerId>,
        changed: &mut Vec<LayerId>,
    ) {
        for id in layers {
            let i = id.index();
            self.journal_cost(i);
            let old = self.costs[i];
            let old_dur = self.dur[i];
            let new = ev.layer_cost(mapping, locality, id);
            let new_dur = new.duration().as_f64();
            self.eth_busy += new.eth_time.as_f64() - old.eth_time.as_f64();
            self.comp_busy += new.compute.as_f64() - old.compute.as_f64();
            self.dram_busy += new.dram_time.as_f64() - old.dram_time.as_f64();
            self.dram_bytes += new.dram_bytes.as_f64() - old.dram_bytes.as_f64();
            self.compute_energy +=
                new.compute_energy.as_f64() - old.compute_energy.as_f64();
            self.per_acc_busy[self.acc_of[i]] += new_dur - old_dur;
            self.costs[i] = new;
            self.dur[i] = new_dur;
            if new_dur != old_dur {
                changed.push(id);
            }
        }
    }

    /// Re-derives **every** layer's cost under `ev` and propagates the
    /// affected cone — the slice-resize primitive of the multi-tenant
    /// serving loop, where `ev` is the tenant's evaluator at a new
    /// serving batch size (same mapping, same locality, different
    /// per-request repetition factor).
    ///
    /// Compared to a fresh [`Evaluator::evaluate`] this reuses the queue
    /// structure, the CSR adjacency and every scratch buffer, and a
    /// no-op rebatch (costs unchanged, e.g. the batch size the schedule
    /// already reflects) propagates nothing. Aggregates are re-summed in
    /// the evaluator's exact iteration order afterwards, so the
    /// [`IncrementalSchedule::proxy`] quantities — and every
    /// start/finish time, by invariant 1 — are **bitwise-equal** to a
    /// full evaluation under `ev`. Returns the number of layers whose
    /// duration changed.
    pub fn rebatch(
        &mut self,
        ev: &Evaluator<'_>,
        mapping: &Mapping,
        locality: &LocalityState,
    ) -> usize {
        let seeds = self.refresh_costs(ev, mapping, locality, ev.model().layer_ids());
        let changed = seeds.len();
        if changed > 0 {
            self.propagate(&seeds);
            self.resum_aggregates();
        }
        changed
    }

    /// Overrides one layer's duration (e.g. after pinning its weights or
    /// fusing one of its edges) **without** propagating; call
    /// [`IncrementalSchedule::propagate`] once after a batch of changes.
    ///
    /// Duration-only override: the per-layer cost decomposition and the
    /// energy/Ethernet aggregates are *not* adjusted, so
    /// [`IncrementalSchedule::proxy`] becomes meaningless (debug-asserted)
    /// — use [`IncrementalSchedule::refresh_costs`] on the search path.
    pub fn set_duration(&mut self, layer: LayerId, dur: Seconds) {
        let i = layer.index();
        self.journal_cost(i);
        let new = dur.as_f64();
        self.per_acc_busy[self.acc_of[i]] += new - self.dur[i];
        self.dur[i] = new;
        self.duration_only = true;
    }

    /// Recomputes start/finish times along the affected cone of `seeds`
    /// (the layers whose durations or queue predecessors changed). This
    /// is the hottest loop of the search core (a large-model run visits
    /// millions of layers here), so it runs as a *monotone wavefront*:
    /// pending layers are marked in a rank-indexed stamp array and
    /// processed in global topological order — every dependency (graph
    /// edges and same-accelerator queue edges both point forward in
    /// that order) is final before its reader is visited, so each layer
    /// in the cone is recomputed **exactly once**, with neighbours read
    /// from the CSR adjacency in [`IncShared`]. Read
    /// [`IncrementalSchedule::makespan`] afterwards when the new value
    /// is needed (most propagations — deferred-batch flushes — never
    /// look at it).
    pub fn propagate(&mut self, seeds: &[LayerId]) {
        self.prop_epoch += 1;
        // Destructure into disjoint field borrows once: the loop below
        // then runs on locals — no per-iteration `Arc` deref, no method
        // calls, and the journal option is resolved outside the loop's
        // dependent-load chain.
        let IncrementalSchedule {
            ref shared,
            ref dur,
            ref mut start,
            ref mut finish,
            ref queue_prev,
            ref queue_next,
            ref mut queued_stamp,
            ref mut time_stamp,
            ref mut journal,
            epoch: journal_epoch,
            prop_epoch: epoch,
            ..
        } = *self;
        let shared: &IncShared = shared;
        let mut journal = journal.as_mut();
        let n = shared.order.len();
        let mut lo = n;
        let mut hi = 0usize;
        for s in seeds {
            let r = shared.topo_pos[s.index()];
            queued_stamp[r] = epoch;
            lo = lo.min(r);
            hi = hi.max(r);
        }
        let mut touched = 0usize;
        let mut r = lo;
        while r <= hi {
            if queued_stamp[r] != epoch {
                r += 1;
                continue;
            }
            let i = shared.order[r].index();
            touched += 1;
            let mut deps = 0.0f64;
            for p in &shared.preds[shared.pred_off[i] as usize..shared.pred_off[i + 1] as usize]
            {
                deps = deps.max(finish[*p as usize]);
            }
            // One flat load replaces the `acc_queue[a][pos - 1]`
            // double indirection of the queue-predecessor read.
            let qp = queue_prev[i];
            let avail = if qp == u32::MAX { 0.0 } else { finish[qp as usize] };
            let new_start = deps.max(avail);
            let new_finish = new_start + dur[i];
            if new_finish != finish[i] || new_start != start[i] {
                if let Some(j) = journal.as_mut() {
                    if time_stamp[i] != journal_epoch {
                        time_stamp[i] = journal_epoch;
                        j.times.push((i, start[i], finish[i]));
                    }
                }
                start[i] = new_start;
                finish[i] = new_finish;
                // Direct graph successors (ranks pre-translated in the
                // CSR, so stamping is load → store)…
                for sr in &shared.succ_ranks
                    [shared.succ_off[i] as usize..shared.succ_off[i + 1] as usize]
                {
                    let sr = *sr as usize;
                    queued_stamp[sr] = epoch;
                    hi = hi.max(sr);
                }
                // …and the next layer in this accelerator's queue.
                let next = queue_next[i];
                if next != u32::MAX {
                    let nr = shared.topo_pos[next as usize];
                    queued_stamp[nr] = epoch;
                    hi = hi.max(nr);
                }
            }
            r += 1;
        }
        self.touched = touched;
    }

    /// Convenience: seed, apply a batch of duration changes, propagate.
    pub fn with_changes(
        ev: &Evaluator<'_>,
        mapping: &Mapping,
        locality: &LocalityState,
        changes: &[(LayerId, Seconds)],
    ) -> (Self, Seconds) {
        let mut inc = IncrementalSchedule::new(ev, mapping, locality);
        for (l, d) in changes {
            inc.set_duration(*l, *d);
        }
        let seeds: Vec<LayerId> = changes.iter().map(|(l, _)| *l).collect();
        inc.propagate(&seeds);
        let mk = inc.makespan();
        (inc, mk)
    }

    /// Asserts (in tests) that the incremental state matches a fresh full
    /// evaluation; exposed for downstream test suites.
    #[doc(hidden)]
    pub fn assert_matches_full(
        &self,
        ev: &Evaluator<'_>,
        mapping: &Mapping,
        locality: &LocalityState,
    ) {
        let full = ev.evaluate(mapping, locality);
        for id in ev.model().layer_ids() {
            let t = full.timing(id).expect("scheduled");
            let inc_f = self.finish[id.index()];
            assert!(
                (t.finish.as_f64() - inc_f).abs() < 1e-9,
                "{id}: incremental {inc_f} vs full {}",
                t.finish.as_f64()
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::system::{AccId, BandwidthClass};
    use crate::testutil::{const_system, ConstAccel};
    use h2h_model::graph::ModelGraph;
    use h2h_model::builder::ModelBuilder;
    use h2h_model::tensor::TensorShape;

    fn chain() -> ModelGraph {
        let mut b = ModelBuilder::new("inc");
        let i = b.input("i", TensorShape::Vector { features: 1024 });
        let f1 = b.fc("f1", i, 1024).unwrap();
        let f2 = b.fc("f2", f1, 1024).unwrap();
        let f3 = b.fc("f3", f2, 1024).unwrap();
        let g1 = b.fc("g1", i, 1024).unwrap();
        let _ = (f3, g1);
        b.finish().unwrap()
    }

    #[test]
    fn seed_matches_full_evaluation() {
        let m = chain();
        let sys = const_system(
            vec![ConstAccel::universal("u0", 1e-3), ConstAccel::universal("u1", 2e-3)],
            1e6,
        );
        let mut map = Mapping::new(&m);
        for (i, id) in m.topo_order().into_iter().enumerate() {
            map.set(id, AccId::new(i % 2));
        }
        let ev = Evaluator::new(&m, &sys);
        let loc = LocalityState::new(&sys);
        let inc = IncrementalSchedule::new(&ev, &map, &loc);
        inc.assert_matches_full(&ev, &map, &loc);
        let full = ev.evaluate(&map, &loc);
        assert!((inc.makespan().as_f64() - full.makespan().as_f64()).abs() < 1e-12);
        // Aggregates agree with the full schedule at seed time.
        let proxy = inc.proxy();
        assert!((proxy.energy_total - full.energy().total().as_f64()).abs() < 1e-12);
        assert!(
            (proxy.bottleneck_busy.as_f64() - full.bottleneck_busy().as_f64()).abs() < 1e-12
        );
        assert!((proxy.eth_busy.as_f64() - full.eth_busy().as_f64()).abs() < 1e-12);
    }

    #[test]
    fn pinning_delta_propagates_to_full_equivalence() {
        // Pin a layer's weights in locality B; the incremental schedule
        // seeded from locality A plus one duration change must equal the
        // full evaluation of B.
        let m = chain();
        let sys = const_system(vec![ConstAccel::universal("u0", 1e-3)], 1e6);
        let mut map = Mapping::new(&m);
        for id in m.layer_ids() {
            map.set(id, AccId::new(0));
        }
        let ev = Evaluator::new(&m, &sys);
        let ids = m.topo_order();
        let loc_a = LocalityState::new(&sys);
        let mut loc_b = LocalityState::new(&sys);
        assert!(loc_b.try_pin(&m, &sys, ids[1], AccId::new(0)));

        let full_b = ev.evaluate(&map, &loc_b);
        let new_dur = {
            let t = full_b.timing(ids[1]).unwrap();
            t.finish - t.start
        };
        let (inc, mk) =
            IncrementalSchedule::with_changes(&ev, &map, &loc_a, &[(ids[1], new_dur)]);
        assert!(
            (mk.as_f64() - full_b.makespan().as_f64()).abs() < 1e-12,
            "incremental {mk} vs full {}",
            full_b.makespan()
        );
        inc.assert_matches_full(&ev, &map, &loc_b);
    }

    #[test]
    fn touched_cone_is_smaller_than_the_graph() {
        // Changing the last layer of a long chain touches only itself;
        // the paper's "without traversing the entire graph" claim.
        let mut b = ModelBuilder::new("long");
        let mut prev = b.input("i", TensorShape::Vector { features: 64 });
        for k in 0..40 {
            prev = b.fc(&format!("f{k}"), prev, 64).unwrap();
        }
        let m = b.finish().unwrap();
        let sys = const_system(vec![ConstAccel::universal("u0", 1e-3)], 1e9);
        let mut map = Mapping::new(&m);
        for id in m.layer_ids() {
            map.set(id, AccId::new(0));
        }
        let ev = Evaluator::new(&m, &sys);
        let loc = LocalityState::new(&sys);
        let mut inc = IncrementalSchedule::new(&ev, &map, &loc);
        let last = *m.topo_order().last().unwrap();
        inc.set_duration(last, Seconds::new(5e-3));
        inc.propagate(&[last]);
        assert_eq!(inc.touched(), 1, "tail change must touch one layer");

        // Changing the head touches everything downstream.
        let head = m.topo_order()[0];
        inc.set_duration(head, Seconds::new(2e-3));
        inc.propagate(&[head]);
        assert_eq!(inc.touched(), m.num_layers());
    }

    #[test]
    fn batch_changes_on_zoo_model_match_full() {
        let m = h2h_model::zoo::cnn_lstm();
        let sys = crate::system::SystemSpec::standard(BandwidthClass::Mid);
        let ev = Evaluator::new(&m, &sys);
        let mut map = Mapping::new(&m);
        for (id, layer) in m.layers() {
            let acc = sys.acc_ids().find(|a| sys.acc(*a).supports(layer)).unwrap();
            map.set(id, acc);
        }
        let loc_a = LocalityState::new(&sys);
        let mut loc_b = LocalityState::new(&sys);
        // Pin everything that fits on each layer's accelerator.
        for id in m.layer_ids() {
            if m.layer(id).has_weights() {
                let _ = loc_b.try_pin(&m, &sys, id, map.acc_of(id));
            }
        }
        let full_b = ev.evaluate(&map, &loc_b);
        let changes: Vec<(LayerId, Seconds)> = m
            .layer_ids()
            .filter(|id| loc_b.is_pinned(*id))
            .map(|id| {
                let t = full_b.timing(id).unwrap();
                (id, t.finish - t.start)
            })
            .collect();
        let (inc, mk) = IncrementalSchedule::with_changes(&ev, &map, &loc_a, &changes);
        assert!((mk.as_f64() - full_b.makespan().as_f64()).abs() < 1e-9);
        inc.assert_matches_full(&ev, &map, &loc_b);
    }

    #[test]
    fn move_refresh_propagate_matches_full_schedule() {
        // The full search-move primitive: move a layer to the other
        // accelerator, refresh its cost, propagate — must equal a fresh
        // full evaluation of the moved mapping bitwise.
        let m = chain();
        let sys = const_system(
            vec![ConstAccel::universal("u0", 1e-3), ConstAccel::universal("u1", 2e-3)],
            1e6,
        );
        let ids = m.topo_order();
        let mut map = Mapping::new(&m);
        for id in m.layer_ids() {
            map.set(id, AccId::new(0));
        }
        let ev = Evaluator::new(&m, &sys);
        let loc = LocalityState::new(&sys);
        let mut inc = IncrementalSchedule::new(&ev, &map, &loc);

        map.set(ids[2], AccId::new(1));
        let mut seeds = inc.move_layer(ids[2], AccId::new(1));
        seeds.extend(inc.refresh_costs(&ev, &map, &loc, m.layer_ids()));
        inc.propagate(&seeds);
        let mk = inc.makespan();
        let full = ev.evaluate(&map, &loc);
        assert_eq!(mk.as_f64(), full.makespan().as_f64(), "bitwise equality expected");
        inc.assert_matches_full(&ev, &map, &loc);
        let proxy = inc.proxy();
        assert!((proxy.energy_total - full.energy().total().as_f64()).abs() < 1e-9);
        assert!(
            (proxy.bottleneck_busy.as_f64() - full.bottleneck_busy().as_f64()).abs() < 1e-9
        );
    }

    #[test]
    fn rollback_restores_exact_state() {
        let m = h2h_model::zoo::cnn_lstm();
        let sys = crate::system::SystemSpec::standard(BandwidthClass::Mid);
        let ev = Evaluator::new(&m, &sys);
        let mut map = Mapping::new(&m);
        for (id, layer) in m.layers() {
            let acc = sys.acc_ids().find(|a| sys.acc(*a).supports(layer)).unwrap();
            map.set(id, acc);
        }
        let loc = LocalityState::new(&sys);
        let mut inc = IncrementalSchedule::new(&ev, &map, &loc);
        let reference = inc.clone();

        // Tentatively shuffle several layers across capable devices.
        let ids = m.topo_order();
        inc.begin();
        let mut all_seeds = Vec::new();
        for (k, id) in ids.iter().enumerate().take(8) {
            let layer = m.layer(*id);
            let target = sys
                .acc_ids()
                .filter(|a| sys.acc(*a).supports(layer))
                .nth(k % 2)
                .unwrap_or_else(|| map.acc_of(*id));
            all_seeds.extend(inc.move_layer(*id, target));
        }
        all_seeds.extend(inc.refresh_costs(&ev, &map, &loc, m.layer_ids()));
        inc.propagate(&all_seeds);
        inc.rollback();

        assert_eq!(inc.makespan(), reference.makespan());
        for id in m.layer_ids() {
            assert_eq!(inc.finish_of(id), reference.finish_of(id));
            assert_eq!(inc.duration_of(id), reference.duration_of(id));
        }
        for acc in sys.acc_ids() {
            assert_eq!(inc.queue(acc), reference.queue(acc));
        }
        assert_eq!(inc.proxy(), reference.proxy());
    }

    #[test]
    fn rebatch_matches_full_evaluation_at_every_batch_size() {
        // The serving loop's slice-resize primitive: walking the batch
        // size up and down through one incremental schedule must land on
        // the full evaluator's makespan (and proxy) bitwise, every time.
        let m = h2h_model::zoo::cnn_lstm();
        let sys = crate::system::SystemSpec::standard(BandwidthClass::LowMinus);
        let mut map = Mapping::new(&m);
        for (id, layer) in m.layers() {
            let acc = sys
                .acc_ids()
                .find(|a| sys.acc(*a).supports(layer))
                .expect("standard system supports every zoo layer");
            map.set(id, acc);
        }
        let mut loc = LocalityState::new(&sys);
        for (k, id) in m.topo_order().into_iter().enumerate() {
            if k % 2 == 0 && m.layer(id).has_weights() {
                let _ = loc.try_pin(&m, &sys, id, map.acc_of(id));
            }
        }
        let base = Evaluator::new(&m, &sys);
        let mut inc = IncrementalSchedule::new(&base, &map, &loc);
        for batch in [4u32, 1, 16, 16, 2] {
            let ev = Evaluator::from_cache(&m, &sys, base.cache().clone()).with_batch(batch);
            let changed = inc.rebatch(&ev, &map, &loc);
            let full = ev.evaluate(&map, &loc);
            assert_eq!(
                inc.makespan(),
                full.makespan(),
                "batch {batch}: rebatch diverged from the full evaluation"
            );
            let proxy = inc.proxy();
            assert_eq!(proxy.makespan, full.makespan());
            assert_eq!(proxy.bottleneck_busy, full.bottleneck_busy());
            assert!(
                (proxy.energy_total - full.energy().total().as_f64()).abs()
                    <= full.energy().total().as_f64() * 1e-12,
                "batch {batch}: energy diverged"
            );
            inc.assert_matches_full(&ev, &map, &loc);
            let _ = changed;
        }
        // Same-batch rebatch is a no-op: no duration can change.
        let ev = Evaluator::from_cache(&m, &sys, base.cache().clone()).with_batch(2);
        assert_eq!(inc.rebatch(&ev, &map, &loc), 0, "2 -> 2 must change nothing");
    }
}
