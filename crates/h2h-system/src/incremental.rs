//! Incremental schedule updates (paper §4.2: *"since changing the
//! latency and scheduling of one layer can affect all its successor
//! layers, we update the layer scheduling recursively … in each
//! iteration, we only update a node's direct successor neighbors without
//! traversing the entire graph"*).
//!
//! [`IncrementalSchedule`] seeds itself from a full [`Evaluator`] pass
//! and thereafter accepts per-layer duration changes (a weight getting
//! pinned, an edge getting fused), propagating start/finish times along
//! a worklist that touches only the affected cone: the layer itself, its
//! graph successors, and queue successors on the same accelerator. The
//! equivalence with full re-evaluation is asserted by tests and measured
//! by the `incremental` criterion bench.

use std::collections::VecDeque;

use h2h_model::graph::{LayerId, ModelGraph};
use h2h_model::units::Seconds;

use crate::locality::LocalityState;
use crate::mapping::Mapping;
use crate::schedule::Evaluator;

/// A mutable schedule supporting localized duration updates.
#[derive(Debug, Clone)]
pub struct IncrementalSchedule {
    /// Layer duration (weight + IFM + compute + OFM), seconds.
    dur: Vec<f64>,
    start: Vec<f64>,
    finish: Vec<f64>,
    /// Per-accelerator execution order (global topological priority).
    acc_queue: Vec<Vec<LayerId>>,
    /// Position of each layer in its accelerator queue.
    queue_pos: Vec<usize>,
    /// Accelerator index per layer.
    acc_of: Vec<usize>,
    /// Layers touched by the last [`IncrementalSchedule::propagate`].
    touched: usize,
}

impl IncrementalSchedule {
    /// Seeds the incremental state from a full evaluation of
    /// `(mapping, locality)`.
    ///
    /// # Panics
    ///
    /// Panics if the mapping is incomplete (validate first).
    pub fn new(
        ev: &Evaluator<'_>,
        mapping: &Mapping,
        locality: &LocalityState,
    ) -> Self {
        let model = ev.model();
        let system = ev.system();
        let full = ev.evaluate(mapping, locality);
        let bound = model.id_bound();
        let mut dur = vec![0.0; bound];
        let mut start = vec![0.0; bound];
        let mut finish = vec![0.0; bound];
        let mut acc_of = vec![usize::MAX; bound];
        let mut acc_queue: Vec<Vec<LayerId>> = vec![Vec::new(); system.num_accs()];
        let mut queue_pos = vec![0usize; bound];
        for id in model.topo_order() {
            let t = full.timing(id).expect("complete mapping schedules every layer");
            dur[id.index()] = (t.finish - t.start).as_f64();
            start[id.index()] = t.start.as_f64();
            finish[id.index()] = t.finish.as_f64();
            let a = mapping.acc_of(id).index();
            acc_of[id.index()] = a;
            queue_pos[id.index()] = acc_queue[a].len();
            acc_queue[a].push(id);
        }
        IncrementalSchedule { dur, start, finish, acc_queue, queue_pos, acc_of, touched: 0 }
    }

    /// Current makespan (max finish over all layers).
    pub fn makespan(&self) -> Seconds {
        Seconds::new(self.finish.iter().cloned().fold(0.0, f64::max))
    }

    /// Finish time of one layer.
    pub fn finish_of(&self, layer: LayerId) -> Seconds {
        Seconds::new(self.finish[layer.index()])
    }

    /// Number of layers whose times were recomputed by the last
    /// propagation (the paper's locality-of-update argument).
    pub fn touched(&self) -> usize {
        self.touched
    }

    /// Overrides one layer's duration (e.g. after pinning its weights or
    /// fusing one of its edges) **without** propagating; call
    /// [`IncrementalSchedule::propagate`] once after a batch of changes.
    pub fn set_duration(&mut self, layer: LayerId, dur: Seconds) {
        self.dur[layer.index()] = dur.as_f64();
    }

    /// Recomputes start/finish times along the affected cone of `seeds`
    /// (the layers whose durations changed). Returns the new makespan.
    pub fn propagate(&mut self, model: &ModelGraph, seeds: &[LayerId]) -> Seconds {
        let mut work: VecDeque<LayerId> = seeds.iter().copied().collect();
        let mut queued = vec![false; self.dur.len()];
        for s in seeds {
            queued[s.index()] = true;
        }
        self.touched = 0;
        while let Some(id) = work.pop_front() {
            queued[id.index()] = false;
            self.touched += 1;
            let deps = model
                .predecessors(id)
                .map(|p| self.finish[p.index()])
                .fold(0.0f64, f64::max);
            let a = self.acc_of[id.index()];
            let qp = self.queue_pos[id.index()];
            let avail = if qp == 0 {
                0.0
            } else {
                self.finish[self.acc_queue[a][qp - 1].index()]
            };
            let new_start = deps.max(avail);
            let new_finish = new_start + self.dur[id.index()];
            let changed = (new_finish - self.finish[id.index()]).abs() > 1e-15
                || (new_start - self.start[id.index()]).abs() > 1e-15;
            self.start[id.index()] = new_start;
            self.finish[id.index()] = new_finish;
            if !changed {
                continue;
            }
            // Direct graph successors…
            for s in model.successors(id) {
                if !queued[s.index()] {
                    queued[s.index()] = true;
                    work.push_back(s);
                }
            }
            // …and the next layer in this accelerator's queue.
            if let Some(next) = self.acc_queue[a].get(qp + 1) {
                if !queued[next.index()] {
                    queued[next.index()] = true;
                    work.push_back(*next);
                }
            }
        }
        self.makespan()
    }

    /// Convenience: seed, apply a batch of duration changes, propagate.
    pub fn with_changes(
        ev: &Evaluator<'_>,
        mapping: &Mapping,
        locality: &LocalityState,
        changes: &[(LayerId, Seconds)],
    ) -> (Self, Seconds) {
        let mut inc = IncrementalSchedule::new(ev, mapping, locality);
        for (l, d) in changes {
            inc.set_duration(*l, *d);
        }
        let seeds: Vec<LayerId> = changes.iter().map(|(l, _)| *l).collect();
        let model = ev.model();
        let mk = inc.propagate(model, &seeds);
        (inc, mk)
    }

    /// Asserts (in tests) that the incremental state matches a fresh full
    /// evaluation; exposed for downstream test suites.
    #[doc(hidden)]
    pub fn assert_matches_full(
        &self,
        ev: &Evaluator<'_>,
        mapping: &Mapping,
        locality: &LocalityState,
    ) {
        let full = ev.evaluate(mapping, locality);
        for id in ev.model().layer_ids() {
            let t = full.timing(id).expect("scheduled");
            let inc_f = self.finish[id.index()];
            assert!(
                (t.finish.as_f64() - inc_f).abs() < 1e-9,
                "{id}: incremental {inc_f} vs full {}",
                t.finish.as_f64()
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::system::{AccId, BandwidthClass};
    use crate::testutil::{const_system, ConstAccel};
    use h2h_model::builder::ModelBuilder;
    use h2h_model::tensor::TensorShape;

    fn chain() -> ModelGraph {
        let mut b = ModelBuilder::new("inc");
        let i = b.input("i", TensorShape::Vector { features: 1024 });
        let f1 = b.fc("f1", i, 1024).unwrap();
        let f2 = b.fc("f2", f1, 1024).unwrap();
        let f3 = b.fc("f3", f2, 1024).unwrap();
        let g1 = b.fc("g1", i, 1024).unwrap();
        let _ = (f3, g1);
        b.finish().unwrap()
    }

    #[test]
    fn seed_matches_full_evaluation() {
        let m = chain();
        let sys = const_system(
            vec![ConstAccel::universal("u0", 1e-3), ConstAccel::universal("u1", 2e-3)],
            1e6,
        );
        let mut map = Mapping::new(&m);
        for (i, id) in m.topo_order().into_iter().enumerate() {
            map.set(id, AccId::new(i % 2));
        }
        let ev = Evaluator::new(&m, &sys);
        let loc = LocalityState::new(&sys);
        let inc = IncrementalSchedule::new(&ev, &map, &loc);
        inc.assert_matches_full(&ev, &map, &loc);
        let full = ev.evaluate(&map, &loc);
        assert!((inc.makespan().as_f64() - full.makespan().as_f64()).abs() < 1e-12);
    }

    #[test]
    fn pinning_delta_propagates_to_full_equivalence() {
        // Pin a layer's weights in locality B; the incremental schedule
        // seeded from locality A plus one duration change must equal the
        // full evaluation of B.
        let m = chain();
        let sys = const_system(vec![ConstAccel::universal("u0", 1e-3)], 1e6);
        let mut map = Mapping::new(&m);
        for id in m.layer_ids() {
            map.set(id, AccId::new(0));
        }
        let ev = Evaluator::new(&m, &sys);
        let ids = m.topo_order();
        let loc_a = LocalityState::new(&sys);
        let mut loc_b = LocalityState::new(&sys);
        assert!(loc_b.try_pin(&m, &sys, ids[1], AccId::new(0)));

        let full_b = ev.evaluate(&map, &loc_b);
        let new_dur = {
            let t = full_b.timing(ids[1]).unwrap();
            t.finish - t.start
        };
        let (inc, mk) =
            IncrementalSchedule::with_changes(&ev, &map, &loc_a, &[(ids[1], new_dur)]);
        assert!(
            (mk.as_f64() - full_b.makespan().as_f64()).abs() < 1e-12,
            "incremental {mk} vs full {}",
            full_b.makespan()
        );
        inc.assert_matches_full(&ev, &map, &loc_b);
    }

    #[test]
    fn touched_cone_is_smaller_than_the_graph() {
        // Changing the last layer of a long chain touches only itself;
        // the paper's "without traversing the entire graph" claim.
        let mut b = ModelBuilder::new("long");
        let mut prev = b.input("i", TensorShape::Vector { features: 64 });
        for k in 0..40 {
            prev = b.fc(&format!("f{k}"), prev, 64).unwrap();
        }
        let m = b.finish().unwrap();
        let sys = const_system(vec![ConstAccel::universal("u0", 1e-3)], 1e9);
        let mut map = Mapping::new(&m);
        for id in m.layer_ids() {
            map.set(id, AccId::new(0));
        }
        let ev = Evaluator::new(&m, &sys);
        let loc = LocalityState::new(&sys);
        let mut inc = IncrementalSchedule::new(&ev, &map, &loc);
        let last = *m.topo_order().last().unwrap();
        inc.set_duration(last, Seconds::new(5e-3));
        inc.propagate(&m, &[last]);
        assert_eq!(inc.touched(), 1, "tail change must touch one layer");

        // Changing the head touches everything downstream.
        let head = m.topo_order()[0];
        inc.set_duration(head, Seconds::new(2e-3));
        inc.propagate(&m, &[head]);
        assert_eq!(inc.touched(), m.num_layers());
    }

    #[test]
    fn batch_changes_on_zoo_model_match_full() {
        let m = h2h_model::zoo::cnn_lstm();
        let sys = crate::system::SystemSpec::standard(BandwidthClass::Mid);
        let ev = Evaluator::new(&m, &sys);
        let mut map = Mapping::new(&m);
        for (id, layer) in m.layers() {
            let acc = sys.acc_ids().find(|a| sys.acc(*a).supports(layer)).unwrap();
            map.set(id, acc);
        }
        let loc_a = LocalityState::new(&sys);
        let mut loc_b = LocalityState::new(&sys);
        // Pin everything that fits on each layer's accelerator.
        for id in m.layer_ids() {
            if m.layer(id).has_weights() {
                let _ = loc_b.try_pin(&m, &sys, id, map.acc_of(id));
            }
        }
        let full_b = ev.evaluate(&map, &loc_b);
        let changes: Vec<(LayerId, Seconds)> = m
            .layer_ids()
            .filter(|id| loc_b.is_pinned(*id))
            .map(|id| {
                let t = full_b.timing(id).unwrap();
                (id, t.finish - t.start)
            })
            .collect();
        let (inc, mk) = IncrementalSchedule::with_changes(&ev, &map, &loc_a, &changes);
        assert!((mk.as_f64() - full_b.makespan().as_f64()).abs() < 1e-9);
        inc.assert_matches_full(&ev, &map, &loc_b);
    }
}
