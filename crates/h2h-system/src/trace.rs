//! Chrome trace-event export: open a mapped schedule in
//! `chrome://tracing` / Perfetto. One track (`tid`) per accelerator,
//! one complete event (`ph:"X"`) per layer, transfer/compute phase
//! breakdown in `args`.

use h2h_model::graph::ModelGraph;
use h2h_model::units::Seconds;

use crate::mapping::Mapping;
use crate::schedule::Schedule;
use crate::system::SystemSpec;

fn esc(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn micros(s: Seconds) -> f64 {
    s.as_f64() * 1e6
}

/// Renders the schedule as a Chrome trace-event JSON document.
///
/// ```
/// use h2h_system::trace::to_chrome_trace;
/// use h2h_system::{Evaluator, LocalityState, Mapping};
/// use h2h_system::system::{BandwidthClass, SystemSpec};
///
/// let model = h2h_model::zoo::mocap();
/// let system = SystemSpec::standard(BandwidthClass::Mid);
/// let mut mapping = Mapping::new(&model);
/// for (id, layer) in model.layers() {
///     let acc = system.acc_ids().find(|a| system.acc(*a).supports(layer)).unwrap();
///     mapping.set(id, acc);
/// }
/// let schedule = Evaluator::new(&model, &system)
///     .evaluate(&mapping, &LocalityState::new(&system));
/// let json = to_chrome_trace(&model, &system, &mapping, &schedule);
/// assert!(json.contains("traceEvents"));
/// ```
pub fn to_chrome_trace(
    model: &ModelGraph,
    system: &SystemSpec,
    mapping: &Mapping,
    schedule: &Schedule,
) -> String {
    let mut events = Vec::new();
    // Track names.
    for acc in system.acc_ids() {
        let meta = system.acc(acc).meta();
        events.push(format!(
            r#"{{"name":"thread_name","ph":"M","pid":0,"tid":{},"args":{{"name":"{} ({})"}}}}"#,
            acc.index(),
            esc(&meta.id),
            esc(&meta.fpga)
        ));
    }
    // Layer executions.
    for id in model.layer_ids() {
        let Some(t) = schedule.timing(id) else { continue };
        let layer = model.layer(id);
        let acc = mapping.acc_of(id);
        events.push(format!(
            concat!(
                r#"{{"name":"{}","cat":"{:?}","ph":"X","pid":0,"tid":{},"ts":{:.3},"dur":{:.3},"#,
                r#""args":{{"weight_xfer_us":{:.3},"ifm_xfer_us":{:.3},"compute_us":{:.3},"ofm_xfer_us":{:.3}}}}}"#
            ),
            esc(layer.name()),
            layer.class(),
            acc.index(),
            micros(t.start),
            micros(t.finish - t.start),
            micros(t.weight_xfer),
            micros(t.ifm_xfer),
            micros(t.compute),
            micros(t.ofm_xfer),
        ));
    }
    format!(
        "{{\"traceEvents\":[\n{}\n],\"displayTimeUnit\":\"ms\"}}\n",
        events.join(",\n")
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::locality::LocalityState;
    use crate::schedule::Evaluator;
    use crate::system::BandwidthClass;

    fn traced() -> String {
        let model = h2h_model::zoo::cnn_lstm();
        let system = SystemSpec::standard(BandwidthClass::Mid);
        let mut mapping = Mapping::new(&model);
        for (id, layer) in model.layers() {
            let acc = system
                .acc_ids()
                .find(|a| system.acc(*a).supports(layer))
                .unwrap();
            mapping.set(id, acc);
        }
        let schedule =
            Evaluator::new(&model, &system).evaluate(&mapping, &LocalityState::new(&system));
        to_chrome_trace(&model, &system, &mapping, &schedule)
    }

    #[test]
    fn trace_is_valid_json_with_all_layers() {
        let json = traced();
        let v: serde_json::Value = serde_json::from_str(&json).expect("valid JSON");
        let events = v["traceEvents"].as_array().expect("array");
        let model = h2h_model::zoo::cnn_lstm();
        let complete = events
            .iter()
            .filter(|e| e["ph"] == "X")
            .count();
        assert_eq!(complete, model.num_layers());
        // Metadata events name every accelerator track.
        let meta = events.iter().filter(|e| e["ph"] == "M").count();
        assert_eq!(meta, 12);
    }

    #[test]
    fn durations_are_nonnegative_and_phased() {
        let json = traced();
        let v: serde_json::Value = serde_json::from_str(&json).unwrap();
        for e in v["traceEvents"].as_array().unwrap() {
            if e["ph"] == "X" {
                assert!(e["dur"].as_f64().unwrap() >= 0.0);
                let args = &e["args"];
                let sum = args["weight_xfer_us"].as_f64().unwrap()
                    + args["ifm_xfer_us"].as_f64().unwrap()
                    + args["compute_us"].as_f64().unwrap()
                    + args["ofm_xfer_us"].as_f64().unwrap();
                let dur = e["dur"].as_f64().unwrap();
                assert!((sum - dur).abs() < 1e-3, "phases {sum} vs dur {dur}");
            }
        }
    }
}
