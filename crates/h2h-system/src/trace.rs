//! Trace I/O: Chrome trace-event **export** of a mapped schedule
//! (open in `chrome://tracing` / Perfetto — one track per accelerator,
//! one complete event per layer, phase breakdown in `args`) and
//! replayable request-arrival **import** ([`ArrivalTrace`]) for the
//! open-loop serving layer (`h2h_core::serve`): one absolute arrival
//! timestamp per line, validated monotone, replayed bit-identically.

use h2h_model::graph::ModelGraph;
use h2h_model::units::Seconds;

use crate::mapping::Mapping;
use crate::schedule::Schedule;
use crate::system::SystemSpec;

fn esc(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn micros(s: Seconds) -> f64 {
    s.as_f64() * 1e6
}

/// Renders the schedule as a Chrome trace-event JSON document.
///
/// ```
/// use h2h_system::trace::to_chrome_trace;
/// use h2h_system::{Evaluator, LocalityState, Mapping};
/// use h2h_system::system::{BandwidthClass, SystemSpec};
///
/// let model = h2h_model::zoo::mocap();
/// let system = SystemSpec::standard(BandwidthClass::Mid);
/// let mut mapping = Mapping::new(&model);
/// for (id, layer) in model.layers() {
///     let acc = system.acc_ids().find(|a| system.acc(*a).supports(layer)).unwrap();
///     mapping.set(id, acc);
/// }
/// let schedule = Evaluator::new(&model, &system)
///     .evaluate(&mapping, &LocalityState::new(&system));
/// let json = to_chrome_trace(&model, &system, &mapping, &schedule);
/// assert!(json.contains("traceEvents"));
/// ```
pub fn to_chrome_trace(
    model: &ModelGraph,
    system: &SystemSpec,
    mapping: &Mapping,
    schedule: &Schedule,
) -> String {
    let mut events = Vec::new();
    // Track names.
    for acc in system.acc_ids() {
        let meta = system.acc(acc).meta();
        events.push(format!(
            r#"{{"name":"thread_name","ph":"M","pid":0,"tid":{},"args":{{"name":"{} ({})"}}}}"#,
            acc.index(),
            esc(&meta.id),
            esc(&meta.fpga)
        ));
    }
    // Layer executions.
    for id in model.layer_ids() {
        let Some(t) = schedule.timing(id) else { continue };
        let layer = model.layer(id);
        let acc = mapping.acc_of(id);
        events.push(format!(
            concat!(
                r#"{{"name":"{}","cat":"{:?}","ph":"X","pid":0,"tid":{},"ts":{:.3},"dur":{:.3},"#,
                r#""args":{{"weight_xfer_us":{:.3},"ifm_xfer_us":{:.3},"compute_us":{:.3},"ofm_xfer_us":{:.3}}}}}"#
            ),
            esc(layer.name()),
            layer.class(),
            acc.index(),
            micros(t.start),
            micros(t.finish - t.start),
            micros(t.weight_xfer),
            micros(t.ifm_xfer),
            micros(t.compute),
            micros(t.ofm_xfer),
        ));
    }
    format!(
        "{{\"traceEvents\":[\n{}\n],\"displayTimeUnit\":\"ms\"}}\n",
        events.join(",\n")
    )
}

/// A replayable request-arrival trace: absolute arrival timestamps in
/// seconds, validated finite, non-negative and monotone non-decreasing
/// at construction. The serving layer replays a prefix of the trace as
/// one tenant's arrival process, so a recorded production workload (or
/// a hand-written worst case) drives the open-loop drain exactly the
/// same way on every machine.
///
/// The text format is one timestamp per line; blank lines and lines
/// starting with `#` are ignored:
///
/// ```text
/// # bursty: three requests at t=0, then a gap
/// 0.0
/// 0.0
/// 0.0
/// 2.5
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ArrivalTrace {
    times: Vec<f64>,
}

impl ArrivalTrace {
    /// Builds a trace from raw timestamps, validating every invariant
    /// the serving clock depends on.
    ///
    /// # Errors
    ///
    /// A human-readable reason when some timestamp is non-finite,
    /// negative, or decreasing, or when the trace is empty.
    pub fn new(times: Vec<f64>) -> Result<Self, String> {
        if times.is_empty() {
            return Err("arrival trace is empty".into());
        }
        let mut prev = 0.0f64;
        for (i, t) in times.iter().enumerate() {
            if !t.is_finite() || *t < 0.0 {
                return Err(format!(
                    "arrival {i} is {t} — timestamps must be finite and non-negative"
                ));
            }
            if *t < prev {
                return Err(format!(
                    "arrival {i} at {t}s precedes arrival {} at {prev}s — \
                     the trace must be monotone non-decreasing",
                    i - 1
                ));
            }
            prev = *t;
        }
        Ok(ArrivalTrace { times })
    }

    /// Parses the one-timestamp-per-line text format (`#` comments and
    /// blank lines ignored).
    ///
    /// # Errors
    ///
    /// A reason naming the offending line on unparsable text, plus
    /// everything [`ArrivalTrace::new`] rejects.
    pub fn parse(text: &str) -> Result<Self, String> {
        let mut times = Vec::new();
        for (lineno, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let t: f64 = line.parse().map_err(|_| {
                format!("line {}: `{line}` is not a timestamp", lineno + 1)
            })?;
            times.push(t);
        }
        ArrivalTrace::new(times)
    }

    /// Number of arrivals recorded.
    pub fn len(&self) -> usize {
        self.times.len()
    }

    /// True when the trace holds no arrivals (unreachable for
    /// validated traces; kept for API completeness).
    pub fn is_empty(&self) -> bool {
        self.times.is_empty()
    }

    /// The validated timestamps.
    pub fn times(&self) -> &[f64] {
        &self.times
    }

    /// The first `n` arrivals as an owned schedule.
    ///
    /// # Errors
    ///
    /// When the trace holds fewer than `n` arrivals.
    pub fn prefix(&self, n: usize) -> Result<Vec<f64>, String> {
        if self.times.len() < n {
            return Err(format!(
                "trace holds {} arrivals but the contract needs {n}",
                self.times.len()
            ));
        }
        Ok(self.times[..n].to_vec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::locality::LocalityState;
    use crate::schedule::Evaluator;
    use crate::system::BandwidthClass;

    fn traced() -> String {
        let model = h2h_model::zoo::cnn_lstm();
        let system = SystemSpec::standard(BandwidthClass::Mid);
        let mut mapping = Mapping::new(&model);
        for (id, layer) in model.layers() {
            let acc = system
                .acc_ids()
                .find(|a| system.acc(*a).supports(layer))
                .unwrap();
            mapping.set(id, acc);
        }
        let schedule =
            Evaluator::new(&model, &system).evaluate(&mapping, &LocalityState::new(&system));
        to_chrome_trace(&model, &system, &mapping, &schedule)
    }

    #[test]
    fn trace_is_valid_json_with_all_layers() {
        let json = traced();
        let v: serde_json::Value = serde_json::from_str(&json).expect("valid JSON");
        let events = v["traceEvents"].as_array().expect("array");
        let model = h2h_model::zoo::cnn_lstm();
        let complete = events
            .iter()
            .filter(|e| e["ph"] == "X")
            .count();
        assert_eq!(complete, model.num_layers());
        // Metadata events name every accelerator track.
        let meta = events.iter().filter(|e| e["ph"] == "M").count();
        assert_eq!(meta, 12);
    }

    #[test]
    fn arrival_trace_parses_validates_and_prefixes() {
        let tr = ArrivalTrace::parse("# burst\n0.0\n0.0\n\n2.5\n3.25\n").unwrap();
        assert_eq!(tr.len(), 4);
        assert_eq!(tr.times(), &[0.0, 0.0, 2.5, 3.25]);
        assert_eq!(tr.prefix(2).unwrap(), vec![0.0, 0.0]);
        assert!(tr.prefix(5).is_err(), "prefix beyond the trace must refuse");

        assert!(ArrivalTrace::parse("").is_err(), "empty trace");
        assert!(ArrivalTrace::parse("1.0\nnope\n").is_err(), "bad line");
        assert!(ArrivalTrace::new(vec![1.0, 0.5]).is_err(), "decreasing");
        assert!(ArrivalTrace::new(vec![-1.0]).is_err(), "negative");
        assert!(ArrivalTrace::new(vec![f64::NAN]).is_err(), "NaN");
        assert!(ArrivalTrace::new(vec![f64::INFINITY]).is_err(), "infinite");
    }

    #[test]
    fn durations_are_nonnegative_and_phased() {
        let json = traced();
        let v: serde_json::Value = serde_json::from_str(&json).unwrap();
        for e in v["traceEvents"].as_array().unwrap() {
            if e["ph"] == "X" {
                assert!(e["dur"].as_f64().unwrap() >= 0.0);
                let args = &e["args"];
                let sum = args["weight_xfer_us"].as_f64().unwrap()
                    + args["ifm_xfer_us"].as_f64().unwrap()
                    + args["compute_us"].as_f64().unwrap()
                    + args["ofm_xfer_us"].as_f64().unwrap();
                let dur = e["dur"].as_f64().unwrap();
                assert!((sum - dur).abs() < 1e-3, "phases {sum} vs dur {dur}");
            }
        }
    }
}
