//! Discrete-event simulation of the multi-FPGA cluster.
//!
//! The analytical scheduler ([`crate::schedule::Evaluator`]) assumes
//! every route of the interconnect fabric runs at its full effective
//! bandwidth regardless of what the rest of the cluster is doing — the
//! same abstraction the paper's modified-MAESTRO infrastructure uses.
//! This simulator executes the mapped model event by event over the
//! *same* [`crate::topology::Topology`] (every transfer phase is rated
//! by the identical `(src, dst)` route query the analytical
//! [`crate::schedule::Evaluator::layer_cost`] charges) and can
//! additionally model the fabric's real bottleneck: the host NIC,
//! shared by all concurrent via-host transfers (processor-sharing
//! fluid model). Direct peer links of a switched fabric bypass the
//! host and never contend for it.
//!
//! With dedicated links (`SimConfig::dedicated`) the simulation
//! reproduces the analytical schedule exactly — that equivalence is a
//! cross-validation test of both implementations. With a finite host
//! NIC it quantifies how much the contention-free abstraction
//! under-reports congested makespans; the analytical floor on that
//! congestion is [`crate::topology::host_contention_bound`], which the
//! `sim_crosscheck` suite verifies the simulator never beats.

use h2h_model::graph::{LayerId, ModelGraph};
use h2h_model::layer::LayerOp;
use h2h_model::tensor::DataType;
use h2h_model::units::{BytesPerSec, Seconds};

use crate::locality::LocalityState;
use crate::mapping::Mapping;
use crate::schedule::CostCache;
use crate::system::SystemSpec;
use crate::topology::Endpoint;

/// Simulator configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimConfig {
    /// Aggregate host-NIC capacity shared by all in-flight Ethernet
    /// transfers; `None` models dedicated full-rate links (the paper's
    /// abstraction).
    pub host_nic_capacity: Option<BytesPerSec>,
    /// Serving batch size: weights are fetched once per batch,
    /// activations and compute repeat per request (matches
    /// `Evaluator::with_batch`).
    pub batch: u32,
}

impl SimConfig {
    /// Dedicated per-accelerator links (matches the analytical model).
    pub fn dedicated() -> Self {
        SimConfig { host_nic_capacity: None, batch: 1 }
    }

    /// A shared host NIC of `capacity`.
    pub fn shared_nic(capacity: BytesPerSec) -> Self {
        SimConfig { host_nic_capacity: Some(capacity), batch: 1 }
    }

    /// Sets the serving batch size.
    ///
    /// # Panics
    ///
    /// Panics if `batch == 0`.
    pub fn with_batch(mut self, batch: u32) -> Self {
        assert!(batch >= 1, "batch must be at least 1");
        self.batch = batch;
        self
    }
}

/// Simulation result.
#[derive(Debug, Clone, PartialEq)]
pub struct SimReport {
    makespan: Seconds,
    finish: Vec<Option<Seconds>>,
    events: usize,
}

impl SimReport {
    /// End-to-end simulated latency.
    pub fn makespan(&self) -> Seconds {
        self.makespan
    }

    /// Finish time of a layer.
    pub fn finish_of(&self, layer: LayerId) -> Option<Seconds> {
        self.finish.get(layer.index()).copied().flatten()
    }

    /// Number of simulation events processed (engine health metric).
    pub fn events(&self) -> usize {
        self.events
    }
}

#[derive(Debug, Clone, Copy)]
enum Phase {
    /// Interconnect transfer: remaining bytes, the route's effective
    /// rate, and whether the route relays through the host NIC (only
    /// those phases contend for `SimConfig::host_nic_capacity`).
    Link { bytes: f64, rate: f64, via_host: bool },
    /// Fixed-duration work: compute or local-DRAM traffic (seconds).
    Timed(f64),
}

#[derive(Debug)]
struct ActiveLayer {
    id: LayerId,
    phases: Vec<Phase>,
    /// Index of the phase currently executing.
    current: usize,
}

/// Simulates the mapped, locality-annotated model on the system.
///
/// # Panics
///
/// Panics if the mapping is incomplete or maps a layer onto an
/// accelerator that cannot execute it (validate first).
pub fn simulate(
    model: &ModelGraph,
    system: &SystemSpec,
    mapping: &Mapping,
    locality: &LocalityState,
    config: SimConfig,
) -> SimReport {
    let cache = CostCache::new(model, system);
    let topo = system.topology();
    let bound = model.id_bound();

    // Per-acc queues in global topological priority order.
    let mut queues: Vec<Vec<LayerId>> = vec![Vec::new(); system.num_accs()];
    for id in model.topo_order() {
        queues[mapping.acc_of(id).index()].push(id);
    }
    let mut next_in_queue = vec![0usize; system.num_accs()];
    let mut active: Vec<Option<ActiveLayer>> = (0..system.num_accs()).map(|_| None).collect();

    let mut finished = vec![false; bound];
    let mut finish_time: Vec<Option<Seconds>> = vec![None; bound];
    let mut remaining = model.num_layers();
    let mut now = 0.0f64;
    let mut events = 0usize;

    let edge_is_local =
        |from: LayerId, to: LayerId| locality.edge_is_local(model, mapping, from, to);

    let b = config.batch as f64;
    // Every Link phase is rated by the same (src, dst) route query the
    // analytical `Evaluator::layer_cost` charges, so dedicated-link
    // simulation reproduces the analytical schedule exactly on any
    // topology.
    let build_phases = |id: LayerId| -> Vec<Phase> {
        let layer = model.layer(id);
        let acc = mapping.acc_of(id);
        let here = Endpoint::Acc(acc);
        let dram = system.acc(acc).dram_bandwidth().as_f64();
        let mut phases = Vec::new();
        let is_input = matches!(layer.op(), LayerOp::Input { .. });
        let link = |bytes: f64, src: Endpoint, dst: Endpoint| Phase::Link {
            bytes,
            rate: topo.path_bw(src, dst).as_f64(),
            via_host: topo.crosses_host(src, dst),
        };

        // Weights amortize over the batch; everything below repeats per
        // request.
        let wbytes = layer.weight_bytes(DataType::F32).as_f64();
        if wbytes > 0.0 {
            if locality.is_pinned(id) {
                phases.push(Phase::Timed(wbytes / dram));
            } else {
                phases.push(link(wbytes, Endpoint::Host, here));
            }
        }
        for pred in model.predecessors(id) {
            let bytes = model.edge_bytes(pred, id).expect("edge exists").as_f64();
            if bytes <= 0.0 {
                continue;
            }
            if edge_is_local(pred, id) {
                phases.push(Phase::Timed(b * bytes / dram));
            } else {
                phases.push(link(b * bytes, crate::topology::edge_src(model, mapping, pred), here));
            }
        }
        let comp = cache.time(id, acc).expect("supported layer").as_f64();
        if comp > 0.0 {
            phases.push(Phase::Timed(b * comp));
        }
        if !is_input {
            let obytes = layer.ofm_bytes(DataType::F32).as_f64();
            // One upload serves all remote consumers at the slowest
            // route among them (host for outputs) — the shared
            // `Topology::ofm_route` rule, so sim and evaluator cannot
            // drift; it contends for the host NIC iff any chosen route
            // relays through it.
            if let Some((bw, via_host)) = topo.ofm_route(model, mapping, locality, id) {
                if obytes > 0.0 {
                    phases.push(Phase::Link {
                        bytes: b * obytes,
                        rate: bw.as_f64(),
                        via_host,
                    });
                }
            }
            let any_local = model.successors(id).any(|s| edge_is_local(id, s));
            if any_local && obytes > 0.0 {
                phases.push(Phase::Timed(b * obytes / dram));
            }
        }
        phases
    };

    loop {
        // Start whatever can start.
        for acc in 0..queues.len() {
            if active[acc].is_some() {
                continue;
            }
            let qi = next_in_queue[acc];
            if qi >= queues[acc].len() {
                continue;
            }
            let head = queues[acc][qi];
            if model.predecessors(head).all(|p| finished[p.index()]) {
                next_in_queue[acc] += 1;
                active[acc] = Some(ActiveLayer { id: head, phases: build_phases(head), current: 0 });
            }
        }

        // Zero-phase layers complete immediately; resolve before timing.
        let mut instant = false;
        for slot in active.iter_mut() {
            if let Some(a) = slot {
                if a.current >= a.phases.len() {
                    finished[a.id.index()] = true;
                    finish_time[a.id.index()] = Some(Seconds::new(now));
                    remaining -= 1;
                    *slot = None;
                    instant = true;
                }
            }
        }
        if instant {
            continue;
        }

        if remaining == 0 {
            break;
        }

        // Current rates: via-host transfer phases share the host NIC
        // (fair processor sharing); direct peer links run at full rate.
        let n_host = active
            .iter()
            .flatten()
            .filter(|a| matches!(a.phases[a.current], Phase::Link { via_host: true, .. }))
            .count();
        let host_share = match config.host_nic_capacity {
            Some(cap) if n_host > 0 => cap.as_f64() / n_host as f64,
            _ => f64::INFINITY,
        };
        let phase_rate = |p: &Phase| match *p {
            Phase::Link { rate, via_host, .. } => {
                if via_host {
                    rate.min(host_share)
                } else {
                    rate
                }
            }
            Phase::Timed(_) => f64::INFINITY,
        };

        // Time to the next phase completion.
        let mut dt = f64::INFINITY;
        for a in active.iter().flatten() {
            let t = match a.phases[a.current] {
                Phase::Link { bytes, .. } => bytes / phase_rate(&a.phases[a.current]),
                Phase::Timed(secs) => secs,
            };
            dt = dt.min(t);
        }
        assert!(
            dt.is_finite(),
            "simulation stalled at t={now}: {remaining} layers unfinished (head-of-line deadlock?)"
        );
        events += 1;
        now += dt;

        // Advance all active phases by dt.
        for slot in active.iter_mut() {
            let Some(a) = slot else { continue };
            let rate = phase_rate(&a.phases[a.current]);
            let done = match &mut a.phases[a.current] {
                Phase::Link { bytes, .. } => {
                    *bytes -= rate * dt;
                    *bytes <= 1e-9
                }
                Phase::Timed(secs) => {
                    *secs -= dt;
                    *secs <= 1e-12
                }
            };
            if done {
                a.current += 1;
                if a.current >= a.phases.len() {
                    finished[a.id.index()] = true;
                    finish_time[a.id.index()] = Some(Seconds::new(now));
                    remaining -= 1;
                    *slot = None;
                }
            }
        }
    }

    SimReport { makespan: Seconds::new(now), finish: finish_time, events }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::Evaluator;
    use crate::system::AccId;
    use crate::testutil::{const_system, ConstAccel};
    use h2h_model::builder::ModelBuilder;
    use h2h_model::tensor::TensorShape;

    fn branchy_model() -> ModelGraph {
        let mut b = ModelBuilder::new("branchy");
        let i = b.input("i", TensorShape::Vector { features: 4096 });
        let f1 = b.fc("a1", i, 2048).unwrap();
        let f2 = b.fc("b1", i, 2048).unwrap();
        let f3 = b.fc("a2", f1, 1024).unwrap();
        let f4 = b.fc("b2", f2, 1024).unwrap();
        let j = b.add("join", &[f3, f4]).unwrap();
        b.fc("head", j, 16).unwrap();
        b.finish().unwrap()
    }

    fn spread_mapping(m: &ModelGraph, n: usize) -> Mapping {
        let mut map = Mapping::new(m);
        for (i, id) in m.topo_order().into_iter().enumerate() {
            map.set(id, AccId::new(i % n));
        }
        map
    }

    #[test]
    fn dedicated_links_match_analytic_exactly() {
        let m = branchy_model();
        let sys = const_system(
            vec![
                ConstAccel::universal("U0", 2e-3),
                ConstAccel::universal("U1", 3e-3),
                ConstAccel::universal("U2", 1e-3),
            ],
            1e6,
        );
        let map = spread_mapping(&m, 3);
        let loc = LocalityState::new(&sys);
        let ev = Evaluator::new(&m, &sys);
        let analytic = ev.evaluate(&map, &loc);
        let sim = simulate(&m, &sys, &map, &loc, SimConfig::dedicated());
        let a = analytic.makespan().as_f64();
        let s = sim.makespan().as_f64();
        assert!(
            (a - s).abs() / a < 1e-6,
            "analytic {a} vs simulated {s}"
        );
        // Per-layer finishes agree too.
        for id in m.layer_ids() {
            let at = analytic.timing(id).unwrap().finish.as_f64();
            let st = sim.finish_of(id).unwrap().as_f64();
            assert!((at - st).abs() < 1e-6, "{id}: {at} vs {st}");
        }
    }

    #[test]
    fn dedicated_links_match_analytic_with_locality() {
        let m = branchy_model();
        let sys = const_system(
            vec![ConstAccel::universal("U0", 2e-3), ConstAccel::universal("U1", 1e-3)],
            1e6,
        );
        let ids = m.topo_order();
        let mut map = Mapping::new(&m);
        for id in &ids {
            map.set(*id, AccId::new(0));
        }
        map.set(ids[2], AccId::new(1));
        let mut loc = LocalityState::new(&sys);
        // Pin a weighted layer and fuse a co-located edge.
        assert!(loc.try_pin(&m, &sys, ids[1], AccId::new(0)));
        assert!(loc.try_fuse(&m, &sys, ids[1], ids[3], AccId::new(0)));
        let ev = Evaluator::new(&m, &sys);
        let analytic = ev.evaluate(&map, &loc);
        let sim = simulate(&m, &sys, &map, &loc, SimConfig::dedicated());
        let a = analytic.makespan().as_f64();
        let s = sim.makespan().as_f64();
        assert!((a - s).abs() / a < 1e-6, "analytic {a} vs simulated {s}");
    }

    #[test]
    fn shared_nic_never_beats_dedicated() {
        let m = branchy_model();
        let sys = const_system(
            vec![
                ConstAccel::universal("U0", 1e-3),
                ConstAccel::universal("U1", 1e-3),
                ConstAccel::universal("U2", 1e-3),
            ],
            1e6,
        );
        let map = spread_mapping(&m, 3);
        let loc = LocalityState::new(&sys);
        let ded = simulate(&m, &sys, &map, &loc, SimConfig::dedicated());
        let shared = simulate(
            &m,
            &sys,
            &map,
            &loc,
            SimConfig::shared_nic(BytesPerSec::new(1e6)),
        );
        assert!(shared.makespan() >= ded.makespan());
        // With parallel branches crossing accelerators, a NIC equal to a
        // single link must actually hurt.
        assert!(
            shared.makespan().as_f64() > ded.makespan().as_f64() * 1.05,
            "shared {} vs dedicated {}",
            shared.makespan(),
            ded.makespan()
        );
    }

    #[test]
    fn generous_shared_nic_converges_to_dedicated() {
        let m = branchy_model();
        let sys = const_system(
            vec![ConstAccel::universal("U0", 1e-3), ConstAccel::universal("U1", 1e-3)],
            1e6,
        );
        let map = spread_mapping(&m, 2);
        let loc = LocalityState::new(&sys);
        let ded = simulate(&m, &sys, &map, &loc, SimConfig::dedicated());
        let roomy = simulate(
            &m,
            &sys,
            &map,
            &loc,
            SimConfig::shared_nic(BytesPerSec::new(1e9)),
        );
        let d = ded.makespan().as_f64();
        let r = roomy.makespan().as_f64();
        assert!((d - r).abs() / d < 1e-9, "dedicated {d} vs roomy shared {r}");
    }

    #[test]
    fn event_count_is_bounded() {
        let m = branchy_model();
        let sys = const_system(vec![ConstAccel::universal("U0", 1e-3)], 1e6);
        let mut map = Mapping::new(&m);
        for id in m.layer_ids() {
            map.set(id, AccId::new(0));
        }
        let rep = simulate(&m, &sys, &map, &LocalityState::new(&sys), SimConfig::dedicated());
        // At most a handful of events per phase.
        assert!(rep.events() < m.num_layers() * 8);
    }
}
