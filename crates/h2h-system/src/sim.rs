//! Discrete-event simulation of the multi-FPGA cluster.
//!
//! ## The phase model
//!
//! Each mapped layer executes as a pipeline of *phases* on its board,
//! in order:
//!
//! 1. **Weight fetch** — a local-DRAM [`Phase::Timed`] when the layer
//!    is pinned, a host→board [`Phase::Link`] stream otherwise;
//! 2. **IFM ingest** — one phase per incoming activation edge: a
//!    local-DRAM `Timed` read when the edge is fused, a `Link` phase
//!    from [`crate::topology::edge_src`] otherwise;
//! 3. **Compute** — a `Compute` phase from the shared
//!    [`crate::schedule::CostCache`], tracked in healthy-speed seconds
//!    and stretched by the board's instantaneous throttle factor;
//! 4. **OFM upload** — the *single* `Link` phase of the shared
//!    [`crate::topology::Topology::ofm_route`] rule (one upload serves
//!    every remote consumer at the slowest route among them; model
//!    outputs land at the host), plus a local-DRAM `Timed` write when
//!    some consumer is fused.
//!
//! A `Link` phase carries its remaining bytes, the effective rate of
//! its `(src, dst)` route, and a `via_host` bit — the identical route
//! query the analytical [`crate::schedule::Evaluator::layer_cost`]
//! charges, so with dedicated links (`SimConfig::dedicated`) the
//! simulation reproduces the analytical schedule exactly on any
//! topology (a cross-validation test of both implementations). Only
//! via-host phases contend for the optional shared host NIC
//! (`SimConfig::shared_nic`, fair processor-sharing fluid model);
//! direct peer links of a switched fabric bypass the host and never
//! pay that contention. The analytical floor on the congestion is
//! [`crate::topology::host_contention_bound`], which the
//! `sim_crosscheck` suite verifies the simulator never beats.
//!
//! ## Batch semantics ([`SimConfig::with_batch`])
//!
//! A batch of `k` requests streams through the mapping the way a
//! multi-tenant serve *slice* does ([`crate::schedule::Evaluator::with_batch`]):
//! weights are fetched **once** per slice, while IFM transfers,
//! compute and OFM uploads repeat per request — their phase sizes
//! scale by `k`. Dedicated-link simulation of a batch-`k` slice
//! therefore reproduces the analytic batched makespan the serve loop's
//! `IncrementalSchedule::rebatch` maintains incrementally.
//!
//! ## Fault timelines ([`simulate_with_faults`])
//!
//! The same execution can replay through a [`FaultPlan`]: fault
//! boundaries clamp the event-loop time step, and at each boundary the
//! degraded fabric ([`crate::topology::Topology::degrade`]) re-rates
//! every in-flight and queued `Link` phase — transfers keep their
//! remaining bytes and continue at the new route rate (fluid model).
//! A down board freezes: it starts no layers, its phases make no
//! progress until recovery, and its frozen via-host transfers release
//! the shared NIC. A compute-throttled board
//! ([`crate::fault::FaultKind::BoardDegraded`]) keeps running, its
//! `Compute` phases stretched by the throttle factor — remaining work
//! is tracked in healthy-speed seconds, so mid-phase throttle changes
//! re-rate fluidly like transfers do. A *down host*
//! ([`crate::fault::FaultKind::HostDown`]) stalls every via-host
//! `Link` phase (weight streams, host-relayed activations, output
//! uploads) while peer-link transfers, compute and local DRAM traffic
//! keep flowing — the NIC-outage analogue of the board freeze. An
//! always-degraded plan therefore matches the analytical evaluator on
//! the degraded system exactly, and a recoverable outage on an
//! otherwise-idle dependency chain delays the makespan by exactly the
//! outage overlap — the fault-window cross-checks of the analytical
//! degraded-route costs. With an empty plan the code path is
//! bit-identical to [`simulate`]. A timeline whose remaining work can
//! never progress again (an unrecovered outage stranding mapped work)
//! returns [`SimError::Stalled`] instead of deadlocking.

use h2h_model::graph::{LayerId, ModelGraph};
use h2h_model::layer::LayerOp;
use h2h_model::tensor::DataType;
use h2h_model::units::{BytesPerSec, Seconds};

use crate::fault::FaultPlan;
use crate::locality::LocalityState;
use crate::mapping::Mapping;
use crate::schedule::CostCache;
use crate::system::{AccId, SystemSpec};
use crate::topology::{Endpoint, Topology};

/// Slack under which a modeled clock is considered to have reached a
/// scheduled event time (fault boundaries, staged-repair landings) —
/// the *one* epsilon every event-ordered loop in the workspace
/// compares with, so a fault boundary and a serving-round clock can
/// never disagree about whether the same instant was crossed.
/// Request *arrivals* are deliberately compared exactly (no slack):
/// an epsilon there once pulled a request in before its arrival time,
/// attaining less than the zero-queueing ideal.
pub const BOUNDARY_EPS: f64 = 1e-12;

/// True when clock `now` has reached scheduled event time `t` under
/// [`BOUNDARY_EPS`].
#[inline]
pub fn event_reached(now: f64, t: f64) -> bool {
    now >= t - BOUNDARY_EPS
}

/// Simulator configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimConfig {
    /// Aggregate host-NIC capacity shared by all in-flight via-host
    /// transfer phases; `None` models dedicated full-rate links (the
    /// paper's abstraction).
    pub host_nic_capacity: Option<BytesPerSec>,
    /// Serving batch size: weights are fetched once per batch,
    /// activations and compute repeat per request (matches
    /// `Evaluator::with_batch` — see the module docs).
    pub batch: u32,
}

impl SimConfig {
    /// Dedicated per-accelerator links (matches the analytical model).
    pub fn dedicated() -> Self {
        SimConfig { host_nic_capacity: None, batch: 1 }
    }

    /// A shared host NIC of `capacity`.
    pub fn shared_nic(capacity: BytesPerSec) -> Self {
        SimConfig { host_nic_capacity: Some(capacity), batch: 1 }
    }

    /// Sets the serving batch size.
    ///
    /// # Panics
    ///
    /// Panics if `batch == 0`.
    pub fn with_batch(mut self, batch: u32) -> Self {
        assert!(batch >= 1, "batch must be at least 1");
        self.batch = batch;
        self
    }
}

/// Why a fault-timeline simulation could not run to completion.
///
/// Returned (never panicked) so serving layers can degrade gracefully
/// — surface the failure, shed the tenant, keep the process alive —
/// instead of aborting.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SimError {
    /// The timeline can make no further progress and no fault boundary
    /// is ahead: an unrecovered outage strands mapped work forever
    /// (work on a permanently dead board, or via-host traffic behind a
    /// permanently dead host). Permanent outages are the *repair*
    /// path's business — the simulator replays timelines on fixed
    /// mappings.
    Stalled {
        /// Simulation clock at the stall.
        at: Seconds,
        /// Layers left unfinished.
        remaining: usize,
        /// Whether the host was down at the stall (the usual culprit
        /// when every board is still up).
        host_down: bool,
    },
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::Stalled { at, remaining, host_down } => write!(
                f,
                "simulation stalled at t={at}: {remaining} layers unfinished \
                 ({} — an unrecovered outage strands mapped work)",
                if *host_down { "host down" } else { "board down or head-of-line deadlock" }
            ),
        }
    }
}

impl std::error::Error for SimError {}

/// Simulation result.
#[derive(Debug, Clone, PartialEq)]
pub struct SimReport {
    makespan: Seconds,
    finish: Vec<Option<Seconds>>,
    events: usize,
}

impl SimReport {
    /// End-to-end simulated latency.
    pub fn makespan(&self) -> Seconds {
        self.makespan
    }

    /// Finish time of a layer.
    pub fn finish_of(&self, layer: LayerId) -> Option<Seconds> {
        self.finish.get(layer.index()).copied().flatten()
    }

    /// Number of simulation events processed (engine health metric).
    pub fn events(&self) -> usize {
        self.events
    }
}

/// How a [`Phase::Link`]'s rate is looked up when the fabric changes
/// at a fault boundary.
#[derive(Debug, Clone, Copy)]
enum Route {
    /// A fixed `(src, dst)` pair, re-priced via `Topology::path_bw`.
    Pair(Endpoint, Endpoint),
    /// The multi-consumer OFM upload of a layer, re-priced via the
    /// shared `Topology::ofm_route` rule.
    Ofm(LayerId),
}

#[derive(Debug, Clone, Copy)]
enum Phase {
    /// Interconnect transfer: remaining bytes, the route's effective
    /// rate, whether the route relays through the host NIC (only those
    /// phases contend for `SimConfig::host_nic_capacity`, and only
    /// those stall while the host is down), and the route itself (for
    /// re-rating at fault boundaries).
    Link { bytes: f64, rate: f64, via_host: bool, route: Route },
    /// Fixed-duration work immune to fault re-rating: local-DRAM
    /// traffic (seconds).
    Timed(f64),
    /// Compute work: remaining seconds *at healthy board speed*. A
    /// compute throttle (`FaultState::compute_factor`) stretches the
    /// wall-clock duration at read time, so mid-phase throttle changes
    /// re-rate the remainder fluidly — the compute analogue of a
    /// `Link` phase's bytes.
    Compute { secs: f64 },
}

#[derive(Debug)]
struct ActiveLayer {
    id: LayerId,
    phases: Vec<Phase>,
    /// Index of the phase currently executing.
    current: usize,
}

/// Simulates the mapped, locality-annotated model on the system.
///
/// # Panics
///
/// Panics if the mapping is incomplete or maps a layer onto an
/// accelerator that cannot execute it (validate first).
pub fn simulate(
    model: &ModelGraph,
    system: &SystemSpec,
    mapping: &Mapping,
    locality: &LocalityState,
    config: SimConfig,
) -> SimReport {
    simulate_with_faults(model, system, mapping, locality, config, &FaultPlan::empty())
        .expect("an empty fault plan cannot stall")
}

/// [`simulate`] through a fault timeline: board outages, link/NIC
/// degradations, compute throttles and host outages of `plan` hit (and
/// recover) at their scheduled times while the model executes — see
/// the module docs for the fluid re-rating, freeze and host-stall
/// semantics. With an empty plan this is bit-identical to
/// [`simulate`].
///
/// # Errors
///
/// Returns [`SimError::Stalled`] when an unrecovered outage strands
/// mapped work forever (every runnable phase frozen with no fault
/// boundary ahead) — permanent outages are the *repair* path's
/// business, the simulator replays timelines on fixed mappings.
///
/// # Panics
///
/// Panics like [`simulate`] on an invalid mapping.
pub fn simulate_with_faults(
    model: &ModelGraph,
    system: &SystemSpec,
    mapping: &Mapping,
    locality: &LocalityState,
    config: SimConfig,
    plan: &FaultPlan,
) -> Result<SimReport, SimError> {
    let cache = CostCache::new(model, system);
    let base_topo = system.topology();
    let n_accs = system.num_accs();
    let bound = model.id_bound();

    // Fault timeline state: the boundaries still ahead, the condition
    // in force, and the degraded fabric (None while healthy). Faults
    // already active at t=0 apply before anything starts.
    let boundaries = plan.boundaries();
    let mut next_boundary = 0usize;
    let mut state = plan.state_at(Seconds::new(0.0), n_accs);
    while next_boundary < boundaries.len() && boundaries[next_boundary] <= 0.0 {
        next_boundary += 1;
    }
    let mut degraded: Option<Topology> =
        (!state.is_healthy()).then(|| base_topo.degrade(&state));
    let mut board_up: Vec<bool> =
        (0..n_accs).map(|i| state.acc_is_up(AccId::new(i))).collect();

    // Per-acc queues in global topological priority order.
    let mut queues: Vec<Vec<LayerId>> = vec![Vec::new(); n_accs];
    for id in model.topo_order() {
        queues[mapping.acc_of(id).index()].push(id);
    }
    let mut next_in_queue = vec![0usize; n_accs];
    let mut active: Vec<Option<ActiveLayer>> = (0..n_accs).map(|_| None).collect();

    let mut finished = vec![false; bound];
    let mut finish_time: Vec<Option<Seconds>> = vec![None; bound];
    let mut remaining = model.num_layers();
    let mut now = 0.0f64;
    let mut events = 0usize;

    let edge_is_local =
        |from: LayerId, to: LayerId| locality.edge_is_local(model, mapping, from, to);

    let b = config.batch as f64;
    // Every Link phase is rated by the same (src, dst) route query the
    // analytical `Evaluator::layer_cost` charges, so dedicated-link
    // simulation reproduces the analytical schedule exactly on any
    // topology — including a degraded one.
    let build_phases = |id: LayerId, topo: &Topology| -> Vec<Phase> {
        let layer = model.layer(id);
        let acc = mapping.acc_of(id);
        let here = Endpoint::Acc(acc);
        let dram = system.acc(acc).dram_bandwidth().as_f64();
        let mut phases = Vec::new();
        let is_input = matches!(layer.op(), LayerOp::Input { .. });
        let link = |bytes: f64, src: Endpoint, dst: Endpoint| Phase::Link {
            bytes,
            rate: topo.path_bw(src, dst).as_f64(),
            via_host: topo.crosses_host(src, dst),
            route: Route::Pair(src, dst),
        };

        // Weights amortize over the batch; everything below repeats per
        // request.
        let wbytes = layer.weight_bytes(DataType::F32).as_f64();
        if wbytes > 0.0 {
            if locality.is_pinned(id) {
                phases.push(Phase::Timed(wbytes / dram));
            } else {
                phases.push(link(wbytes, Endpoint::Host, here));
            }
        }
        for pred in model.predecessors(id) {
            let bytes = model.edge_bytes(pred, id).expect("edge exists").as_f64();
            if bytes <= 0.0 {
                continue;
            }
            if edge_is_local(pred, id) {
                phases.push(Phase::Timed(b * bytes / dram));
            } else {
                phases.push(link(b * bytes, crate::topology::edge_src(model, mapping, pred), here));
            }
        }
        // Remaining compute is tracked at healthy speed; the board's
        // instantaneous throttle factor stretches it at advance time.
        let comp = cache.time(id, acc).expect("supported layer").as_f64();
        if comp > 0.0 {
            phases.push(Phase::Compute { secs: b * comp });
        }
        if !is_input {
            let obytes = layer.ofm_bytes(DataType::F32).as_f64();
            // One upload serves all remote consumers at the slowest
            // route among them (host for outputs) — the shared
            // `Topology::ofm_route` rule, so sim and evaluator cannot
            // drift; it contends for the host NIC iff any chosen route
            // relays through it.
            if let Some((bw, via_host)) = topo.ofm_route(model, mapping, locality, id) {
                if obytes > 0.0 {
                    phases.push(Phase::Link {
                        bytes: b * obytes,
                        rate: bw.as_f64(),
                        via_host,
                        route: Route::Ofm(id),
                    });
                }
            }
            let any_local = model.successors(id).any(|s| edge_is_local(id, s));
            if any_local && obytes > 0.0 {
                phases.push(Phase::Timed(b * obytes / dram));
            }
        }
        phases
    };

    // Re-prices the remaining Link phases of one layer against a new
    // fabric (fault boundary crossed): remaining bytes continue at the
    // new route rate (fluid model).
    let rerate = |a: &mut ActiveLayer, topo: &Topology| {
        for p in a.phases[a.current..].iter_mut() {
            if let Phase::Link { rate, via_host, route, .. } = p {
                let (r, v) = match route {
                    Route::Pair(src, dst) => {
                        (topo.path_bw(*src, *dst).as_f64(), topo.crosses_host(*src, *dst))
                    }
                    Route::Ofm(id) => {
                        let (bw, via) = topo
                            .ofm_route(model, mapping, locality, *id)
                            .expect("OFM phases exist only for routed uploads");
                        (bw.as_f64(), via)
                    }
                };
                *rate = r;
                *via_host = v;
            }
        }
    };

    loop {
        // Apply any fault boundary reached: recompute the degraded
        // fabric and re-rate every phase still ahead.
        while next_boundary < boundaries.len() && event_reached(now, boundaries[next_boundary]) {
            let t = boundaries[next_boundary];
            next_boundary += 1;
            state = plan.state_at(Seconds::new(t), n_accs);
            degraded = (!state.is_healthy()).then(|| base_topo.degrade(&state));
            for (i, up) in board_up.iter_mut().enumerate() {
                *up = state.acc_is_up(AccId::new(i));
            }
            let topo = degraded.as_ref().unwrap_or(base_topo);
            for a in active.iter_mut().flatten() {
                rerate(a, topo);
            }
        }

        // Start whatever can start (down boards start nothing).
        for acc in 0..queues.len() {
            if !board_up[acc] || active[acc].is_some() {
                continue;
            }
            let qi = next_in_queue[acc];
            if qi >= queues[acc].len() {
                continue;
            }
            let head = queues[acc][qi];
            if model.predecessors(head).all(|p| finished[p.index()]) {
                next_in_queue[acc] += 1;
                let topo = degraded.as_ref().unwrap_or(base_topo);
                active[acc] =
                    Some(ActiveLayer { id: head, phases: build_phases(head, topo), current: 0 });
            }
        }

        // Zero-phase layers complete immediately; resolve before timing.
        let mut instant = false;
        for slot in active.iter_mut() {
            if let Some(a) = slot {
                if a.current >= a.phases.len() {
                    finished[a.id.index()] = true;
                    finish_time[a.id.index()] = Some(Seconds::new(now));
                    remaining -= 1;
                    *slot = None;
                    instant = true;
                }
            }
        }
        if instant {
            continue;
        }

        if remaining == 0 {
            break;
        }

        // Current rates: via-host transfer phases share the host NIC
        // (fair processor sharing); direct peer links run at full rate;
        // frozen boards neither progress nor hold a NIC share; a down
        // host stalls every via-host phase outright (rate 0) while
        // peer, compute and DRAM phases keep flowing.
        let host_up = state.host_is_up();
        let n_host = active
            .iter()
            .enumerate()
            .filter(|(acc, _)| board_up[*acc])
            .filter_map(|(_, s)| s.as_ref())
            .filter(|a| matches!(a.phases[a.current], Phase::Link { via_host: true, .. }))
            .count();
        let host_share = match config.host_nic_capacity {
            Some(cap) if n_host > 0 => cap.as_f64() / n_host as f64,
            _ => f64::INFINITY,
        };
        let phase_rate = |p: &Phase| match *p {
            Phase::Link { rate, via_host, .. } => {
                if via_host {
                    if host_up {
                        rate.min(host_share)
                    } else {
                        0.0
                    }
                } else {
                    rate
                }
            }
            Phase::Timed(_) | Phase::Compute { .. } => f64::INFINITY,
        };

        // Time to the next phase completion (frozen boards excluded),
        // clamped to the next fault boundary.
        let mut dt = f64::INFINITY;
        for (acc, slot) in active.iter().enumerate() {
            let Some(a) = slot else { continue };
            if !board_up[acc] {
                continue;
            }
            let t = match a.phases[a.current] {
                Phase::Link { bytes, .. } => bytes / phase_rate(&a.phases[a.current]),
                Phase::Timed(secs) => secs,
                Phase::Compute { secs } => secs * state.compute_factor(AccId::new(acc)),
            };
            dt = dt.min(t);
        }
        let horizon =
            boundaries.get(next_boundary).copied().unwrap_or(f64::INFINITY) - now;
        if !dt.is_finite() {
            // Every runnable phase is frozen by an outage: jump to the
            // next fault boundary (a recovery) if one is scheduled;
            // with none ahead the timeline is stranded forever.
            if !horizon.is_finite() {
                return Err(SimError::Stalled {
                    at: Seconds::new(now),
                    remaining,
                    host_down: !host_up,
                });
            }
            events += 1;
            now += horizon;
            continue;
        }
        let dt = if horizon < dt { horizon } else { dt };
        events += 1;
        now += dt;

        // Advance all unfrozen active phases by dt.
        for (acc, slot) in active.iter_mut().enumerate() {
            let Some(a) = slot else { continue };
            if !board_up[acc] {
                continue;
            }
            let rate = phase_rate(&a.phases[a.current]);
            let done = match &mut a.phases[a.current] {
                Phase::Link { bytes, .. } => {
                    *bytes -= rate * dt;
                    *bytes <= 1e-9
                }
                Phase::Timed(secs) => {
                    *secs -= dt;
                    *secs <= 1e-12
                }
                Phase::Compute { secs } => {
                    *secs -= dt / state.compute_factor(AccId::new(acc));
                    *secs <= 1e-12
                }
            };
            if done {
                a.current += 1;
                if a.current >= a.phases.len() {
                    finished[a.id.index()] = true;
                    finish_time[a.id.index()] = Some(Seconds::new(now));
                    remaining -= 1;
                    *slot = None;
                }
            }
        }
    }

    Ok(SimReport { makespan: Seconds::new(now), finish: finish_time, events })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::{FaultEvent, FaultKind};
    use crate::schedule::Evaluator;
    use crate::system::AccId;
    use crate::testutil::{const_system, ConstAccel};
    use h2h_model::builder::ModelBuilder;
    use h2h_model::tensor::TensorShape;

    fn branchy_model() -> ModelGraph {
        let mut b = ModelBuilder::new("branchy");
        let i = b.input("i", TensorShape::Vector { features: 4096 });
        let f1 = b.fc("a1", i, 2048).unwrap();
        let f2 = b.fc("b1", i, 2048).unwrap();
        let f3 = b.fc("a2", f1, 1024).unwrap();
        let f4 = b.fc("b2", f2, 1024).unwrap();
        let j = b.add("join", &[f3, f4]).unwrap();
        b.fc("head", j, 16).unwrap();
        b.finish().unwrap()
    }

    fn spread_mapping(m: &ModelGraph, n: usize) -> Mapping {
        let mut map = Mapping::new(m);
        for (i, id) in m.topo_order().into_iter().enumerate() {
            map.set(id, AccId::new(i % n));
        }
        map
    }

    #[test]
    fn dedicated_links_match_analytic_exactly() {
        let m = branchy_model();
        let sys = const_system(
            vec![
                ConstAccel::universal("U0", 2e-3),
                ConstAccel::universal("U1", 3e-3),
                ConstAccel::universal("U2", 1e-3),
            ],
            1e6,
        );
        let map = spread_mapping(&m, 3);
        let loc = LocalityState::new(&sys);
        let ev = Evaluator::new(&m, &sys);
        let analytic = ev.evaluate(&map, &loc);
        let sim = simulate(&m, &sys, &map, &loc, SimConfig::dedicated());
        let a = analytic.makespan().as_f64();
        let s = sim.makespan().as_f64();
        assert!(
            (a - s).abs() / a < 1e-6,
            "analytic {a} vs simulated {s}"
        );
        // Per-layer finishes agree too.
        for id in m.layer_ids() {
            let at = analytic.timing(id).unwrap().finish.as_f64();
            let st = sim.finish_of(id).unwrap().as_f64();
            assert!((at - st).abs() < 1e-6, "{id}: {at} vs {st}");
        }
    }

    #[test]
    fn dedicated_links_match_analytic_with_locality() {
        let m = branchy_model();
        let sys = const_system(
            vec![ConstAccel::universal("U0", 2e-3), ConstAccel::universal("U1", 1e-3)],
            1e6,
        );
        let ids = m.topo_order();
        let mut map = Mapping::new(&m);
        for id in &ids {
            map.set(*id, AccId::new(0));
        }
        map.set(ids[2], AccId::new(1));
        let mut loc = LocalityState::new(&sys);
        // Pin a weighted layer and fuse a co-located edge.
        assert!(loc.try_pin(&m, &sys, ids[1], AccId::new(0)));
        assert!(loc.try_fuse(&m, &sys, ids[1], ids[3], AccId::new(0)));
        let ev = Evaluator::new(&m, &sys);
        let analytic = ev.evaluate(&map, &loc);
        let sim = simulate(&m, &sys, &map, &loc, SimConfig::dedicated());
        let a = analytic.makespan().as_f64();
        let s = sim.makespan().as_f64();
        assert!((a - s).abs() / a < 1e-6, "analytic {a} vs simulated {s}");
    }

    #[test]
    fn shared_nic_never_beats_dedicated() {
        let m = branchy_model();
        let sys = const_system(
            vec![
                ConstAccel::universal("U0", 1e-3),
                ConstAccel::universal("U1", 1e-3),
                ConstAccel::universal("U2", 1e-3),
            ],
            1e6,
        );
        let map = spread_mapping(&m, 3);
        let loc = LocalityState::new(&sys);
        let ded = simulate(&m, &sys, &map, &loc, SimConfig::dedicated());
        let shared = simulate(
            &m,
            &sys,
            &map,
            &loc,
            SimConfig::shared_nic(BytesPerSec::new(1e6)),
        );
        assert!(shared.makespan() >= ded.makespan());
        // With parallel branches crossing accelerators, a NIC equal to a
        // single link must actually hurt.
        assert!(
            shared.makespan().as_f64() > ded.makespan().as_f64() * 1.05,
            "shared {} vs dedicated {}",
            shared.makespan(),
            ded.makespan()
        );
    }

    #[test]
    fn generous_shared_nic_converges_to_dedicated() {
        let m = branchy_model();
        let sys = const_system(
            vec![ConstAccel::universal("U0", 1e-3), ConstAccel::universal("U1", 1e-3)],
            1e6,
        );
        let map = spread_mapping(&m, 2);
        let loc = LocalityState::new(&sys);
        let ded = simulate(&m, &sys, &map, &loc, SimConfig::dedicated());
        let roomy = simulate(
            &m,
            &sys,
            &map,
            &loc,
            SimConfig::shared_nic(BytesPerSec::new(1e9)),
        );
        let d = ded.makespan().as_f64();
        let r = roomy.makespan().as_f64();
        assert!((d - r).abs() / d < 1e-9, "dedicated {d} vs roomy shared {r}");
    }

    #[test]
    fn event_count_is_bounded() {
        let m = branchy_model();
        let sys = const_system(vec![ConstAccel::universal("U0", 1e-3)], 1e6);
        let mut map = Mapping::new(&m);
        for id in m.layer_ids() {
            map.set(id, AccId::new(0));
        }
        let rep = simulate(&m, &sys, &map, &LocalityState::new(&sys), SimConfig::dedicated());
        // At most a handful of events per phase.
        assert!(rep.events() < m.num_layers() * 8);
    }

    #[test]
    fn empty_fault_plan_is_bitwise_identical() {
        let m = branchy_model();
        let sys = const_system(
            vec![ConstAccel::universal("U0", 2e-3), ConstAccel::universal("U1", 1e-3)],
            1e6,
        );
        let map = spread_mapping(&m, 2);
        let loc = LocalityState::new(&sys);
        for cfg in [SimConfig::dedicated(), SimConfig::shared_nic(BytesPerSec::new(5e5))] {
            let plain = simulate(&m, &sys, &map, &loc, cfg);
            let faulted =
                simulate_with_faults(&m, &sys, &map, &loc, cfg, &FaultPlan::empty()).unwrap();
            assert_eq!(plain, faulted, "empty plan must not perturb the timeline");
        }
    }

    #[test]
    fn always_degraded_plan_matches_analytic_on_degraded_system() {
        // A link degraded from t=0 is just a slower fabric: the fault
        // timeline must reproduce the analytical evaluator run on the
        // statically degraded system — the fault-window cross-check of
        // the analytical degraded-route costs.
        let m = branchy_model();
        let sys = const_system(
            vec![
                ConstAccel::universal("U0", 2e-3),
                ConstAccel::universal("U1", 3e-3),
                ConstAccel::universal("U2", 1e-3),
            ],
            1e6,
        );
        let map = spread_mapping(&m, 3);
        let loc = LocalityState::new(&sys);
        let plan = FaultPlan::empty().with_event(FaultEvent {
            acc: AccId::new(1),
            kind: FaultKind::LinkDegraded { factor: 8.0 },
            at: Seconds::new(0.0),
            recover_at: None,
        });
        let state = plan.state_at(Seconds::new(0.0), sys.num_accs());
        let degraded_sys = sys.degrade(&state);
        let analytic = Evaluator::new(&m, &degraded_sys).evaluate(&map, &loc);
        let sim =
            simulate_with_faults(&m, &sys, &map, &loc, SimConfig::dedicated(), &plan).unwrap();
        let a = analytic.makespan().as_f64();
        let s = sim.makespan().as_f64();
        assert!((a - s).abs() / a < 1e-6, "analytic-on-degraded {a} vs fault sim {s}");
        for id in m.layer_ids() {
            let at = analytic.timing(id).unwrap().finish.as_f64();
            let st = sim.finish_of(id).unwrap().as_f64();
            assert!((at - st).abs() < 1e-6, "{id}: {at} vs {st}");
        }
    }

    #[test]
    fn mid_run_degradation_lands_between_the_analytics() {
        // A fabric that degrades halfway through must cost at least the
        // healthy analytic and at most the always-degraded one.
        let m = branchy_model();
        let sys = const_system(
            vec![ConstAccel::universal("U0", 2e-3), ConstAccel::universal("U1", 1e-3)],
            1e6,
        );
        let map = spread_mapping(&m, 2);
        let loc = LocalityState::new(&sys);
        let ev = Evaluator::new(&m, &sys);
        let healthy = ev.evaluate(&map, &loc).makespan().as_f64();
        let mk_plan = |at: f64| {
            FaultPlan::empty().with_event(FaultEvent {
                acc: AccId::new(1),
                kind: FaultKind::LinkDegraded { factor: 16.0 },
                at: Seconds::new(at),
                recover_at: None,
            })
        };
        let worst = simulate_with_faults(
            &m,
            &sys,
            &map,
            &loc,
            SimConfig::dedicated(),
            &mk_plan(0.0),
        )
        .unwrap()
        .makespan()
        .as_f64();
        let mid = simulate_with_faults(
            &m,
            &sys,
            &map,
            &loc,
            SimConfig::dedicated(),
            &mk_plan(healthy * 0.5),
        )
        .unwrap()
        .makespan()
        .as_f64();
        assert!(worst > healthy * 1.01, "a 16x slowdown must actually hurt");
        assert!(
            healthy - 1e-12 <= mid && mid <= worst + 1e-12,
            "mid-run degradation {mid} must land in [{healthy}, {worst}]"
        );
    }

    #[test]
    fn recovered_outage_delays_by_exactly_the_outage_window() {
        // One board, downed from t=0 until t=R: nothing can progress
        // before R, so the makespan is exactly R + the healthy makespan.
        let m = branchy_model();
        let sys = const_system(vec![ConstAccel::universal("U0", 1e-3)], 1e6);
        let mut map = Mapping::new(&m);
        for id in m.layer_ids() {
            map.set(id, AccId::new(0));
        }
        let loc = LocalityState::new(&sys);
        let healthy = simulate(&m, &sys, &map, &loc, SimConfig::dedicated());
        let r = 0.125;
        let plan = FaultPlan::empty().with_event(FaultEvent {
            acc: AccId::new(0),
            kind: FaultKind::BoardDown,
            at: Seconds::new(0.0),
            recover_at: Some(Seconds::new(r)),
        });
        let sim =
            simulate_with_faults(&m, &sys, &map, &loc, SimConfig::dedicated(), &plan).unwrap();
        let expect = healthy.makespan().as_f64() + r;
        let got = sim.makespan().as_f64();
        assert!(
            (expect - got).abs() < 1e-9,
            "outage window must shift the makespan: expected {expect}, got {got}"
        );
    }

    #[test]
    fn permanent_outage_with_mapped_work_returns_typed_stall() {
        let m = branchy_model();
        let sys = const_system(vec![ConstAccel::universal("U0", 1e-3)], 1e6);
        let mut map = Mapping::new(&m);
        for id in m.layer_ids() {
            map.set(id, AccId::new(0));
        }
        let plan = FaultPlan::board_down(AccId::new(0), Seconds::new(0.0));
        let err = simulate_with_faults(
            &m,
            &sys,
            &map,
            &LocalityState::new(&sys),
            SimConfig::dedicated(),
            &plan,
        )
        .unwrap_err();
        let SimError::Stalled { remaining, host_down, .. } = err;
        assert_eq!(remaining, m.num_layers());
        assert!(!host_down, "the host is fine, the board is dead");
        assert!(err.to_string().contains("stalled"), "{err}");
    }

    #[test]
    fn always_slowed_board_matches_analytic_on_degraded_system() {
        // A board compute-throttled from t=0 is just a slower board:
        // the fault timeline must reproduce the analytical evaluator on
        // the degraded system view that carries the compute factor.
        let m = branchy_model();
        let sys = const_system(
            vec![
                ConstAccel::universal("U0", 2e-3),
                ConstAccel::universal("U1", 3e-3),
                ConstAccel::universal("U2", 1e-3),
            ],
            1e6,
        );
        let map = spread_mapping(&m, 3);
        let loc = LocalityState::new(&sys);
        let plan = FaultPlan::empty().with_event(FaultEvent {
            acc: AccId::new(2),
            kind: FaultKind::BoardDegraded { factor: 3.0 },
            at: Seconds::new(0.0),
            recover_at: None,
        });
        let state = plan.state_at(Seconds::new(0.0), sys.num_accs());
        let degraded_sys = sys.degrade(&state);
        assert_eq!(degraded_sys.compute_factor(AccId::new(2)), 3.0);
        let analytic = Evaluator::new(&m, &degraded_sys).evaluate(&map, &loc);
        let healthy = Evaluator::new(&m, &sys).evaluate(&map, &loc);
        assert!(
            analytic.makespan() > healthy.makespan(),
            "a 3x compute throttle must actually hurt"
        );
        let sim =
            simulate_with_faults(&m, &sys, &map, &loc, SimConfig::dedicated(), &plan).unwrap();
        let a = analytic.makespan().as_f64();
        let s = sim.makespan().as_f64();
        assert!((a - s).abs() / a < 1e-6, "analytic-on-throttled {a} vs fault sim {s}");
        for id in m.layer_ids() {
            let at = analytic.timing(id).unwrap().finish.as_f64();
            let st = sim.finish_of(id).unwrap().as_f64();
            assert!((at - st).abs() < 1e-6, "{id}: {at} vs {st}");
        }
    }

    #[test]
    fn always_degraded_host_matches_analytic_on_degraded_system() {
        // A host NIC degraded from t=0 re-prices every via-host route:
        // the timeline must reproduce the analytical evaluator on the
        // degraded system.
        let m = branchy_model();
        let sys = const_system(
            vec![ConstAccel::universal("U0", 2e-3), ConstAccel::universal("U1", 1e-3)],
            1e6,
        );
        let map = spread_mapping(&m, 2);
        let loc = LocalityState::new(&sys);
        let plan = FaultPlan::empty().with_event(FaultEvent {
            acc: AccId::new(0),
            kind: FaultKind::HostDegraded { factor: 4.0 },
            at: Seconds::new(0.0),
            recover_at: None,
        });
        let state = plan.state_at(Seconds::new(0.0), sys.num_accs());
        let degraded_sys = sys.degrade(&state);
        let analytic = Evaluator::new(&m, &degraded_sys).evaluate(&map, &loc);
        let healthy = Evaluator::new(&m, &sys).evaluate(&map, &loc);
        assert!(
            analytic.makespan() > healthy.makespan(),
            "a 4x NIC slowdown must actually hurt"
        );
        let sim =
            simulate_with_faults(&m, &sys, &map, &loc, SimConfig::dedicated(), &plan).unwrap();
        let a = analytic.makespan().as_f64();
        let s = sim.makespan().as_f64();
        assert!((a - s).abs() / a < 1e-6, "analytic-on-degraded-host {a} vs fault sim {s}");
    }

    #[test]
    fn recovered_host_outage_delays_a_via_host_chain_by_exactly_the_window() {
        // Single board, host down from t=0 until t=R: the weight stream
        // at the head of the chain is via-host, so nothing can progress
        // before R — the host analogue of the board-outage shift test.
        let m = branchy_model();
        let sys = const_system(vec![ConstAccel::universal("U0", 1e-3)], 1e6);
        let mut map = Mapping::new(&m);
        for id in m.layer_ids() {
            map.set(id, AccId::new(0));
        }
        let loc = LocalityState::new(&sys);
        let healthy = simulate(&m, &sys, &map, &loc, SimConfig::dedicated());
        let r = 0.25;
        let plan = FaultPlan::empty().with_event(FaultEvent {
            acc: AccId::new(0),
            kind: FaultKind::HostDown,
            at: Seconds::new(0.0),
            recover_at: Some(Seconds::new(r)),
        });
        let sim =
            simulate_with_faults(&m, &sys, &map, &loc, SimConfig::dedicated(), &plan).unwrap();
        // Unlike a board outage, the board keeps computing while the
        // host is down: the input layer's compute phase overlaps the
        // outage, so the shift is r minus that overlap — everything
        // after it is gated on the stalled weight stream.
        let input_done = healthy.finish_of(m.topo_order()[0]).unwrap().as_f64();
        let expect = healthy.makespan().as_f64() + r - input_done;
        let got = sim.makespan().as_f64();
        assert!(
            (expect - got).abs() < 1e-9,
            "host outage must shift the via-host chain: expected {expect}, got {got}"
        );
    }

    #[test]
    fn peer_linked_traffic_survives_a_host_outage() {
        // Two boards joined by a direct peer link. A host-down window
        // opened mid-way through the producer's peer OFM upload must
        // not delay it (peer traffic bypasses the host), while the
        // identical run on a star fabric — same rates, but the transfer
        // relays through the host — stalls until recovery.
        let mut b = ModelBuilder::new("pair");
        let i = b.input("i", TensorShape::Vector { features: 256 });
        let f1 = b.fc("f1", i, 256).unwrap();
        let f2 = b.fc("f2", f1, 16).unwrap();
        let m = b.finish().unwrap();
        let rate = 1e6;
        let star = const_system(
            vec![ConstAccel::universal("U0", 1e-3), ConstAccel::universal("U1", 1e-3)],
            rate,
        );
        let peered = star.clone().with_topology(Topology::switched(
            BytesPerSec::new(rate),
            vec![BytesPerSec::new(rate); 2],
            vec![(0, 1, BytesPerSec::new(rate))],
        ));
        let mut map = Mapping::new(&m);
        map.set(i, AccId::new(0));
        map.set(f1, AccId::new(0));
        map.set(f2, AccId::new(1));
        let loc = LocalityState::new(&star);
        let cfg = SimConfig::dedicated();
        let healthy = simulate(&m, &peered, &map, &loc, cfg);
        let f1_done = healthy.finish_of(f1).unwrap().as_f64();
        // f1's final phase is its OFM upload (1 KiB at 1e6 B/s = ~1 ms);
        // open the host-down window halfway through it.
        let t1 = f1_done - 0.0005;
        let t2 = f1_done + 1.0;
        let plan = FaultPlan::empty().with_event(FaultEvent {
            acc: AccId::new(0),
            kind: FaultKind::HostDown,
            at: Seconds::new(t1),
            recover_at: Some(Seconds::new(t2)),
        });
        let on_peer = simulate_with_faults(&m, &peered, &map, &loc, cfg, &plan).unwrap();
        assert!(
            (on_peer.finish_of(f1).unwrap().as_f64() - f1_done).abs() < 1e-9,
            "the peer-routed upload must ride through the outage"
        );
        let on_star = simulate_with_faults(&m, &star, &map, &loc, cfg, &plan).unwrap();
        assert!(
            on_star.finish_of(f1).unwrap().as_f64() >= t2,
            "the host-relayed upload must stall until recovery"
        );
        assert!(on_star.makespan() > on_peer.makespan());
    }

    #[test]
    fn permanent_host_outage_with_via_host_work_returns_typed_stall() {
        let m = branchy_model();
        let sys = const_system(vec![ConstAccel::universal("U0", 1e-3)], 1e6);
        let mut map = Mapping::new(&m);
        for id in m.layer_ids() {
            map.set(id, AccId::new(0));
        }
        let plan = FaultPlan::empty().with_event(FaultEvent {
            acc: AccId::new(0),
            kind: FaultKind::HostDown,
            at: Seconds::new(0.0),
            recover_at: None,
        });
        let err = simulate_with_faults(
            &m,
            &sys,
            &map,
            &LocalityState::new(&sys),
            SimConfig::dedicated(),
            &plan,
        )
        .unwrap_err();
        let SimError::Stalled { host_down, remaining, .. } = err;
        assert!(host_down, "the stall is the host's fault");
        assert!(remaining > 0);
    }

    #[test]
    fn mid_run_compute_throttle_lands_between_the_analytics() {
        // A board throttled halfway through must cost at least the
        // healthy analytic and at most the always-throttled one — the
        // fluid remainder-rescaling check for Compute phases.
        let m = branchy_model();
        // A fast fabric keeps the timeline compute-bound, so the
        // throttle is what moves the makespan.
        let sys = const_system(
            vec![ConstAccel::universal("U0", 2e-3), ConstAccel::universal("U1", 1e-3)],
            1e9,
        );
        let map = spread_mapping(&m, 2);
        let loc = LocalityState::new(&sys);
        let healthy = Evaluator::new(&m, &sys).evaluate(&map, &loc).makespan().as_f64();
        let mk_plan = |at: f64| {
            FaultPlan::empty().with_event(FaultEvent {
                acc: AccId::new(1),
                kind: FaultKind::BoardDegraded { factor: 8.0 },
                at: Seconds::new(at),
                recover_at: None,
            })
        };
        let cfg = SimConfig::dedicated();
        let worst =
            simulate_with_faults(&m, &sys, &map, &loc, cfg, &mk_plan(0.0)).unwrap();
        let mid = simulate_with_faults(&m, &sys, &map, &loc, cfg, &mk_plan(healthy * 0.5))
            .unwrap();
        let (worst, mid) = (worst.makespan().as_f64(), mid.makespan().as_f64());
        assert!(worst > healthy * 1.01, "an 8x throttle must actually hurt");
        assert!(
            healthy - 1e-12 <= mid && mid <= worst + 1e-12,
            "mid-run throttle {mid} must land in [{healthy}, {worst}]"
        );
    }
}
