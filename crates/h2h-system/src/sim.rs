//! Discrete-event simulation of the multi-FPGA cluster.
//!
//! ## The phase model
//!
//! Each mapped layer executes as a pipeline of *phases* on its board,
//! in order:
//!
//! 1. **Weight fetch** — a local-DRAM [`Phase::Timed`] when the layer
//!    is pinned, a host→board [`Phase::Link`] stream otherwise;
//! 2. **IFM ingest** — one phase per incoming activation edge: a
//!    local-DRAM `Timed` read when the edge is fused, a `Link` phase
//!    from [`crate::topology::edge_src`] otherwise;
//! 3. **Compute** — a `Timed` phase from the shared
//!    [`crate::schedule::CostCache`];
//! 4. **OFM upload** — the *single* `Link` phase of the shared
//!    [`crate::topology::Topology::ofm_route`] rule (one upload serves
//!    every remote consumer at the slowest route among them; model
//!    outputs land at the host), plus a local-DRAM `Timed` write when
//!    some consumer is fused.
//!
//! A `Link` phase carries its remaining bytes, the effective rate of
//! its `(src, dst)` route, and a `via_host` bit — the identical route
//! query the analytical [`crate::schedule::Evaluator::layer_cost`]
//! charges, so with dedicated links (`SimConfig::dedicated`) the
//! simulation reproduces the analytical schedule exactly on any
//! topology (a cross-validation test of both implementations). Only
//! via-host phases contend for the optional shared host NIC
//! (`SimConfig::shared_nic`, fair processor-sharing fluid model);
//! direct peer links of a switched fabric bypass the host and never
//! pay that contention. The analytical floor on the congestion is
//! [`crate::topology::host_contention_bound`], which the
//! `sim_crosscheck` suite verifies the simulator never beats.
//!
//! ## Batch semantics ([`SimConfig::with_batch`])
//!
//! A batch of `k` requests streams through the mapping the way a
//! multi-tenant serve *slice* does ([`crate::schedule::Evaluator::with_batch`]):
//! weights are fetched **once** per slice, while IFM transfers,
//! compute and OFM uploads repeat per request — their phase sizes
//! scale by `k`. Dedicated-link simulation of a batch-`k` slice
//! therefore reproduces the analytic batched makespan the serve loop's
//! `IncrementalSchedule::rebatch` maintains incrementally.
//!
//! ## Fault timelines ([`simulate_with_faults`])
//!
//! The same execution can replay through a [`FaultPlan`]: fault
//! boundaries clamp the event-loop time step, and at each boundary the
//! degraded fabric ([`crate::topology::Topology::degrade`]) re-rates
//! every in-flight and queued `Link` phase — transfers keep their
//! remaining bytes and continue at the new route rate (fluid model).
//! A down board freezes: it starts no layers, its phases make no
//! progress until recovery, and its frozen via-host transfers release
//! the shared NIC. An always-degraded plan therefore matches the
//! analytical evaluator on the degraded system exactly, and a
//! recoverable outage on an otherwise-idle dependency chain delays the
//! makespan by exactly the outage overlap — the fault-window
//! cross-checks of the analytical degraded-route costs. With an empty
//! plan the code path is bit-identical to [`simulate`].

use h2h_model::graph::{LayerId, ModelGraph};
use h2h_model::layer::LayerOp;
use h2h_model::tensor::DataType;
use h2h_model::units::{BytesPerSec, Seconds};

use crate::fault::FaultPlan;
use crate::locality::LocalityState;
use crate::mapping::Mapping;
use crate::schedule::CostCache;
use crate::system::{AccId, SystemSpec};
use crate::topology::{Endpoint, Topology};

/// Simulator configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimConfig {
    /// Aggregate host-NIC capacity shared by all in-flight via-host
    /// transfer phases; `None` models dedicated full-rate links (the
    /// paper's abstraction).
    pub host_nic_capacity: Option<BytesPerSec>,
    /// Serving batch size: weights are fetched once per batch,
    /// activations and compute repeat per request (matches
    /// `Evaluator::with_batch` — see the module docs).
    pub batch: u32,
}

impl SimConfig {
    /// Dedicated per-accelerator links (matches the analytical model).
    pub fn dedicated() -> Self {
        SimConfig { host_nic_capacity: None, batch: 1 }
    }

    /// A shared host NIC of `capacity`.
    pub fn shared_nic(capacity: BytesPerSec) -> Self {
        SimConfig { host_nic_capacity: Some(capacity), batch: 1 }
    }

    /// Sets the serving batch size.
    ///
    /// # Panics
    ///
    /// Panics if `batch == 0`.
    pub fn with_batch(mut self, batch: u32) -> Self {
        assert!(batch >= 1, "batch must be at least 1");
        self.batch = batch;
        self
    }
}

/// Simulation result.
#[derive(Debug, Clone, PartialEq)]
pub struct SimReport {
    makespan: Seconds,
    finish: Vec<Option<Seconds>>,
    events: usize,
}

impl SimReport {
    /// End-to-end simulated latency.
    pub fn makespan(&self) -> Seconds {
        self.makespan
    }

    /// Finish time of a layer.
    pub fn finish_of(&self, layer: LayerId) -> Option<Seconds> {
        self.finish.get(layer.index()).copied().flatten()
    }

    /// Number of simulation events processed (engine health metric).
    pub fn events(&self) -> usize {
        self.events
    }
}

/// How a [`Phase::Link`]'s rate is looked up when the fabric changes
/// at a fault boundary.
#[derive(Debug, Clone, Copy)]
enum Route {
    /// A fixed `(src, dst)` pair, re-priced via `Topology::path_bw`.
    Pair(Endpoint, Endpoint),
    /// The multi-consumer OFM upload of a layer, re-priced via the
    /// shared `Topology::ofm_route` rule.
    Ofm(LayerId),
}

#[derive(Debug, Clone, Copy)]
enum Phase {
    /// Interconnect transfer: remaining bytes, the route's effective
    /// rate, whether the route relays through the host NIC (only those
    /// phases contend for `SimConfig::host_nic_capacity`), and the
    /// route itself (for re-rating at fault boundaries).
    Link { bytes: f64, rate: f64, via_host: bool, route: Route },
    /// Fixed-duration work: compute or local-DRAM traffic (seconds).
    Timed(f64),
}

#[derive(Debug)]
struct ActiveLayer {
    id: LayerId,
    phases: Vec<Phase>,
    /// Index of the phase currently executing.
    current: usize,
}

/// Simulates the mapped, locality-annotated model on the system.
///
/// # Panics
///
/// Panics if the mapping is incomplete or maps a layer onto an
/// accelerator that cannot execute it (validate first).
pub fn simulate(
    model: &ModelGraph,
    system: &SystemSpec,
    mapping: &Mapping,
    locality: &LocalityState,
    config: SimConfig,
) -> SimReport {
    simulate_with_faults(model, system, mapping, locality, config, &FaultPlan::empty())
}

/// [`simulate`] through a fault timeline: board outages and link
/// degradations of `plan` hit (and recover) at their scheduled times
/// while the model executes — see the module docs for the fluid
/// re-rating and freeze semantics. With an empty plan this is
/// bit-identical to [`simulate`].
///
/// # Panics
///
/// Panics like [`simulate`], and additionally when an unrecovered
/// board outage strands mapped work forever (the simulation would
/// deadlock) — permanent outages are the *repair* path's business, the
/// simulator replays timelines on fixed mappings.
pub fn simulate_with_faults(
    model: &ModelGraph,
    system: &SystemSpec,
    mapping: &Mapping,
    locality: &LocalityState,
    config: SimConfig,
    plan: &FaultPlan,
) -> SimReport {
    let cache = CostCache::new(model, system);
    let base_topo = system.topology();
    let n_accs = system.num_accs();
    let bound = model.id_bound();

    // Fault timeline state: the boundaries still ahead, the condition
    // in force, and the degraded fabric (None while healthy). Faults
    // already active at t=0 apply before anything starts.
    let boundaries = plan.boundaries();
    let mut next_boundary = 0usize;
    let mut state = plan.state_at(Seconds::new(0.0), n_accs);
    while next_boundary < boundaries.len() && boundaries[next_boundary] <= 0.0 {
        next_boundary += 1;
    }
    let mut degraded: Option<Topology> =
        (!state.is_healthy()).then(|| base_topo.degrade(&state));
    let mut board_up: Vec<bool> =
        (0..n_accs).map(|i| state.acc_is_up(AccId::new(i))).collect();

    // Per-acc queues in global topological priority order.
    let mut queues: Vec<Vec<LayerId>> = vec![Vec::new(); n_accs];
    for id in model.topo_order() {
        queues[mapping.acc_of(id).index()].push(id);
    }
    let mut next_in_queue = vec![0usize; n_accs];
    let mut active: Vec<Option<ActiveLayer>> = (0..n_accs).map(|_| None).collect();

    let mut finished = vec![false; bound];
    let mut finish_time: Vec<Option<Seconds>> = vec![None; bound];
    let mut remaining = model.num_layers();
    let mut now = 0.0f64;
    let mut events = 0usize;

    let edge_is_local =
        |from: LayerId, to: LayerId| locality.edge_is_local(model, mapping, from, to);

    let b = config.batch as f64;
    // Every Link phase is rated by the same (src, dst) route query the
    // analytical `Evaluator::layer_cost` charges, so dedicated-link
    // simulation reproduces the analytical schedule exactly on any
    // topology — including a degraded one.
    let build_phases = |id: LayerId, topo: &Topology| -> Vec<Phase> {
        let layer = model.layer(id);
        let acc = mapping.acc_of(id);
        let here = Endpoint::Acc(acc);
        let dram = system.acc(acc).dram_bandwidth().as_f64();
        let mut phases = Vec::new();
        let is_input = matches!(layer.op(), LayerOp::Input { .. });
        let link = |bytes: f64, src: Endpoint, dst: Endpoint| Phase::Link {
            bytes,
            rate: topo.path_bw(src, dst).as_f64(),
            via_host: topo.crosses_host(src, dst),
            route: Route::Pair(src, dst),
        };

        // Weights amortize over the batch; everything below repeats per
        // request.
        let wbytes = layer.weight_bytes(DataType::F32).as_f64();
        if wbytes > 0.0 {
            if locality.is_pinned(id) {
                phases.push(Phase::Timed(wbytes / dram));
            } else {
                phases.push(link(wbytes, Endpoint::Host, here));
            }
        }
        for pred in model.predecessors(id) {
            let bytes = model.edge_bytes(pred, id).expect("edge exists").as_f64();
            if bytes <= 0.0 {
                continue;
            }
            if edge_is_local(pred, id) {
                phases.push(Phase::Timed(b * bytes / dram));
            } else {
                phases.push(link(b * bytes, crate::topology::edge_src(model, mapping, pred), here));
            }
        }
        let comp = cache.time(id, acc).expect("supported layer").as_f64();
        if comp > 0.0 {
            phases.push(Phase::Timed(b * comp));
        }
        if !is_input {
            let obytes = layer.ofm_bytes(DataType::F32).as_f64();
            // One upload serves all remote consumers at the slowest
            // route among them (host for outputs) — the shared
            // `Topology::ofm_route` rule, so sim and evaluator cannot
            // drift; it contends for the host NIC iff any chosen route
            // relays through it.
            if let Some((bw, via_host)) = topo.ofm_route(model, mapping, locality, id) {
                if obytes > 0.0 {
                    phases.push(Phase::Link {
                        bytes: b * obytes,
                        rate: bw.as_f64(),
                        via_host,
                        route: Route::Ofm(id),
                    });
                }
            }
            let any_local = model.successors(id).any(|s| edge_is_local(id, s));
            if any_local && obytes > 0.0 {
                phases.push(Phase::Timed(b * obytes / dram));
            }
        }
        phases
    };

    // Re-prices the remaining Link phases of one layer against a new
    // fabric (fault boundary crossed): remaining bytes continue at the
    // new route rate (fluid model).
    let rerate = |a: &mut ActiveLayer, topo: &Topology| {
        for p in a.phases[a.current..].iter_mut() {
            if let Phase::Link { rate, via_host, route, .. } = p {
                let (r, v) = match route {
                    Route::Pair(src, dst) => {
                        (topo.path_bw(*src, *dst).as_f64(), topo.crosses_host(*src, *dst))
                    }
                    Route::Ofm(id) => {
                        let (bw, via) = topo
                            .ofm_route(model, mapping, locality, *id)
                            .expect("OFM phases exist only for routed uploads");
                        (bw.as_f64(), via)
                    }
                };
                *rate = r;
                *via_host = v;
            }
        }
    };

    loop {
        // Apply any fault boundary reached: recompute the degraded
        // fabric and re-rate every phase still ahead.
        while next_boundary < boundaries.len() && now >= boundaries[next_boundary] - 1e-12 {
            let t = boundaries[next_boundary];
            next_boundary += 1;
            state = plan.state_at(Seconds::new(t), n_accs);
            degraded = (!state.is_healthy()).then(|| base_topo.degrade(&state));
            for (i, up) in board_up.iter_mut().enumerate() {
                *up = state.acc_is_up(AccId::new(i));
            }
            let topo = degraded.as_ref().unwrap_or(base_topo);
            for a in active.iter_mut().flatten() {
                rerate(a, topo);
            }
        }

        // Start whatever can start (down boards start nothing).
        for acc in 0..queues.len() {
            if !board_up[acc] || active[acc].is_some() {
                continue;
            }
            let qi = next_in_queue[acc];
            if qi >= queues[acc].len() {
                continue;
            }
            let head = queues[acc][qi];
            if model.predecessors(head).all(|p| finished[p.index()]) {
                next_in_queue[acc] += 1;
                let topo = degraded.as_ref().unwrap_or(base_topo);
                active[acc] =
                    Some(ActiveLayer { id: head, phases: build_phases(head, topo), current: 0 });
            }
        }

        // Zero-phase layers complete immediately; resolve before timing.
        let mut instant = false;
        for slot in active.iter_mut() {
            if let Some(a) = slot {
                if a.current >= a.phases.len() {
                    finished[a.id.index()] = true;
                    finish_time[a.id.index()] = Some(Seconds::new(now));
                    remaining -= 1;
                    *slot = None;
                    instant = true;
                }
            }
        }
        if instant {
            continue;
        }

        if remaining == 0 {
            break;
        }

        // Current rates: via-host transfer phases share the host NIC
        // (fair processor sharing); direct peer links run at full rate;
        // frozen boards neither progress nor hold a NIC share.
        let n_host = active
            .iter()
            .enumerate()
            .filter(|(acc, _)| board_up[*acc])
            .filter_map(|(_, s)| s.as_ref())
            .filter(|a| matches!(a.phases[a.current], Phase::Link { via_host: true, .. }))
            .count();
        let host_share = match config.host_nic_capacity {
            Some(cap) if n_host > 0 => cap.as_f64() / n_host as f64,
            _ => f64::INFINITY,
        };
        let phase_rate = |p: &Phase| match *p {
            Phase::Link { rate, via_host, .. } => {
                if via_host {
                    rate.min(host_share)
                } else {
                    rate
                }
            }
            Phase::Timed(_) => f64::INFINITY,
        };

        // Time to the next phase completion (frozen boards excluded),
        // clamped to the next fault boundary.
        let mut dt = f64::INFINITY;
        for (acc, slot) in active.iter().enumerate() {
            let Some(a) = slot else { continue };
            if !board_up[acc] {
                continue;
            }
            let t = match a.phases[a.current] {
                Phase::Link { bytes, .. } => bytes / phase_rate(&a.phases[a.current]),
                Phase::Timed(secs) => secs,
            };
            dt = dt.min(t);
        }
        let horizon =
            boundaries.get(next_boundary).copied().unwrap_or(f64::INFINITY) - now;
        if !dt.is_finite() {
            // Every runnable board is frozen by an outage: jump to the
            // next fault boundary (a recovery) if one is scheduled.
            assert!(
                horizon.is_finite(),
                "simulation stalled at t={now}: {remaining} layers unfinished \
                 (head-of-line deadlock, or an unrecovered outage stranding mapped work?)"
            );
            events += 1;
            now += horizon;
            continue;
        }
        let dt = if horizon < dt { horizon } else { dt };
        events += 1;
        now += dt;

        // Advance all unfrozen active phases by dt.
        for (acc, slot) in active.iter_mut().enumerate() {
            let Some(a) = slot else { continue };
            if !board_up[acc] {
                continue;
            }
            let rate = phase_rate(&a.phases[a.current]);
            let done = match &mut a.phases[a.current] {
                Phase::Link { bytes, .. } => {
                    *bytes -= rate * dt;
                    *bytes <= 1e-9
                }
                Phase::Timed(secs) => {
                    *secs -= dt;
                    *secs <= 1e-12
                }
            };
            if done {
                a.current += 1;
                if a.current >= a.phases.len() {
                    finished[a.id.index()] = true;
                    finish_time[a.id.index()] = Some(Seconds::new(now));
                    remaining -= 1;
                    *slot = None;
                }
            }
        }
    }

    SimReport { makespan: Seconds::new(now), finish: finish_time, events }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::{FaultEvent, FaultKind};
    use crate::schedule::Evaluator;
    use crate::system::AccId;
    use crate::testutil::{const_system, ConstAccel};
    use h2h_model::builder::ModelBuilder;
    use h2h_model::tensor::TensorShape;

    fn branchy_model() -> ModelGraph {
        let mut b = ModelBuilder::new("branchy");
        let i = b.input("i", TensorShape::Vector { features: 4096 });
        let f1 = b.fc("a1", i, 2048).unwrap();
        let f2 = b.fc("b1", i, 2048).unwrap();
        let f3 = b.fc("a2", f1, 1024).unwrap();
        let f4 = b.fc("b2", f2, 1024).unwrap();
        let j = b.add("join", &[f3, f4]).unwrap();
        b.fc("head", j, 16).unwrap();
        b.finish().unwrap()
    }

    fn spread_mapping(m: &ModelGraph, n: usize) -> Mapping {
        let mut map = Mapping::new(m);
        for (i, id) in m.topo_order().into_iter().enumerate() {
            map.set(id, AccId::new(i % n));
        }
        map
    }

    #[test]
    fn dedicated_links_match_analytic_exactly() {
        let m = branchy_model();
        let sys = const_system(
            vec![
                ConstAccel::universal("U0", 2e-3),
                ConstAccel::universal("U1", 3e-3),
                ConstAccel::universal("U2", 1e-3),
            ],
            1e6,
        );
        let map = spread_mapping(&m, 3);
        let loc = LocalityState::new(&sys);
        let ev = Evaluator::new(&m, &sys);
        let analytic = ev.evaluate(&map, &loc);
        let sim = simulate(&m, &sys, &map, &loc, SimConfig::dedicated());
        let a = analytic.makespan().as_f64();
        let s = sim.makespan().as_f64();
        assert!(
            (a - s).abs() / a < 1e-6,
            "analytic {a} vs simulated {s}"
        );
        // Per-layer finishes agree too.
        for id in m.layer_ids() {
            let at = analytic.timing(id).unwrap().finish.as_f64();
            let st = sim.finish_of(id).unwrap().as_f64();
            assert!((at - st).abs() < 1e-6, "{id}: {at} vs {st}");
        }
    }

    #[test]
    fn dedicated_links_match_analytic_with_locality() {
        let m = branchy_model();
        let sys = const_system(
            vec![ConstAccel::universal("U0", 2e-3), ConstAccel::universal("U1", 1e-3)],
            1e6,
        );
        let ids = m.topo_order();
        let mut map = Mapping::new(&m);
        for id in &ids {
            map.set(*id, AccId::new(0));
        }
        map.set(ids[2], AccId::new(1));
        let mut loc = LocalityState::new(&sys);
        // Pin a weighted layer and fuse a co-located edge.
        assert!(loc.try_pin(&m, &sys, ids[1], AccId::new(0)));
        assert!(loc.try_fuse(&m, &sys, ids[1], ids[3], AccId::new(0)));
        let ev = Evaluator::new(&m, &sys);
        let analytic = ev.evaluate(&map, &loc);
        let sim = simulate(&m, &sys, &map, &loc, SimConfig::dedicated());
        let a = analytic.makespan().as_f64();
        let s = sim.makespan().as_f64();
        assert!((a - s).abs() / a < 1e-6, "analytic {a} vs simulated {s}");
    }

    #[test]
    fn shared_nic_never_beats_dedicated() {
        let m = branchy_model();
        let sys = const_system(
            vec![
                ConstAccel::universal("U0", 1e-3),
                ConstAccel::universal("U1", 1e-3),
                ConstAccel::universal("U2", 1e-3),
            ],
            1e6,
        );
        let map = spread_mapping(&m, 3);
        let loc = LocalityState::new(&sys);
        let ded = simulate(&m, &sys, &map, &loc, SimConfig::dedicated());
        let shared = simulate(
            &m,
            &sys,
            &map,
            &loc,
            SimConfig::shared_nic(BytesPerSec::new(1e6)),
        );
        assert!(shared.makespan() >= ded.makespan());
        // With parallel branches crossing accelerators, a NIC equal to a
        // single link must actually hurt.
        assert!(
            shared.makespan().as_f64() > ded.makespan().as_f64() * 1.05,
            "shared {} vs dedicated {}",
            shared.makespan(),
            ded.makespan()
        );
    }

    #[test]
    fn generous_shared_nic_converges_to_dedicated() {
        let m = branchy_model();
        let sys = const_system(
            vec![ConstAccel::universal("U0", 1e-3), ConstAccel::universal("U1", 1e-3)],
            1e6,
        );
        let map = spread_mapping(&m, 2);
        let loc = LocalityState::new(&sys);
        let ded = simulate(&m, &sys, &map, &loc, SimConfig::dedicated());
        let roomy = simulate(
            &m,
            &sys,
            &map,
            &loc,
            SimConfig::shared_nic(BytesPerSec::new(1e9)),
        );
        let d = ded.makespan().as_f64();
        let r = roomy.makespan().as_f64();
        assert!((d - r).abs() / d < 1e-9, "dedicated {d} vs roomy shared {r}");
    }

    #[test]
    fn event_count_is_bounded() {
        let m = branchy_model();
        let sys = const_system(vec![ConstAccel::universal("U0", 1e-3)], 1e6);
        let mut map = Mapping::new(&m);
        for id in m.layer_ids() {
            map.set(id, AccId::new(0));
        }
        let rep = simulate(&m, &sys, &map, &LocalityState::new(&sys), SimConfig::dedicated());
        // At most a handful of events per phase.
        assert!(rep.events() < m.num_layers() * 8);
    }

    #[test]
    fn empty_fault_plan_is_bitwise_identical() {
        let m = branchy_model();
        let sys = const_system(
            vec![ConstAccel::universal("U0", 2e-3), ConstAccel::universal("U1", 1e-3)],
            1e6,
        );
        let map = spread_mapping(&m, 2);
        let loc = LocalityState::new(&sys);
        for cfg in [SimConfig::dedicated(), SimConfig::shared_nic(BytesPerSec::new(5e5))] {
            let plain = simulate(&m, &sys, &map, &loc, cfg);
            let faulted = simulate_with_faults(&m, &sys, &map, &loc, cfg, &FaultPlan::empty());
            assert_eq!(plain, faulted, "empty plan must not perturb the timeline");
        }
    }

    #[test]
    fn always_degraded_plan_matches_analytic_on_degraded_system() {
        // A link degraded from t=0 is just a slower fabric: the fault
        // timeline must reproduce the analytical evaluator run on the
        // statically degraded system — the fault-window cross-check of
        // the analytical degraded-route costs.
        let m = branchy_model();
        let sys = const_system(
            vec![
                ConstAccel::universal("U0", 2e-3),
                ConstAccel::universal("U1", 3e-3),
                ConstAccel::universal("U2", 1e-3),
            ],
            1e6,
        );
        let map = spread_mapping(&m, 3);
        let loc = LocalityState::new(&sys);
        let plan = FaultPlan::empty().with_event(FaultEvent {
            acc: AccId::new(1),
            kind: FaultKind::LinkDegraded { factor: 8.0 },
            at: Seconds::new(0.0),
            recover_at: None,
        });
        let state = plan.state_at(Seconds::new(0.0), sys.num_accs());
        let degraded_sys = sys.degrade(&state);
        let analytic = Evaluator::new(&m, &degraded_sys).evaluate(&map, &loc);
        let sim = simulate_with_faults(&m, &sys, &map, &loc, SimConfig::dedicated(), &plan);
        let a = analytic.makespan().as_f64();
        let s = sim.makespan().as_f64();
        assert!((a - s).abs() / a < 1e-6, "analytic-on-degraded {a} vs fault sim {s}");
        for id in m.layer_ids() {
            let at = analytic.timing(id).unwrap().finish.as_f64();
            let st = sim.finish_of(id).unwrap().as_f64();
            assert!((at - st).abs() < 1e-6, "{id}: {at} vs {st}");
        }
    }

    #[test]
    fn mid_run_degradation_lands_between_the_analytics() {
        // A fabric that degrades halfway through must cost at least the
        // healthy analytic and at most the always-degraded one.
        let m = branchy_model();
        let sys = const_system(
            vec![ConstAccel::universal("U0", 2e-3), ConstAccel::universal("U1", 1e-3)],
            1e6,
        );
        let map = spread_mapping(&m, 2);
        let loc = LocalityState::new(&sys);
        let ev = Evaluator::new(&m, &sys);
        let healthy = ev.evaluate(&map, &loc).makespan().as_f64();
        let mk_plan = |at: f64| {
            FaultPlan::empty().with_event(FaultEvent {
                acc: AccId::new(1),
                kind: FaultKind::LinkDegraded { factor: 16.0 },
                at: Seconds::new(at),
                recover_at: None,
            })
        };
        let worst = simulate_with_faults(
            &m,
            &sys,
            &map,
            &loc,
            SimConfig::dedicated(),
            &mk_plan(0.0),
        )
        .makespan()
        .as_f64();
        let mid = simulate_with_faults(
            &m,
            &sys,
            &map,
            &loc,
            SimConfig::dedicated(),
            &mk_plan(healthy * 0.5),
        )
        .makespan()
        .as_f64();
        assert!(worst > healthy * 1.01, "a 16x slowdown must actually hurt");
        assert!(
            healthy - 1e-12 <= mid && mid <= worst + 1e-12,
            "mid-run degradation {mid} must land in [{healthy}, {worst}]"
        );
    }

    #[test]
    fn recovered_outage_delays_by_exactly_the_outage_window() {
        // One board, downed from t=0 until t=R: nothing can progress
        // before R, so the makespan is exactly R + the healthy makespan.
        let m = branchy_model();
        let sys = const_system(vec![ConstAccel::universal("U0", 1e-3)], 1e6);
        let mut map = Mapping::new(&m);
        for id in m.layer_ids() {
            map.set(id, AccId::new(0));
        }
        let loc = LocalityState::new(&sys);
        let healthy = simulate(&m, &sys, &map, &loc, SimConfig::dedicated());
        let r = 0.125;
        let plan = FaultPlan::empty().with_event(FaultEvent {
            acc: AccId::new(0),
            kind: FaultKind::BoardDown,
            at: Seconds::new(0.0),
            recover_at: Some(Seconds::new(r)),
        });
        let sim = simulate_with_faults(&m, &sys, &map, &loc, SimConfig::dedicated(), &plan);
        let expect = healthy.makespan().as_f64() + r;
        let got = sim.makespan().as_f64();
        assert!(
            (expect - got).abs() < 1e-9,
            "outage window must shift the makespan: expected {expect}, got {got}"
        );
    }

    #[test]
    #[should_panic(expected = "stalled")]
    fn permanent_outage_with_mapped_work_panics() {
        let m = branchy_model();
        let sys = const_system(vec![ConstAccel::universal("U0", 1e-3)], 1e6);
        let mut map = Mapping::new(&m);
        for id in m.layer_ids() {
            map.set(id, AccId::new(0));
        }
        let plan = FaultPlan::board_down(AccId::new(0), Seconds::new(0.0));
        let _ = simulate_with_faults(
            &m,
            &sys,
            &map,
            &LocalityState::new(&sys),
            SimConfig::dedicated(),
            &plan,
        );
    }
}
