//! The mapping `G*_model → G*_sys`: which accelerator runs each layer,
//! and in what order.
//!
//! Execution order is induced by a single global topological priority
//! (ASAP rank, ties by creation index): each accelerator runs its layers
//! in that order. This keeps every mapping's schedule valid by
//! construction — no cross-accelerator wait cycles — and deterministic
//! across remapping moves (paper §4.4 keeps the source accelerator's
//! remaining layers in order for the same reason).

use std::fmt;

use serde::{Deserialize, Serialize};

use h2h_model::graph::{LayerId, ModelGraph};
use h2h_model::layer::LayerClass;

use crate::system::{AccId, SystemSpec};

/// Errors raised when a mapping is inconsistent with its model/system.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MappingError {
    /// A layer has not been assigned to any accelerator.
    Unmapped(String),
    /// A layer was assigned to an accelerator that cannot execute it.
    Unsupported {
        /// Layer name.
        layer: String,
        /// Offending accelerator (catalog id).
        acc: String,
        /// The layer's class.
        class: LayerClass,
    },
    /// An accelerator id outside the system was referenced.
    BadAccId(usize),
}

impl fmt::Display for MappingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MappingError::Unmapped(l) => write!(f, "layer `{l}` is unmapped"),
            MappingError::Unsupported { layer, acc, class } => {
                write!(f, "layer `{layer}` ({class:?}) mapped to `{acc}` which cannot run it")
            }
            MappingError::BadAccId(i) => write!(f, "accelerator id {i} out of range"),
        }
    }
}

impl std::error::Error for MappingError {}

/// A (possibly partial) assignment of layers to accelerators.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Mapping {
    assign: Vec<Option<AccId>>,
}

impl Mapping {
    /// An empty mapping sized for `model`.
    pub fn new(model: &ModelGraph) -> Self {
        Mapping { assign: vec![None; model.id_bound()] }
    }

    /// Assigns (or re-assigns) a layer.
    ///
    /// # Panics
    ///
    /// Panics if `layer` does not belong to the model this mapping was
    /// sized for.
    pub fn set(&mut self, layer: LayerId, acc: AccId) {
        self.assign[layer.index()] = Some(acc);
    }

    /// The accelerator a layer is mapped to, if any.
    pub fn get(&self, layer: LayerId) -> Option<AccId> {
        self.assign.get(layer.index()).copied().flatten()
    }

    /// The accelerator a layer is mapped to.
    ///
    /// # Panics
    ///
    /// Panics if the layer is unmapped; use [`Mapping::get`] during
    /// construction phases.
    pub fn acc_of(&self, layer: LayerId) -> AccId {
        self.get(layer).expect("layer must be mapped")
    }

    /// True once every layer of `model` is assigned.
    pub fn is_complete(&self, model: &ModelGraph) -> bool {
        model.layer_ids().all(|id| self.get(id).is_some())
    }

    /// Layers of `model` mapped to `acc`, in topological-priority order.
    pub fn layers_on_model(&self, model: &ModelGraph, acc: AccId) -> Vec<LayerId> {
        model
            .topo_order()
            .into_iter()
            .filter(|id| self.get(*id) == Some(acc))
            .collect()
    }

    /// Count of layers per accelerator, indexed by `AccId::index()`.
    pub fn load_histogram(&self, num_accs: usize) -> Vec<usize> {
        let mut h = vec![0usize; num_accs];
        for a in self.assign.iter().flatten() {
            if a.index() < num_accs {
                h[a.index()] += 1;
            }
        }
        h
    }

    /// Validates completeness and capability support.
    ///
    /// # Errors
    ///
    /// Returns the first [`MappingError`] found.
    pub fn validate(&self, model: &ModelGraph, system: &SystemSpec) -> Result<(), MappingError> {
        for (id, layer) in model.layers() {
            let Some(acc) = self.get(id) else {
                return Err(MappingError::Unmapped(layer.name().to_owned()));
            };
            if acc.index() >= system.num_accs() {
                return Err(MappingError::BadAccId(acc.index()));
            }
            if !system.acc(acc).supports(layer) {
                return Err(MappingError::Unsupported {
                    layer: layer.name().to_owned(),
                    acc: system.acc(acc).meta().id.clone(),
                    class: layer.class(),
                });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::system::BandwidthClass;
    use h2h_model::builder::ModelBuilder;
    use h2h_model::tensor::TensorShape;

    fn toy() -> ModelGraph {
        let mut b = ModelBuilder::new("toy");
        let i = b.input("i", TensorShape::Feature { c: 3, h: 8, w: 8 });
        let c = b.conv("c", i, 8, 3, 1).unwrap();
        let g = b.global_pool("g", c).unwrap();
        b.fc("f", g, 4).unwrap();
        b.finish().unwrap()
    }

    #[test]
    fn incomplete_mapping_detected() {
        let m = toy();
        let sys = SystemSpec::standard(BandwidthClass::Mid);
        let mut map = Mapping::new(&m);
        assert!(!map.is_complete(&m));
        for id in m.layer_ids() {
            map.set(id, AccId::new(0));
        }
        assert!(map.is_complete(&m));
        let _ = sys;
    }

    #[test]
    fn validate_rejects_unsupported_class() {
        let m = toy();
        let sys = SystemSpec::standard(BandwidthClass::Mid);
        let mut map = Mapping::new(&m);
        // JZ (acc 0) is conv-only; the FC layer must be rejected.
        for id in m.layer_ids() {
            map.set(id, AccId::new(0));
        }
        match map.validate(&m, &sys) {
            Err(MappingError::Unsupported { layer, class, .. }) => {
                assert_eq!(layer, "f");
                assert_eq!(class, LayerClass::Fc);
            }
            other => panic!("expected Unsupported, got {other:?}"),
        }
    }

    #[test]
    fn validate_accepts_capable_assignment() {
        let m = toy();
        let sys = SystemSpec::standard(BandwidthClass::Mid);
        let jq = sys.find_by_meta_id("JQ").unwrap(); // conv+fc+lstm
        let mut map = Mapping::new(&m);
        for id in m.layer_ids() {
            map.set(id, jq);
        }
        map.validate(&m, &sys).unwrap();
    }

    #[test]
    fn layers_on_model_follow_topo_order() {
        let m = toy();
        let sys = SystemSpec::standard(BandwidthClass::Mid);
        let jq = sys.find_by_meta_id("JQ").unwrap();
        let mut map = Mapping::new(&m);
        for id in m.layer_ids() {
            map.set(id, jq);
        }
        let on = map.layers_on_model(&m, jq);
        assert_eq!(on, m.topo_order());
        let histogram = map.load_histogram(sys.num_accs());
        assert_eq!(histogram[jq.index()], 4);
    }

    #[test]
    fn remapping_overwrites() {
        let m = toy();
        let mut map = Mapping::new(&m);
        let l = m.layer_ids().next().unwrap();
        map.set(l, AccId::new(1));
        map.set(l, AccId::new(2));
        assert_eq!(map.get(l), Some(AccId::new(2)));
    }
}
