//! Deterministic constant-cost accelerators for tests and examples.
//!
//! The catalog's analytical models have launch overheads and
//! shape-dependent utilization that make hand-computed expectations
//! awkward; [`ConstAccel`] costs every supported layer a fixed time and
//! energy so scheduler tests can assert exact arithmetic. Exposed
//! (hidden from docs) because downstream crates' tests reuse it.

use h2h_accel::dataflow::Dataflow;
use h2h_accel::model::{AccelMeta, AccelModel, AccelRef};
use h2h_model::layer::{Layer, LayerClass};
use h2h_model::units::{Bytes, BytesPerSec, Joules, Seconds};

use crate::system::SystemSpec;

/// An accelerator that runs every supported layer in constant time.
#[derive(Debug, Clone)]
pub struct ConstAccel {
    meta: AccelMeta,
    classes: Vec<LayerClass>,
    time: Seconds,
    energy: Joules,
    dram_capacity: Bytes,
    dram_bandwidth: f64,
    power: f64,
}

impl ConstAccel {
    /// Supports every layer class; `secs` per layer, 1 mJ per layer,
    /// 1 GiB local DRAM at 1 GB/s, 10 W.
    pub fn universal(id: &str, secs: f64) -> Self {
        ConstAccel {
            meta: AccelMeta {
                id: id.to_owned(),
                name: format!("const accel {id}"),
                fpga: "virtual".to_owned(),
                dataflow: Dataflow::Generality { eff: 1.0 },
            },
            classes: vec![LayerClass::Conv, LayerClass::Fc, LayerClass::Lstm, LayerClass::Aux],
            time: Seconds::new(secs),
            energy: Joules::new(1e-3),
            dram_capacity: Bytes::from_gib(1),
            dram_bandwidth: 1e9,
            power: 10.0,
        }
    }

    /// Restricts supported classes.
    pub fn with_classes(mut self, classes: &[LayerClass]) -> Self {
        self.classes = classes.to_vec();
        self
    }

    /// Overrides the DRAM capacity.
    pub fn with_dram(mut self, capacity: Bytes) -> Self {
        self.dram_capacity = capacity;
        self
    }

    /// Overrides the per-layer time.
    pub fn with_time(mut self, secs: f64) -> Self {
        self.time = Seconds::new(secs);
        self
    }
}

impl AccelModel for ConstAccel {
    fn meta(&self) -> &AccelMeta {
        &self.meta
    }

    fn supported_classes(&self) -> &[LayerClass] {
        &self.classes
    }

    fn compute_time(&self, layer: &Layer) -> Option<Seconds> {
        self.supports(layer).then_some(self.time)
    }

    fn compute_energy(&self, layer: &Layer) -> Option<Joules> {
        self.supports(layer).then_some(self.energy)
    }

    fn dram_capacity(&self) -> Bytes {
        self.dram_capacity
    }

    fn dram_bandwidth(&self) -> BytesPerSec {
        BytesPerSec::new(self.dram_bandwidth)
    }

    fn active_power_w(&self) -> f64 {
        self.power
    }
}

/// Builds a system from constant-cost accelerators and a raw Ethernet
/// rate in bytes/second.
pub fn const_system(accels: Vec<ConstAccel>, eth_bytes_per_sec: f64) -> SystemSpec {
    let refs: Vec<AccelRef> = accels
        .into_iter()
        .map(|a| std::sync::Arc::new(a) as AccelRef)
        .collect();
    SystemSpec::new(refs, BytesPerSec::new(eth_bytes_per_sec))
}
