//! Data-locality state: which weights are pinned in which accelerator's
//! local DRAM, and which edges are activation-fused (paper §4.2–4.3).
//!
//! The DRAM budget (`M_acc`) is shared between pinned weights and the
//! buffers that hold fused activations; both are capacity-checked here so
//! no optimization pass can oversubscribe a board.
//!
//! The representation is optimized for the incremental search core,
//! which clones one `LocalityState` per scored candidate (and one per
//! scoring worker thread): the read-only per-accelerator capacity table
//! is shared behind an [`Arc`], and the mutable scratch is flat vectors
//! (`memcpy`-cheap clones, allocation-free membership tests) instead of
//! hash sets.

use std::sync::Arc;

use serde::{Deserialize, Serialize};

use h2h_model::graph::{LayerId, ModelGraph};
use h2h_model::tensor::DataType;
use h2h_model::units::Bytes;

use crate::system::{AccId, SystemSpec};

/// Sentinel for "not pinned" in the position index.
const UNPINNED: usize = usize::MAX;

/// Pinned-weight and fused-edge bookkeeping for one system.
#[derive(Debug, Serialize, Deserialize)]
pub struct LocalityState {
    /// Pinned layers, unordered (swap-removed on unpin).
    pinned: Vec<LayerId>,
    /// Byte volume charged per pin, parallel to `pinned`: unpin refunds
    /// from here instead of re-deriving the layer's weight bytes from
    /// the model (the search core strips and replays the touched
    /// accelerators' pins once per scored candidate).
    pinned_bytes: Vec<u64>,
    /// `pinned_pos[layer.index()]` = position in `pinned`, or
    /// [`UNPINNED`] (grown on demand; layer id bounds are not known at
    /// construction, only the system is).
    pinned_pos: Vec<usize>,
    /// Fused edges with their charged byte volume, sorted ascending by
    /// endpoints — binary-searched on the scheduler's hot path,
    /// `memcpy`-cloned by the search core. The bytes ride in the same
    /// entry (instead of a parallel vector) so the fusion pass's
    /// strip/replay churn pays one shift per insert/remove, not two;
    /// unfuse refunds from the record instead of re-walking the model
    /// graph's edge storage.
    fused: Vec<(LayerId, LayerId, u64)>,
    /// Number of fused outgoing edges per producer layer index (grown
    /// on demand like `pinned_pos`). [`LocalityState::is_fused`] is
    /// called per edge on the cost kernel's hot path and almost always
    /// answers `false`; a zero count proves that with one load instead
    /// of a binary search.
    fused_out: Vec<u32>,
    used: Vec<u64>,
    /// Per-accelerator DRAM capacities captured from the system at
    /// construction: read-only, shared by every clone.
    caps: Arc<[u64]>,
}

impl Clone for LocalityState {
    fn clone(&self) -> Self {
        LocalityState {
            pinned: self.pinned.clone(),
            pinned_bytes: self.pinned_bytes.clone(),
            pinned_pos: self.pinned_pos.clone(),
            fused: self.fused.clone(),
            fused_out: self.fused_out.clone(),
            used: self.used.clone(),
            caps: Arc::clone(&self.caps),
        }
    }

    /// Reuses the destination's buffers — the search core clones one
    /// locality per scored candidate, so this keeps the hot loop
    /// allocation-free.
    fn clone_from(&mut self, source: &Self) {
        self.pinned.clone_from(&source.pinned);
        self.pinned_bytes.clone_from(&source.pinned_bytes);
        self.pinned_pos.clone_from(&source.pinned_pos);
        self.fused.clone_from(&source.fused);
        self.fused_out.clone_from(&source.fused_out);
        self.used.clone_from(&source.used);
        self.caps = Arc::clone(&source.caps);
    }
}

impl PartialEq for LocalityState {
    fn eq(&self, other: &Self) -> bool {
        // Set semantics for pins (insertion order is incidental);
        // `fused` is kept sorted so direct comparison is set equality.
        if self.pinned.len() != other.pinned.len() {
            return false;
        }
        self.pinned.iter().all(|l| other.is_pinned(*l))
            && self.fused == other.fused
            && self.used == other.used
    }
}

impl LocalityState {
    /// Empty state (zero data locality — the step-1 assumption).
    pub fn new(system: &SystemSpec) -> Self {
        LocalityState {
            pinned: Vec::new(),
            pinned_bytes: Vec::new(),
            pinned_pos: Vec::new(),
            fused: Vec::new(),
            fused_out: Vec::new(),
            used: vec![0; system.num_accs()],
            caps: system
                .acc_ids()
                .map(|a| system.acc(a).dram_capacity().as_u64())
                .collect(),
        }
    }

    /// Bytes of local DRAM currently committed on `acc`.
    pub fn dram_used(&self, acc: AccId) -> Bytes {
        Bytes::new(self.used[acc.index()])
    }

    /// Bytes of local DRAM still free on `acc`. (`system` must be the
    /// system this state was built for; the capacity itself comes from
    /// the table captured at construction.)
    pub fn dram_free(&self, acc: AccId, system: &SystemSpec) -> Bytes {
        debug_assert_eq!(
            self.caps[acc.index()],
            system.acc(acc).dram_capacity().as_u64(),
            "locality state used with a different system"
        );
        Bytes::new(self.caps[acc.index()].saturating_sub(self.used[acc.index()]))
    }

    /// Attempts to pin `layer`'s weights (at F32) into `acc`'s DRAM.
    /// Returns `true` on success, `false` if the budget does not fit.
    /// Pinning an already-pinned layer is a no-op returning `true`.
    pub fn try_pin(
        &mut self,
        model: &ModelGraph,
        system: &SystemSpec,
        layer: LayerId,
        acc: AccId,
    ) -> bool {
        let bytes = model.layer(layer).weight_bytes(DataType::F32);
        self.try_pin_bytes(system, layer, acc, bytes)
    }

    /// [`LocalityState::try_pin`] with the layer's weight bytes supplied
    /// by the caller — the weight-locality pass already holds them (its
    /// knapsack items are priced in bytes), so the hot path skips the
    /// model lookup. `bytes` must be the layer's F32 weight volume;
    /// `try_pin` delegates here, so the two can never drift.
    pub fn try_pin_bytes(
        &mut self,
        system: &SystemSpec,
        layer: LayerId,
        acc: AccId,
        bytes: Bytes,
    ) -> bool {
        if self.is_pinned(layer) {
            return true;
        }
        if bytes > self.dram_free(acc, system) {
            return false;
        }
        self.used[acc.index()] += bytes.as_u64();
        let i = layer.index();
        if self.pinned_pos.len() <= i {
            self.pinned_pos.resize(i + 1, UNPINNED);
        }
        self.pinned_pos[i] = self.pinned.len();
        self.pinned.push(layer);
        self.pinned_bytes.push(bytes.as_u64());
        true
    }

    /// Reverts a pin, refunding the layer's weight bytes to `acc`'s
    /// budget (the accelerator the layer was mapped to when
    /// [`LocalityState::try_pin`] charged it). Returns `false` if the
    /// layer was not pinned.
    pub fn unpin(&mut self, model: &ModelGraph, layer: LayerId, acc: AccId) -> bool {
        // `model` stays in the signature for parity with `try_pin`, but
        // the refund comes from the recorded charge — no model lookup
        // on the strip/replay hot path.
        let _ = model;
        if !self.is_pinned(layer) {
            return false;
        }
        let pos = self.pinned_pos[layer.index()];
        self.pinned.swap_remove(pos);
        let bytes = self.pinned_bytes.swap_remove(pos);
        if let Some(moved) = self.pinned.get(pos) {
            self.pinned_pos[moved.index()] = pos;
        }
        self.pinned_pos[layer.index()] = UNPINNED;
        self.used[acc.index()] -= bytes;
        true
    }

    /// True if `layer`'s weights are resident in its accelerator's DRAM.
    pub fn is_pinned(&self, layer: LayerId) -> bool {
        self.pinned_pos
            .get(layer.index())
            .is_some_and(|p| *p != UNPINNED)
    }

    /// Number of pinned layers.
    pub fn num_pinned(&self) -> usize {
        self.pinned.len()
    }

    /// Attempts to fuse the `from → to` edge on `acc`: the intermediate
    /// activation stays in local DRAM instead of round-tripping through
    /// the host. Charges the edge's byte volume against the DRAM budget.
    /// Returns `true` on success (idempotent).
    pub fn try_fuse(
        &mut self,
        model: &ModelGraph,
        system: &SystemSpec,
        from: LayerId,
        to: LayerId,
        acc: AccId,
    ) -> bool {
        let Some(bytes) = model.edge_bytes(from, to) else {
            return false;
        };
        self.try_fuse_bytes(system, from, to, acc, bytes)
    }

    /// [`LocalityState::try_fuse`] with the edge's byte volume supplied
    /// by the caller — the fusion pass's candidate list already carries
    /// it (candidates are ordered by byte volume), so the hot path
    /// skips the graph's per-edge linear scan. `bytes` must be the
    /// `from → to` edge's volume; `try_fuse` delegates here, so the two
    /// can never drift.
    pub fn try_fuse_bytes(
        &mut self,
        system: &SystemSpec,
        from: LayerId,
        to: LayerId,
        acc: AccId,
        bytes: Bytes,
    ) -> bool {
        let Err(slot) = self.fused.binary_search_by_key(&(from, to), |e| (e.0, e.1)) else {
            return true;
        };
        if bytes > self.dram_free(acc, system) {
            return false;
        }
        self.used[acc.index()] += bytes.as_u64();
        self.fused.insert(slot, (from, to, bytes.as_u64()));
        let i = from.index();
        if self.fused_out.len() <= i {
            self.fused_out.resize(i + 1, 0);
        }
        self.fused_out[i] += 1;
        true
    }

    /// Strips every fused edge whose producer is mapped, refunding each
    /// recorded charge to the producer's accelerator — the bulk form of
    /// [`LocalityState::unfuse`] used by the search core's global
    /// fusion-pass replay, which strips the whole fused set once per
    /// scored candidate (per-edge removal from the sorted vec would be
    /// quadratic). The refunds are exact integer subtraction, so the
    /// final state is identical to unfusing edge by edge. Edges with an
    /// unmapped producer (never the case mid-search) are retained, as
    /// the per-edge strip attributed by `mapping` would skip them.
    pub fn unfuse_all(&mut self, mapping: &crate::mapping::Mapping) {
        let mut w = 0;
        for r in 0..self.fused.len() {
            let (f, _, b) = self.fused[r];
            match mapping.get(f) {
                Some(a) => {
                    self.used[a.index()] -= b;
                    self.fused_out[f.index()] -= 1;
                }
                None => {
                    self.fused[w] = self.fused[r];
                    w += 1;
                }
            }
        }
        self.fused.truncate(w);
    }

    /// Reverts a fusion, refunding the edge's bytes to `acc`'s budget
    /// (the accelerator originally charged in [`LocalityState::try_fuse`]).
    /// Returns `false` if the edge was not fused.
    pub fn unfuse(
        &mut self,
        model: &ModelGraph,
        from: LayerId,
        to: LayerId,
        acc: AccId,
    ) -> bool {
        // `model` stays in the signature for parity with `try_fuse`,
        // but the refund comes from the recorded charge — no graph
        // walk on the strip/replay hot path.
        let _ = model;
        let Ok(slot) = self.fused.binary_search_by_key(&(from, to), |e| (e.0, e.1)) else {
            return false;
        };
        let bytes = self.fused.remove(slot).2;
        self.fused_out[from.index()] -= 1;
        self.used[acc.index()] -= bytes;
        true
    }

    /// True if the `from → to` edge is activation-fused.
    pub fn is_fused(&self, from: LayerId, to: LayerId) -> bool {
        // Most queries come from the cost kernel probing edges that are
        // not fused; a zero outgoing-fusion count on the producer
        // settles those with one load.
        match self.fused_out.get(from.index()) {
            Some(0) | None => false,
            Some(_) => self.fused.binary_search_by_key(&(from, to), |e| (e.0, e.1)).is_ok(),
        }
    }

    /// True when the `from → to` edge actually short-circuits through
    /// local DRAM under `mapping`: marked fused, both endpoints mapped
    /// and co-located, and the producer is not a model input (raw
    /// modality data lives at the host and always crosses the
    /// interconnect once). The single owner of this predicate — the
    /// evaluator, the event simulator, the contention bound and the
    /// link-lane gantt all route through it, so they can never drift.
    pub fn edge_is_local(
        &self,
        model: &ModelGraph,
        mapping: &crate::mapping::Mapping,
        from: LayerId,
        to: LayerId,
    ) -> bool {
        self.edge_is_local_flat(
            mapping,
            from,
            to,
            matches!(model.layer(from).op(), h2h_model::layer::LayerOp::Input { .. }),
        )
    }

    /// [`LocalityState::edge_is_local`] with the producer's Input-ness
    /// supplied by the caller: the data-oriented evaluator keeps that
    /// bit in a precomputed per-layer array, saving the `model.layer`
    /// lookup on the scoring hot path. This variant owns the predicate;
    /// `edge_is_local` delegates here, so the two can never drift.
    pub fn edge_is_local_flat(
        &self,
        mapping: &crate::mapping::Mapping,
        from: LayerId,
        to: LayerId,
        from_is_input: bool,
    ) -> bool {
        !from_is_input
            && self.is_fused(from, to)
            && mapping.get(from) == mapping.get(to)
            && mapping.get(from).is_some()
    }

    /// Number of fused edges.
    pub fn num_fused(&self) -> usize {
        self.fused.len()
    }

    /// Iterate over pinned layers (arbitrary order).
    pub fn pinned_layers(&self) -> impl Iterator<Item = LayerId> + '_ {
        self.pinned.iter().copied()
    }

    /// Iterate over fused `(from, to)` edges (sorted by endpoint ids).
    pub fn fused_edges(&self) -> impl Iterator<Item = (LayerId, LayerId)> + '_ {
        self.fused.iter().map(|e| (e.0, e.1))
    }

    /// Total pinned-weight bytes across the system.
    pub fn total_pinned_bytes(&self, model: &ModelGraph) -> Bytes {
        self.pinned
            .iter()
            .map(|l| model.layer(*l).weight_bytes(DataType::F32))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::system::BandwidthClass;
    use h2h_model::builder::ModelBuilder;
    use h2h_model::tensor::TensorShape;

    fn fc_chain() -> ModelGraph {
        let mut b = ModelBuilder::new("chain");
        // f1 and f2 each hold 8192×8192 weights ≈ 256 MiB at F32.
        let i = b.input("i", TensorShape::Vector { features: 8192 });
        let f1 = b.fc("f1", i, 8192).unwrap();
        let f2 = b.fc("f2", f1, 8192).unwrap();
        b.fc("f3", f2, 16).unwrap();
        b.finish().unwrap()
    }

    fn ids(m: &ModelGraph) -> Vec<LayerId> {
        m.topo_order()
    }

    #[test]
    fn pinning_respects_capacity() {
        let m = fc_chain();
        let sys = SystemSpec::standard(BandwidthClass::Mid);
        let xz = sys.find_by_meta_id("XZ").unwrap(); // 512 MiB board
        let mut loc = LocalityState::new(&sys);
        let ids = ids(&m);
        // f2: 8192×8192 weights ≈ 256 MiB -> fits once, not twice.
        assert!(loc.try_pin(&m, &sys, ids[2], xz));
        let used_once = loc.dram_used(xz);
        assert!(used_once > Bytes::from_mib(250));
        // Idempotent re-pin.
        assert!(loc.try_pin(&m, &sys, ids[2], xz));
        assert_eq!(loc.dram_used(xz), used_once);
        // Second large layer exceeds the 512 MiB board.
        assert!(!loc.try_pin(&m, &sys, ids[1], xz));
        assert_eq!(loc.num_pinned(), 1);
    }

    #[test]
    fn fusion_charges_edge_bytes() {
        let m = fc_chain();
        let sys = SystemSpec::standard(BandwidthClass::Mid);
        let sh = sys.find_by_meta_id("SH").unwrap();
        let mut loc = LocalityState::new(&sys);
        let ids = ids(&m);
        assert!(loc.try_fuse(&m, &sys, ids[1], ids[2], sh));
        assert!(loc.is_fused(ids[1], ids[2]));
        // Edge bytes = 8192 f32 = 32 KiB.
        assert_eq!(loc.dram_used(sh), Bytes::new(8192 * 4));
        // Nonexistent edge refuses.
        assert!(!loc.try_fuse(&m, &sys, ids[0], ids[3], sh));
        assert_eq!(loc.num_fused(), 1);
    }

    #[test]
    fn budget_shared_between_weights_and_activations() {
        let m = fc_chain();
        let sys = SystemSpec::standard(BandwidthClass::Mid);
        let xz = sys.find_by_meta_id("XZ").unwrap();
        let mut loc = LocalityState::new(&sys);
        let ids = ids(&m);
        assert!(loc.try_pin(&m, &sys, ids[2], xz)); // ~256 MiB of 512
        let free = loc.dram_free(xz, &sys);
        assert!(free < Bytes::from_mib(256));
        // A 32 KiB fusion still fits.
        assert!(loc.try_fuse(&m, &sys, ids[1], ids[2], xz));
    }

    #[test]
    fn total_pinned_bytes_sums() {
        let m = fc_chain();
        let sys = SystemSpec::standard(BandwidthClass::Mid);
        let sh = sys.find_by_meta_id("SH").unwrap(); // 8 GiB
        let mut loc = LocalityState::new(&sys);
        for id in ids(&m) {
            assert!(loc.try_pin(&m, &sys, id, sh));
        }
        let expect: Bytes = m
            .layers()
            .map(|(_, l)| l.weight_bytes(h2h_model::tensor::DataType::F32))
            .sum();
        assert_eq!(loc.total_pinned_bytes(&m), expect);
    }
}
