//! The system-level list scheduler (`update_System_Scheduling` in the
//! paper's Algorithm 1).
//!
//! Given a mapping and a locality state, computes every layer's timing
//! decomposition and the end-to-end system latency and energy. Per-layer
//! latency follows the paper's §4.1 semantics: *weight transfer + IFM
//! transfer + computation + OFM transfer*, serialized on the owning
//! accelerator. With zero locality every term crosses Ethernet through
//! the host; pinned weights and fused activations replace Ethernet
//! round-trips with local-DRAM traffic.
//!
//! Transfer rules (routed over [`crate::topology::Topology`]; the
//! uniform-star default reproduces DESIGN.md §6's scalar `BW_acc`
//! bitwise):
//! * weights: host→acc at the host route's effective bandwidth, or
//!   local DRAM read if pinned;
//! * IFM: one download per unfused incoming edge at the
//!   producer→consumer route's rate; fused edges read from local DRAM;
//!   edges from `Input` layers charge the host→consumer route (the raw
//!   modality data lives at the host);
//! * OFM: one upload if any outgoing edge is unfused **or** the layer
//!   is a model output, at the slowest route among the remote
//!   consumers (host for outputs); one local-DRAM write if any
//!   outgoing edge is fused.
//!
//! # Data-oriented hot path
//!
//! [`Evaluator::layer_cost`] is the unit cost of the entire search
//! stack — the delta engine scores millions of candidates through it —
//! so the evaluator flattens everything the kernel reads into
//! structure-of-arrays form at construction ([`FlatCost`]): per-layer
//! weight/OFM byte volumes and Input bits, CSR predecessor/successor
//! adjacency with per-edge byte volumes, dense per-(layer, accelerator)
//! compute tables, per-accelerator DRAM rates and compute-slowdown
//! factors, and a dense `(src, dst)` route-rate matrix copied from the
//! [`crate::topology::Topology`]. The hot kernel is straight-line
//! arithmetic over indexed arrays — no `model.layer`, `edge_bytes`
//! (a per-edge linear scan in the graph backend) or `path_bw` calls.
//!
//! Bit-identity is preserved by construction, not by accident: the flat
//! tables store the *same* unit-typed values (`Bytes`, `BytesPerSec`,
//! `Seconds`) the pointer-chasing path reads, the CSR rows are built by
//! iterating `predecessors`/`successors` in graph order (float
//! accumulation order is unchanged), and every arithmetic expression is
//! the same sequence of IEEE operations. The original implementation is
//! retained as [`Evaluator::layer_cost_reference`] — the executable
//! spec — and a property test asserts bitwise equality across the model
//! zoo, fabrics and random mapping/locality states.

use serde::{Deserialize, Serialize};

use h2h_model::graph::{LayerId, ModelGraph};
use h2h_model::layer::LayerOp;
use h2h_model::tensor::DataType;
use h2h_model::units::{Bytes, BytesPerSec, Joules, Seconds};

use crate::locality::LocalityState;
use crate::mapping::Mapping;
use crate::system::{AccId, SystemSpec};
use crate::topology::Endpoint;

/// Memoized per-(layer, accelerator) compute costs. Building one of
/// these once per model/system pair makes repeated schedule evaluations
/// (the inner loop of remapping) pure arithmetic.
#[derive(Debug, Clone)]
pub struct CostCache {
    time: Vec<Vec<Option<Seconds>>>,
    energy: Vec<Vec<Option<Joules>>>,
}

impl CostCache {
    /// Precomputes compute time/energy for every layer on every
    /// accelerator (`None` where unsupported).
    pub fn new(model: &ModelGraph, system: &SystemSpec) -> Self {
        let bound = model.id_bound();
        let n_accs = system.num_accs();
        let mut time = vec![vec![None; n_accs]; bound];
        let mut energy = vec![vec![None; n_accs]; bound];
        for (id, layer) in model.layers() {
            for acc in system.acc_ids() {
                time[id.index()][acc.index()] = system.acc(acc).compute_time(layer);
                energy[id.index()][acc.index()] = system.acc(acc).compute_energy(layer);
            }
        }
        CostCache { time, energy }
    }

    /// Cached compute time of `layer` on `acc` (`None` if unsupported).
    pub fn time(&self, layer: LayerId, acc: AccId) -> Option<Seconds> {
        self.time[layer.index()][acc.index()]
    }

    /// Cached compute energy of `layer` on `acc`.
    pub fn energy(&self, layer: LayerId, acc: AccId) -> Option<Joules> {
        self.energy[layer.index()][acc.index()]
    }
}

/// Structure-of-arrays snapshot of everything the cost kernel reads,
/// built once per evaluator (see the module docs). Indices follow the
/// repo-wide conventions: layers by `LayerId::index()` up to
/// `ModelGraph::id_bound()` (holes hold zeros/empty rows), accelerators
/// by `AccId::index()`, route nodes by the [`Endpoint`] numbering
/// (host 0, accelerator `i` at `i + 1`).
#[derive(Debug)]
struct FlatCost {
    /// Route-matrix side length (`n_accs + 1`).
    nodes: usize,
    n_accs: usize,
    /// Effective `src → dst` rate at `src * nodes + dst`.
    route: Vec<BytesPerSec>,
    /// Local DRAM rate per accelerator.
    dram_bw: Vec<BytesPerSec>,
    /// Compute-slowdown factor per accelerator (1.0 when healthy).
    compute_factor: Vec<f64>,
    /// Compute time at `layer * n_accs + acc` (`None` if unsupported).
    ctime: Vec<Option<Seconds>>,
    /// Compute energy, same indexing.
    cenergy: Vec<Option<Joules>>,
    /// Weight bytes per layer (F32).
    wbytes: Vec<Bytes>,
    /// OFM bytes per layer (F32).
    obytes: Vec<Bytes>,
    /// Whether the layer is a model input.
    is_input: Vec<bool>,
    /// Layers with weights paired with their F32 weight bytes, in graph
    /// iteration order (the step-2 knapsack's item order, part of the
    /// bit-identity contract: knapsack ties break by this order).
    weighted: Vec<(LayerId, Bytes)>,
    /// CSR offsets into `pred_src`/`pred_bytes`, one row per layer
    /// index, in graph iteration order (IFM float-sum order).
    pred_off: Vec<u32>,
    pred_src: Vec<LayerId>,
    pred_bytes: Vec<Bytes>,
    /// CSR offsets into `succ_dst`.
    succ_off: Vec<u32>,
    succ_dst: Vec<LayerId>,
}

impl FlatCost {
    fn build(model: &ModelGraph, system: &SystemSpec, cache: &CostCache) -> Self {
        let bound = model.id_bound();
        let n_accs = system.num_accs();
        let nodes = n_accs + 1;
        let route = system.topology().route_rate_matrix();
        debug_assert_eq!(route.len(), nodes * nodes);

        let mut dram_bw = Vec::with_capacity(n_accs);
        let mut compute_factor = Vec::with_capacity(n_accs);
        for acc in system.acc_ids() {
            dram_bw.push(system.acc(acc).dram_bandwidth());
            compute_factor.push(system.compute_factor(acc));
        }

        let mut ctime = vec![None; bound * n_accs];
        let mut cenergy = vec![None; bound * n_accs];
        for li in 0..bound {
            for ai in 0..n_accs {
                ctime[li * n_accs + ai] = cache.time[li][ai];
                cenergy[li * n_accs + ai] = cache.energy[li][ai];
            }
        }

        let mut wbytes = vec![Bytes::ZERO; bound];
        let mut obytes = vec![Bytes::ZERO; bound];
        let mut is_input = vec![false; bound];
        let mut weighted = Vec::new();
        for (id, layer) in model.layers() {
            let wb = layer.weight_bytes(DataType::F32);
            wbytes[id.index()] = wb;
            if wb > Bytes::ZERO {
                weighted.push((id, wb));
            }
            obytes[id.index()] = layer.ofm_bytes(DataType::F32);
            is_input[id.index()] = matches!(layer.op(), LayerOp::Input { .. });
        }

        // CSR rows are filled in ascending layer-index order so the
        // offset table and the flat arrays stay in lockstep; within a
        // row, edges keep the graph's `predecessors`/`successors`
        // iteration order (the IFM term is a float sum, so its order is
        // part of the bit-identity contract).
        let mut ids: Vec<LayerId> = model.layer_ids().collect();
        ids.sort_unstable_by_key(|id| id.index());
        let mut pred_off = vec![0u32; bound + 1];
        let mut succ_off = vec![0u32; bound + 1];
        for &id in &ids {
            pred_off[id.index() + 1] = model.predecessors(id).count() as u32;
            succ_off[id.index() + 1] = model.successors(id).count() as u32;
        }
        for i in 0..bound {
            pred_off[i + 1] += pred_off[i];
            succ_off[i + 1] += succ_off[i];
        }
        let mut pred_src = Vec::with_capacity(pred_off[bound] as usize);
        let mut pred_bytes = Vec::with_capacity(pred_off[bound] as usize);
        let mut succ_dst = Vec::with_capacity(succ_off[bound] as usize);
        for &id in &ids {
            debug_assert_eq!(pred_src.len(), pred_off[id.index()] as usize);
            for p in model.predecessors(id) {
                pred_src.push(p);
                pred_bytes.push(model.edge_bytes(p, id).expect("predecessor edge exists"));
            }
            debug_assert_eq!(succ_dst.len(), succ_off[id.index()] as usize);
            for s in model.successors(id) {
                succ_dst.push(s);
            }
        }

        FlatCost {
            nodes,
            n_accs,
            route,
            dram_bw,
            compute_factor,
            ctime,
            cenergy,
            wbytes,
            obytes,
            is_input,
            weighted,
            pred_off,
            pred_src,
            pred_bytes,
            succ_off,
            succ_dst,
        }
    }
}

/// Full cost decomposition of one layer under a `(mapping, locality)`
/// pair — everything a schedule needs to know about the layer except
/// *when* it runs. [`Evaluator::layer_cost`] is the single source of
/// truth for these terms: the full evaluator and the incremental delta
/// engine both consume it, so the two can never drift apart.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct LayerCost {
    /// Weight-transfer share (Ethernet or local DRAM).
    pub weight_xfer: Seconds,
    /// IFM-download share (all incoming edges).
    pub ifm_xfer: Seconds,
    /// Pure compute share.
    pub compute: Seconds,
    /// OFM-upload share.
    pub ofm_xfer: Seconds,
    /// Portion of the above spent on Ethernet.
    pub eth_time: Seconds,
    /// Portion of the above spent on local DRAM.
    pub dram_time: Seconds,
    /// Bytes touching local DRAM (the Ethernet-side energy model is
    /// time-based, so Ethernet bytes are not tracked).
    pub dram_bytes: Bytes,
    /// PE-array dynamic energy.
    pub compute_energy: Joules,
}

impl LayerCost {
    /// Serialized occupancy of the owning accelerator — the exact sum
    /// (in the exact order) the list scheduler adds to a layer's start
    /// time, so incremental and full schedules agree bitwise.
    pub fn duration(&self) -> Seconds {
        self.weight_xfer + self.ifm_xfer + self.compute + self.ofm_xfer
    }
}

/// Timing decomposition of one scheduled layer.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LayerTiming {
    /// Owning accelerator.
    pub acc: AccId,
    /// Start time (after dependencies and accelerator availability).
    pub start: Seconds,
    /// Finish time.
    pub finish: Seconds,
    /// Weight-transfer share (Ethernet or local DRAM).
    pub weight_xfer: Seconds,
    /// IFM-download share.
    pub ifm_xfer: Seconds,
    /// Pure compute share.
    pub compute: Seconds,
    /// OFM-upload share.
    pub ofm_xfer: Seconds,
}

/// Energy decomposition of a schedule.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct EnergyBreakdown {
    /// PE-array dynamic energy.
    pub compute: Joules,
    /// Ethernet transfer energy (transfer time × link power).
    pub ethernet: Joules,
    /// Local DRAM access energy.
    pub dram: Joules,
}

impl EnergyBreakdown {
    /// Total system energy.
    pub fn total(&self) -> Joules {
        self.compute + self.ethernet + self.dram
    }
}

/// A fully evaluated schedule: `Sys_latency`, `Sys_energy` and the
/// busy-time decomposition behind the paper's Fig. 5a.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Schedule {
    makespan: Seconds,
    energy: EnergyBreakdown,
    eth_busy: Seconds,
    comp_busy: Seconds,
    dram_busy: Seconds,
    timings: Vec<Option<LayerTiming>>,
    per_acc_busy: Vec<Seconds>,
}

impl Schedule {
    /// End-to-end system latency (`Sys_latency`).
    pub fn makespan(&self) -> Seconds {
        self.makespan
    }

    /// System energy (`Sys_energy`).
    pub fn energy(&self) -> &EnergyBreakdown {
        &self.energy
    }

    /// Total Ethernet transfer time summed over layers ("communication"
    /// in Fig. 5a).
    pub fn eth_busy(&self) -> Seconds {
        self.eth_busy
    }

    /// Total compute time summed over layers.
    pub fn comp_busy(&self) -> Seconds {
        self.comp_busy
    }

    /// Total local-DRAM transfer time summed over layers.
    pub fn dram_busy(&self) -> Seconds {
        self.dram_busy
    }

    /// Computation share of total busy time (paper Fig. 5a): local work
    /// (compute + local DRAM) over all busy time including Ethernet.
    pub fn compute_ratio(&self) -> f64 {
        let local = self.comp_busy + self.dram_busy;
        let total = local + self.eth_busy;
        if total <= Seconds::ZERO {
            return 1.0;
        }
        local.as_f64() / total.as_f64()
    }

    /// Timing of one layer, if it was scheduled.
    pub fn timing(&self, layer: LayerId) -> Option<&LayerTiming> {
        self.timings.get(layer.index()).and_then(|t| t.as_ref())
    }

    /// Busy time per accelerator, indexed by `AccId::index()`.
    pub fn per_acc_busy(&self) -> &[Seconds] {
        &self.per_acc_busy
    }

    /// Busy time of the bottleneck accelerator — the reciprocal of the
    /// steady-state pipelined-serving throughput: when back-to-back
    /// inference requests stream through the mapped system, every
    /// request must pass through the busiest device.
    pub fn bottleneck_busy(&self) -> Seconds {
        self.per_acc_busy
            .iter()
            .copied()
            .fold(Seconds::ZERO, Seconds::max)
    }

    /// Steady-state pipelined throughput in inferences/second
    /// (`1 / bottleneck_busy`); infinite for an empty schedule.
    pub fn steady_state_throughput(&self) -> f64 {
        let b = self.bottleneck_busy().as_f64();
        if b <= 0.0 {
            f64::INFINITY
        } else {
            1.0 / b
        }
    }
}

/// Schedule evaluator bound to one (model, system) pair, with memoized
/// compute costs and a fixed global priority order.
///
/// The optional *batch* models weight-amortized serving: `batch`
/// inference requests stream through back-to-back, weights (Ethernet or
/// local DRAM) are fetched once per batch, while activations and compute
/// repeat per request. `batch = 1` (default) is the paper's
/// single-inference semantics.
#[derive(Debug)]
pub struct Evaluator<'a> {
    model: &'a ModelGraph,
    system: &'a SystemSpec,
    cache: CostCache,
    flat: FlatCost,
    order: Vec<LayerId>,
    batch: u32,
    evals: std::sync::atomic::AtomicUsize,
}

impl<'a> Evaluator<'a> {
    /// Builds the evaluator (validates nothing: the model must already
    /// be [`ModelGraph::validate`]d).
    pub fn new(model: &'a ModelGraph, system: &'a SystemSpec) -> Self {
        let cache = CostCache::new(model, system);
        let flat = FlatCost::build(model, system, &cache);
        Evaluator {
            model,
            system,
            cache,
            flat,
            order: model.topo_order(),
            batch: 1,
            evals: std::sync::atomic::AtomicUsize::new(0),
        }
    }

    /// Rebuilds an evaluator around an already-memoized cost cache.
    /// [`CostCache::new`] runs the analytic accelerator models for every
    /// (layer, accelerator) pair — by far the most expensive part of
    /// evaluator construction — so callers that repeatedly need fresh
    /// evaluators for the *same* (model, system) pair at different batch
    /// sizes (the multi-tenant serving loop re-batches one tenant's
    /// evaluator per scheduling round) clone the cache once and rebuild
    /// from it. `cache` must come from this exact (model, system) pair;
    /// a mismatched cache produces wrong (or panicking) schedules.
    pub fn from_cache(model: &'a ModelGraph, system: &'a SystemSpec, cache: CostCache) -> Self {
        let flat = FlatCost::build(model, system, &cache);
        Evaluator {
            model,
            system,
            cache,
            flat,
            order: model.topo_order(),
            batch: 1,
            evals: std::sync::atomic::AtomicUsize::new(0),
        }
    }

    /// Sets the serving batch size (≥ 1).
    ///
    /// # Panics
    ///
    /// Panics if `batch == 0`.
    pub fn with_batch(mut self, batch: u32) -> Self {
        assert!(batch >= 1, "batch must be at least 1");
        self.batch = batch;
        self
    }

    /// The serving batch size.
    pub fn batch(&self) -> u32 {
        self.batch
    }

    /// The memoized cost table.
    pub fn cache(&self) -> &CostCache {
        &self.cache
    }

    /// The model being scheduled (with the evaluator's full lifetime, so
    /// callers can rebuild evaluators from it).
    pub fn model(&self) -> &'a ModelGraph {
        self.model
    }

    /// The system being scheduled onto.
    pub fn system(&self) -> &'a SystemSpec {
        self.system
    }

    /// Layers with weights, paired with their F32 weight bytes, in
    /// graph iteration order. This is the exact candidate-item order
    /// the step-2 weight-locality knapsack sees, so consumers that
    /// filter it by mapping reproduce the pass's decisions bitwise.
    pub fn weighted_layers(&self) -> &[(LayerId, Bytes)] {
        &self.flat.weighted
    }

    /// `id`'s graph successors from the flat CSR row — the same
    /// elements, in the same order, as `ModelGraph::successors`, without
    /// the graph walk. For search-core hot paths.
    pub fn successors_flat(&self, id: LayerId) -> &[LayerId] {
        let f = &self.flat;
        let li = id.index();
        &f.succ_dst[f.succ_off[li] as usize..f.succ_off[li + 1] as usize]
    }

    /// `id`'s graph predecessors from the flat CSR row (see
    /// [`Evaluator::successors_flat`]).
    pub fn predecessors_flat(&self, id: LayerId) -> &[LayerId] {
        let f = &self.flat;
        let li = id.index();
        &f.pred_src[f.pred_off[li] as usize..f.pred_off[li + 1] as usize]
    }

    /// Evaluates a complete mapping.
    ///
    /// # Panics
    ///
    /// Panics if any layer is unmapped or mapped to an accelerator that
    /// cannot execute it (callers validate with [`Mapping::validate`]).
    pub fn evaluate(&self, mapping: &Mapping, locality: &LocalityState) -> Schedule {
        self.evals.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        self.evaluate_filtered(mapping, locality, |_| true)
    }

    /// Full [`Evaluator::evaluate`] calls made through this evaluator
    /// since construction — the currency search budgets are billed in.
    /// Partial (prefix) evaluations are not counted: they price a
    /// fragment of the model, not a schedule.
    pub fn evals_performed(&self) -> usize {
        self.evals.load(std::sync::atomic::Ordering::Relaxed)
    }

    /// Evaluates the sub-schedule of layers for which `include` returns
    /// true (used by the frontier search of step 1, where only a prefix
    /// of the model is mapped). The include set must be closed under
    /// predecessors.
    pub fn evaluate_partial(
        &self,
        mapping: &Mapping,
        locality: &LocalityState,
        include: impl Fn(LayerId) -> bool,
    ) -> Schedule {
        self.evaluate_filtered(mapping, locality, include)
    }

    /// See [`LocalityState::edge_is_local`] — the one owner of the
    /// "does this edge move through local DRAM" predicate.
    fn edge_is_local(
        &self,
        locality: &LocalityState,
        mapping: &Mapping,
        from: LayerId,
        to: LayerId,
    ) -> bool {
        locality.edge_is_local(self.model, mapping, from, to)
    }

    /// Computes one layer's full cost decomposition under `(mapping,
    /// locality)` — weight/IFM/compute/OFM terms, the interconnect vs
    /// DRAM split, byte volumes and compute energy. This is the shared
    /// primitive behind [`Evaluator::evaluate`] and the incremental
    /// delta engine; term order matches the historical evaluator so
    /// schedules agree bitwise.
    ///
    /// This is the data-oriented kernel: straight-line arithmetic over
    /// the [`FlatCost`] arrays (see the module docs). It is asserted
    /// bitwise-equal to [`Evaluator::layer_cost_reference`], the
    /// retained pointer-chasing implementation that serves as the
    /// executable spec of the cost semantics.
    ///
    /// Transfer rates come from the system's
    /// [`crate::topology::Topology`] route matrix, indexed per `(src
    /// placement, dst placement)` pair: weights stream
    /// host→accelerator, each IFM edge is charged at the
    /// producer→consumer route's effective bandwidth (host→consumer for
    /// model inputs), and the single OFM upload runs at the slowest
    /// route among its remote consumers (host for model outputs). On a
    /// uniform star every route resolves to the same rate bitwise,
    /// reproducing the paper's scalar model exactly.
    ///
    /// # Panics
    ///
    /// Panics if the layer is unmapped or mapped to an accelerator that
    /// cannot execute it.
    pub fn layer_cost(
        &self,
        mapping: &Mapping,
        locality: &LocalityState,
        id: LayerId,
    ) -> LayerCost {
        let f = &self.flat;
        let li = id.index();
        let b = self.batch as f64;
        let acc = mapping.acc_of(id);
        let ai = acc.index();
        // Route-matrix node of the owning accelerator (host is node 0).
        let here = ai + 1;
        let dram_bw = f.dram_bw[ai];
        let mut cost = LayerCost::default();

        // Weight transfer (once per batch), streamed from the host.
        let wbytes = f.wbytes[li];
        if wbytes > Bytes::ZERO {
            if locality.is_pinned(id) {
                cost.weight_xfer = dram_bw.transfer_time(wbytes);
                cost.dram_time += cost.weight_xfer;
                cost.dram_bytes += wbytes;
            } else {
                // route[host * nodes + here] with host = 0.
                cost.weight_xfer = f.route[here].transfer_time(wbytes);
                cost.eth_time += cost.weight_xfer;
            }
        }

        self.accum_ifm(mapping, locality, id, here, dram_bw, None, &mut cost);

        // Compute, per batch item. The table stores healthy-speed
        // times; a compute-throttled board on a degraded system view
        // stretches them at read time. The branch (rather than an
        // unconditional `* 1.0`) keeps the healthy path
        // bitwise-identical to the historical arithmetic.
        cost.compute = f.ctime[li * f.n_accs + ai]
            .expect("mapping validated: accelerator supports layer")
            * b;
        let slow = f.compute_factor[ai];
        if slow != 1.0 {
            cost.compute = cost.compute * slow;
        }
        cost.compute_energy = f.cenergy[li * f.n_accs + ai]
            .expect("mapping validated: accelerator supports layer")
            * b;

        self.accum_ofm(mapping, locality, id, here, dram_bw, None, &mut cost);

        cost
    }

    /// The IFM section of [`Evaluator::layer_cost`]: one transfer per
    /// incoming edge (CSR row, graph order — this is a float sum, so
    /// order is part of the contract), repeated per batch item, each at
    /// its route's effective bandwidth. An unmapped producer (partial
    /// evaluation of a frontier prefix) charges the host route — data
    /// not yet placed lives at the host. Factored out so
    /// [`Evaluator::duration_new_ifm`] reruns the exact arithmetic.
    ///
    /// `extra_fused` prices one hypothetical fusion on top of
    /// `locality`: the `extra_fused → id` edge is treated as fused (with
    /// the same colocation/non-input conditions the real predicate
    /// applies), exactly as if `locality` contained it. `layer_cost`
    /// passes `None`, which folds away under `inline(always)` — the
    /// production kernel is unchanged.
    #[allow(clippy::too_many_arguments)]
    #[inline(always)]
    fn accum_ifm(
        &self,
        mapping: &Mapping,
        locality: &LocalityState,
        id: LayerId,
        here: usize,
        dram_bw: BytesPerSec,
        extra_fused: Option<LayerId>,
        cost: &mut LayerCost,
    ) {
        let f = &self.flat;
        let li = id.index();
        let b = self.batch as f64;
        let (ps, pe) = (f.pred_off[li] as usize, f.pred_off[li + 1] as usize);
        for k in ps..pe {
            let pred = f.pred_src[k];
            let bytes = f.pred_bytes[k];
            let pred_is_input = f.is_input[pred.index()];
            if locality.edge_is_local_flat(mapping, pred, id, pred_is_input)
                || (extra_fused == Some(pred)
                    && !pred_is_input
                    && mapping.get(pred) == mapping.get(id)
                    && mapping.get(pred).is_some())
            {
                let t = dram_bw.transfer_time(bytes) * b;
                cost.ifm_xfer += t;
                cost.dram_time += t;
                cost.dram_bytes += bytes * self.batch as u64;
            } else {
                // `edge_src` flattened: inputs and unmapped producers
                // send from the host (node 0).
                let src = if pred_is_input {
                    0
                } else {
                    match mapping.get(pred) {
                        Some(pa) => pa.index() + 1,
                        None => 0,
                    }
                };
                let t = f.route[src * f.nodes + here].transfer_time(bytes) * b;
                cost.ifm_xfer += t;
                cost.eth_time += t;
            }
        }
    }

    /// The OFM section of [`Evaluator::layer_cost`]: model inputs emit
    /// nothing (data already at host); otherwise one interconnect
    /// upload serves all unfused consumers (and the final output) at
    /// the slowest route among them, one DRAM write serves all fused
    /// consumers. A single pass over the successor CSR row replays
    /// `Topology::ofm_route` (min-rate fold, host fallback for model
    /// outputs, `None` when every consumer is fused) and the any-local
    /// scan together. Factored out so
    /// [`Evaluator::duration_new_ofm`] reruns the exact arithmetic.
    ///
    /// `extra_fused` prices one hypothetical fusion on top of
    /// `locality`: the `id → extra_fused` edge is treated as fused, with
    /// the same caveats as on [`Evaluator::accum_ifm`].
    #[allow(clippy::too_many_arguments)]
    #[inline(always)]
    fn accum_ofm(
        &self,
        mapping: &Mapping,
        locality: &LocalityState,
        id: LayerId,
        here: usize,
        dram_bw: BytesPerSec,
        extra_fused: Option<LayerId>,
        cost: &mut LayerCost,
    ) {
        let f = &self.flat;
        let li = id.index();
        let b = self.batch as f64;
        if !f.is_input[li] {
            let obytes = f.obytes[li];
            let (ss, se) = (f.succ_off[li] as usize, f.succ_off[li + 1] as usize);
            let mut upload: Option<BytesPerSec> = None;
            let mut any_local = false;
            if ss == se {
                // Model output: the result always lands at the host.
                upload = Some(f.route[here * f.nodes]);
            } else {
                for k in ss..se {
                    let succ = f.succ_dst[k];
                    if locality.edge_is_local_flat(mapping, id, succ, false)
                        || (extra_fused == Some(succ)
                            && !f.is_input[li]
                            && mapping.get(id) == mapping.get(succ)
                            && mapping.get(id).is_some())
                    {
                        any_local = true;
                        continue;
                    }
                    let dst = match mapping.get(succ) {
                        Some(sa) => sa.index() + 1,
                        None => 0,
                    };
                    let r = f.route[here * f.nodes + dst];
                    upload = Some(match upload {
                        Some(cur) => {
                            if cur < r {
                                cur
                            } else {
                                r
                            }
                        }
                        None => r,
                    });
                }
            }
            if let Some(bw) = upload {
                let t = bw.transfer_time(obytes) * b;
                cost.ofm_xfer += t;
                cost.eth_time += t;
            }
            if any_local {
                let t = dram_bw.transfer_time(obytes) * b;
                cost.ofm_xfer += t;
                cost.dram_time += t;
                cost.dram_bytes += obytes * self.batch as u64;
            }
        }
    }

    /// `LayerCost::duration()` of `id` with a freshly computed IFM term
    /// and every other term taken from `stored`, a cost for `id` that
    /// is current except (at most) its IFM term. Bitwise equal to
    /// `self.layer_cost(mapping, locality, id).duration()` because the
    /// IFM sum reruns [`Evaluator::accum_ifm`] verbatim (same values,
    /// same float-op order) and `duration()`'s left-to-right sum is
    /// reproduced term for term. The fusion-guard dominance proof uses
    /// this to price a fuse toggle's consumer — whose weight, compute
    /// and OFM terms the toggle provably cannot change — without paying
    /// the full kernel. `extra_fused` prices the toggle itself: the
    /// hypothetical `extra_fused → id` fusion is layered over
    /// `locality`, so the proof never has to mutate (and restore) the
    /// shared locality state.
    pub fn duration_new_ifm(
        &self,
        mapping: &Mapping,
        locality: &LocalityState,
        id: LayerId,
        stored: &LayerCost,
        extra_fused: Option<LayerId>,
    ) -> Seconds {
        let acc = mapping.acc_of(id);
        let ai = acc.index();
        let mut cost = LayerCost::default();
        self.accum_ifm(mapping, locality, id, ai + 1, self.flat.dram_bw[ai], extra_fused, &mut cost);
        stored.weight_xfer + cost.ifm_xfer + stored.compute + stored.ofm_xfer
    }

    /// `LayerCost::duration()` of `id` with a freshly computed OFM term
    /// and every other term taken from `stored` — the producer-side
    /// twin of [`Evaluator::duration_new_ifm`], with the same bitwise
    /// argument (the OFM fold reruns [`Evaluator::accum_ofm`]
    /// verbatim) and the same `extra_fused` overlay (here the
    /// hypothetical `id → extra_fused` fusion).
    pub fn duration_new_ofm(
        &self,
        mapping: &Mapping,
        locality: &LocalityState,
        id: LayerId,
        stored: &LayerCost,
        extra_fused: Option<LayerId>,
    ) -> Seconds {
        let acc = mapping.acc_of(id);
        let ai = acc.index();
        let mut cost = LayerCost::default();
        self.accum_ofm(mapping, locality, id, ai + 1, self.flat.dram_bw[ai], extra_fused, &mut cost);
        stored.weight_xfer + stored.ifm_xfer + stored.compute + cost.ofm_xfer
    }

    /// The original pointer-chasing implementation of
    /// [`Evaluator::layer_cost`], retained verbatim as the executable
    /// spec: it walks the graph (`model.layer`, `edge_bytes`,
    /// `predecessors`/`successors`) and queries the topology
    /// (`path_bw`, `ofm_route`) per edge. The `prop_schedule` suite
    /// asserts the flat kernel reproduces it bitwise across the zoo,
    /// fabrics and random mapping/locality states; production code
    /// should call `layer_cost`.
    pub fn layer_cost_reference(
        &self,
        mapping: &Mapping,
        locality: &LocalityState,
        id: LayerId,
    ) -> LayerCost {
        let topo = self.system.topology();
        let b = self.batch as f64;
        let layer = self.model.layer(id);
        let acc = mapping.acc_of(id);
        let here = Endpoint::Acc(acc);
        let dram_bw = self.system.acc(acc).dram_bandwidth();
        let is_input = matches!(layer.op(), LayerOp::Input { .. });
        let mut cost = LayerCost::default();

        // Weight transfer (once per batch), streamed from the host.
        let wbytes = layer.weight_bytes(DataType::F32);
        if wbytes > Bytes::ZERO {
            if locality.is_pinned(id) {
                cost.weight_xfer = dram_bw.transfer_time(wbytes);
                cost.dram_time += cost.weight_xfer;
                cost.dram_bytes += wbytes;
            } else {
                cost.weight_xfer = topo.path_bw(Endpoint::Host, here).transfer_time(wbytes);
                cost.eth_time += cost.weight_xfer;
            }
        }

        // IFM transfers: one per incoming edge, repeated per batch
        // item, each at its route's effective bandwidth. An unmapped
        // producer (partial evaluation of a frontier prefix) charges
        // the host route — data not yet placed lives at the host.
        for pred in self.model.predecessors(id) {
            let bytes = self
                .model
                .edge_bytes(pred, id)
                .expect("predecessor edge exists");
            if self.edge_is_local(locality, mapping, pred, id) {
                let t = dram_bw.transfer_time(bytes) * b;
                cost.ifm_xfer += t;
                cost.dram_time += t;
                cost.dram_bytes += bytes * self.batch as u64;
            } else {
                let src = crate::topology::edge_src(self.model, mapping, pred);
                let t = topo.path_bw(src, here).transfer_time(bytes) * b;
                cost.ifm_xfer += t;
                cost.eth_time += t;
            }
        }

        // Compute, per batch item. The cache stores healthy-speed
        // times; a compute-throttled board on a degraded system view
        // stretches them at read time ([`SystemSpec::compute_factor`]).
        // The branch (rather than an unconditional `* 1.0`) keeps the
        // healthy path bitwise-identical to the historical arithmetic.
        cost.compute = self
            .cache
            .time(id, acc)
            .expect("mapping validated: accelerator supports layer")
            * b;
        let slow = self.system.compute_factor(acc);
        if slow != 1.0 {
            cost.compute = cost.compute * slow;
        }
        cost.compute_energy = self
            .cache
            .energy(id, acc)
            .expect("mapping validated: accelerator supports layer")
            * b;

        // OFM transfer: model inputs emit nothing (data already at
        // host); otherwise one interconnect upload serves all unfused
        // consumers (and the final output) at the slowest route among
        // them, one DRAM write serves all fused consumers.
        if !is_input {
            let obytes = layer.ofm_bytes(DataType::F32);
            // The upload rate comes from the shared routing rule
            // (slowest remote-consumer route, host for outputs); the
            // DRAM write needs its own cheap any-local scan — consumer
            // lists are tiny.
            if let Some((bw, _)) = topo.ofm_route(self.model, mapping, locality, id) {
                let t = bw.transfer_time(obytes) * b;
                cost.ofm_xfer += t;
                cost.eth_time += t;
            }
            let any_local = self
                .model
                .successors(id)
                .any(|s| self.edge_is_local(locality, mapping, id, s));
            if any_local {
                let t = dram_bw.transfer_time(obytes) * b;
                cost.ofm_xfer += t;
                cost.dram_time += t;
                cost.dram_bytes += obytes * self.batch as u64;
            }
        }

        cost
    }

    fn evaluate_filtered(
        &self,
        mapping: &Mapping,
        locality: &LocalityState,
        include: impl Fn(LayerId) -> bool,
    ) -> Schedule {
        let emodel = self.system.energy_model();
        let bound = self.model.id_bound();
        let mut timings: Vec<Option<LayerTiming>> = vec![None; bound];
        let mut finish: Vec<Seconds> = vec![Seconds::ZERO; bound];
        let mut acc_ready = vec![Seconds::ZERO; self.system.num_accs()];
        let mut per_acc_busy = vec![Seconds::ZERO; self.system.num_accs()];

        let mut makespan = Seconds::ZERO;
        let mut eth_busy = Seconds::ZERO;
        let mut comp_busy = Seconds::ZERO;
        let mut dram_busy = Seconds::ZERO;
        let mut energy = EnergyBreakdown::default();
        let mut dram_bytes = Bytes::ZERO;

        for &id in &self.order {
            if !include(id) {
                continue;
            }
            let acc = mapping.acc_of(id);
            let cost = self.layer_cost(mapping, locality, id);
            eth_busy += cost.eth_time;
            comp_busy += cost.compute;
            dram_busy += cost.dram_time;
            dram_bytes += cost.dram_bytes;
            energy.compute += cost.compute_energy;

            // Dependencies + accelerator availability. The max fold is
            // order-insensitive (non-negative finish times, no NaN), so
            // reading the CSR row instead of the graph iterator cannot
            // change the result bitwise.
            let (ps, pe) = (
                self.flat.pred_off[id.index()] as usize,
                self.flat.pred_off[id.index() + 1] as usize,
            );
            let ready = self.flat.pred_src[ps..pe]
                .iter()
                .map(|p| finish[p.index()])
                .fold(Seconds::ZERO, Seconds::max);
            let start = ready.max(acc_ready[acc.index()]);
            let dur = cost.duration();
            let end = start + dur;
            finish[id.index()] = end;
            acc_ready[acc.index()] = end;
            per_acc_busy[acc.index()] += dur;
            makespan = makespan.max(end);

            timings[id.index()] = Some(LayerTiming {
                acc,
                start,
                finish: end,
                weight_xfer: cost.weight_xfer,
                ifm_xfer: cost.ifm_xfer,
                compute: cost.compute,
                ofm_xfer: cost.ofm_xfer,
            });
        }

        energy.ethernet = Joules::new(eth_busy.as_f64() * emodel.eth_link_power_w);
        energy.dram = Joules::new(dram_bytes.as_f64() * emodel.dram_pj_per_byte * 1e-12);

        Schedule {
            makespan,
            energy,
            eth_busy,
            comp_busy,
            dram_busy,
            timings,
            per_acc_busy,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::system::BandwidthClass;
    use crate::testutil::{const_system, ConstAccel};
    use h2h_model::builder::ModelBuilder;
    use h2h_model::tensor::TensorShape;

    /// in(64 f32 = 256 B) -> fc1(256x256) -> fc2(256x16)
    fn chain() -> ModelGraph {
        let mut b = ModelBuilder::new("chain");
        let i = b.input("i", TensorShape::Vector { features: 64 });
        let f1 = b.fc("f1", i, 256).unwrap();
        b.fc("f2", f1, 16).unwrap();
        b.finish().unwrap()
    }

    fn map_all(m: &ModelGraph, acc: AccId) -> Mapping {
        let mut map = Mapping::new(m);
        for id in m.layer_ids() {
            map.set(id, acc);
        }
        map
    }

    #[test]
    fn zero_locality_chain_is_fully_additive() {
        let m = chain();
        // One accelerator, compute = 1 ms/layer, eth 1e6 B/s, dram 1e9 B/s.
        let sys = const_system(vec![ConstAccel::universal("U", 1e-3)], 1e6);
        let a0 = AccId::new(0);
        let map = map_all(&m, a0);
        let loc = LocalityState::new(&sys);
        let ev = Evaluator::new(&m, &sys);
        let s = ev.evaluate(&map, &loc);

        let ids = m.topo_order();
        // input: compute only (inputs move no data themselves).
        let t_in = s.timing(ids[0]).unwrap();
        assert!((t_in.finish.as_f64() - 1e-3).abs() < 1e-12);
        // f1: weights (64*256+256)*4 B, ifm 256 B, ofm 1024 B over 1e6 B/s.
        let t1 = s.timing(ids[1]).unwrap();
        let w1 = ((64 * 256 + 256) * 4) as f64 / 1e6;
        assert!((t1.weight_xfer.as_f64() - w1).abs() < 1e-12);
        assert!((t1.ifm_xfer.as_f64() - 256.0 / 1e6).abs() < 1e-12);
        assert!((t1.ofm_xfer.as_f64() - 1024.0 / 1e6).abs() < 1e-12);
        // f2 is a sink: OFM still uploads to host (16*4 B).
        let t2 = s.timing(ids[2]).unwrap();
        assert!((t2.ofm_xfer.as_f64() - 64.0 / 1e6).abs() < 1e-12);
        // Makespan = sum of all three durations (same acc, chain).
        let expect = t_in.finish.as_f64()
            + (t1.finish.as_f64() - t1.start.as_f64())
            + (t2.finish.as_f64() - t2.start.as_f64());
        assert!((s.makespan().as_f64() - expect).abs() < 1e-12);
    }

    #[test]
    fn pinning_switches_weight_term_to_dram() {
        let m = chain();
        let sys = const_system(vec![ConstAccel::universal("U", 1e-3)], 1e6);
        let a0 = AccId::new(0);
        let map = map_all(&m, a0);
        let ev = Evaluator::new(&m, &sys);
        let ids = m.topo_order();

        let loc0 = LocalityState::new(&sys);
        let base = ev.evaluate(&map, &loc0);

        let mut loc = LocalityState::new(&sys);
        assert!(loc.try_pin(&m, &sys, ids[1], a0));
        let pinned = ev.evaluate(&map, &loc);

        let wbytes = ((64 * 256 + 256) * 4) as f64;
        let saved = wbytes / 1e6 - wbytes / 1e9;
        assert!(
            (base.makespan().as_f64() - pinned.makespan().as_f64() - saved).abs() < 1e-9,
            "pinning should save exactly the eth-vs-dram delta"
        );
        assert!(pinned.dram_busy() > Seconds::ZERO);
    }

    #[test]
    fn fusion_removes_ethernet_round_trip() {
        let m = chain();
        let sys = const_system(vec![ConstAccel::universal("U", 1e-3)], 1e6);
        let a0 = AccId::new(0);
        let map = map_all(&m, a0);
        let ev = Evaluator::new(&m, &sys);
        let ids = m.topo_order();

        let base = ev.evaluate(&map, &LocalityState::new(&sys));
        let mut loc = LocalityState::new(&sys);
        assert!(loc.try_fuse(&m, &sys, ids[1], ids[2], a0));
        let fused = ev.evaluate(&map, &loc);

        // f1->f2 edge: 1024 B. Upload + download drop from eth, two DRAM
        // touches appear.
        let saved = 2.0 * 1024.0 / 1e6 - 2.0 * 1024.0 / 1e9;
        assert!((base.makespan().as_f64() - fused.makespan().as_f64() - saved).abs() < 1e-9);
    }

    #[test]
    fn input_edges_never_fuse() {
        let m = chain();
        let sys = const_system(vec![ConstAccel::universal("U", 1e-3)], 1e6);
        let a0 = AccId::new(0);
        let map = map_all(&m, a0);
        let ev = Evaluator::new(&m, &sys);
        let ids = m.topo_order();

        let base = ev.evaluate(&map, &LocalityState::new(&sys));
        let mut loc = LocalityState::new(&sys);
        // Force-mark the input edge fused; the evaluator must ignore it.
        assert!(loc.try_fuse(&m, &sys, ids[0], ids[1], a0));
        let after = ev.evaluate(&map, &loc);
        assert_eq!(base.makespan(), after.makespan());
    }

    #[test]
    fn fusion_requires_colocation() {
        let m = chain();
        let sys = const_system(
            vec![ConstAccel::universal("U0", 1e-3), ConstAccel::universal("U1", 1e-3)],
            1e6,
        );
        let ids = m.topo_order();
        let mut map = Mapping::new(&m);
        map.set(ids[0], AccId::new(0));
        map.set(ids[1], AccId::new(0));
        map.set(ids[2], AccId::new(1));
        let ev = Evaluator::new(&m, &sys);
        let base = ev.evaluate(&map, &LocalityState::new(&sys));
        let mut loc = LocalityState::new(&sys);
        // Stale fusion mark across accelerators must be ignored.
        assert!(loc.try_fuse(&m, &sys, ids[1], ids[2], AccId::new(0)));
        let after = ev.evaluate(&map, &loc);
        assert_eq!(base.makespan(), after.makespan());
    }

    #[test]
    fn parallel_branches_overlap_across_accelerators() {
        // in -> (fc_a, fc_b) -> add; fc_a/fc_b on different accs overlap.
        let mut b = ModelBuilder::new("par");
        let i = b.input("i", TensorShape::Vector { features: 1024 });
        let fa = b.fc("fa", i, 1024).unwrap();
        let fb = b.fc("fb", i, 1024).unwrap();
        b.add("join", &[fa, fb]).unwrap();
        let m = b.finish().unwrap();

        let sys2 = const_system(
            vec![ConstAccel::universal("U0", 0.5), ConstAccel::universal("U1", 0.5)],
            1e9,
        );
        let sys1 = const_system(vec![ConstAccel::universal("U0", 0.5)], 1e9);

        let ids = m.topo_order();
        let mut spread = Mapping::new(&m);
        spread.set(ids[0], AccId::new(0));
        spread.set(ids[1], AccId::new(0));
        spread.set(ids[2], AccId::new(1));
        spread.set(ids[3], AccId::new(0));

        let serial = {
            let mut map = Mapping::new(&m);
            for id in m.layer_ids() {
                map.set(id, AccId::new(0));
            }
            let ev = Evaluator::new(&m, &sys1);
            ev.evaluate(&map, &LocalityState::new(&sys1)).makespan()
        };
        let overlapped = {
            let ev = Evaluator::new(&m, &sys2);
            ev.evaluate(&spread, &LocalityState::new(&sys2)).makespan()
        };
        // Compute dominates (0.5 s/layer): overlapping the two 0.5 s FCs
        // must save ~0.5 s.
        assert!(
            serial.as_f64() - overlapped.as_f64() > 0.4,
            "serial {serial} vs overlapped {overlapped}"
        );
    }

    #[test]
    fn partial_evaluation_matches_full_when_all_included() {
        let m = chain();
        let sys = const_system(vec![ConstAccel::universal("U", 1e-3)], 1e6);
        let map = map_all(&m, AccId::new(0));
        let loc = LocalityState::new(&sys);
        let ev = Evaluator::new(&m, &sys);
        let full = ev.evaluate(&map, &loc);
        let part = ev.evaluate_partial(&map, &loc, |_| true);
        assert_eq!(full.makespan(), part.makespan());

        // Prefix-only evaluation is shorter.
        let ids = m.topo_order();
        let first_two: std::collections::HashSet<_> = ids[..2].iter().copied().collect();
        let prefix = ev.evaluate_partial(&map, &loc, |id| first_two.contains(&id));
        assert!(prefix.makespan() < full.makespan());
    }

    #[test]
    fn energy_tracks_transfer_and_compute() {
        let m = chain();
        let sys = const_system(vec![ConstAccel::universal("U", 1e-3)], 1e6);
        let map = map_all(&m, AccId::new(0));
        let ev = Evaluator::new(&m, &sys);
        let s = ev.evaluate(&map, &LocalityState::new(&sys));
        // 3 layers × 1 mJ compute (ConstAccel energy = 1 mJ per layer).
        assert!((s.energy().compute.as_f64() - 3e-3).abs() < 1e-9);
        // Ethernet energy = eth time × 5 W (default model).
        assert!(
            (s.energy().ethernet.as_f64() - s.eth_busy().as_f64() * 5.0).abs() < 1e-12
        );
        assert!(s.energy().total() > s.energy().compute);
    }

    #[test]
    fn batch_one_is_the_default_semantics() {
        let m = chain();
        let sys = const_system(vec![ConstAccel::universal("U", 1e-3)], 1e6);
        let map = map_all(&m, AccId::new(0));
        let loc = LocalityState::new(&sys);
        let a = Evaluator::new(&m, &sys).evaluate(&map, &loc);
        let b = Evaluator::new(&m, &sys).with_batch(1).evaluate(&map, &loc);
        assert_eq!(a.makespan(), b.makespan());
        assert_eq!(a.energy(), b.energy());
    }

    #[test]
    fn batching_amortizes_weights_only() {
        let m = chain();
        let sys = const_system(vec![ConstAccel::universal("U", 1e-3)], 1e6);
        let map = map_all(&m, AccId::new(0));
        let loc = LocalityState::new(&sys);
        let one = Evaluator::new(&m, &sys).evaluate(&map, &loc);
        let eight = Evaluator::new(&m, &sys).with_batch(8).evaluate(&map, &loc);
        // Weight transfer happens once per batch: total is strictly less
        // than 8x the single-inference makespan…
        assert!(eight.makespan().as_f64() < 8.0 * one.makespan().as_f64());
        // …but more than 8x the weight-free share.
        let weight_time: f64 = m
            .topo_order()
            .iter()
            .map(|id| one.timing(*id).unwrap().weight_xfer.as_f64())
            .sum();
        let act_share = one.makespan().as_f64() - weight_time;
        assert!(eight.makespan().as_f64() >= 8.0 * act_share - 1e-12);
        // Exact decomposition for a single-acc chain:
        let expect = weight_time + 8.0 * act_share;
        assert!((eight.makespan().as_f64() - expect).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "batch must be at least 1")]
    fn zero_batch_rejected() {
        let m = chain();
        let sys = const_system(vec![ConstAccel::universal("U", 1e-3)], 1e6);
        let _ = Evaluator::new(&m, &sys).with_batch(0);
    }

    #[test]
    fn standard_system_schedules_zoo_model() {
        // Smoke test with the real catalog: every CASIA layer placed on
        // a capable accelerator; schedule is finite and positive.
        let m = h2h_model::zoo::casia_surf();
        let sys = SystemSpec::standard(BandwidthClass::LowMinus);
        let ev = Evaluator::new(&m, &sys);
        let mut map = Mapping::new(&m);
        for (id, layer) in m.layers() {
            let acc = sys
                .acc_ids()
                .find(|a| sys.acc(*a).supports(layer))
                .expect("some accelerator supports every layer");
            map.set(id, acc);
        }
        map.validate(&m, &sys).unwrap();
        let s = ev.evaluate(&map, &LocalityState::new(&sys));
        assert!(s.makespan() > Seconds::ZERO);
        assert!(s.compute_ratio() > 0.0 && s.compute_ratio() < 1.0);
    }

    #[test]
    fn from_cache_reproduces_a_fresh_evaluator_bitwise() {
        let m = h2h_model::zoo::cnn_lstm();
        let sys = SystemSpec::standard(BandwidthClass::LowMinus);
        let fresh = Evaluator::new(&m, &sys);
        let mut map = Mapping::new(&m);
        for (id, layer) in m.layers() {
            let acc = sys
                .acc_ids()
                .find(|a| sys.acc(*a).supports(layer))
                .expect("some accelerator supports every layer");
            map.set(id, acc);
        }
        let loc = LocalityState::new(&sys);
        for batch in [1u32, 4, 16] {
            let a = Evaluator::new(&m, &sys).with_batch(batch).evaluate(&map, &loc);
            let b = Evaluator::from_cache(&m, &sys, fresh.cache().clone())
                .with_batch(batch)
                .evaluate(&map, &loc);
            assert_eq!(a.makespan(), b.makespan(), "batch {batch}");
            assert_eq!(a.energy().total(), b.energy().total(), "batch {batch}");
        }
    }
}
