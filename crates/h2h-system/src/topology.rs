//! The interconnect fabric: routed per-link bandwidths (`G_sys`'s
//! edges, generalized).
//!
//! The paper abstracts the cluster interconnect as a single scalar
//! `BW_acc`: every transfer, regardless of endpoints, is charged at one
//! global Ethernet rate over an implicit host star. [`Topology`] models
//! the fabric explicitly instead:
//!
//! * **Star** — a host NIC plus one host↔accelerator link per board,
//!   each with its own rate. Accelerator↔accelerator data is relayed
//!   through the host (two legs), so its effective rate is the
//!   bottleneck of the links it crosses.
//! * **Switched** — a star plus *direct* accelerator↔accelerator peer
//!   links that bypass the host entirely (and therefore neither pay the
//!   host-NIC bottleneck nor contend for it).
//!
//! Every `(src, dst)` endpoint pair resolves through a precomputed
//! route table to an *effective path bandwidth* — the minimum rate
//! along the route — and a `crosses host` bit that feeds both the
//! discrete-event simulator's host-NIC contention model and the
//! analytical contention bound ([`host_contention_bound`]).
//!
//! A **uniform star** (every link at one rate, the default built by
//! [`crate::system::SystemSpec::new`]) collapses to the paper's scalar
//! model *bitwise*: every route's effective bandwidth is the same
//! `f64`, so every transfer time, schedule, mapping decision and
//! search statistic is bit-identical to the historical scalar path
//! (asserted zoo-wide by the `topology_equiv` suite).

use std::fmt::Write as _;

use h2h_model::graph::{LayerId, ModelGraph};
use h2h_model::layer::LayerOp;
use h2h_model::tensor::DataType;
use h2h_model::units::{Bytes, BytesPerSec, Seconds};

use crate::fault::FaultState;
use crate::locality::LocalityState;
use crate::mapping::Mapping;
use crate::system::AccId;

/// One end of a transfer: the host node or an accelerator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Endpoint {
    /// The host node (raw modality inputs, weight storage, outputs).
    Host,
    /// An accelerator board.
    Acc(AccId),
}

impl Endpoint {
    /// Dense node index: host is 0, accelerator `i` is `i + 1`.
    fn node(self) -> usize {
        match self {
            Endpoint::Host => 0,
            Endpoint::Acc(a) => a.index() + 1,
        }
    }
}

/// The interconnect fabric of a [`crate::system::SystemSpec`]: per-link
/// rates plus a precomputed `(src, dst)` route table (see the module
/// docs for the routing rules).
#[derive(Debug, Clone, PartialEq)]
pub struct Topology {
    /// Host-side NIC rate (every via-host route crosses it).
    host_nic: BytesPerSec,
    /// Host↔accelerator link rate per board.
    links: Vec<BytesPerSec>,
    /// Direct peer links `(i, j, rate)` with `i < j` (switched fabrics).
    peers: Vec<(usize, usize, BytesPerSec)>,
    /// Effective path bandwidth per `(src, dst)` node pair, row-major
    /// over `n_accs + 1` nodes (host first).
    route: Vec<BytesPerSec>,
    /// Whether the `(src, dst)` route is relayed through the host.
    via_host: Vec<bool>,
    /// `Some(bw)` iff every route resolves to the same rate bitwise —
    /// the scalar-model fast path.
    uniform: Option<BytesPerSec>,
}

impl Topology {
    /// The paper's scalar model: every link (and the host NIC) at `bw`.
    pub fn uniform_star(bw: BytesPerSec, n_accs: usize) -> Self {
        Topology::star(bw, vec![bw; n_accs])
    }

    /// A star with one host NIC rate and per-accelerator link rates.
    ///
    /// # Panics
    ///
    /// Panics if `links` is empty or any rate is non-positive.
    pub fn star(host_nic: BytesPerSec, links: Vec<BytesPerSec>) -> Self {
        Topology::switched(host_nic, links, Vec::new())
    }

    /// A switched fabric: star links plus direct peer links that bypass
    /// the host. Peer endpoints are normalized to `i < j`; both
    /// directions use the same rate.
    ///
    /// # Panics
    ///
    /// Panics if `links` is empty, any rate is non-positive, or a peer
    /// link references an out-of-range or self-paired accelerator.
    pub fn switched(
        host_nic: BytesPerSec,
        links: Vec<BytesPerSec>,
        peers: Vec<(usize, usize, BytesPerSec)>,
    ) -> Self {
        assert!(!links.is_empty(), "a topology needs at least one accelerator link");
        assert!(host_nic.as_f64() > 0.0, "host NIC rate must be positive");
        for l in &links {
            assert!(l.as_f64() > 0.0, "link rates must be positive");
        }
        let n = links.len();
        let peers: Vec<(usize, usize, BytesPerSec)> = peers
            .into_iter()
            .map(|(a, b, r)| {
                assert!(a < n && b < n, "peer link ({a},{b}) out of range for {n} accelerators");
                assert!(a != b, "peer link endpoints must differ");
                assert!(r.as_f64() > 0.0, "peer rates must be positive");
                (a.min(b), a.max(b), r)
            })
            .collect();

        let nodes = n + 1;
        let mut route = vec![host_nic; nodes * nodes];
        let mut via_host = vec![true; nodes * nodes];
        let min_bw = |a: BytesPerSec, b: BytesPerSec| if b < a { b } else { a };
        for i in 0..nodes {
            for j in 0..nodes {
                let idx = i * nodes + j;
                let (bw, via) = match (i, j) {
                    (0, 0) => (host_nic, true),
                    (0, a) | (a, 0) => (min_bw(host_nic, links[a - 1]), true),
                    (a, b) => {
                        let (lo, hi) = (a.min(b) - 1, a.max(b) - 1);
                        match peers.iter().find(|(pa, pb, _)| (*pa, *pb) == (lo, hi)) {
                            Some((_, _, r)) => (*r, false),
                            // Relay through the host: up `a`'s link,
                            // across the NIC, down `b`'s link.
                            None => {
                                (min_bw(min_bw(links[a - 1], host_nic), links[b - 1]), true)
                            }
                        }
                    }
                };
                route[idx] = bw;
                via_host[idx] = via;
            }
        }
        let first = route[0];
        let uniform =
            route.iter().all(|r| r.as_f64() == first.as_f64()).then_some(first);
        Topology { host_nic, links, peers, route, via_host, uniform }
    }

    /// Number of accelerators this fabric connects.
    pub fn num_accs(&self) -> usize {
        self.links.len()
    }

    /// The host-side NIC rate.
    pub fn host_nic(&self) -> BytesPerSec {
        self.host_nic
    }

    /// The host↔accelerator link rate of one board.
    pub fn link(&self, acc: AccId) -> BytesPerSec {
        self.links[acc.index()]
    }

    /// Direct peer links `(i, j, rate)`, normalized `i < j`.
    pub fn peers(&self) -> &[(usize, usize, BytesPerSec)] {
        &self.peers
    }

    /// `Some(bw)` iff every route runs at the same rate bitwise — the
    /// scalar-model fast path (and the bit-identity guarantee).
    pub fn uniform_bw(&self) -> Option<BytesPerSec> {
        self.uniform
    }

    /// True when the fabric collapses to the paper's scalar model.
    pub fn is_uniform(&self) -> bool {
        self.uniform.is_some()
    }

    /// Effective bandwidth of the `src → dst` route: the minimum rate
    /// along the links it crosses (a direct peer link for switched
    /// pairs, the host relay otherwise).
    pub fn path_bw(&self, src: Endpoint, dst: Endpoint) -> BytesPerSec {
        let nodes = self.links.len() + 1;
        self.route[src.node() * nodes + dst.node()]
    }

    /// Dense row-major copy of the precomputed route table: entry
    /// `src * (num_accs + 1) + dst` is the effective `src → dst` rate,
    /// with node 0 the host and node `i + 1` accelerator `i` (the
    /// [`Endpoint`] numbering). Data-oriented consumers (the SoA
    /// evaluator kernel) index this directly instead of calling
    /// [`Topology::path_bw`] per edge; the values are the same
    /// `BytesPerSec` objects bitwise, so the two paths cannot diverge.
    pub fn route_rate_matrix(&self) -> Vec<BytesPerSec> {
        self.route.clone()
    }

    /// Whether the `src → dst` route is relayed through the host NIC
    /// (and therefore contends for it).
    pub fn crosses_host(&self, src: Endpoint, dst: Endpoint) -> bool {
        let nodes = self.links.len() + 1;
        self.via_host[src.node() * nodes + dst.node()]
    }

    /// Time to stream per-accelerator byte amounts from the host,
    /// charged at each board's host-path rate. On a uniform fabric the
    /// amounts collapse to one exact byte sum over the single rate —
    /// bit-identical to the scalar model's one-division charge (the
    /// multi-tenant serving ledger relies on this).
    pub fn host_stream_time<I>(&self, per_acc: I) -> Seconds
    where
        I: IntoIterator<Item = (AccId, Bytes)>,
    {
        match self.uniform {
            Some(bw) => {
                let total: Bytes = per_acc.into_iter().map(|(_, b)| b).sum();
                bw.transfer_time(total)
            }
            None => per_acc
                .into_iter()
                .map(|(a, b)| self.path_bw(Endpoint::Host, Endpoint::Acc(a)).transfer_time(b))
                .sum(),
        }
    }

    /// The single OFM upload of `id` under `(mapping, locality)`: its
    /// effective rate — the slowest route among the remote consumers,
    /// the host route for model outputs — and whether it crosses the
    /// host NIC (true if *any* chosen route relays through the host).
    /// `None` when every consumer is fused (no upload happens). The
    /// one owner of the multi-consumer OFM rule: the evaluator, the
    /// event simulator, the link gantt and the contention bound all
    /// route through it, so they can never drift apart.
    pub fn ofm_route(
        &self,
        model: &ModelGraph,
        mapping: &Mapping,
        locality: &LocalityState,
        id: LayerId,
    ) -> Option<(BytesPerSec, bool)> {
        let here = Endpoint::Acc(mapping.acc_of(id));
        let mut has_succ = false;
        let mut route: Option<(BytesPerSec, bool)> = None;
        for s in model.successors(id) {
            has_succ = true;
            if locality.edge_is_local(model, mapping, id, s) {
                continue;
            }
            let dst = match mapping.get(s) {
                Some(sa) => Endpoint::Acc(sa),
                None => Endpoint::Host,
            };
            let r = self.path_bw(here, dst);
            let via = self.crosses_host(here, dst);
            route = Some(match route {
                Some((cur, cur_via)) => {
                    (if cur < r { cur } else { r }, cur_via || via)
                }
                None => (r, via),
            });
        }
        if !has_succ {
            // Model output: the result always lands at the host.
            route = Some((self.path_bw(here, Endpoint::Host), true));
        }
        route
    }

    /// The degraded view of this fabric under a [`FaultState`] — the
    /// fault model's entry point into the route table. The host NIC is
    /// divided by the host slowdown factor (re-pricing every via-host
    /// route at once), each board's host link is divided by its own
    /// slowdown factor, peer links incident to a down board are severed
    /// (their traffic falls back to the host relay), and the
    /// `(src, dst)` route table is rebuilt from scratch against the
    /// degraded rates — cheap (O(n²) over a handful of boards), so
    /// serve-time repair can afford one per fault transition. Down
    /// boards keep their (rate-unchanged) host links: liveness is a
    /// placement constraint, not a routing one — data the host already
    /// relayed stays reachable, the repair path just never maps a layer
    /// onto a dead board. Likewise a *down* host leaves every rate
    /// untouched: host liveness is enforced by the event simulator and
    /// the serve loop (stalled via-host phases, frozen
    /// admission/eviction), not by zeroed bandwidths, so analytic
    /// pricing on the degraded fabric stays finite.
    ///
    /// A healthy state returns a bitwise-identical clone, so the
    /// no-fault path cannot drift from the historical fabric.
    pub fn degrade(&self, state: &FaultState) -> Topology {
        assert_eq!(
            state.num_accs(),
            self.num_accs(),
            "fault state must describe every board of the fabric"
        );
        if state.is_healthy() {
            return self.clone();
        }
        let host_nic = BytesPerSec::new(self.host_nic.as_f64() / state.host_factor());
        let links = self
            .links
            .iter()
            .enumerate()
            .map(|(i, l)| BytesPerSec::new(l.as_f64() / state.link_factor(AccId::new(i))))
            .collect();
        let peers = self
            .peers
            .iter()
            .copied()
            .filter(|(a, b, _)| {
                state.acc_is_up(AccId::new(*a)) && state.acc_is_up(AccId::new(*b))
            })
            .collect();
        Topology::switched(host_nic, links, peers)
    }

    /// Parses a topology spec string against a base rate (usually the
    /// bandwidth class) and accelerator count. Accepted forms:
    ///
    /// * `uniform` — every link at `base` (the scalar model);
    /// * `skewed[:FACTOR]` — odd-indexed boards' links slowed to
    ///   `base / FACTOR` (default 4), host NIC at `base`;
    /// * `switched[:MULT]` — uniform star plus direct peer links
    ///   between adjacent board pairs `(0,1), (2,3), …` at
    ///   `base × MULT` (default 4) — a partitioned switch;
    /// * `star:host=G;links=g0,g1,…` — explicit rates in GB/s (a links
    ///   list shorter than the system repeats cyclically);
    /// * `switched:host=G;links=…;peers=i-j@G,…` — explicit switched
    ///   fabric.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message for malformed specs.
    pub fn parse(spec: &str, base: BytesPerSec, n_accs: usize) -> Result<Topology, String> {
        if n_accs == 0 {
            // Without this guard every preset would panic inside the
            // `switched` constructor instead of reporting the error.
            return Err("a topology needs at least one accelerator".into());
        }
        let gbps = |s: &str| -> Result<BytesPerSec, String> {
            let v: f64 =
                s.trim().parse().map_err(|_| format!("bad rate `{s}` (GB/s expected)"))?;
            if !v.is_finite() || v <= 0.0 {
                return Err(format!("rate `{s}` must be positive and finite"));
            }
            Ok(BytesPerSec::new(v * 1e9))
        };
        let (head, rest) = match spec.split_once(':') {
            Some((h, r)) => (h, Some(r)),
            None => (spec, None),
        };
        match head {
            "uniform" => {
                if rest.is_some() {
                    return Err("`uniform` takes no parameters".into());
                }
                Ok(Topology::uniform_star(base, n_accs))
            }
            "skewed" => {
                let factor: f64 = match rest {
                    None => 4.0,
                    Some(r) => r
                        .parse()
                        .map_err(|_| format!("bad skew factor `{r}` (number expected)"))?,
                };
                if !factor.is_finite() || factor <= 1.0 {
                    return Err("skew factor must be finite and exceed 1".into());
                }
                let slow = BytesPerSec::new(base.as_f64() / factor);
                let links = (0..n_accs)
                    .map(|i| if i % 2 == 1 { slow } else { base })
                    .collect();
                Ok(Topology::star(base, links))
            }
            "switched" if rest.is_none_or(|r| r.parse::<f64>().is_ok()) => {
                let mult: f64 = rest.map(|r| r.parse().expect("checked")).unwrap_or(4.0);
                if !mult.is_finite() || mult < 1.0 {
                    return Err("peer multiplier must be finite and at least 1".into());
                }
                let fast = BytesPerSec::new(base.as_f64() * mult);
                let peers = (0..n_accs / 2).map(|k| (2 * k, 2 * k + 1, fast)).collect();
                Ok(Topology::switched(base, vec![base; n_accs], peers))
            }
            "star" | "switched" => {
                let rest = rest.ok_or("explicit specs need `host=…;links=…`")?;
                let mut host = base;
                let mut links: Vec<BytesPerSec> = vec![base; n_accs];
                let mut peers = Vec::new();
                for field in rest.split(';').filter(|f| !f.is_empty()) {
                    let (key, val) = field
                        .split_once('=')
                        .ok_or_else(|| format!("field `{field}` is not key=value"))?;
                    match key {
                        "host" => host = gbps(val)?,
                        "links" => {
                            let rates: Vec<BytesPerSec> = val
                                .split(',')
                                .map(gbps)
                                .collect::<Result<_, _>>()?;
                            if rates.is_empty() {
                                return Err("links list must not be empty".into());
                            }
                            links = (0..n_accs).map(|i| rates[i % rates.len()]).collect();
                        }
                        "peers" => {
                            for p in val.split(',').filter(|p| !p.is_empty()) {
                                let (pair, rate) = p
                                    .split_once('@')
                                    .ok_or_else(|| format!("peer `{p}` is not i-j@rate"))?;
                                let (a, b) = pair
                                    .split_once('-')
                                    .ok_or_else(|| format!("peer `{p}` is not i-j@rate"))?;
                                let a: usize =
                                    a.parse().map_err(|_| format!("bad peer index `{a}`"))?;
                                let b: usize =
                                    b.parse().map_err(|_| format!("bad peer index `{b}`"))?;
                                if a >= n_accs || b >= n_accs || a == b {
                                    return Err(format!(
                                        "peer {a}-{b} invalid for {n_accs} accelerators"
                                    ));
                                }
                                peers.push((a, b, gbps(rate)?));
                            }
                        }
                        other => return Err(format!("unknown field `{other}`")),
                    }
                }
                if head == "star" && !peers.is_empty() {
                    return Err("`star` takes no peers (use `switched`)".into());
                }
                Ok(Topology::switched(host, links, peers))
            }
            other => Err(format!(
                "unknown topology `{other}` (uniform | skewed[:f] | switched[:m] | \
                 star:host=G;links=… | switched:host=G;links=…;peers=i-j@G,…)"
            )),
        }
    }

    /// Human-readable link + route table (the `inspect` CLI renders
    /// this): per-board host links, direct peer links, and for
    /// non-uniform fabrics the full effective-bandwidth route matrix.
    pub fn describe(&self) -> String {
        let gb = |r: BytesPerSec| format!("{:.3}", r.as_f64() / 1e9);
        let mut out = String::new();
        if let Some(bw) = self.uniform {
            let _ = writeln!(
                out,
                "topology: uniform star — every link {} GB/s (scalar-equivalent)",
                gb(bw)
            );
            return out;
        }
        let kind = if self.peers.is_empty() { "star" } else { "switched" };
        let _ = writeln!(out, "topology: {kind} — host NIC {} GB/s", gb(self.host_nic));
        for (i, l) in self.links.iter().enumerate() {
            let _ = writeln!(out, "  host <-> A{i:<2} {:>8} GB/s", gb(*l));
        }
        for (a, b, r) in &self.peers {
            let _ = writeln!(out, "  A{a} <-> A{b} direct {:>8} GB/s", gb(*r));
        }
        let _ = writeln!(out, "route table (effective GB/s, * = bypasses host):");
        let n = self.links.len();
        let mut header = String::from("        host");
        for j in 0..n {
            let _ = write!(header, " {:>7}", format!("A{j}"));
        }
        let _ = writeln!(out, "{header}");
        for i in 0..=n {
            let name = if i == 0 { "host".to_owned() } else { format!("A{}", i - 1) };
            let _ = write!(out, "  {name:<5}");
            for j in 0..=n {
                let src = if i == 0 { Endpoint::Host } else { Endpoint::Acc(AccId::new(i - 1)) };
                let dst = if j == 0 { Endpoint::Host } else { Endpoint::Acc(AccId::new(j - 1)) };
                let mark = if self.crosses_host(src, dst) { ' ' } else { '*' };
                let _ = write!(out, " {:>6}{mark}", gb(self.path_bw(src, dst)));
            }
            out.push('\n');
        }
        out
    }
}

/// Source endpoint of an unfused `pred → consumer` edge: the host for
/// model inputs (raw modality data lives there) and for
/// not-yet-placed producers (partial frontier evaluation), the
/// producer's accelerator otherwise. Shared by every transfer-routing
/// consumer so the rule has one owner.
pub fn edge_src(model: &ModelGraph, mapping: &Mapping, pred: LayerId) -> Endpoint {
    if matches!(model.layer(pred).op(), LayerOp::Input { .. }) {
        return Endpoint::Host;
    }
    match mapping.get(pred) {
        Some(pa) => Endpoint::Acc(pa),
        None => Endpoint::Host,
    }
}

/// Strips a `--topology <spec>` flag (and its value) out of a raw
/// argv-style list, shared by the CLI front ends.
///
/// # Errors
///
/// Errors when the flag is present without a value.
pub fn take_topology_flag(args: &mut Vec<String>) -> Result<Option<String>, String> {
    let Some(pos) = args.iter().position(|a| a == "--topology") else {
        return Ok(None);
    };
    if pos + 1 >= args.len() {
        return Err("--topology needs a value".into());
    }
    let spec = args.remove(pos + 1);
    args.remove(pos);
    Ok(Some(spec))
}

/// Total bytes the host NIC relays for one inference of `(mapping,
/// locality)` at the given serving batch size: unpinned weight streams
/// (once per batch), unfused IFM downloads and remote OFM uploads whose
/// routes cross the host (each per request). Mirrors the simulator's
/// Ethernet phases exactly, so the bound below is sound against it.
pub fn host_traffic_bytes(
    model: &ModelGraph,
    topology: &Topology,
    mapping: &Mapping,
    locality: &LocalityState,
    batch: u32,
) -> f64 {
    let b = batch as f64;
    let mut total = 0.0f64;
    for (id, layer) in model.layers() {
        let acc = mapping.acc_of(id);
        let here = Endpoint::Acc(acc);
        if !locality.is_pinned(id) && topology.crosses_host(Endpoint::Host, here) {
            total += layer.weight_bytes(DataType::F32).as_f64();
        }
        let is_input = matches!(layer.op(), LayerOp::Input { .. });
        for pred in model.predecessors(id) {
            if locality.edge_is_local(model, mapping, pred, id) {
                continue;
            }
            if topology.crosses_host(edge_src(model, mapping, pred), here) {
                total += model.edge_bytes(pred, id).expect("edge exists").as_f64() * b;
            }
        }
        // One upload serves every remote consumer (and the final
        // output, which always lands at the host): it is counted once
        // iff its route crosses the host NIC.
        if !is_input {
            if let Some((_, via_host)) = topology.ofm_route(model, mapping, locality, id) {
                if via_host {
                    total += layer.ofm_bytes(DataType::F32).as_f64() * b;
                }
            }
        }
    }
    total
}

/// Analytical lower bound on the congested makespan: the host NIC of
/// capacity `nic` must relay [`host_traffic_bytes`] in serial, so no
/// schedule — simulated or real — finishes before `bytes / nic` (nor
/// before the contention-free analytical makespan, which the caller
/// maxes in). The `sim_crosscheck` suite asserts the discrete-event
/// simulator respects this bound and meets it when links are dedicated.
pub fn host_contention_bound(
    model: &ModelGraph,
    topology: &Topology,
    mapping: &Mapping,
    locality: &LocalityState,
    nic: BytesPerSec,
    batch: u32,
) -> Seconds {
    let bytes = host_traffic_bytes(model, topology, mapping, locality, batch);
    Seconds::new(bytes / nic.as_f64())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bw(g: f64) -> BytesPerSec {
        BytesPerSec::new(g * 1e9)
    }

    #[test]
    fn uniform_star_collapses_to_scalar_bitwise() {
        let t = Topology::uniform_star(bw(0.125), 4);
        assert!(t.is_uniform());
        assert_eq!(t.uniform_bw().unwrap().as_f64(), 0.125e9);
        for i in 0..4 {
            for j in 0..4 {
                let p = t.path_bw(
                    Endpoint::Acc(AccId::new(i)),
                    Endpoint::Acc(AccId::new(j)),
                );
                assert_eq!(p.as_f64(), 0.125e9);
            }
            let h = t.path_bw(Endpoint::Host, Endpoint::Acc(AccId::new(i)));
            assert_eq!(h.as_f64(), 0.125e9);
        }
    }

    #[test]
    fn star_routes_bottleneck_on_slowest_crossed_link() {
        let t = Topology::star(bw(1.0), vec![bw(1.0), bw(0.25), bw(0.5)]);
        assert!(!t.is_uniform());
        let a = |i| Endpoint::Acc(AccId::new(i));
        assert_eq!(t.path_bw(Endpoint::Host, a(1)).as_f64(), 0.25e9);
        assert_eq!(t.path_bw(a(0), a(1)).as_f64(), 0.25e9);
        assert_eq!(t.path_bw(a(0), a(2)).as_f64(), 0.5e9);
        assert!(t.crosses_host(a(0), a(2)));
        // Host NIC slower than both endpoint links bottlenecks the relay.
        let t2 = Topology::star(bw(0.1), vec![bw(1.0), bw(1.0)]);
        assert_eq!(t2.path_bw(a(0), a(1)).as_f64(), 0.1e9);
    }

    #[test]
    fn switched_peers_bypass_the_host() {
        let t = Topology::switched(
            bw(0.125),
            vec![bw(0.125); 4],
            vec![(0, 1, bw(1.0))],
        );
        let a = |i| Endpoint::Acc(AccId::new(i));
        assert_eq!(t.path_bw(a(0), a(1)).as_f64(), 1.0e9);
        assert_eq!(t.path_bw(a(1), a(0)).as_f64(), 1.0e9);
        assert!(!t.crosses_host(a(0), a(1)));
        assert!(t.crosses_host(a(0), a(2)));
        assert!(!t.is_uniform());
    }

    #[test]
    fn host_stream_time_is_grouped_exactly_when_uniform() {
        let t = Topology::uniform_star(bw(0.125), 3);
        let parts = [
            (AccId::new(0), Bytes::new(1_000_003)),
            (AccId::new(2), Bytes::new(7)),
        ];
        let grouped = t.host_stream_time(parts);
        let scalar = bw(0.125).transfer_time(Bytes::new(1_000_010));
        assert_eq!(grouped.as_f64(), scalar.as_f64(), "bitwise");

        let skew = Topology::star(bw(0.125), vec![bw(0.125), bw(0.125), bw(0.025)]);
        let per_link = skew.host_stream_time(parts);
        assert!(per_link > grouped, "slow link must cost more");
    }

    #[test]
    fn parse_presets_and_explicit_forms() {
        let base = bw(0.125);
        assert!(Topology::parse("uniform", base, 4).unwrap().is_uniform());
        let skew = Topology::parse("skewed", base, 4).unwrap();
        assert_eq!(skew.link(AccId::new(0)).as_f64(), 0.125e9);
        assert_eq!(skew.link(AccId::new(1)).as_f64(), 0.125e9 / 4.0);
        let skew8 = Topology::parse("skewed:8", base, 4).unwrap();
        assert_eq!(skew8.link(AccId::new(1)).as_f64(), 0.125e9 / 8.0);
        let sw = Topology::parse("switched", base, 4).unwrap();
        assert_eq!(sw.peers().len(), 2);
        assert_eq!(sw.peers()[0], (0, 1, bw(0.5)));
        let ex = Topology::parse("star:host=1;links=0.5,0.25", base, 4).unwrap();
        assert_eq!(ex.host_nic().as_f64(), 1e9);
        assert_eq!(ex.link(AccId::new(2)).as_f64(), 0.5e9, "cyclic repeat");
        let exs =
            Topology::parse("switched:links=0.125;peers=0-3@2", base, 4).unwrap();
        assert_eq!(exs.peers()[0], (0, 3, bw(2.0)));
        assert!(Topology::parse("nope", base, 4).is_err());
        assert!(Topology::parse("skewed:0.5", base, 4).is_err());
        // A malformed preset parameter names the parameter, not the
        // (correctly spelled) preset.
        let err = Topology::parse("skewed:4x", base, 4).unwrap_err();
        assert!(err.contains("skew factor"), "got: {err}");
        // Non-finite parameters error instead of panicking downstream.
        assert!(Topology::parse("skewed:inf", base, 4).is_err());
        assert!(Topology::parse("skewed:nan", base, 4).is_err());
        assert!(Topology::parse("switched:nan", base, 4).is_err());
        assert!(Topology::parse("star:host=inf", base, 4).is_err());
        assert!(Topology::parse("star:host=1;peers=0-1@2", base, 4).is_err());
        assert!(Topology::parse("switched:peers=0-9@2", base, 4).is_err());
    }

    #[test]
    fn parse_rejects_each_malformed_spec_with_a_descriptive_error() {
        // One case per rejection path: every malformed spec must come
        // back as an `Err` naming the problem, never as a panic in the
        // constructors downstream.
        let base = bw(0.125);
        let cases: &[(&str, &str)] = &[
            ("skewed:0", "exceed 1"),
            ("skewed:-3", "exceed 1"),
            ("skewed:1", "exceed 1"),
            ("skewed:4x", "skew factor"),
            ("switched:0.5", "at least 1"),
            ("switched:-2", "at least 1"),
            ("star", "host=…;links=…"),
            ("star:host=0", "must be positive"),
            ("star:host=-1", "must be positive"),
            ("star:links=0.5,-2", "must be positive"),
            ("star:links=0.5,nan", "must be positive"),
            ("star:links=", "bad rate"),
            ("star:rate=1", "unknown field"),
            ("star:host", "not key=value"),
            ("star:host=1;peers=0-1@2", "takes no peers"),
            ("switched:peers=0-12@2", "invalid for 12 accelerators"),
            ("switched:peers=3-3@2", "invalid for 12 accelerators"),
            ("switched:peers=a-1@2", "bad peer index"),
            ("switched:peers=0-1", "not i-j@rate"),
            ("switched:peers=0-1@0", "must be positive"),
            ("mesh", "unknown topology"),
        ];
        for (spec, needle) in cases {
            let err = Topology::parse(spec, base, 12).unwrap_err();
            assert!(err.contains(needle), "`{spec}`: `{err}` lacks `{needle}`");
        }
        assert!(
            Topology::parse("uniform", base, 0).unwrap_err().contains("at least one"),
            "an empty system must be rejected, not panic"
        );
    }

    #[test]
    fn degrade_rebuilds_routes_and_severs_dead_peers() {
        use crate::fault::FaultState;
        let t = Topology::switched(
            bw(0.125),
            vec![bw(0.125); 4],
            vec![(0, 1, bw(1.0)), (2, 3, bw(1.0))],
        );
        let a = |i| Endpoint::Acc(AccId::new(i));

        // Healthy state: bitwise-identical clone.
        assert_eq!(t.degrade(&FaultState::healthy(4)), t);

        // Link degradation re-prices every route crossing the link.
        let mut slow = FaultState::healthy(4);
        slow.set_link_factor(AccId::new(2), 4.0);
        let d = t.degrade(&slow);
        assert_eq!(d.link(AccId::new(2)).as_f64(), 0.125e9 / 4.0);
        assert_eq!(d.path_bw(Endpoint::Host, a(2)).as_f64(), 0.125e9 / 4.0);
        assert_eq!(d.path_bw(a(0), a(2)).as_f64(), 0.125e9 / 4.0, "relay bottleneck");
        assert_eq!(d.path_bw(a(2), a(3)).as_f64(), 1.0e9, "peer links unaffected");
        assert_eq!(d.path_bw(Endpoint::Host, a(0)).as_f64(), 0.125e9, "others untouched");

        // A dead board loses its peer link; the surviving partner's
        // traffic falls back to the host relay.
        let mut dead = FaultState::healthy(4);
        dead.set_down(AccId::new(1));
        let d = t.degrade(&dead);
        assert!(d.peers().len() == 1 && d.peers()[0].0 == 2, "0-1 severed, 2-3 kept");
        assert!(d.crosses_host(a(0), a(1)), "severed pair relays through the host");

        // A degraded host NIC re-prices every via-host route at once;
        // peer links and board link rates are untouched.
        let mut nic = FaultState::healthy(4);
        nic.set_host_factor(5.0);
        let d = t.degrade(&nic);
        assert_eq!(d.host_nic().as_f64(), 0.125e9 / 5.0);
        assert_eq!(d.link(AccId::new(0)).as_f64(), 0.125e9, "board links keep their rate");
        assert_eq!(d.path_bw(Endpoint::Host, a(0)).as_f64(), 0.125e9 / 5.0);
        assert_eq!(d.path_bw(a(0), a(2)).as_f64(), 0.125e9 / 5.0, "relay bottleneck");
        assert_eq!(d.path_bw(a(0), a(1)).as_f64(), 1.0e9, "peer route unaffected");

        // A *down* host leaves rates untouched (liveness is enforced by
        // the sim/serve layers, not by zeroed bandwidths).
        let mut down = FaultState::healthy(4);
        down.set_host_down();
        let d = t.degrade(&down);
        assert_eq!(d.host_nic().as_f64(), t.host_nic().as_f64());
        assert_eq!(d.path_bw(Endpoint::Host, a(0)).as_f64(), 0.125e9);
    }

    #[test]
    fn describe_lists_links_and_routes() {
        let t = Topology::parse("switched", bw(0.125), 4).unwrap();
        let d = t.describe();
        assert!(d.contains("switched"));
        assert!(d.contains("A0 <-> A1 direct"));
        assert!(d.contains("route table"));
        assert!(d.contains('*'), "direct routes marked");
        let u = Topology::uniform_star(bw(0.125), 4).describe();
        assert!(u.contains("scalar-equivalent"));
    }
}
