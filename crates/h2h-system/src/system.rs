//! The heterogeneous multi-FPGA system (`G_sys` scaffolding, paper §3).
//!
//! A system is a host node plus a set of plugged-in accelerators,
//! connected by an explicit interconnect fabric
//! ([`crate::topology::Topology`]). The default fabric is the paper's
//! uniform star — every board behind Ethernet at one `BW_acc` (the
//! paper sweeps five classes from 1 GbE to 10 GbE), with
//! accelerator↔accelerator data relayed through the host as in the
//! Brainwave-style deployment the paper targets [2]. Non-uniform
//! fabrics (per-link rates, direct accelerator↔accelerator peer links)
//! plug in via [`SystemSpec::with_topology`]; transfers are then
//! charged at each route's effective bandwidth rather than one global
//! scalar.

use std::fmt;

use serde::{Deserialize, Serialize};

use h2h_accel::catalog::standard_accelerators;
use h2h_accel::model::AccelRef;
use h2h_model::units::BytesPerSec;

use crate::fault::FaultState;
use crate::topology::Topology;

/// Index of an accelerator within a [`SystemSpec`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct AccId(usize);

impl AccId {
    /// Low-level constructor; prefer [`SystemSpec::acc_ids`].
    pub const fn new(index: usize) -> Self {
        AccId(index)
    }

    /// Dense index, valid as a `Vec` slot.
    pub const fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for AccId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "A{}", self.0)
    }
}

/// The paper's five Ethernet bandwidth classes (§5.2 / Table 4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BandwidthClass {
    /// 0.125 GB/s (1 GbE) — "Low-".
    LowMinus,
    /// 0.15 GB/s — "Low".
    Low,
    /// 0.25 GB/s (2 GbE) — "Mid-".
    MidMinus,
    /// 0.5 GB/s — "Mid".
    Mid,
    /// 1.25 GB/s (10 GbE) — "High".
    High,
}

impl BandwidthClass {
    /// All five classes, in the paper's order.
    pub const ALL: [BandwidthClass; 5] = [
        BandwidthClass::LowMinus,
        BandwidthClass::Low,
        BandwidthClass::MidMinus,
        BandwidthClass::Mid,
        BandwidthClass::High,
    ];

    /// The accelerator-to-host bandwidth of this class.
    pub fn bandwidth(self) -> BytesPerSec {
        BytesPerSec::from_gbps(match self {
            BandwidthClass::LowMinus => 0.125,
            BandwidthClass::Low => 0.15,
            BandwidthClass::MidMinus => 0.25,
            BandwidthClass::Mid => 0.5,
            BandwidthClass::High => 1.25,
        })
    }

    /// The paper's label for this class.
    pub fn label(self) -> &'static str {
        match self {
            BandwidthClass::LowMinus => "Low-",
            BandwidthClass::Low => "Low",
            BandwidthClass::MidMinus => "Mid-",
            BandwidthClass::Mid => "Mid",
            BandwidthClass::High => "High",
        }
    }

    /// Resolves a class from its paper label, case-insensitively
    /// (`"Low-"`, `"mid"`, …) — the one parser every bench/CLI front
    /// end shares.
    pub fn by_label(label: &str) -> Option<BandwidthClass> {
        BandwidthClass::ALL.into_iter().find(|b| b.label().eq_ignore_ascii_case(label))
    }
}

impl fmt::Display for BandwidthClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Energy constants of the interconnect and memory system.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SystemEnergyModel {
    /// Power drawn by an active Ethernet link + switch path, watts.
    /// Transfer energy = transfer time × this power.
    pub eth_link_power_w: f64,
    /// Local DRAM access energy, picojoules per byte.
    pub dram_pj_per_byte: f64,
}

impl Default for SystemEnergyModel {
    fn default() -> Self {
        // ~5 W for a NIC/switch path; ~20 pJ/B for DDR3/DDR4 access.
        SystemEnergyModel { eth_link_power_w: 5.0, dram_pj_per_byte: 20.0 }
    }
}

/// A heterogeneous multi-FPGA system: plugged-in accelerators + the
/// host-side Ethernet fabric.
///
/// # Examples
///
/// ```
/// use h2h_system::system::{BandwidthClass, SystemSpec};
///
/// let sys = SystemSpec::standard(BandwidthClass::LowMinus);
/// assert_eq!(sys.num_accs(), 12);
/// assert_eq!(sys.ethernet().as_f64(), 0.125e9);
/// ```
#[derive(Debug, Clone)]
pub struct SystemSpec {
    accs: Vec<AccelRef>,
    topology: Topology,
    energy: SystemEnergyModel,
    /// Per-board compute slowdown divisors (`None` = all boards at full
    /// speed — the healthy fast path). Set only by [`SystemSpec::degrade`]
    /// when a [`FaultState`] carries compute throttles; applied at
    /// cost-*read* time ([`crate::schedule::Evaluator::layer_cost`], the
    /// event sim's compute phases) so a healthy-system
    /// [`crate::schedule::CostCache`] stays valid on the degraded view.
    compute_slow: Option<Vec<f64>>,
}

impl SystemSpec {
    /// Builds a system from accelerator plug-ins and an Ethernet rate —
    /// a **uniform star** fabric, bit-identical to the paper's scalar
    /// `BW_acc` model. Use [`SystemSpec::with_topology`] for per-link
    /// rates or switched fabrics.
    ///
    /// # Panics
    ///
    /// Panics if `accs` is empty — a system needs at least one device.
    pub fn new(accs: Vec<AccelRef>, ethernet: BytesPerSec) -> Self {
        assert!(!accs.is_empty(), "a system needs at least one accelerator");
        let topology = Topology::uniform_star(ethernet, accs.len());
        SystemSpec { accs, topology, energy: SystemEnergyModel::default(), compute_slow: None }
    }

    /// The paper's evaluation system: the 12-accelerator catalog at the
    /// given bandwidth class.
    pub fn standard(bw: BandwidthClass) -> Self {
        SystemSpec::new(standard_accelerators(), bw.bandwidth())
    }

    /// [`SystemSpec::standard`] with an optional topology spec string
    /// (see [`Topology::parse`]; the class rate is the spec's base
    /// rate). `None` — and the explicit `"uniform"` — keep the scalar
    /// uniform star. The one front door every CLI/bench front end
    /// shares, so spec parsing and error text stay in one place.
    ///
    /// # Errors
    ///
    /// Returns [`Topology::parse`]'s message for malformed specs.
    pub fn standard_with_topology(
        bw: BandwidthClass,
        spec: Option<&str>,
    ) -> Result<Self, String> {
        let system = SystemSpec::standard(bw);
        match spec {
            None => Ok(system),
            Some(spec) => {
                let n = system.num_accs();
                let topo = Topology::parse(spec, bw.bandwidth(), n)?;
                Ok(system.with_topology(topo))
            }
        }
    }

    /// Replaces the interconnect fabric (per-link rates, peer links).
    ///
    /// # Panics
    ///
    /// Panics if the topology's link count does not match the number of
    /// accelerators.
    pub fn with_topology(mut self, topology: Topology) -> Self {
        assert_eq!(
            topology.num_accs(),
            self.accs.len(),
            "topology link count must match the accelerator count"
        );
        self.topology = topology;
        self
    }

    /// Replaces the interconnect/memory energy constants.
    pub fn with_energy_model(mut self, energy: SystemEnergyModel) -> Self {
        self.energy = energy;
        self
    }

    /// Number of accelerators.
    pub fn num_accs(&self) -> usize {
        self.accs.len()
    }

    /// Iterate over accelerator ids.
    pub fn acc_ids(&self) -> impl Iterator<Item = AccId> {
        (0..self.accs.len()).map(AccId)
    }

    /// Borrow an accelerator by id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range for this system.
    pub fn acc(&self, id: AccId) -> &AccelRef {
        &self.accs[id.0]
    }

    /// All accelerators, in id order.
    pub fn accs(&self) -> &[AccelRef] {
        &self.accs
    }

    /// The interconnect fabric: per-link rates and the `(src, dst)`
    /// route table every transfer is charged against.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// The scalar `BW_acc` of a uniform-star fabric; on a non-uniform
    /// topology this degrades to the host NIC rate — cost-model code
    /// must query [`SystemSpec::topology`] per route instead (display
    /// and back-compat call sites only).
    pub fn ethernet(&self) -> BytesPerSec {
        self.topology.uniform_bw().unwrap_or_else(|| self.topology.host_nic())
    }

    /// Interconnect/memory energy constants.
    pub fn energy_model(&self) -> &SystemEnergyModel {
        &self.energy
    }

    /// The degraded view of this system under a [`FaultState`]: the
    /// same boards behind [`Topology::degrade`]'s re-routed fabric,
    /// carrying the state's per-board compute slowdown divisors
    /// ([`SystemSpec::compute_factor`]). Board liveness stays in the
    /// state (placement code queries [`FaultState::acc_is_up`]); cached
    /// per-layer costs are bandwidth-independent *and* stored at
    /// healthy speed (compute throttles are applied at cost-read time),
    /// so a [`crate::schedule::CostCache`] built on the healthy system
    /// remains valid here ([`crate::schedule::Evaluator::from_cache`])
    /// — that is what makes serve-time repair cheap. A healthy state
    /// returns a bitwise-identical system.
    pub fn degrade(&self, state: &FaultState) -> SystemSpec {
        let compute_slow = state.any_compute_degraded().then(|| {
            self.acc_ids().map(|a| state.compute_factor(a)).collect()
        });
        SystemSpec {
            accs: self.accs.clone(),
            topology: self.topology.degrade(state),
            energy: self.energy,
            compute_slow,
        }
    }

    /// The compute slowdown divisor of one board on this (possibly
    /// degraded) view — `1.0` everywhere except on a
    /// [`SystemSpec::degrade`] result whose state throttled the board.
    /// Cost readers ([`crate::schedule::Evaluator::layer_cost`], the
    /// event sim) multiply cached compute times by this at read time.
    pub fn compute_factor(&self, id: AccId) -> f64 {
        self.compute_slow.as_ref().map_or(1.0, |s| s[id.0])
    }

    /// True when any board on this view is compute-throttled.
    pub fn any_compute_degraded(&self) -> bool {
        self.compute_slow.is_some()
    }

    /// The sub-system of boards still alive under a [`FaultState`],
    /// with the degraded fabric restricted to them — what a
    /// from-scratch remap on the degraded cluster searches over.
    /// Returns the sub-system plus the live boards' original ids,
    /// index-aligned with the sub-system's accelerators (translate a
    /// sub-mapping back with `live_ids[sub_acc.index()]`).
    ///
    /// # Panics
    ///
    /// Panics if every board is down — there is nothing left to map on.
    pub fn live_subsystem(&self, state: &FaultState) -> (SystemSpec, Vec<AccId>) {
        let degraded = self.topology.degrade(state);
        let live_ids: Vec<AccId> =
            self.acc_ids().filter(|a| state.acc_is_up(*a)).collect();
        assert!(!live_ids.is_empty(), "a live subsystem needs at least one surviving board");
        let sub_index: Vec<Option<usize>> = {
            let mut map = vec![None; self.num_accs()];
            for (sub, id) in live_ids.iter().enumerate() {
                map[id.index()] = Some(sub);
            }
            map
        };
        let links = live_ids.iter().map(|a| degraded.link(*a)).collect();
        let peers = degraded
            .peers()
            .iter()
            .filter_map(|(a, b, r)| Some((sub_index[*a]?, sub_index[*b]?, *r)))
            .collect();
        let topology = Topology::switched(degraded.host_nic(), links, peers);
        let accs = live_ids.iter().map(|a| self.accs[a.index()].clone()).collect();
        let compute_slow = state.any_compute_degraded().then(|| {
            live_ids.iter().map(|a| state.compute_factor(*a)).collect()
        });
        let sub = SystemSpec { accs, topology, energy: self.energy, compute_slow };
        (sub, live_ids)
    }

    /// Finds an accelerator id by catalog short-id (e.g. `"XW"`).
    pub fn find_by_meta_id(&self, meta_id: &str) -> Option<AccId> {
        self.accs
            .iter()
            .position(|a| a.meta().id == meta_id)
            .map(AccId)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bandwidth_classes_match_paper() {
        let gbps: Vec<f64> = BandwidthClass::ALL
            .iter()
            .map(|c| c.bandwidth().as_f64() / 1e9)
            .collect();
        assert_eq!(gbps, vec![0.125, 0.15, 0.25, 0.5, 1.25]);
        assert_eq!(BandwidthClass::LowMinus.label(), "Low-");
    }

    #[test]
    fn standard_system_has_twelve_accs() {
        let sys = SystemSpec::standard(BandwidthClass::Mid);
        assert_eq!(sys.num_accs(), 12);
        assert_eq!(sys.acc_ids().count(), 12);
        assert_eq!(sys.acc(AccId::new(0)).meta().id, "JZ");
    }

    #[test]
    fn find_by_meta_id_roundtrips() {
        let sys = SystemSpec::standard(BandwidthClass::Mid);
        let xw = sys.find_by_meta_id("XW").unwrap();
        assert_eq!(sys.acc(xw).meta().id, "XW");
        assert!(sys.find_by_meta_id("??").is_none());
    }

    #[test]
    #[should_panic(expected = "at least one accelerator")]
    fn empty_system_rejected() {
        let _ = SystemSpec::new(Vec::new(), BytesPerSec::from_gbps(1.0));
    }

    #[test]
    fn default_energy_model_is_sane() {
        let e = SystemEnergyModel::default();
        assert!(e.eth_link_power_w > 0.0);
        assert!(e.dram_pj_per_byte > 0.0);
    }
}
