//! Mapping inspection reports: per-accelerator utilization and the
//! cross-accelerator transfer matrix — the quantities a deployment
//! engineer checks before trusting a mapping.

use std::collections::BTreeMap;
use std::fmt;

use h2h_model::layer::LayerOp;
use h2h_model::tensor::DataType;
use h2h_model::units::{Bytes, Seconds};
use h2h_system::locality::LocalityState;
use h2h_system::mapping::Mapping;
use h2h_system::schedule::{Evaluator, Schedule};

use crate::delta::SearchStats;

/// Per-accelerator summary row.
#[derive(Debug, Clone, PartialEq)]
pub struct AccRow {
    /// Catalog id (e.g. `"XW"`).
    pub acc: String,
    /// Layers mapped here.
    pub layers: usize,
    /// Weight bytes resident (pinned) here.
    pub pinned: Bytes,
    /// Total weight bytes of layers mapped here.
    pub weights: Bytes,
    /// Busy time.
    pub busy: Seconds,
}

/// A full mapping report.
#[derive(Debug, Clone, PartialEq)]
pub struct MappingReport {
    /// One row per *used* accelerator, in id order.
    pub rows: Vec<AccRow>,
    /// Ethernet bytes exchanged between accelerator pairs
    /// (`(producer, consumer) → bytes`), host-mediated.
    pub transfers: BTreeMap<(String, String), Bytes>,
    /// Bytes arriving from the host (model inputs + unfused weights).
    pub host_ingress: Bytes,
    /// End-to-end latency.
    pub makespan: Seconds,
}

/// Builds the report for a mapped, scheduled model.
pub fn mapping_report(
    ev: &Evaluator<'_>,
    mapping: &Mapping,
    locality: &LocalityState,
    schedule: &Schedule,
) -> MappingReport {
    let model = ev.model();
    let system = ev.system();

    let mut rows = Vec::new();
    for acc in system.acc_ids() {
        let ids: Vec<_> = model
            .layer_ids()
            .filter(|id| mapping.get(*id) == Some(acc))
            .collect();
        if ids.is_empty() {
            continue;
        }
        let weights: Bytes = ids
            .iter()
            .map(|id| model.layer(*id).weight_bytes(DataType::F32))
            .sum();
        let pinned: Bytes = ids
            .iter()
            .filter(|id| locality.is_pinned(**id))
            .map(|id| model.layer(*id).weight_bytes(DataType::F32))
            .sum();
        rows.push(AccRow {
            acc: system.acc(acc).meta().id.clone(),
            layers: ids.len(),
            pinned,
            weights,
            busy: schedule.per_acc_busy()[acc.index()],
        });
    }

    let mut transfers: BTreeMap<(String, String), Bytes> = BTreeMap::new();
    let mut host_ingress = Bytes::ZERO;
    for (from, to, e) in model.edges() {
        let pa = mapping.acc_of(from);
        let ca = mapping.acc_of(to);
        let from_input = matches!(model.layer(from).op(), LayerOp::Input { .. });
        if from_input {
            host_ingress += e.bytes();
            continue;
        }
        let fused = locality.is_fused(from, to) && pa == ca;
        if !fused && pa != ca {
            let key = (
                system.acc(pa).meta().id.clone(),
                system.acc(ca).meta().id.clone(),
            );
            *transfers.entry(key).or_insert(Bytes::ZERO) += e.bytes();
        }
    }
    for (id, layer) in model.layers() {
        if layer.has_weights() && !locality.is_pinned(id) {
            host_ingress += layer.weight_bytes(DataType::F32);
        }
    }

    MappingReport { rows, transfers, host_ingress, makespan: schedule.makespan() }
}

/// Human-readable summary of one search run's [`SearchStats`]: the
/// evaluation mix (delta / prefix / full), the propagation locality,
/// and the risky-guard columns (how many guards the fusion replay
/// reached, how many were resolved by dominance pruning, how many
/// rejected toggles used the `O(cone)` fast revert).
pub fn search_stats_report(stats: &SearchStats) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "search stats — {} attempted / {} accepted moves over {} passes",
        stats.attempted_moves, stats.accepted_moves, stats.passes
    );
    let _ = writeln!(
        out,
        "  evals: {} delta ({} prefix-exact) + {} full ({:.1}x saved)",
        stats.delta_evals,
        stats.prefix_evals,
        stats.full_evals,
        stats.full_evals_saved_ratio()
    );
    let _ = writeln!(
        out,
        "  rebuilds: {} scoped / {} full",
        stats.scoped_rebuilds, stats.full_rebuilds
    );
    let _ = writeln!(
        out,
        "  propagation: {} rounds, mean cone {:.1}, max cone {}",
        stats.propagations,
        stats.mean_propagated(),
        stats.max_propagated
    );
    let _ = writeln!(
        out,
        "  risky guards: {} reached, {} skipped by dominance ({:.0}%), {} fast reverts",
        stats.guards_total,
        stats.guards_skipped,
        if stats.guards_total > 0 {
            100.0 * stats.guards_skipped as f64 / stats.guards_total as f64
        } else {
            0.0
        },
        stats.guard_reverts_fast
    );
    out
}

/// Human-readable summary of one multi-tenant serving window
/// ([`crate::serve::TenantRegistry::serve`]): the per-tenant SLO ledger
/// (attained vs target latency, violations, batching), the shared DRAM
/// budget headroom, and the slice-evaluator counters. Everything
/// rendered is *modeled* time, so the report is deterministic — the
/// golden-snapshot suite diffs it verbatim.
pub fn serve_report(outcome: &crate::serve::ServeOutcome) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "serve report — {} tenants, {} rounds, policy {}, drain {}",
        outcome.tenants.len(),
        outcome.counters.rounds,
        outcome.policy.label(),
        outcome.makespan
    );
    let _ = writeln!(
        out,
        "  {:<12} {:>5} {:>7} {:>5} {:>12} {:>12} {:>12} {:>12} {:>12} {:>12} {:>12} {:>5} \
         {:>5} {:>12} {:>5} {:>12}",
        "tenant", "req", "batches", "maxb", "ideal", "mean", "p50", "p95", "p99", "max", "slo",
        "viol", "shed", "amortized", "swaps", "reload"
    );
    for t in &outcome.tenants {
        let _ = writeln!(
            out,
            "  {:<12} {:>5} {:>7} {:>5} {:>12} {:>12} {:>12} {:>12} {:>12} {:>12} {:>12} {:>5} \
             {:>5} {:>12} {:>5} {:>12}",
            t.name,
            t.served,
            t.batches,
            t.max_batch,
            format!("{}", t.ideal),
            format!("{}", t.attained_mean()),
            format!("{}", t.latencies.p50()),
            format!("{}", t.latencies.p95()),
            format!("{}", t.latencies.p99()),
            format!("{}", t.attained_max),
            format!("{}", t.slo),
            t.violations,
            t.shed,
            format!("{}", t.amortized_weight_time),
            t.weight_reloads,
            format!("{}", t.reload_time),
        );
    }
    let _ = writeln!(out, "  shared DRAM budget (peak co-resident / budget):");
    for (i, name) in outcome.acc_names.iter().enumerate() {
        let peak = outcome.peak_resident[i];
        let budget = outcome.budgets[i];
        if peak == h2h_model::units::Bytes::ZERO {
            continue;
        }
        let _ = writeln!(out, "    {:<5} {:>12} / {:>12}", name, format!("{peak}"), format!("{budget}"));
    }
    let c = &outcome.counters;
    let _ = writeln!(
        out,
        "  slices: {} evaluated + {} memoized; crosschecks {} ({} mismatched)",
        c.slice_evals, c.slice_cache_hits, c.crosschecks, c.crosscheck_mismatches
    );
    // The fault-window section renders only for faulted runs — no-fault
    // reports (and their golden snapshots) stay byte-identical.
    if c.fault_transitions > 0 {
        let _ = writeln!(
            out,
            "  faults: {} transitions, {} repairs ({} attempted moves, {} staged, {} sheds)",
            c.fault_transitions, c.repairs, c.repair_evals, c.staged_repairs, c.sheds
        );
        let _ = writeln!(
            out,
            "  {:<12} {:>7} {:>9} {:>9} {:>14} {:>12} {:>5}",
            "tenant", "repairs", "degraded", "viol-deg", "slo-attained", "repair-time", "parks"
        );
        for t in &outcome.tenants {
            let attained = if t.degraded_served > 0 {
                100.0 * (t.degraded_served - t.violations_degraded) as f64
                    / t.degraded_served as f64
            } else {
                100.0
            };
            let _ = writeln!(
                out,
                "  {:<12} {:>7} {:>9} {:>9} {:>13.1}% {:>12} {:>5}",
                t.name,
                t.repairs,
                t.degraded_served,
                t.violations_degraded,
                attained,
                format!("{}", t.repair_time_charged),
                t.parks
            );
        }
    }
    out
}

impl fmt::Display for MappingReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "mapping report — makespan {}", self.makespan)?;
        writeln!(
            f,
            "  {:<5} {:>7} {:>12} {:>12} {:>12}",
            "acc", "layers", "weights", "pinned", "busy"
        )?;
        for r in &self.rows {
            writeln!(
                f,
                "  {:<5} {:>7} {:>12} {:>12} {:>12}",
                r.acc,
                r.layers,
                format!("{}", r.weights),
                format!("{}", r.pinned),
                format!("{}", r.busy),
            )?;
        }
        writeln!(f, "  host ingress (inputs + streamed weights): {}", self.host_ingress)?;
        if self.transfers.is_empty() {
            writeln!(f, "  no cross-accelerator activation traffic")?;
        } else {
            writeln!(f, "  cross-accelerator activation traffic (via host):")?;
            for ((a, b), bytes) in &self.transfers {
                writeln!(f, "    {a:<5} -> {b:<5} {bytes}")?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::H2hMapper;
    use h2h_system::system::{BandwidthClass, SystemSpec};

    #[test]
    fn report_covers_all_mapped_layers() {
        let model = h2h_model::zoo::mocap();
        let system = SystemSpec::standard(BandwidthClass::LowMinus);
        let out = H2hMapper::new(&model, &system).run().unwrap();
        let ev = Evaluator::new(&model, &system);
        let rep = mapping_report(&ev, &out.mapping, &out.locality, &out.schedule);
        let total_layers: usize = rep.rows.iter().map(|r| r.layers).sum();
        assert_eq!(total_layers, model.num_layers());
        assert_eq!(rep.makespan, out.final_latency());
        assert!(rep.host_ingress > Bytes::ZERO, "inputs always stream in");
    }

    #[test]
    fn h2h_shrinks_the_transfer_matrix() {
        use crate::baseline::computation_prioritized_baseline;
        let model = h2h_model::zoo::mocap();
        let system = SystemSpec::standard(BandwidthClass::LowMinus);
        let ev = Evaluator::new(&model, &system);
        let base = computation_prioritized_baseline(&ev, &crate::H2hConfig::default()).unwrap();
        let h2h = H2hMapper::new(&model, &system).run().unwrap();
        let base_rep = mapping_report(&ev, &base.mapping, &base.locality, &base.schedule);
        let h2h_rep = mapping_report(&ev, &h2h.mapping, &h2h.locality, &h2h.schedule);
        let sum = |r: &MappingReport| -> u64 {
            r.transfers.values().map(|b| b.as_u64()).sum()
        };
        assert!(
            sum(&h2h_rep) < sum(&base_rep),
            "H2H should cut cross-accelerator traffic: {} vs {}",
            sum(&h2h_rep),
            sum(&base_rep)
        );
    }

    #[test]
    fn search_stats_report_names_the_guard_counters() {
        use h2h_system::system::{BandwidthClass, SystemSpec};
        // A large ResNet-like model under the default (adaptive +
        // dominance) configuration must report reached guards, a
        // non-zero skip count, and the fast-revert column.
        let model = h2h_model::zoo::casia_surf();
        let system = SystemSpec::standard(BandwidthClass::LowMinus);
        let out = H2hMapper::new(&model, &system).run().unwrap();
        let rep = search_stats_report(&out.remap_stats);
        assert!(rep.contains("risky guards"), "{rep}");
        assert!(rep.contains("skipped by dominance"), "{rep}");
        assert!(rep.contains("fast reverts"), "{rep}");
        assert!(
            out.remap_stats.guards_total > 0 && out.remap_stats.guards_skipped > 0,
            "CASIA-SURF should reach and skip guards: {rep}"
        );
        // Zero-guard runs must render without dividing by zero.
        let empty = search_stats_report(&crate::delta::SearchStats::default());
        assert!(empty.contains("0 reached"), "{empty}");
    }

    #[test]
    fn display_renders_rows() {
        let model = h2h_model::zoo::cnn_lstm();
        let system = SystemSpec::standard(BandwidthClass::Mid);
        let out = H2hMapper::new(&model, &system).run().unwrap();
        let ev = Evaluator::new(&model, &system);
        let rep = mapping_report(&ev, &out.mapping, &out.locality, &out.schedule);
        let shown = format!("{rep}");
        assert!(shown.contains("mapping report"));
        assert!(shown.contains("host ingress"));
    }
}
