//! The four-step H2H mapping pipeline (paper Algorithm 1).
//!
//! ```text
//! (1) computation-prioritized mapping   — zero locality, ΔSys_latency
//! (2) weight-locality optimization      — knapsack into M_acc
//! (3) activation-transfer optimization  — fuse co-located edges
//! (4) data-locality-aware remapping     — greedy accept-if-better
//! ```
//!
//! The paper's evaluation baseline is the state after step 2 ("existing
//! works can also assume local DRAM", §5.2); [`H2hOutcome`] keeps one
//! snapshot per step so Fig. 4 / Table 4 style reductions can be read
//! off directly.

use std::fmt;
use std::time::{Duration, Instant};

use serde::{Deserialize, Serialize};

use h2h_model::graph::ModelGraph;
use h2h_model::units::{Joules, Seconds};
use h2h_system::locality::LocalityState;
use h2h_system::mapping::{Mapping, MappingError};
use h2h_system::schedule::{EnergyBreakdown, Evaluator, Schedule};
use h2h_system::system::SystemSpec;

use crate::activation_fusion::{activation_fusion_opt, rebuild_locality};
use crate::compute_map::computation_prioritized;
use crate::config::H2hConfig;
use crate::delta::SearchStats;
use crate::preset::PinPreset;
use crate::remap::data_locality_remapping;
use crate::weight_locality::weight_locality_opt;

/// Errors of the H2H pipeline.
#[derive(Debug, Clone, PartialEq)]
pub enum H2hError {
    /// No accelerator in the system can execute this layer's class.
    NoCapableAccelerator {
        /// Layer name.
        layer: String,
    },
    /// A produced mapping failed validation (internal invariant).
    Mapping(MappingError),
}

impl fmt::Display for H2hError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            H2hError::NoCapableAccelerator { layer } => {
                write!(f, "no accelerator in the system can run layer `{layer}`")
            }
            H2hError::Mapping(e) => write!(f, "mapping invalid: {e}"),
        }
    }
}

impl std::error::Error for H2hError {}

impl From<MappingError> for H2hError {
    fn from(e: MappingError) -> Self {
        H2hError::Mapping(e)
    }
}

/// The four pipeline steps, in order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Step {
    /// Step 1: computation-prioritized mapping.
    ComputePrioritized,
    /// Step 2: weight-locality optimization (the evaluation baseline).
    WeightLocality,
    /// Step 3: activation-transfer optimization.
    ActivationFusion,
    /// Step 4: data-locality-aware remapping.
    Remapping,
}

impl Step {
    /// All steps in pipeline order.
    pub const ALL: [Step; 4] = [
        Step::ComputePrioritized,
        Step::WeightLocality,
        Step::ActivationFusion,
        Step::Remapping,
    ];

    /// 1-based index as used in the paper's figures.
    pub fn number(self) -> usize {
        match self {
            Step::ComputePrioritized => 1,
            Step::WeightLocality => 2,
            Step::ActivationFusion => 3,
            Step::Remapping => 4,
        }
    }
}

impl fmt::Display for Step {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Step::ComputePrioritized => "computation-prioritized",
            Step::WeightLocality => "weight locality",
            Step::ActivationFusion => "activation fusion",
            Step::Remapping => "remapping",
        };
        write!(f, "step {} ({name})", self.number())
    }
}

/// System state recorded after one pipeline step.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StepSnapshot {
    /// Which step this snapshot follows.
    pub step: Step,
    /// Modeled `Sys_latency`.
    pub latency: Seconds,
    /// Modeled energy decomposition.
    pub energy: EnergyBreakdown,
    /// Computation share of busy time (Fig. 5a).
    pub compute_ratio: f64,
    /// Wall-clock time this step took to search/optimize.
    pub elapsed: Duration,
}

impl StepSnapshot {
    fn record(step: Step, schedule: &Schedule, elapsed: Duration) -> Self {
        StepSnapshot {
            step,
            latency: schedule.makespan(),
            energy: *schedule.energy(),
            compute_ratio: schedule.compute_ratio(),
            elapsed,
        }
    }

    /// Total modeled energy.
    pub fn total_energy(&self) -> Joules {
        self.energy.total()
    }
}

/// Result of a full H2H pipeline run.
#[derive(Debug)]
pub struct H2hOutcome {
    /// One snapshot per executed step (always 4; disabled steps record
    /// the unchanged state with zero elapsed time).
    pub snapshots: Vec<StepSnapshot>,
    /// The final mapping.
    pub mapping: Mapping,
    /// The final locality state.
    pub locality: LocalityState,
    /// The final schedule.
    pub schedule: Schedule,
    /// Total mapper wall-clock ("search time", Fig. 5b).
    pub search_time: Duration,
    /// Delta-vs-full evaluation counters of the step-4 search (zeroed
    /// when remapping is disabled).
    pub remap_stats: SearchStats,
}

impl H2hOutcome {
    /// Snapshot after a given step.
    pub fn after(&self, step: Step) -> &StepSnapshot {
        &self.snapshots[step.number() - 1]
    }

    /// The paper's baseline latency: after step 2 (computation-
    /// prioritized mapping + weight locality, like [10] with DRAM).
    pub fn baseline_latency(&self) -> Seconds {
        self.after(Step::WeightLocality).latency
    }

    /// The paper's baseline energy.
    pub fn baseline_energy(&self) -> Joules {
        self.after(Step::WeightLocality).total_energy()
    }

    /// Final latency after all four steps.
    pub fn final_latency(&self) -> Seconds {
        self.after(Step::Remapping).latency
    }

    /// Final energy after all four steps.
    pub fn final_energy(&self) -> Joules {
        self.after(Step::Remapping).total_energy()
    }

    /// Latency reduction vs the baseline, in `[0, 1)`.
    pub fn latency_reduction(&self) -> f64 {
        let base = self.baseline_latency().as_f64();
        if base <= 0.0 {
            return 0.0;
        }
        1.0 - self.final_latency().as_f64() / base
    }

    /// Energy reduction vs the baseline, in `[0, 1)`.
    pub fn energy_reduction(&self) -> f64 {
        let base = self.baseline_energy().as_f64();
        if base <= 0.0 {
            return 0.0;
        }
        1.0 - self.final_energy().as_f64() / base
    }
}

/// The H2H mapper: binds a model and a system, runs Algorithm 1.
///
/// # Examples
///
/// ```
/// use h2h_core::pipeline::H2hMapper;
/// use h2h_system::system::{BandwidthClass, SystemSpec};
///
/// let model = h2h_model::zoo::mocap();
/// let system = SystemSpec::standard(BandwidthClass::LowMinus);
/// let outcome = H2hMapper::new(&model, &system).run()?;
/// assert!(outcome.final_latency() <= outcome.baseline_latency());
/// # Ok::<(), h2h_core::pipeline::H2hError>(())
/// ```
#[derive(Debug)]
pub struct H2hMapper<'a> {
    evaluator: Evaluator<'a>,
    config: H2hConfig,
    preset: PinPreset,
}

impl<'a> H2hMapper<'a> {
    /// Binds a mapper with the default configuration.
    pub fn new(model: &'a ModelGraph, system: &'a SystemSpec) -> Self {
        H2hMapper {
            evaluator: Evaluator::new(model, system),
            config: H2hConfig::default(),
            preset: PinPreset::new(),
        }
    }

    /// Overrides the configuration.
    pub fn with_config(mut self, config: H2hConfig) -> Self {
        self.config = config;
        self
    }

    /// Supplies pre-buffered weights (dynamic modality change, §4.5).
    pub fn with_preset(mut self, preset: PinPreset) -> Self {
        self.preset = preset;
        self
    }

    /// Sets the serving batch size: `batch` requests stream through
    /// back-to-back, weights are fetched once per batch, activations
    /// and compute repeat per request.
    ///
    /// # Panics
    ///
    /// Panics if `batch == 0`.
    pub fn with_serving_batch(mut self, batch: u32) -> Self {
        // Preserve the already-built evaluator state (memoized cost
        // cache, topological order) — only the batch factor changes.
        self.evaluator = self.evaluator.with_batch(batch);
        self
    }

    /// The bound evaluator (exposed for diagnostics and tests).
    pub fn evaluator(&self) -> &Evaluator<'a> {
        &self.evaluator
    }

    /// Runs the full pipeline.
    ///
    /// # Errors
    ///
    /// Returns [`H2hError::NoCapableAccelerator`] when a layer class has
    /// no home in the system.
    pub fn run(&self) -> Result<H2hOutcome, H2hError> {
        let ev = &self.evaluator;
        let cfg = &self.config;
        let total_start = Instant::now();
        let mut snapshots = Vec::with_capacity(4);

        // Step 1: computation-prioritized mapping, zero locality.
        let t = Instant::now();
        let (mut mapping, _) = computation_prioritized(ev, cfg, &self.preset)?;
        let zero = LocalityState::new(ev.system());
        let s1 = ev.evaluate(&mapping, &zero);
        snapshots.push(StepSnapshot::record(Step::ComputePrioritized, &s1, t.elapsed()));

        // Step 2: weight locality.
        let t = Instant::now();
        let loc2 = if cfg.enable_weight_locality {
            weight_locality_opt(ev, &mapping, zero, cfg.knapsack, &self.preset)
        } else {
            LocalityState::new(ev.system())
        };
        let s2 = ev.evaluate(&mapping, &loc2);
        snapshots.push(StepSnapshot::record(Step::WeightLocality, &s2, t.elapsed()));

        // Step 3: activation fusion.
        let t = Instant::now();
        let mut loc3 = loc2.clone();
        if cfg.enable_activation_fusion {
            activation_fusion_opt(ev, &mapping, &mut loc3);
        }
        let s3 = ev.evaluate(&mapping, &loc3);
        snapshots.push(StepSnapshot::record(Step::ActivationFusion, &s3, t.elapsed()));

        // Step 4: remapping (delta-scored, exact at accept time).
        let t = Instant::now();
        let (locality, schedule, remap_stats) = if cfg.enable_remapping {
            let out = data_locality_remapping(ev, cfg, &self.preset, &mut mapping);
            (out.locality, out.schedule, out.stats)
        } else {
            // Even with remapping disabled the final state re-runs the
            // rebuild so step-3 capacity ordering matches step 4's.
            let loc = rebuild_locality(ev, &mapping, cfg, &self.preset);
            let sched = ev.evaluate(&mapping, &loc);
            (loc, sched, SearchStats::default())
        };
        snapshots.push(StepSnapshot::record(Step::Remapping, &schedule, t.elapsed()));

        mapping.validate(ev.model(), ev.system())?;
        Ok(H2hOutcome {
            snapshots,
            mapping,
            locality,
            schedule,
            search_time: total_start.elapsed(),
            remap_stats,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use h2h_system::system::BandwidthClass;

    #[test]
    fn four_snapshots_in_order() {
        let model = h2h_model::zoo::mocap();
        let system = SystemSpec::standard(BandwidthClass::LowMinus);
        let out = H2hMapper::new(&model, &system).run().unwrap();
        assert_eq!(out.snapshots.len(), 4);
        for (snap, step) in out.snapshots.iter().zip(Step::ALL) {
            assert_eq!(snap.step, step);
        }
    }

    #[test]
    fn steps_monotonically_improve_latency() {
        let model = h2h_model::zoo::cnn_lstm();
        let system = SystemSpec::standard(BandwidthClass::LowMinus);
        let out = H2hMapper::new(&model, &system).run().unwrap();
        let l: Vec<f64> = out.snapshots.iter().map(|s| s.latency.as_f64()).collect();
        assert!(l[1] <= l[0] + 1e-12, "weight locality must not hurt: {l:?}");
        assert!(l[2] <= l[1] + 1e-12, "fusion must not hurt: {l:?}");
        assert!(l[3] <= l[2] + 1e-12, "remapping must not hurt: {l:?}");
    }

    #[test]
    fn h2h_beats_baseline_on_communication_bound_model() {
        let model = h2h_model::zoo::mocap();
        let system = SystemSpec::standard(BandwidthClass::LowMinus);
        let out = H2hMapper::new(&model, &system).run().unwrap();
        assert!(
            out.latency_reduction() > 0.15,
            "MoCap at Low- should gain >15%, got {:.1}%",
            out.latency_reduction() * 100.0
        );
        assert!(out.energy_reduction() > 0.0);
    }

    #[test]
    fn disabled_steps_preserve_state() {
        let model = h2h_model::zoo::cnn_lstm();
        let system = SystemSpec::standard(BandwidthClass::Mid);
        let cfg = H2hConfig {
            enable_weight_locality: false,
            enable_activation_fusion: false,
            enable_remapping: false,
            ..Default::default()
        };
        let out = H2hMapper::new(&model, &system)
            .with_config(cfg)
            .run()
            .unwrap();
        let l: Vec<f64> = out.snapshots.iter().map(|s| s.latency.as_f64()).collect();
        assert!((l[0] - l[1]).abs() < 1e-12);
        assert!((l[1] - l[2]).abs() < 1e-12);
        assert!((l[2] - l[3]).abs() < 1e-12);
    }

    #[test]
    fn search_time_is_subsecond_for_small_models() {
        // Paper Fig. 5b: search completes in under a second; our models
        // under 30 layers finish far faster even in CI.
        let model = h2h_model::zoo::mocap();
        let system = SystemSpec::standard(BandwidthClass::LowMinus);
        let out = H2hMapper::new(&model, &system).run().unwrap();
        assert!(
            out.search_time < Duration::from_secs(5),
            "search took {:?}",
            out.search_time
        );
    }

    #[test]
    fn batched_serving_amortizes_weights_end_to_end() {
        // CNN-LSTM is weight-transfer-bound at batch 1; at batch 16 the
        // per-request latency must drop well below the batch-1 latency,
        // and the relative H2H gain must grow (activations dominate).
        let model = h2h_model::zoo::cnn_lstm();
        let system = SystemSpec::standard(BandwidthClass::LowMinus);
        let b1 = H2hMapper::new(&model, &system).run().unwrap();
        let b16 = H2hMapper::new(&model, &system)
            .with_serving_batch(16)
            .run()
            .unwrap();
        let per_request = b16.final_latency().as_f64() / 16.0;
        assert!(
            per_request < b1.final_latency().as_f64(),
            "batching must amortize: {per_request} vs {}",
            b1.final_latency()
        );
        assert!(
            b16.latency_reduction() >= b1.latency_reduction() - 0.02,
            "communication awareness should matter at least as much under batching: {:.3} vs {:.3}",
            b16.latency_reduction(),
            b1.latency_reduction()
        );
    }

    #[test]
    fn compute_ratio_rises_after_h2h() {
        // Fig. 5a: the computation share of busy time grows once
        // communication is optimized away.
        let model = h2h_model::zoo::mocap();
        let system = SystemSpec::standard(BandwidthClass::LowMinus);
        let out = H2hMapper::new(&model, &system).run().unwrap();
        let before = out.after(Step::WeightLocality).compute_ratio;
        let after = out.after(Step::Remapping).compute_ratio;
        assert!(after > before, "compute ratio should rise: {before:.3} -> {after:.3}");
    }
}
