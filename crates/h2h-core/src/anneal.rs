//! Simulated-annealing mapper — a search-budget ablation for H2H.
//!
//! The paper positions H2H's greedy pipeline as finding good mappings
//! "within seconds". A natural question a reviewer asks: what does a
//! generic stochastic search achieve with a comparable or larger budget?
//! This module provides a deterministic (seeded) SA over the same
//! objective (end-to-end modeled latency with steps 2–3 re-applied per
//! candidate), used by the `ablation` experiment.
//!
//! Proposals are scored by the incremental [`DeltaEngine`] (scoped
//! locality-rebuild replay + cone-local schedule propagation, with the
//! adaptive strategy of [`crate::config::ScoreStrategy`] — risky
//! fusion guards dominance-pruned and fast-reverted exactly as in the
//! greedy loop, see [`crate::delta`]), whose makespans are
//! bitwise-equal to full evaluations, so the walk pays no full
//! evaluation per proposal at all. The returned result is still
//! evaluated exactly and guarded to never lose to the seed mapping.
//!
//! # Parallel speculation
//!
//! With `score_threads > 1` the walk speculates down the
//! most-likely-rejected branch: the RNG consumes a fixed three draws
//! per iteration (layer, destination, acceptance), so the proposal
//! stream is independent of accept/reject outcomes and the next
//! `score_threads` proposals can be scored concurrently against the
//! current state on a [`ScoringPool`]. Acceptance is then decided
//! **serially in proposal order**; the first accepted proposal
//! invalidates the speculative scores behind it, which return to the
//! queue and are re-scored from the new state. The walk is therefore
//! bit-identical for every thread count (and so are the search stats:
//! discarded speculative scorings are uncounted wall-clock, not
//! semantics).

use std::collections::VecDeque;

use h2h_model::graph::LayerId;
use h2h_system::mapping::Mapping;
use h2h_system::schedule::Evaluator;
use h2h_system::system::AccId;

use crate::activation_fusion::rebuild_locality;
use crate::baseline::BaselineOutcome;
use crate::compute_map::computation_prioritized;
use crate::config::H2hConfig;
use crate::delta::{DeltaEngine, SearchStats};
use crate::parallel::{commit_move, score_candidate, CandidateOutcome, ScoringPool};
use crate::pipeline::H2hError;
use crate::preset::PinPreset;

/// Annealing schedule parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AnnealConfig {
    /// Proposal count (each = one schedule evaluation).
    pub iterations: usize,
    /// Initial temperature as a fraction of the initial latency (e.g.
    /// `0.05` = accept ~5% regressions early).
    pub initial_temp: f64,
    /// Geometric cooling factor per iteration.
    pub cooling: f64,
    /// RNG seed (xorshift64*; the crate stays dependency-free).
    pub seed: u64,
}

impl Default for AnnealConfig {
    fn default() -> Self {
        AnnealConfig { iterations: 2000, initial_temp: 0.05, cooling: 0.9985, seed: 1 }
    }
}

/// Deterministic xorshift64* stream (the crate stays dependency-free).
struct XorShift(u64);

impl XorShift {
    fn new(seed: u64) -> Self {
        XorShift(seed | 1)
    }

    /// Uniform in `[0, 1)`.
    fn uniform(&mut self) -> f64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        (self.0.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// One generated (not yet resolved) proposal: the layer pick plus the
/// destination and acceptance draws, and the temperature of its
/// iteration. The destination is resolved against the mapping that is
/// current when the proposal is actually *decided*, which is what makes
/// speculative batches chunk-size-invariant.
#[derive(Debug, Clone, Copy)]
struct Proposal {
    layer_idx: usize,
    u_pick: f64,
    u_accept: f64,
    temp: f64,
}

/// Runs simulated annealing from the computation-prioritized seed
/// mapping. Deterministic per configuration (and per thread count: see
/// the module docs). The caller's [`PinPreset`] (dynamic modality
/// change, §4.5) participates in every locality rebuild, exactly as in
/// the greedy pipeline.
///
/// # Errors
///
/// Returns [`H2hError::NoCapableAccelerator`] if some layer cannot run
/// anywhere.
pub fn simulated_annealing(
    ev: &Evaluator<'_>,
    cfg: &H2hConfig,
    anneal: &AnnealConfig,
    preset: &PinPreset,
) -> Result<BaselineOutcome, H2hError> {
    let model = ev.model();
    let system = ev.system();

    let layers: Vec<LayerId> = model.topo_order();
    let capable: Vec<Vec<AccId>> = layers
        .iter()
        .map(|id| {
            system
                .acc_ids()
                .filter(|a| ev.cache().time(*id, *a).is_some())
                .collect()
        })
        .collect();

    let (mut mapping, _) = computation_prioritized(ev, cfg, preset)?;
    let seed_mapping = mapping.clone();
    let mut engine = DeltaEngine::new(ev, cfg, preset, &mapping);
    let seed_makespan = engine.schedule().makespan();
    let mut best_mapping = mapping.clone();
    let mut best_makespan = seed_makespan.as_f64();

    let workers = crate::parallel::effective_workers(cfg);
    if workers == 0 {
        anneal_walk(
            anneal,
            &layers,
            &capable,
            &mut engine,
            &mut mapping,
            &mut best_mapping,
            &mut best_makespan,
            None,
        );
    } else {
        rayon::scope(|scope| {
            let mut pool = ScoringPool::spawn(scope, &engine, &mapping, workers);
            anneal_walk(
                anneal,
                &layers,
                &capable,
                &mut engine,
                &mut mapping,
                &mut best_mapping,
                &mut best_makespan,
                Some(&mut pool),
            );
        });
    }

    let mut stats = engine.stats;
    let mut locality = rebuild_locality(ev, &best_mapping, cfg, preset);
    let mut schedule = ev.evaluate(&best_mapping, &locality);
    stats.full_rebuilds += 1;
    stats.full_evals += 1;
    if schedule.makespan() > seed_makespan {
        // Safety net (never expected to trigger): the walk may not lose
        // to its own seed.
        best_mapping = seed_mapping;
        locality = rebuild_locality(ev, &best_mapping, cfg, preset);
        schedule = ev.evaluate(&best_mapping, &locality);
        stats.full_rebuilds += 1;
        stats.full_evals += 1;
    }
    Ok(BaselineOutcome { mapping: best_mapping, locality, schedule, stats })
}

/// The Metropolis walk: generate proposals with a fixed RNG consumption
/// (three draws per iteration), speculatively score up to
/// `score_threads` of them against the current state, then decide them
/// serially in proposal order. An accepted proposal commits on the main
/// engine (and broadcasts to the pool workers) and sends the
/// speculative remainder back to the queue for re-scoring.
#[allow(clippy::too_many_arguments)]
fn anneal_walk(
    anneal: &AnnealConfig,
    layers: &[LayerId],
    capable: &[Vec<AccId>],
    engine: &mut DeltaEngine<'_, '_>,
    mapping: &mut Mapping,
    best_mapping: &mut Mapping,
    best_makespan: &mut f64,
    mut pool: Option<&mut ScoringPool>,
) {
    let mut rng = XorShift::new(anneal.seed);
    let mut current_makespan = engine.schedule().makespan().as_f64();
    let mut temp = current_makespan * anneal.initial_temp;
    let chunk = pool.as_ref().map_or(1, |p| p.lanes());
    let mut generated = 0usize;
    let mut pending: VecDeque<Proposal> = VecDeque::new();
    let mut jobs: Vec<(LayerId, AccId)> = Vec::with_capacity(chunk);
    let mut batch: Vec<Proposal> = Vec::with_capacity(chunk);
    let mut outcomes: Vec<CandidateOutcome> = Vec::with_capacity(chunk);

    loop {
        // Refill the speculation window. Iterations whose layer has no
        // alternative placement are decided (skipped) right here — their
        // draws are consumed and their iteration cools, like any other.
        while pending.len() < chunk && generated < anneal.iterations {
            let u_layer = rng.uniform();
            let u_pick = rng.uniform();
            let u_accept = rng.uniform();
            let this_temp = temp;
            temp *= anneal.cooling;
            generated += 1;
            let layer_idx = (u_layer * layers.len() as f64) as usize % layers.len();
            if capable[layer_idx].len() < 2 {
                continue;
            }
            pending.push_back(Proposal { layer_idx, u_pick, u_accept, temp: this_temp });
        }
        if pending.is_empty() {
            break;
        }

        // Resolve this batch's destinations against the current state.
        let take = pending.len().min(chunk);
        batch.clear();
        batch.extend(pending.drain(..take));
        jobs.clear();
        for prop in &batch {
            let options = &capable[prop.layer_idx];
            let layer = layers[prop.layer_idx];
            let old = mapping.acc_of(layer);
            let mut pick = options[(prop.u_pick * options.len() as f64) as usize % options.len()];
            if pick == old {
                pick = options
                    [(options.iter().position(|a| *a == old).expect("old is capable") + 1)
                        % options.len()];
            }
            jobs.push((layer, pick));
        }
        // Single-proposal batches (the serial walk, and speculation
        // tails) decide on the staged candidate directly — one staging
        // per proposal instead of stage/reject plus a committing
        // re-stage. The recorded stats are identical to the batched
        // path by construction.
        if batch.len() == 1 {
            let prop = batch[0];
            let (layer, to) = jobs[0];
            let saved = engine.stats;
            engine.stats = SearchStats::default();
            let _ = engine.stage_move(mapping, layer, to);
            let makespan = engine.staged_makespan();
            let mut scoring_stats = engine.stats;
            scoring_stats.attempted_moves = 1;
            let delta = makespan - current_makespan;
            let accept =
                delta <= 0.0 || (prop.temp > 0.0 && prop.u_accept < (-delta / prop.temp).exp());
            if accept {
                engine.accept_staged(mapping);
            } else {
                engine.reject_staged(mapping);
            }
            engine.stats = saved;
            engine.stats.absorb(&scoring_stats);
            if accept {
                engine.stats.accepted_moves += 1;
                if let Some(pool) = pool.as_deref_mut() {
                    pool.broadcast_commit(layer, to);
                }
                current_makespan = makespan;
                if current_makespan < *best_makespan {
                    *best_makespan = current_makespan;
                    best_mapping.clone_from(mapping);
                }
            }
            continue;
        }
        match pool.as_deref_mut() {
            Some(pool) => pool.score_batch(engine, mapping, &jobs, &mut outcomes),
            None => {
                outcomes.clear();
                outcomes.extend(
                    jobs.iter().map(|(layer, to)| score_candidate(engine, mapping, *layer, *to)),
                );
            }
        }

        // Decide serially in proposal order; the first accept
        // invalidates the speculation behind it.
        for (j, (prop, outcome)) in batch.iter().zip(&outcomes).enumerate() {
            engine.stats.absorb(&outcome.stats);
            let delta = outcome.makespan - current_makespan;
            let accept =
                delta <= 0.0 || (prop.temp > 0.0 && prop.u_accept < (-delta / prop.temp).exp());
            if !accept {
                continue;
            }
            let (layer, to) = jobs[j];
            if let Some(pool) = pool.as_deref_mut() {
                pool.broadcast_commit(layer, to);
            }
            commit_move(engine, mapping, layer, to);
            current_makespan = outcome.makespan;
            if current_makespan < *best_makespan {
                *best_makespan = current_makespan;
                best_mapping.clone_from(mapping);
            }
            for stale in batch[j + 1..].iter().rev() {
                pending.push_front(*stale);
            }
            break;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baseline::computation_prioritized_baseline;
    use h2h_system::system::{BandwidthClass, SystemSpec};

    #[test]
    fn sa_never_worse_than_its_seed() {
        let model = h2h_model::zoo::mocap();
        let system = SystemSpec::standard(BandwidthClass::LowMinus);
        let ev = Evaluator::new(&model, &system);
        let cfg = H2hConfig::default();
        let seed = computation_prioritized_baseline(&ev, &cfg).unwrap();
        // Note: the SA objective includes fusion (steps 2-3), the seed
        // baseline does not — compare against seed + rebuild.
        let seed_full = {
            let loc = rebuild_locality(&ev, &seed.mapping, &cfg, &PinPreset::new());
            ev.evaluate(&seed.mapping, &loc).makespan()
        };
        let sa = simulated_annealing(
            &ev,
            &cfg,
            &AnnealConfig { iterations: 200, ..Default::default() },
            &PinPreset::new(),
        )
        .unwrap();
        assert!(
            sa.schedule.makespan() <= seed_full,
            "SA {} must not lose to its seed {}",
            sa.schedule.makespan(),
            seed_full
        );
        sa.mapping.validate(&model, &system).unwrap();
    }

    #[test]
    fn sa_is_deterministic_per_seed() {
        let model = h2h_model::zoo::cnn_lstm();
        let system = SystemSpec::standard(BandwidthClass::Mid);
        let ev = Evaluator::new(&model, &system);
        let cfg = H2hConfig::default();
        let a = simulated_annealing(
            &ev,
            &cfg,
            &AnnealConfig { iterations: 150, seed: 42, ..Default::default() },
            &PinPreset::new(),
        )
        .unwrap();
        let b = simulated_annealing(
            &ev,
            &cfg,
            &AnnealConfig { iterations: 150, seed: 42, ..Default::default() },
            &PinPreset::new(),
        )
        .unwrap();
        assert_eq!(a.mapping, b.mapping);
        assert_eq!(a.schedule.makespan(), b.schedule.makespan());
    }

    #[test]
    fn sa_is_thread_count_invariant() {
        // The speculative walk must be bit-identical for every thread
        // count — same final mapping, latency and stats.
        let model = h2h_model::zoo::cnn_lstm();
        let system = SystemSpec::standard(BandwidthClass::LowMinus);
        let ev = Evaluator::new(&model, &system);
        let run = |threads: usize| {
            let cfg = H2hConfig {
                score_threads: threads,
                score_oversubscribe: true,
                ..Default::default()
            };
            simulated_annealing(
                &ev,
                &cfg,
                &AnnealConfig { iterations: 120, seed: 7, ..Default::default() },
                &PinPreset::new(),
            )
            .unwrap()
        };
        let serial = run(1);
        for threads in [2, 4] {
            let parallel = run(threads);
            assert_eq!(serial.mapping, parallel.mapping, "{threads} threads");
            assert_eq!(
                serial.schedule.makespan(),
                parallel.schedule.makespan(),
                "{threads} threads"
            );
            assert_eq!(serial.stats, parallel.stats, "{threads} threads");
        }
    }

    #[test]
    fn zero_iterations_returns_the_seed() {
        let model = h2h_model::zoo::cnn_lstm();
        let system = SystemSpec::standard(BandwidthClass::Mid);
        let ev = Evaluator::new(&model, &system);
        let cfg = H2hConfig::default();
        let sa = simulated_annealing(
            &ev,
            &cfg,
            &AnnealConfig { iterations: 0, ..Default::default() },
            &PinPreset::new(),
        )
        .unwrap();
        let (seed_mapping, _) = computation_prioritized(&ev, &cfg, &PinPreset::new()).unwrap();
        assert_eq!(sa.mapping, seed_mapping);
    }

    #[test]
    fn sa_honours_the_callers_preset() {
        // A preset pin must survive into the SA result's locality: the
        // regression this test guards is `simulated_annealing`
        // hard-coding `PinPreset::new()` and silently dropping
        // pre-buffered weights.
        let model = h2h_model::zoo::cnn_lstm();
        let system = SystemSpec::standard(BandwidthClass::Mid);
        let ev = Evaluator::new(&model, &system);
        let cfg = H2hConfig::default();
        // Find a weighted layer and pre-buffer it where SA's seed maps it.
        let (seed_mapping, _) = computation_prioritized(&ev, &cfg, &PinPreset::new()).unwrap();
        let weighted = model
            .topo_order()
            .into_iter()
            .find(|id| model.layer(*id).has_weights())
            .expect("zoo model has weighted layers");
        let mut preset = PinPreset::new();
        preset.insert(weighted, seed_mapping.acc_of(weighted));
        let sa = simulated_annealing(
            &ev,
            &cfg,
            &AnnealConfig { iterations: 40, ..Default::default() },
            &preset,
        )
        .unwrap();
        // If SA kept the layer where the weights already live, they must
        // be pinned (forced pins precede the knapsack).
        if sa.mapping.acc_of(weighted) == seed_mapping.acc_of(weighted) {
            assert!(
                sa.locality.is_pinned(weighted),
                "preset pin dropped by the annealer"
            );
        }
        assert!(sa.stats.delta_evals > 0, "SA must route through the delta engine");
    }

    #[test]
    fn sa_spends_fewer_full_evals_than_proposals() {
        let model = h2h_model::zoo::mocap();
        let system = SystemSpec::standard(BandwidthClass::LowMinus);
        let ev = Evaluator::new(&model, &system);
        let cfg = H2hConfig::default();
        let sa = simulated_annealing(
            &ev,
            &cfg,
            &AnnealConfig { iterations: 300, ..Default::default() },
            &PinPreset::new(),
        )
        .unwrap();
        assert!(
            sa.stats.full_evals < sa.stats.attempted_moves,
            "full evals ({}) should undercut proposals ({})",
            sa.stats.full_evals,
            sa.stats.attempted_moves
        );
    }
}
