//! Simulated-annealing mapper — a search-budget ablation for H2H.
//!
//! The paper positions H2H's greedy pipeline as finding good mappings
//! "within seconds". A natural question a reviewer asks: what does a
//! generic stochastic search achieve with a comparable or larger budget?
//! This module provides a deterministic (seeded) SA over the same
//! objective (end-to-end modeled latency with steps 2–3 re-applied per
//! candidate), used by the `ablation` experiment.

use h2h_system::schedule::{Evaluator, Schedule};
use h2h_system::system::AccId;

use crate::activation_fusion::rebuild_locality;
use crate::baseline::BaselineOutcome;
use crate::compute_map::computation_prioritized;
use crate::config::H2hConfig;
use crate::pipeline::H2hError;
use crate::preset::PinPreset;

/// Annealing schedule parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AnnealConfig {
    /// Proposal count (each = one schedule evaluation).
    pub iterations: usize,
    /// Initial temperature as a fraction of the initial latency (e.g.
    /// `0.05` = accept ~5% regressions early).
    pub initial_temp: f64,
    /// Geometric cooling factor per iteration.
    pub cooling: f64,
    /// RNG seed (xorshift64*; the crate stays dependency-free).
    pub seed: u64,
}

impl Default for AnnealConfig {
    fn default() -> Self {
        AnnealConfig { iterations: 2000, initial_temp: 0.05, cooling: 0.9985, seed: 1 }
    }
}

/// Runs simulated annealing from the computation-prioritized seed
/// mapping. Deterministic per configuration.
///
/// # Errors
///
/// Returns [`H2hError::NoCapableAccelerator`] if some layer cannot run
/// anywhere.
pub fn simulated_annealing(
    ev: &Evaluator<'_>,
    cfg: &H2hConfig,
    anneal: &AnnealConfig,
) -> Result<BaselineOutcome, H2hError> {
    let model = ev.model();
    let system = ev.system();
    let preset = PinPreset::new();

    let mut state = anneal.seed | 1;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state.wrapping_mul(0x2545_F491_4F6C_DD1D)
    };
    // Uniform in [0,1).
    let mut uniform = move || (next() >> 11) as f64 / (1u64 << 53) as f64;

    let layers: Vec<_> = model.topo_order();
    let capable: Vec<Vec<AccId>> = layers
        .iter()
        .map(|id| {
            system
                .acc_ids()
                .filter(|a| ev.cache().time(*id, *a).is_some())
                .collect()
        })
        .collect();

    let (mut mapping, _) = computation_prioritized(ev, cfg, &preset)?;
    let mut current: Schedule = {
        let loc = rebuild_locality(ev, &mapping, cfg, &preset);
        ev.evaluate(&mapping, &loc)
    };
    let mut best_mapping = mapping.clone();
    let mut best: Schedule = current.clone();
    let mut temp = current.makespan().as_f64() * anneal.initial_temp;

    for _ in 0..anneal.iterations {
        // Propose: move one random layer to a random capable device.
        let li = (uniform() * layers.len() as f64) as usize % layers.len();
        let options = &capable[li];
        if options.len() < 2 {
            temp *= anneal.cooling;
            continue;
        }
        let old = mapping.acc_of(layers[li]);
        let mut pick = options[(uniform() * options.len() as f64) as usize % options.len()];
        if pick == old {
            pick = options[(options.iter().position(|a| *a == old).unwrap() + 1) % options.len()];
        }
        mapping.set(layers[li], pick);
        let loc = rebuild_locality(ev, &mapping, cfg, &preset);
        let cand = ev.evaluate(&mapping, &loc);
        let delta = cand.makespan().as_f64() - current.makespan().as_f64();
        let accept = delta <= 0.0 || (temp > 0.0 && uniform() < (-delta / temp).exp());
        if accept {
            current = cand;
            if current.makespan() < best.makespan() {
                best = current.clone();
                best_mapping = mapping.clone();
            }
        } else {
            mapping.set(layers[li], old);
        }
        temp *= anneal.cooling;
    }

    let locality = rebuild_locality(ev, &best_mapping, cfg, &preset);
    let schedule = ev.evaluate(&best_mapping, &locality);
    Ok(BaselineOutcome { mapping: best_mapping, locality, schedule })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baseline::computation_prioritized_baseline;
    use h2h_system::system::{BandwidthClass, SystemSpec};

    #[test]
    fn sa_never_worse_than_its_seed() {
        let model = h2h_model::zoo::mocap();
        let system = SystemSpec::standard(BandwidthClass::LowMinus);
        let ev = Evaluator::new(&model, &system);
        let cfg = H2hConfig::default();
        let seed = computation_prioritized_baseline(&ev, &cfg).unwrap();
        // Note: the SA objective includes fusion (steps 2-3), the seed
        // baseline does not — compare against seed + rebuild.
        let seed_full = {
            let loc = rebuild_locality(&ev, &seed.mapping, &cfg, &PinPreset::new());
            ev.evaluate(&seed.mapping, &loc).makespan()
        };
        let sa = simulated_annealing(
            &ev,
            &cfg,
            &AnnealConfig { iterations: 200, ..Default::default() },
        )
        .unwrap();
        assert!(
            sa.schedule.makespan() <= seed_full,
            "SA {} must not lose to its seed {}",
            sa.schedule.makespan(),
            seed_full
        );
        sa.mapping.validate(&model, &system).unwrap();
    }

    #[test]
    fn sa_is_deterministic_per_seed() {
        let model = h2h_model::zoo::cnn_lstm();
        let system = SystemSpec::standard(BandwidthClass::Mid);
        let ev = Evaluator::new(&model, &system);
        let cfg = H2hConfig::default();
        let a = simulated_annealing(
            &ev,
            &cfg,
            &AnnealConfig { iterations: 150, seed: 42, ..Default::default() },
        )
        .unwrap();
        let b = simulated_annealing(
            &ev,
            &cfg,
            &AnnealConfig { iterations: 150, seed: 42, ..Default::default() },
        )
        .unwrap();
        assert_eq!(a.mapping, b.mapping);
        assert_eq!(a.schedule.makespan(), b.schedule.makespan());
    }

    #[test]
    fn zero_iterations_returns_the_seed() {
        let model = h2h_model::zoo::cnn_lstm();
        let system = SystemSpec::standard(BandwidthClass::Mid);
        let ev = Evaluator::new(&model, &system);
        let cfg = H2hConfig::default();
        let sa = simulated_annealing(
            &ev,
            &cfg,
            &AnnealConfig { iterations: 0, ..Default::default() },
        )
        .unwrap();
        let (seed_mapping, _) = computation_prioritized(&ev, &cfg, &PinPreset::new()).unwrap();
        assert_eq!(sa.mapping, seed_mapping);
    }
}
