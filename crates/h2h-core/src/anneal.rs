//! Simulated-annealing mapper — a search-budget ablation for H2H.
//!
//! The paper positions H2H's greedy pipeline as finding good mappings
//! "within seconds". A natural question a reviewer asks: what does a
//! generic stochastic search achieve with a comparable or larger budget?
//! This module provides a deterministic (seeded) SA over the same
//! objective (end-to-end modeled latency with steps 2–3 re-applied per
//! candidate), used by the `ablation` experiment.
//!
//! Proposals are scored by the incremental [`DeltaEngine`] (scoped
//! locality-rebuild replay + cone-local schedule propagation), whose
//! makespans are bitwise-equal to full evaluations, so the walk pays no
//! full evaluation per proposal at all. The returned result is still
//! evaluated exactly and guarded to never lose to the seed mapping.

use h2h_system::schedule::Evaluator;
use h2h_system::system::AccId;

use crate::activation_fusion::rebuild_locality;
use crate::baseline::BaselineOutcome;
use crate::compute_map::computation_prioritized;
use crate::config::H2hConfig;
use crate::delta::DeltaEngine;
use crate::pipeline::H2hError;
use crate::preset::PinPreset;

/// Annealing schedule parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AnnealConfig {
    /// Proposal count (each = one schedule evaluation).
    pub iterations: usize,
    /// Initial temperature as a fraction of the initial latency (e.g.
    /// `0.05` = accept ~5% regressions early).
    pub initial_temp: f64,
    /// Geometric cooling factor per iteration.
    pub cooling: f64,
    /// RNG seed (xorshift64*; the crate stays dependency-free).
    pub seed: u64,
}

impl Default for AnnealConfig {
    fn default() -> Self {
        AnnealConfig { iterations: 2000, initial_temp: 0.05, cooling: 0.9985, seed: 1 }
    }
}

/// Runs simulated annealing from the computation-prioritized seed
/// mapping. Deterministic per configuration. The caller's [`PinPreset`]
/// (dynamic modality change, §4.5) participates in every locality
/// rebuild, exactly as in the greedy pipeline.
///
/// # Errors
///
/// Returns [`H2hError::NoCapableAccelerator`] if some layer cannot run
/// anywhere.
pub fn simulated_annealing(
    ev: &Evaluator<'_>,
    cfg: &H2hConfig,
    anneal: &AnnealConfig,
    preset: &PinPreset,
) -> Result<BaselineOutcome, H2hError> {
    let model = ev.model();
    let system = ev.system();

    let mut state = anneal.seed | 1;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state.wrapping_mul(0x2545_F491_4F6C_DD1D)
    };
    // Uniform in [0,1).
    let mut uniform = move || (next() >> 11) as f64 / (1u64 << 53) as f64;

    let layers: Vec<_> = model.topo_order();
    let capable: Vec<Vec<AccId>> = layers
        .iter()
        .map(|id| {
            system
                .acc_ids()
                .filter(|a| ev.cache().time(*id, *a).is_some())
                .collect()
        })
        .collect();

    let (mut mapping, _) = computation_prioritized(ev, cfg, preset)?;
    let seed_mapping = mapping.clone();
    let mut engine = DeltaEngine::new(ev, cfg, preset, &mapping);
    let seed_makespan = engine.schedule().makespan();
    let mut current_makespan = seed_makespan.as_f64();
    let mut best_mapping = mapping.clone();
    let mut best_makespan = current_makespan;
    let mut temp = current_makespan * anneal.initial_temp;

    for _ in 0..anneal.iterations {
        // Propose: move one random layer to a random capable device.
        let li = (uniform() * layers.len() as f64) as usize % layers.len();
        let options = &capable[li];
        if options.len() < 2 {
            temp *= anneal.cooling;
            continue;
        }
        let old = mapping.acc_of(layers[li]);
        let mut pick = options[(uniform() * options.len() as f64) as usize % options.len()];
        if pick == old {
            pick = options[(options.iter().position(|a| *a == old).unwrap() + 1) % options.len()];
        }
        engine.stats.attempted_moves += 1;
        let _objective_score = engine.stage_move(&mut mapping, layers[li], pick);
        let cand_makespan = engine.staged_makespan();
        let delta = cand_makespan - current_makespan;
        let accept = delta <= 0.0 || (temp > 0.0 && uniform() < (-delta / temp).exp());
        if accept {
            engine.accept_staged();
            current_makespan = cand_makespan;
            if current_makespan < best_makespan {
                best_makespan = current_makespan;
                best_mapping = mapping.clone();
            }
        } else {
            engine.reject_staged(&mut mapping);
        }
        temp *= anneal.cooling;
    }

    let mut stats = engine.stats;
    let mut locality = rebuild_locality(ev, &best_mapping, cfg, preset);
    let mut schedule = ev.evaluate(&best_mapping, &locality);
    stats.full_rebuilds += 1;
    stats.full_evals += 1;
    if schedule.makespan() > seed_makespan {
        // Safety net (never expected to trigger): the walk may not lose
        // to its own seed.
        best_mapping = seed_mapping;
        locality = rebuild_locality(ev, &best_mapping, cfg, preset);
        schedule = ev.evaluate(&best_mapping, &locality);
        stats.full_rebuilds += 1;
        stats.full_evals += 1;
    }
    Ok(BaselineOutcome { mapping: best_mapping, locality, schedule, stats })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baseline::computation_prioritized_baseline;
    use h2h_system::system::{BandwidthClass, SystemSpec};

    #[test]
    fn sa_never_worse_than_its_seed() {
        let model = h2h_model::zoo::mocap();
        let system = SystemSpec::standard(BandwidthClass::LowMinus);
        let ev = Evaluator::new(&model, &system);
        let cfg = H2hConfig::default();
        let seed = computation_prioritized_baseline(&ev, &cfg).unwrap();
        // Note: the SA objective includes fusion (steps 2-3), the seed
        // baseline does not — compare against seed + rebuild.
        let seed_full = {
            let loc = rebuild_locality(&ev, &seed.mapping, &cfg, &PinPreset::new());
            ev.evaluate(&seed.mapping, &loc).makespan()
        };
        let sa = simulated_annealing(
            &ev,
            &cfg,
            &AnnealConfig { iterations: 200, ..Default::default() },
            &PinPreset::new(),
        )
        .unwrap();
        assert!(
            sa.schedule.makespan() <= seed_full,
            "SA {} must not lose to its seed {}",
            sa.schedule.makespan(),
            seed_full
        );
        sa.mapping.validate(&model, &system).unwrap();
    }

    #[test]
    fn sa_is_deterministic_per_seed() {
        let model = h2h_model::zoo::cnn_lstm();
        let system = SystemSpec::standard(BandwidthClass::Mid);
        let ev = Evaluator::new(&model, &system);
        let cfg = H2hConfig::default();
        let a = simulated_annealing(
            &ev,
            &cfg,
            &AnnealConfig { iterations: 150, seed: 42, ..Default::default() },
            &PinPreset::new(),
        )
        .unwrap();
        let b = simulated_annealing(
            &ev,
            &cfg,
            &AnnealConfig { iterations: 150, seed: 42, ..Default::default() },
            &PinPreset::new(),
        )
        .unwrap();
        assert_eq!(a.mapping, b.mapping);
        assert_eq!(a.schedule.makespan(), b.schedule.makespan());
    }

    #[test]
    fn zero_iterations_returns_the_seed() {
        let model = h2h_model::zoo::cnn_lstm();
        let system = SystemSpec::standard(BandwidthClass::Mid);
        let ev = Evaluator::new(&model, &system);
        let cfg = H2hConfig::default();
        let sa = simulated_annealing(
            &ev,
            &cfg,
            &AnnealConfig { iterations: 0, ..Default::default() },
            &PinPreset::new(),
        )
        .unwrap();
        let (seed_mapping, _) = computation_prioritized(&ev, &cfg, &PinPreset::new()).unwrap();
        assert_eq!(sa.mapping, seed_mapping);
    }

    #[test]
    fn sa_honours_the_callers_preset() {
        // A preset pin must survive into the SA result's locality: the
        // regression this test guards is `simulated_annealing`
        // hard-coding `PinPreset::new()` and silently dropping
        // pre-buffered weights.
        let model = h2h_model::zoo::cnn_lstm();
        let system = SystemSpec::standard(BandwidthClass::Mid);
        let ev = Evaluator::new(&model, &system);
        let cfg = H2hConfig::default();
        // Find a weighted layer and pre-buffer it where SA's seed maps it.
        let (seed_mapping, _) = computation_prioritized(&ev, &cfg, &PinPreset::new()).unwrap();
        let weighted = model
            .topo_order()
            .into_iter()
            .find(|id| model.layer(*id).has_weights())
            .expect("zoo model has weighted layers");
        let mut preset = PinPreset::new();
        preset.insert(weighted, seed_mapping.acc_of(weighted));
        let sa = simulated_annealing(
            &ev,
            &cfg,
            &AnnealConfig { iterations: 40, ..Default::default() },
            &preset,
        )
        .unwrap();
        // If SA kept the layer where the weights already live, they must
        // be pinned (forced pins precede the knapsack).
        if sa.mapping.acc_of(weighted) == seed_mapping.acc_of(weighted) {
            assert!(
                sa.locality.is_pinned(weighted),
                "preset pin dropped by the annealer"
            );
        }
        assert!(sa.stats.delta_evals > 0, "SA must route through the delta engine");
    }

    #[test]
    fn sa_spends_fewer_full_evals_than_proposals() {
        let model = h2h_model::zoo::mocap();
        let system = SystemSpec::standard(BandwidthClass::LowMinus);
        let ev = Evaluator::new(&model, &system);
        let cfg = H2hConfig::default();
        let sa = simulated_annealing(
            &ev,
            &cfg,
            &AnnealConfig { iterations: 300, ..Default::default() },
            &PinPreset::new(),
        )
        .unwrap();
        assert!(
            sa.stats.full_evals < sa.stats.attempted_moves,
            "full evals ({}) should undercut proposals ({})",
            sa.stats.full_evals,
            sa.stats.attempted_moves
        );
    }
}
