//! Multi-tenant **open-loop streaming** serving: several models'
//! request streams scheduled through **one** heterogeneous system,
//! with tail-latency (p50/p95/p99) accounting.
//!
//! The offline mapper (PRs 1–3) answers "where does one model's every
//! layer run"; deployment asks the next question — *N* tenants, each a
//! (model, arrival process, latency SLO) triple, sharing the same
//! boards and the same local DRAM. This module covers the ROADMAP's
//! serving items, batched rounds through streaming tails:
//!
//! 1. **Tenant registry** ([`TenantRegistry::admit`]) — each tenant is
//!    mapped *offline* by the full four-step pipeline (bit-identical to
//!    a standalone [`H2hMapper`] run) and its mapping pinned. Admission
//!    enforces the shared DRAM budget
//!    ([`H2hConfig::serve_dram_budget_frac`] of every board): a tenant
//!    whose pinned weights oversubscribe it keeps only the
//!    highest-value pins — a knapsack on saved transfer time, the same
//!    objective as the step-2 pass — and the trimmed layers are
//!    re-costed through the tenant's [`IncrementalSchedule`] as a delta
//!    (refresh the unpinned layers, propagate their cone) rather than a
//!    rebuild.
//! 2. **Open-loop arrivals** ([`crate::arrivals`]) — each tenant's
//!    requests enter its queue on an arrival schedule materialized
//!    from its [`ArrivalProcess`]: the deterministic `j / rate_hz`
//!    clock (default — bit-identical to the pre-streaming loop),
//!    a seeded Poisson process, or a replayed
//!    [`h2h_system::trace::ArrivalTrace`]. The round loop consults
//!    the schedule through one monotone *event clock*: arrival
//!    cursors advance by exact comparison against the same
//!    `arrival(j)` values the latency ledger charges (integer-exact —
//!    no floor estimate, no epsilon), while fault boundaries and
//!    staged-repair landings share the single
//!    [`h2h_system::sim::BOUNDARY_EPS`] slack, so the three event
//!    streams can never disagree about whether an instant passed and
//!    a request arriving exactly at a fault boundary is counted once.
//! 3. **Online batch former** ([`TenantRegistry::serve`]) — each
//!    scheduling round packs the backlogged tenants whose *combined*
//!    resident footprint fits the DRAM budget and serves each
//!    selected tenant one *slice* of up to
//!    [`H2hConfig::serve_max_batch`] requests. Round forming is a
//!    policy surface ([`RoundPolicy`]): the urgency knapsack (value =
//!    backlog + doomed requests; default and bit-identical to PR 4),
//!    earliest-deadline-first, or weighted-fair virtual finish times.
//! 4. **Interleaved slice evaluator** — a slice of `k` requests streams
//!    through the tenant's pinned mapping with weights fetched **once**
//!    ([`Evaluator::with_batch`] semantics). Slice makespans come from
//!    the tenant's long-lived [`IncrementalSchedule`] via
//!    [`IncrementalSchedule::rebatch`]: changing `k` re-costs layers
//!    and propagates, re-serving the same `k` propagates nothing, and
//!    repeated sizes hit a memo outright — bitwise-equal to a full
//!    evaluation either way (cross-checked when
//!    [`H2hConfig::serve_verify`] is set).
//! 5. **Per-tenant tail-latency accounting** ([`TenantServeStats`]) —
//!    the full attained-latency *distribution* per tenant (exact
//!    sorted samples, [`LatencyLedger`]): p50/p95/p99 alongside
//!    mean/max, violation counters, amortized weight-fetch time —
//!    rendered by [`crate::report::serve_report`] and recorded (with
//!    offered-load × p99 throughput curves) by the `bench_serve` bin.
//!    [`ServeOutcome::check_coherence`] cross-validates the ledger
//!    against the scalar counters (sample count == served, ledger max
//!    == worst latency bitwise, samples over SLO == violations).
//! 6. **Overload shedding** ([`H2hConfig::serve_queue_cap`]) — with a
//!    bounded per-tenant queue, backlog above the cap sheds from the
//!    queue *head*: under a latency SLO the oldest waiting request is
//!    the lowest-value work (nearest or past its deadline), so
//!    head-drop is value-ranked shedding. Shed requests land in a
//!    per-tenant ledger ([`TenantServeStats::shed`], with
//!    [`TenantServeStats::shed_doomed`] counting those already unable
//!    to meet their SLO), and an unrecovered outage sheds the blocked
//!    tenants' remaining windows instead of stalling the drain — the
//!    bounded-queue fix for the PR 7 "parks whoever fails" gap. The
//!    default unbounded queue keeps the historical semantics
//!    (everything served; a permanent blockage is
//!    [`ServeError::Stalled`]).
//! 7. **Degraded-fabric serving** ([`TenantRegistry::serve_with_faults`])
//!    — the same round loop replayed through a
//!    [`h2h_system::fault::FaultPlan`]: at every boundary that changes
//!    the fabric (sampled at round starts; slices are atomic), each
//!    tenant's mapping is repaired onto the degraded system by the
//!    time-budgeted [`crate::repair::repair_mapping`], its pinned
//!    weights are evicted (the next slice re-streams them over the
//!    degraded routes — re-admission), and the SLO ledger records the
//!    degraded window separately. An empty plan is bit-identical to
//!    [`TenantRegistry::serve`], and the registry is snapshot-restored
//!    afterwards so later no-fault calls stay bit-identical too.
//!    Host-scoped faults extend the timeline: a degraded host NIC
//!    re-prices every via-host route and weight re-stream, while a
//!    **down** host freezes swap-ins entirely — only tenants already
//!    resident keep serving until the recovery boundary (a drain
//!    blocked forever returns [`ServeError::Stalled`]). When
//!    [`H2hConfig::repair_secs_per_move`] is set, each transition's
//!    budgeted search is additionally charged modeled wall time: the
//!    tenant keeps serving on the evacuation-only interim placement
//!    until the searched one *lands*, and the window is recorded in
//!    [`TenantServeStats::repair_time_charged`]. Tenants whose repair
//!    or budget trim fails on the shrunken fabric are parked (shed)
//!    instead of failing the run, and retried at every later
//!    transition.
//!
//! The contention model is deliberately conservative: slices within a
//! round execute sequentially (the host dispatches one model at a
//! time), so co-scheduling never *hides* latency — every win reported
//! here comes from weight-residency amortization, which is exactly what
//! the H2H cost model can defend. Residency itself is stateful across
//! rounds: tenants that fit the budget together stay resident, but
//! when the batch former must alternate oversubscribed tenants, a
//! tenant evicted in one round **re-streams its pinned weights over
//! Ethernet** before its next slice ([`TenantServeStats::reload_time`])
//! — swap-ins are never free, and batching additionally amortizes them
//! across the slice. Related work motivates the framing:
//! task-mapping with shared-resource contention as first-class
//! (arXiv:2208.06321) and multi-application co-residency as the core
//! heterogeneous-CPS challenge (arXiv:2005.07841).

use std::fmt;

use h2h_model::graph::{LayerId, ModelGraph};
use h2h_model::tensor::DataType;
use h2h_model::units::{Bytes, Seconds};
use h2h_system::fault::{FaultPlan, FaultState};
use h2h_system::incremental::IncrementalSchedule;
use h2h_system::locality::LocalityState;
use h2h_system::mapping::Mapping;
use h2h_system::schedule::{CostCache, Evaluator};
use h2h_system::sim::event_reached;
use h2h_system::system::{AccId, SystemSpec};
use h2h_system::topology::Endpoint;

use crate::arrivals::{ArrivalProcess, ArrivalSchedule, Arrivals};
use crate::config::{H2hConfig, RoundPolicy};
use crate::knapsack::{solve_auto, Item};
use crate::pipeline::{H2hError, H2hMapper};
use crate::preset::PinPreset;
use crate::repair::{repair_mapping, resolve_repair_budget};

/// One tenant's admission request: a model plus its service contract.
#[derive(Debug, Clone)]
pub struct TenantSpec {
    /// Display name (bench/report key; need not be unique, but should be).
    pub name: String,
    /// The tenant's model (validated at admission).
    pub model: ModelGraph,
    /// Request arrival rate in requests/second. Under the default
    /// [`ArrivalProcess::Fixed`] process arrivals are modeled
    /// deterministically at `j / rate_hz` for `j = 0..requests` (every
    /// serve run exactly reproducible); a Poisson process samples its
    /// exponential gaps at this rate; a trace ignores it for timing.
    pub rate_hz: f64,
    /// Per-request latency SLO (arrival → completion).
    pub slo: Seconds,
    /// Number of requests in the serving window (the bench horizon).
    pub requests: usize,
    /// Arrival process driving the open-loop window
    /// ([`ArrivalProcess::Fixed`] by default — the deterministic
    /// clock, bit-identical to the pre-streaming serve loop).
    pub arrivals: ArrivalProcess,
}

impl TenantSpec {
    /// Convenience constructor (deterministic fixed-clock arrivals).
    pub fn new(
        name: impl Into<String>,
        model: ModelGraph,
        rate_hz: f64,
        slo: Seconds,
        requests: usize,
    ) -> Self {
        TenantSpec {
            name: name.into(),
            model,
            rate_hz,
            slo,
            requests,
            arrivals: ArrivalProcess::Fixed,
        }
    }

    /// Builder: replace the arrival process (validated and
    /// materialized at admission).
    #[must_use]
    pub fn with_arrivals(mut self, arrivals: ArrivalProcess) -> Self {
        self.arrivals = arrivals;
        self
    }
}

/// Handle to an admitted tenant (index into the registry).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TenantId(usize);

impl TenantId {
    /// Raw registry index.
    pub fn index(self) -> usize {
        self.0
    }
}

/// Errors of admission and serving.
#[derive(Debug)]
pub enum ServeError {
    /// The tenant's model could not be mapped on the system.
    Mapping(H2hError),
    /// The service contract is unusable (zero rate, zero requests, …).
    BadSpec {
        /// Tenant name.
        tenant: String,
        /// What was wrong.
        reason: String,
    },
    /// The tenant cannot fit the shared DRAM budget even with every
    /// discretionary pin trimmed (its fusion buffers alone exceed the
    /// budget on some board).
    DramBudget {
        /// Tenant name.
        tenant: String,
        /// Offending accelerator (catalog id).
        acc: String,
        /// Bytes the tenant needs resident on that accelerator.
        needed: Bytes,
        /// The per-accelerator budget.
        budget: Bytes,
    },
    /// Serving deadlocked: every remaining request belongs to a tenant
    /// that cannot currently serve (parked by shedding, or not
    /// resident while the host NIC is down) and no future fault
    /// boundary can change the condition.
    Stalled {
        /// Modeled time at which progress stopped.
        at: Seconds,
        /// Requests left unserved across tenants.
        unserved: usize,
        /// Tenants parked (shed) at the stall.
        parked: usize,
        /// Whether the host NIC was down at the stall.
        host_down: bool,
    },
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Mapping(e) => write!(f, "tenant mapping failed: {e}"),
            ServeError::BadSpec { tenant, reason } => {
                write!(f, "tenant `{tenant}`: {reason}")
            }
            ServeError::DramBudget { tenant, acc, needed, budget } => write!(
                f,
                "tenant `{tenant}` needs {needed} resident on {acc} but the serve budget is {budget}"
            ),
            ServeError::Stalled { at, unserved, parked, host_down } => write!(
                f,
                "serving stalled at t={at}: {unserved} requests unserved ({parked} tenants \
                 parked, host {}) — an unrecovered outage blocks every remaining tenant",
                if *host_down { "down" } else { "up" }
            ),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<H2hError> for ServeError {
    fn from(e: H2hError) -> Self {
        ServeError::Mapping(e)
    }
}

/// Validates a service contract (shared by [`TenantRegistry::admit`]
/// and [`TenantRegistry::set_contract`]).
fn validate_contract(
    name: &str,
    rate_hz: f64,
    slo: Seconds,
    requests: usize,
) -> Result<(), ServeError> {
    if !(rate_hz > 0.0 && rate_hz.is_finite()) {
        return Err(ServeError::BadSpec {
            tenant: name.to_owned(),
            reason: format!("rate must be positive and finite, got {rate_hz}"),
        });
    }
    if requests == 0 {
        return Err(ServeError::BadSpec {
            tenant: name.to_owned(),
            reason: "a tenant must bring at least one request".into(),
        });
    }
    // NaN fails the `>` comparison and infinities fail `is_finite`,
    // so neither survives to the urgency math (where a non-finite SLO
    // once meant the round former's `total_cmp` ranks and the doomed
    // horizon silently degenerated, and violation counting turned
    // itself off — `latency > NaN` is never true).
    if !(slo > Seconds::ZERO && slo.as_f64().is_finite()) {
        return Err(ServeError::BadSpec {
            tenant: name.to_owned(),
            reason: format!("the SLO must be positive and finite, got {}", slo.as_f64()),
        });
    }
    Ok(())
}

/// Per-board serve-budget enforcement, shared by admission and the
/// fault-transition repair path: on every board over budget, keep the
/// highest-value pins that fit (knapsack on saved transfer time, the
/// step-2 objective), unpin the rest, and re-cost the dropped layers'
/// cones as an incremental delta. `system` is whatever fabric the
/// tenant is currently priced on (the degraded one during a fault
/// window — budgets depend only on DRAM capacity, which faults never
/// change). Returns the number of pins dropped.
#[allow(clippy::too_many_arguments)]
fn trim_to_budget(
    system: &SystemSpec,
    config: &H2hConfig,
    tenant: &str,
    model: &ModelGraph,
    mapping: &Mapping,
    locality: &mut LocalityState,
    inc: &mut IncrementalSchedule,
    ev: &Evaluator<'_>,
) -> Result<usize, ServeError> {
    let budget_of = |acc: AccId| {
        let cap = system.acc(acc).dram_capacity().as_u64() as f64;
        (cap * config.serve_dram_budget_frac) as u64
    };
    let mut trimmed_pins = 0usize;
    let topo = system.topology();
    for acc in system.acc_ids() {
        let budget = budget_of(acc);
        let used = locality.dram_used(acc).as_u64();
        if used <= budget {
            continue;
        }
        let mut pins: Vec<LayerId> =
            locality.pinned_layers().filter(|l| mapping.acc_of(*l) == acc).collect();
        pins.sort_unstable();
        let pinned_bytes: u64 = pins
            .iter()
            .map(|l| model.layer(*l).weight_bytes(DataType::F32).as_u64())
            .sum();
        // Everything resident that is not a pin (fusion buffers) is
        // non-negotiable: fusions changed the *schedule structure*
        // the offline search committed to, pins only change where
        // weights stream from.
        let fixed = used - pinned_bytes;
        if fixed > budget {
            return Err(ServeError::DramBudget {
                tenant: tenant.to_owned(),
                acc: system.acc(acc).meta().id.clone(),
                needed: Bytes::new(fixed),
                budget: Bytes::new(budget),
            });
        }
        let dram = system.acc(acc).dram_bandwidth().as_f64();
        // Saved streaming time is priced at this board's host-route
        // rate (the scalar Ethernet rate on a uniform star).
        let eth = topo.path_bw(Endpoint::Host, Endpoint::Acc(acc)).as_f64();
        let items: Vec<Item> = pins
            .iter()
            .enumerate()
            .map(|(idx, l)| {
                let bytes = model.layer(*l).weight_bytes(DataType::F32).as_u64();
                Item {
                    id: idx,
                    weight: bytes,
                    value: bytes as f64 * (1.0 / eth - 1.0 / dram),
                }
            })
            .collect();
        let keep = solve_auto(&items, budget - fixed);
        let mut keep_mask = vec![false; pins.len()];
        for idx in keep {
            keep_mask[idx] = true;
        }
        let mut dropped = Vec::new();
        for (idx, layer) in pins.iter().enumerate() {
            if !keep_mask[idx] {
                let ok = locality.unpin(model, *layer, acc);
                debug_assert!(ok, "trim targets were pinned");
                dropped.push(*layer);
                trimmed_pins += 1;
            }
        }
        // Delta re-cost: only the unpinned layers' weight terms
        // changed; refresh them and propagate their cone instead of
        // rebuilding the schedule.
        let seeds = inc.refresh_costs(ev, mapping, locality, dropped);
        inc.propagate(&seeds);
    }
    if trimmed_pins > 0 {
        // Restore bitwise-exact aggregates after the delta edits.
        inc.resum_aggregates();
    }
    for acc in system.acc_ids() {
        let used = locality.dram_used(acc);
        let budget = Bytes::new(budget_of(acc));
        if used > budget {
            return Err(ServeError::DramBudget {
                tenant: tenant.to_owned(),
                acc: system.acc(acc).meta().id.clone(),
                needed: used,
                budget,
            });
        }
    }
    Ok(trimmed_pins)
}

/// Evaluates one tenant's slice makespan at batch `k` through its
/// incremental schedule (memoized per batch size). `system` is the
/// fabric the tenant is currently priced on — the degraded system
/// during a fault window; the memo is reset at every fault transition,
/// so hits never cross fabrics.
fn slice_makespan_on(
    system: &SystemSpec,
    verify: bool,
    t: &mut Tenant,
    k: u32,
    counters: &mut ServeCounters,
) -> Seconds {
    if let Some((_, m)) = t.slice_memo.iter().find(|(b, _)| *b == k) {
        counters.slice_cache_hits += 1;
        return *m;
    }
    counters.slice_evals += 1;
    let ev = Evaluator::from_cache(&t.spec.model, system, t.cache.clone()).with_batch(k);
    // The memo pre-empts same-size re-evaluation, so every call
    // here rebatches to a genuinely new size.
    t.inc.rebatch(&ev, &t.mapping, &t.locality);
    let m = t.inc.makespan();
    if verify {
        counters.crosschecks += 1;
        let full = ev.evaluate(&t.mapping, &t.locality).makespan();
        if full.as_f64() != m.as_f64() {
            counters.crosscheck_mismatches += 1;
        }
    }
    t.slice_memo.push((k, m));
    m
}

/// One admitted tenant: its offline-searched placement plus the
/// long-lived incremental schedule the slice evaluator mutates.
#[derive(Debug)]
pub struct Tenant {
    spec: TenantSpec,
    mapping: Mapping,
    locality: LocalityState,
    /// Memoized per-(layer, accelerator) compute costs, cloned from the
    /// admission mapper so per-round evaluator rebuilds are cheap
    /// ([`Evaluator::from_cache`]).
    cache: CostCache,
    /// The tenant's schedule state; durations reflect the batch size
    /// of the last fresh slice evaluation.
    inc: IncrementalSchedule,
    /// Slice makespan memo, keyed by batch size (append-only, tiny).
    slice_memo: Vec<(u32, Seconds)>,
    /// Batch-1 slice makespan — the latency a request attains executing
    /// alone with zero queueing, the "ideal" of the SLO accounting.
    ideal: Seconds,
    /// Weight-transfer seconds one slice pays exactly once regardless
    /// of batch size (the amortization the batch former exploits).
    weight_xfer_once: Seconds,
    /// Resident DRAM bytes per accelerator (pins + fusion buffers).
    resident: Vec<u64>,
    /// Total pinned weight bytes (post-trim) — the payload an evicted
    /// tenant must re-stream over the interconnect to become resident
    /// again.
    pinned_total: Bytes,
    /// Pinned weight bytes per accelerator (post-trim): eviction
    /// reloads charge each board's share at that board's actual
    /// host-link rate, not one global scalar.
    pinned_by_acc: Vec<u64>,
    /// Pins dropped at admission to fit the shared budget.
    trimmed_pins: usize,
    /// Materialization of `spec.arrivals` against the contract —
    /// rebuilt by `admit`, `set_contract` and `set_arrivals`, never by
    /// serving (fault snapshots need not carry it).
    arrivals: ArrivalSchedule,
}

impl Tenant {
    /// The admission spec.
    pub fn spec(&self) -> &TenantSpec {
        &self.spec
    }

    /// The offline-searched mapping.
    pub fn mapping(&self) -> &Mapping {
        &self.mapping
    }

    /// The (possibly budget-trimmed) locality state.
    pub fn locality(&self) -> &LocalityState {
        &self.locality
    }

    /// Batch-1 slice makespan (zero-queueing request latency).
    pub fn ideal_latency(&self) -> Seconds {
        self.ideal
    }

    /// Pins dropped at admission to fit the shared DRAM budget.
    pub fn trimmed_pins(&self) -> usize {
        self.trimmed_pins
    }

    /// Total pinned weight bytes (post-trim) — the payload an evicted
    /// tenant re-streams, each board's share at its own link rate.
    pub fn pinned_bytes(&self) -> Bytes {
        self.pinned_total
    }

    /// Resident DRAM bytes on one accelerator.
    pub fn resident_bytes(&self, acc: AccId) -> Bytes {
        Bytes::new(self.resident[acc.index()])
    }

    /// Resident DRAM bytes summed over the system.
    pub fn resident_total(&self) -> Bytes {
        Bytes::new(self.resident.iter().sum())
    }

    /// Arrival time of request `j` under the materialized schedule
    /// (the deterministic `j / rate_hz` clock by default).
    fn arrival(&self, j: usize) -> f64 {
        self.arrivals.arrival(j)
    }

    /// Requests already *doomed* at `horizon = now + ideal − slo`:
    /// those arriving strictly before it, since even service starting
    /// immediately completes at `now + ideal > arrival + slo`. Strict
    /// on purpose — a request whose arrival lands exactly on the
    /// horizon attains exactly its SLO, and violations are strictly
    /// `latency > slo`. Counted against the materialized arrivals
    /// (the closed-form `floor(horizon·rate)+1` estimate this
    /// replaces over-counted by one whenever `horizon·rate` sat
    /// within its 1e-9 fudge of an integer).
    fn doomed_arrivals(&self, horizon: f64) -> usize {
        let mut k = 0;
        while k < self.spec.requests && self.arrival(k) < horizon {
            k += 1;
        }
        k
    }
}

/// The tenant fields a fault window mutates — snapshotted at the start
/// of a faulted serve and restored at the end, so the registry (and
/// every later [`TenantRegistry::serve`] call) stays bit-identical to
/// a run that never saw faults.
#[derive(Debug)]
struct TenantSnapshot {
    mapping: Mapping,
    locality: LocalityState,
    inc: IncrementalSchedule,
    slice_memo: Vec<(u32, Seconds)>,
    ideal: Seconds,
    weight_xfer_once: Seconds,
    resident: Vec<u64>,
    pinned_total: Bytes,
    pinned_by_acc: Vec<u64>,
}

impl TenantSnapshot {
    fn of(t: &Tenant) -> Self {
        TenantSnapshot {
            mapping: t.mapping.clone(),
            locality: t.locality.clone(),
            inc: t.inc.clone(),
            slice_memo: t.slice_memo.clone(),
            ideal: t.ideal,
            weight_xfer_once: t.weight_xfer_once,
            resident: t.resident.clone(),
            pinned_total: t.pinned_total,
            pinned_by_acc: t.pinned_by_acc.clone(),
        }
    }

    fn restore(self, t: &mut Tenant) {
        t.mapping = self.mapping;
        t.locality = self.locality;
        t.inc = self.inc;
        t.slice_memo = self.slice_memo;
        t.ideal = self.ideal;
        t.weight_xfer_once = self.weight_xfer_once;
        t.resident = self.resident;
        t.pinned_total = self.pinned_total;
        t.pinned_by_acc = self.pinned_by_acc;
    }
}

/// A repaired placement waiting out its modeled wall time
/// ([`crate::repair::RepairOutcome::wall_time`]): the tenant serves on
/// the evacuation-only interim placement until `lands_at`, then the
/// searched mapping is installed. A newer fault transition drops
/// pending stages — they were computed against a fabric that no longer
/// exists.
#[derive(Debug)]
struct StagedRepair {
    /// Absolute serving-clock time the repair completes.
    lands_at: f64,
    mapping: Mapping,
    locality: LocalityState,
}

/// Installs a placement (a transition's repair, its interim
/// evacuation, or a landed stage) into a tenant priced on fabric
/// `sys`: rebuild the incremental schedule, re-enforce the serve
/// budget, refresh the memo/ideal/footprint bookkeeping. Residency is
/// the *caller's* decision — an install usually evicts, but a down
/// host keeps an unchanged placement resident.
///
/// # Errors
///
/// Propagates [`ServeError::DramBudget`] from the trim; the caller
/// parks the tenant then.
fn install_placement(
    sys: &SystemSpec,
    cfg: &H2hConfig,
    t: &mut Tenant,
    s: &mut TenantServeStats,
    mapping: Mapping,
    locality: LocalityState,
) -> Result<(), ServeError> {
    // The compute-cost cache stores healthy-speed times (throttles are
    // priced at read time), so it stays valid on any degraded fabric.
    let ev = Evaluator::from_cache(&t.spec.model, sys, t.cache.clone());
    t.mapping = mapping;
    t.locality = locality;
    t.inc = IncrementalSchedule::new(&ev, &t.mapping, &t.locality);
    // The repair re-ran pin selection against DRAM capacity; re-enforce
    // the serve fraction exactly like admission.
    trim_to_budget(
        sys,
        cfg,
        &t.spec.name,
        &t.spec.model,
        &t.mapping,
        &mut t.locality,
        &mut t.inc,
        &ev,
    )?;
    let ideal = t.inc.makespan();
    t.ideal = ideal;
    t.slice_memo = vec![(1, ideal)];
    // The ledger's ideal floor must hold for requests served on any
    // fabric of the run; keep the smallest.
    s.ideal = s.ideal.min(ideal);
    t.weight_xfer_once = t
        .spec
        .model
        .layer_ids()
        .map(|id| ev.layer_cost(&t.mapping, &t.locality, id).weight_xfer)
        .sum();
    t.resident = sys.acc_ids().map(|a| t.locality.dram_used(a).as_u64()).collect();
    t.pinned_total = t.locality.total_pinned_bytes(&t.spec.model);
    t.pinned_by_acc = vec![0u64; sys.num_accs()];
    for l in t.locality.pinned_layers() {
        t.pinned_by_acc[t.mapping.acc_of(l).index()] +=
            t.spec.model.layer(l).weight_bytes(DataType::F32).as_u64();
    }
    Ok(())
}

/// Exact per-tenant attained-latency distribution: every served
/// request's latency, kept sorted, with nearest-rank percentiles.
/// Exact sampling is deliberate at serving-window scale (tens to
/// thousands of requests): the tail quantiles are reproducible bit
/// for bit, which the equivalence suites and the `BENCH_serve.json`
/// byte-identity contract require — a streaming sketch would trade
/// that away to save memory the windows don't need.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct LatencyLedger {
    sorted: Vec<f64>,
}

impl LatencyLedger {
    /// Records one attained latency (seconds), keeping order.
    fn record(&mut self, latency: f64) {
        let pos = self.sorted.partition_point(|s| *s <= latency);
        self.sorted.insert(pos, latency);
    }

    /// Samples recorded (== requests served).
    pub fn count(&self) -> usize {
        self.sorted.len()
    }

    /// Nearest-rank quantile: the `⌈q·n⌉`-th smallest sample
    /// (`Seconds::ZERO` when nothing was recorded).
    pub fn quantile(&self, q: f64) -> Seconds {
        let n = self.sorted.len();
        if n == 0 {
            return Seconds::ZERO;
        }
        let rank = (q * n as f64).ceil() as usize;
        Seconds::new(self.sorted[rank.clamp(1, n) - 1])
    }

    /// Median attained latency.
    pub fn p50(&self) -> Seconds {
        self.quantile(0.50)
    }

    /// 95th-percentile attained latency.
    pub fn p95(&self) -> Seconds {
        self.quantile(0.95)
    }

    /// 99th-percentile attained latency.
    pub fn p99(&self) -> Seconds {
        self.quantile(0.99)
    }

    /// Worst recorded latency (`Seconds::ZERO` when empty) — must
    /// equal [`TenantServeStats::attained_max`] bitwise.
    pub fn max(&self) -> Seconds {
        Seconds::new(self.sorted.last().copied().unwrap_or(0.0))
    }

    /// Sum of all samples (coherence cross-check against
    /// [`TenantServeStats::attained_total`]).
    pub fn total(&self) -> f64 {
        self.sorted.iter().sum()
    }

    /// Samples strictly above `slo` — the same strict comparison the
    /// violation counter uses, so the two must agree exactly.
    pub fn over(&self, slo: Seconds) -> usize {
        self.sorted.len() - self.sorted.partition_point(|s| *s <= slo.as_f64())
    }
}

/// Per-tenant serving outcome: the SLO ledger.
#[derive(Debug, Clone, PartialEq)]
pub struct TenantServeStats {
    /// Tenant name.
    pub name: String,
    /// Requests in the window.
    pub requests: usize,
    /// Requests actually served (== `requests` after a full run).
    pub served: usize,
    /// Requests whose attained latency exceeded the SLO.
    pub violations: usize,
    /// The SLO target.
    pub slo: Seconds,
    /// Zero-queueing request latency (batch-1 slice makespan).
    pub ideal: Seconds,
    /// Sum of attained latencies (arrival → completion).
    pub attained_total: Seconds,
    /// Worst attained latency.
    pub attained_max: Seconds,
    /// Slices served.
    pub batches: usize,
    /// Largest slice batch used.
    pub max_batch: u32,
    /// Weight-fetch seconds saved versus serving every request in its
    /// own slice: `(k - 1) × weight_xfer_once` summed over slices.
    pub amortized_weight_time: Seconds,
    /// Times this tenant was swapped back in after an eviction (its
    /// pinned weights re-streamed over Ethernet before the slice).
    pub weight_reloads: usize,
    /// Total Ethernet time spent on those reloads (already included in
    /// the attained latencies and the drain makespan).
    pub reload_time: Seconds,
    /// Mapping repairs applied to this tenant at fault transitions
    /// ([`TenantRegistry::serve_with_faults`]); zero on no-fault runs.
    pub repairs: usize,
    /// Requests completed while the fabric was degraded (a fault
    /// window was in force at their round's start).
    pub degraded_served: usize,
    /// SLO violations among [`TenantServeStats::degraded_served`] —
    /// the degraded-mode slice of the violation ledger.
    pub violations_degraded: usize,
    /// Modeled repair wall time charged to this tenant's serving clock
    /// ([`crate::repair::RepairOutcome::wall_time`] summed over fault
    /// transitions): while it elapses the tenant serves on the interim
    /// evacuated placement; the searched one lands only afterwards.
    /// Zero under the default instantaneous-repair model.
    pub repair_time_charged: Seconds,
    /// Times this tenant was parked (shed) because a fault transition
    /// left its repair or budget trim unsatisfiable on the shrunken
    /// fabric; a later transition that repairs successfully un-parks
    /// it.
    pub parks: usize,
    /// The full attained-latency distribution (exact sorted samples):
    /// p50/p95/p99 tails alongside the scalar mean/max columns.
    pub latencies: LatencyLedger,
    /// Requests shed by the bounded-queue overload policy
    /// ([`H2hConfig::serve_queue_cap`]) — dropped from the queue head
    /// (oldest first) on overflow, or in bulk when an unrecovered
    /// outage permanently blocks the tenant. Always zero under the
    /// default unbounded queue. `served + shed == requests` after a
    /// complete drain.
    pub shed: usize,
    /// Among [`TenantServeStats::shed`], requests that were already
    /// doomed when dropped (even immediate service would have violated
    /// the SLO) — shedding them lost nothing.
    pub shed_doomed: usize,
}

impl TenantServeStats {
    /// Mean attained latency (zero if nothing was served).
    pub fn attained_mean(&self) -> Seconds {
        if self.served == 0 {
            Seconds::ZERO
        } else {
            self.attained_total / self.served as f64
        }
    }
}

/// Run-wide mechanical counters ([`crate::delta::SearchStats`] style):
/// how much work the slice evaluator actually did, and whether the
/// incremental path stayed equal to the reference.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ServeCounters {
    /// Scheduling rounds executed.
    pub rounds: usize,
    /// Slices whose makespan was freshly evaluated (rebatch + propagate).
    pub slice_evals: usize,
    /// Slices answered from the per-tenant batch-size memo.
    pub slice_cache_hits: usize,
    /// Full-evaluation cross-checks run ([`H2hConfig::serve_verify`]).
    pub crosschecks: usize,
    /// Cross-checks where the incremental makespan was not bitwise
    /// equal to the full evaluation (must stay zero).
    pub crosscheck_mismatches: usize,
    /// Total swap-ins across tenants (evicted pinned weights
    /// re-streamed over Ethernet).
    pub weight_reloads: usize,
    /// Fault-state transitions applied (boundary crossings of the
    /// [`h2h_system::fault::FaultPlan`] that changed the fabric).
    pub fault_transitions: usize,
    /// Per-tenant mapping repairs run at those transitions.
    pub repairs: usize,
    /// Attempted delta moves spent by all repairs (the deterministic
    /// budget currency of [`crate::repair::repair_mapping`]).
    pub repair_evals: usize,
    /// Repairs whose searched placement was staged behind a modeled
    /// wall-time window ([`H2hConfig::repair_secs_per_move`]) instead
    /// of landing instantly.
    pub staged_repairs: usize,
    /// Tenants parked (shed) at fault transitions because repair or
    /// the budget trim failed on the degraded fabric.
    pub sheds: usize,
    /// Requests shed across tenants by the bounded-queue overload
    /// policy ([`H2hConfig::serve_queue_cap`]); zero under the default
    /// unbounded queue.
    pub requests_shed: usize,
}

/// Result of one serving window.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeOutcome {
    /// Per-tenant SLO ledgers, in admission order.
    pub tenants: Vec<TenantServeStats>,
    /// Completion time of the last request (the drain makespan).
    pub makespan: Seconds,
    /// Mechanical counters.
    pub counters: ServeCounters,
    /// Peak co-resident bytes per accelerator over all rounds.
    pub peak_resident: Vec<Bytes>,
    /// The per-accelerator serve budget the rounds were held to.
    pub budgets: Vec<Bytes>,
    /// Accelerator catalog ids, index-aligned with the two vectors
    /// above.
    pub acc_names: Vec<String>,
    /// The round-forming policy the window ran under.
    pub policy: RoundPolicy,
}

impl ServeOutcome {
    /// Total requests served across tenants.
    pub fn total_served(&self) -> usize {
        self.tenants.iter().map(|t| t.served).sum()
    }

    /// Total SLO violations across tenants.
    pub fn total_violations(&self) -> usize {
        self.tenants.iter().map(|t| t.violations).sum()
    }

    /// Total requests shed across tenants (bounded-queue policy).
    pub fn total_shed(&self) -> usize {
        self.tenants.iter().map(|t| t.shed).sum()
    }

    /// Checks every invariant the accounting promises: all requests
    /// accounted for (served or ledgered as shed), violations within
    /// the request population, attained latencies at or above the
    /// zero-queueing ideal, the latency distribution coherent with the
    /// scalar columns (sample count == served, p50 ≤ p95 ≤ p99 ≤ max,
    /// ledger max == worst latency bitwise, samples over SLO ==
    /// violations), the DRAM budget never exceeded, and zero
    /// incremental-vs-full mismatches. Returns the first violated
    /// invariant as an error string — the CI smoke and the property
    /// suite both gate on this. A tenant parked for the whole drain
    /// (served 0, everything shed) is coherent: the mean/max/ideal
    /// checks apply only to tenants that served something.
    pub fn check_coherence(&self) -> Result<(), String> {
        for t in &self.tenants {
            if t.served + t.shed != t.requests {
                return Err(format!(
                    "{}: served {} + shed {} of {} requests",
                    t.name, t.served, t.shed, t.requests
                ));
            }
            if t.shed_doomed > t.shed {
                return Err(format!(
                    "{}: {} doomed sheds exceed {} total sheds",
                    t.name, t.shed_doomed, t.shed
                ));
            }
            if t.latencies.count() != t.served {
                return Err(format!(
                    "{}: latency ledger holds {} samples for {} served requests",
                    t.name,
                    t.latencies.count(),
                    t.served
                ));
            }
            if t.violations > t.served {
                return Err(format!(
                    "{}: {} violations exceed {} served requests",
                    t.name, t.violations, t.served
                ));
            }
            if t.degraded_served > t.served {
                return Err(format!(
                    "{}: {} degraded-window requests exceed {} served",
                    t.name, t.degraded_served, t.served
                ));
            }
            if t.violations_degraded > t.violations {
                return Err(format!(
                    "{}: {} degraded violations exceed {} total violations",
                    t.name, t.violations_degraded, t.violations
                ));
            }
            if t.violations_degraded > t.degraded_served {
                return Err(format!(
                    "{}: {} degraded violations exceed {} degraded-window requests",
                    t.name, t.violations_degraded, t.degraded_served
                ));
            }
            if self.counters.fault_transitions == 0
                && (t.repairs > 0
                    || t.degraded_served > 0
                    || t.violations_degraded > 0
                    || t.parks > 0
                    || t.repair_time_charged > Seconds::ZERO)
            {
                return Err(format!(
                    "{}: degraded-mode ledger is non-zero without a fault transition",
                    t.name
                ));
            }
            if t.repair_time_charged > Seconds::ZERO && t.repairs == 0 && t.parks == 0 {
                return Err(format!(
                    "{}: {} of repair time charged with zero repairs or parks",
                    t.name, t.repair_time_charged
                ));
            }
            if t.weight_reloads == 0 && t.reload_time > Seconds::ZERO {
                return Err(format!(
                    "{}: {} of reload time with zero swap-ins",
                    t.name, t.reload_time
                ));
            }
            // Distribution-vs-scalar checks only bite for tenants that
            // served something: an all-parked tenant (served 0, window
            // shed under a permanent fault) legitimately reports mean
            // = max = ZERO, which would otherwise trip `mean < ideal`.
            if t.served > 0 {
                let mean = t.attained_mean().as_f64();
                let ideal = t.ideal.as_f64();
                if mean < ideal * (1.0 - 1e-12) {
                    return Err(format!(
                        "{}: mean attained {mean}s below the zero-queueing ideal {ideal}s",
                        t.name
                    ));
                }
                if t.attained_max.as_f64() < mean * (1.0 - 1e-12) {
                    return Err(format!(
                        "{}: max attained {} below the mean {mean}s",
                        t.name,
                        t.attained_max.as_f64()
                    ));
                }
                let (p50, p95, p99) = (t.latencies.p50(), t.latencies.p95(), t.latencies.p99());
                if !(p50 <= p95 && p95 <= p99 && p99 <= t.latencies.max()) {
                    return Err(format!(
                        "{}: percentiles out of order (p50 {p50}, p95 {p95}, p99 {p99}, \
                         max {})",
                        t.name,
                        t.latencies.max()
                    ));
                }
                if t.latencies.max() != t.attained_max {
                    return Err(format!(
                        "{}: ledger max {} diverges from attained max {}",
                        t.name,
                        t.latencies.max(),
                        t.attained_max
                    ));
                }
                if t.latencies.over(t.slo) != t.violations {
                    return Err(format!(
                        "{}: {} ledger samples over the SLO vs {} counted violations",
                        t.name,
                        t.latencies.over(t.slo),
                        t.violations
                    ));
                }
                let total = t.latencies.total();
                let accum = t.attained_total.as_f64();
                if (total - accum).abs() > 1e-9 * accum.abs().max(1.0) {
                    return Err(format!(
                        "{}: ledger sum {total}s diverges from attained total {accum}s",
                        t.name
                    ));
                }
            }
        }
        let shed_total: usize = self.tenants.iter().map(|t| t.shed).sum();
        if shed_total != self.counters.requests_shed {
            return Err(format!(
                "{} tenant-ledger sheds vs {} counted run-wide",
                shed_total, self.counters.requests_shed
            ));
        }
        for (i, (peak, budget)) in
            self.peak_resident.iter().zip(self.budgets.iter()).enumerate()
        {
            if peak > budget {
                return Err(format!(
                    "{}: peak co-resident {peak} exceeds the budget {budget}",
                    self.acc_names[i]
                ));
            }
        }
        if self.counters.crosscheck_mismatches > 0 {
            return Err(format!(
                "{} slice cross-checks diverged from the full evaluation",
                self.counters.crosscheck_mismatches
            ));
        }
        if self.counters.fault_transitions == 0 && self.counters.repairs > 0 {
            return Err(format!(
                "{} repairs ran without a fault transition",
                self.counters.repairs
            ));
        }
        if self.counters.fault_transitions == 0
            && (self.counters.staged_repairs > 0 || self.counters.sheds > 0)
        {
            return Err(format!(
                "{} staged repairs / {} sheds without a fault transition",
                self.counters.staged_repairs, self.counters.sheds
            ));
        }
        // Every staging ends as either a counted repair (the interim
        // install succeeded) or a shed (it did not).
        if self.counters.staged_repairs > self.counters.repairs + self.counters.sheds {
            return Err(format!(
                "{} staged repairs exceed {} repairs + {} sheds",
                self.counters.staged_repairs, self.counters.repairs, self.counters.sheds
            ));
        }
        let charged: f64 =
            self.tenants.iter().map(|t| t.repair_time_charged.as_f64()).sum();
        if charged > 0.0 && self.counters.repairs == 0 && self.counters.sheds == 0 {
            return Err(format!(
                "{charged}s of repair time charged without any repair or shed"
            ));
        }
        Ok(())
    }
}

/// The multi-tenant serving state: admitted tenants, their pinned
/// placements, and the shared-budget batch former.
#[derive(Debug)]
pub struct TenantRegistry<'s> {
    system: &'s SystemSpec,
    config: H2hConfig,
    tenants: Vec<Tenant>,
}

impl<'s> TenantRegistry<'s> {
    /// An empty registry over one system.
    ///
    /// # Panics
    ///
    /// Panics if the serve knobs are out of range:
    /// [`H2hConfig::serve_dram_budget_frac`] must be in `(0, 1]` (a
    /// fraction above 1 would let the accounting promise more DRAM
    /// than the boards have) and [`H2hConfig::serve_max_batch`] must
    /// be ≥ 1.
    pub fn new(system: &'s SystemSpec, config: H2hConfig) -> Self {
        assert!(
            config.serve_dram_budget_frac > 0.0 && config.serve_dram_budget_frac <= 1.0,
            "serve_dram_budget_frac must be in (0, 1], got {}",
            config.serve_dram_budget_frac
        );
        assert!(config.serve_max_batch >= 1, "serve_max_batch must be at least 1");
        TenantRegistry { system, config, tenants: Vec::new() }
    }

    /// The shared system.
    pub fn system(&self) -> &'s SystemSpec {
        self.system
    }

    /// The serving configuration.
    pub fn config(&self) -> &H2hConfig {
        &self.config
    }

    /// Admitted tenant count.
    pub fn len(&self) -> usize {
        self.tenants.len()
    }

    /// True when no tenant is admitted.
    pub fn is_empty(&self) -> bool {
        self.tenants.is_empty()
    }

    /// One admitted tenant.
    pub fn tenant(&self, id: TenantId) -> &Tenant {
        &self.tenants[id.0]
    }

    /// All admitted tenants, in admission order.
    pub fn tenants(&self) -> impl Iterator<Item = &Tenant> {
        self.tenants.iter()
    }

    /// The per-accelerator serve budget:
    /// [`H2hConfig::serve_dram_budget_frac`] of the board's capacity.
    pub fn budget_bytes(&self, acc: AccId) -> Bytes {
        let cap = self.system.acc(acc).dram_capacity().as_u64() as f64;
        Bytes::new((cap * self.config.serve_dram_budget_frac) as u64)
    }

    /// Admits a tenant: runs the offline four-step pipeline on its
    /// model (bit-identical to a standalone [`H2hMapper`] run), trims
    /// its pin set to the shared DRAM budget if needed (knapsack on
    /// saved transfer time, applied as an incremental delta), and
    /// registers its service contract.
    ///
    /// # Errors
    ///
    /// [`ServeError::BadSpec`] for unusable contracts,
    /// [`ServeError::Mapping`] when the model cannot be mapped, and
    /// [`ServeError::DramBudget`] when even the fully trimmed tenant
    /// oversubscribes some board's budget.
    pub fn admit(&mut self, spec: TenantSpec) -> Result<TenantId, ServeError> {
        validate_contract(&spec.name, spec.rate_hz, spec.slo, spec.requests)?;
        let arrivals = spec
            .arrivals
            .materialize(spec.rate_hz, spec.requests)
            .map_err(|reason| ServeError::BadSpec { tenant: spec.name.clone(), reason })?;

        let mapper = H2hMapper::new(&spec.model, self.system).with_config(self.config);
        let out = mapper.run()?;
        let cache = mapper.evaluator().cache().clone();
        let mapping = out.mapping;
        let mut locality = out.locality;

        let ev = Evaluator::from_cache(&spec.model, self.system, cache.clone());
        let mut inc = IncrementalSchedule::new(&ev, &mapping, &locality);

        // Budget trim: per board, keep the highest-value pins that fit
        // the serve budget; drop the rest and re-cost their cone. The
        // same enforcement re-runs after every fault-transition repair.
        let trimmed_pins = trim_to_budget(
            self.system,
            &self.config,
            &spec.name,
            &spec.model,
            &mapping,
            &mut locality,
            &mut inc,
            &ev,
        )?;

        let ideal = inc.makespan();
        if self.config.serve_verify {
            // The memo is pre-seeded with `(1, ideal)`, so batch-1
            // slices never re-run the serve-loop crosscheck — verify
            // the (possibly trim-delta-produced) ideal here instead. A
            // mismatch is an internal soundness bug, not a caller
            // error, hence the assert.
            let full = ev.evaluate(&mapping, &locality).makespan();
            assert!(
                ideal.as_f64() == full.as_f64(),
                "tenant `{}`: admission ideal {} diverged from the full evaluation {} \
                 (trim delta is unsound)",
                spec.name,
                ideal,
                full
            );
        }
        let weight_xfer_once: Seconds = spec
            .model
            .layer_ids()
            .map(|id| ev.layer_cost(&mapping, &locality, id).weight_xfer)
            .sum();
        let resident: Vec<u64> =
            self.system.acc_ids().map(|a| locality.dram_used(a).as_u64()).collect();
        let pinned_total = locality.total_pinned_bytes(&spec.model);
        let mut pinned_by_acc = vec![0u64; self.system.num_accs()];
        for l in locality.pinned_layers() {
            pinned_by_acc[mapping.acc_of(l).index()] +=
                spec.model.layer(l).weight_bytes(DataType::F32).as_u64();
        }

        self.tenants.push(Tenant {
            spec,
            arrivals,
            mapping,
            locality,
            cache,
            inc,
            slice_memo: vec![(1, ideal)],
            ideal,
            weight_xfer_once,
            resident,
            pinned_total,
            pinned_by_acc,
            trimmed_pins,
        });
        Ok(TenantId(self.tenants.len() - 1))
    }

    /// Replaces an admitted tenant's service contract (rate / SLO /
    /// request window) without re-running the offline mapping. Callers
    /// that want contracts scaled to the tenant's own pace admit
    /// first, read [`Tenant::ideal_latency`], and set the contract
    /// from it — the `bench_serve` bin and the CLI do exactly this.
    ///
    /// # Errors
    ///
    /// [`ServeError::BadSpec`] under the same rules as
    /// [`TenantRegistry::admit`]; the tenant is left unchanged.
    pub fn set_contract(
        &mut self,
        id: TenantId,
        rate_hz: f64,
        slo: Seconds,
        requests: usize,
    ) -> Result<(), ServeError> {
        let t = &mut self.tenants[id.0];
        validate_contract(&t.spec.name, rate_hz, slo, requests)?;
        // Re-materialize the arrival schedule against the new contract
        // *before* committing anything, so a failure (e.g. a trace
        // shorter than the new window) leaves the tenant unchanged.
        let arrivals = t
            .spec
            .arrivals
            .materialize(rate_hz, requests)
            .map_err(|reason| ServeError::BadSpec { tenant: t.spec.name.clone(), reason })?;
        t.spec.rate_hz = rate_hz;
        t.spec.slo = slo;
        t.spec.requests = requests;
        t.arrivals = arrivals;
        Ok(())
    }

    /// Replaces an admitted tenant's arrival process (the open-loop
    /// workload shape) without touching its mapping or contract. The
    /// schedule is re-materialized against the current contract.
    ///
    /// # Errors
    ///
    /// [`ServeError::BadSpec`] when the process cannot be materialized
    /// (e.g. a trace shorter than the request window); the tenant is
    /// left unchanged.
    pub fn set_arrivals(
        &mut self,
        id: TenantId,
        process: ArrivalProcess,
    ) -> Result<(), ServeError> {
        let t = &mut self.tenants[id.0];
        let arrivals = process
            .materialize(t.spec.rate_hz, t.spec.requests)
            .map_err(|reason| ServeError::BadSpec { tenant: t.spec.name.clone(), reason })?;
        t.spec.arrivals = process;
        t.arrivals = arrivals;
        Ok(())
    }

    /// Switches the batch-forming policy for subsequent serve calls
    /// (the config the registry was built with stays authoritative for
    /// everything else). Lets benches sweep policies on one registry
    /// without re-running admission.
    pub fn set_policy(&mut self, policy: RoundPolicy) {
        self.config.serve_policy = policy;
    }

    /// Sets the per-tenant queue bound for subsequent serve calls
    /// (0 = unbounded, the historical semantics).
    pub fn set_queue_cap(&mut self, cap: usize) {
        self.config.serve_queue_cap = cap;
    }

    /// Serves every tenant's full request window with batched slices
    /// (up to [`H2hConfig::serve_max_batch`] requests per slice) and
    /// the shared-budget batch former. Deterministic: same registry,
    /// same outcome, bit for bit.
    ///
    /// # Panics
    ///
    /// Panics if the registry is empty.
    pub fn serve(&mut self) -> ServeOutcome {
        self.serve_impl(self.config.serve_max_batch, &FaultPlan::empty(), true)
            .expect("no-fault serving cannot fail")
    }

    /// The naive per-tenant reference: identical arrivals and round
    /// structure, but every request is served in its own slice (batch
    /// 1), so weight traffic is paid per request. `serve()` must beat
    /// this whenever weights matter — the `bench_serve` gate.
    pub fn serve_naive(&mut self) -> ServeOutcome {
        self.serve_impl(1, &FaultPlan::empty(), true)
            .expect("no-fault serving cannot fail")
    }

    /// Serves the full request window through a fault timeline: at
    /// every [`FaultPlan`] boundary that changes the fabric (sampled
    /// at round starts; slices are atomic), each tenant's mapping is
    /// repaired onto the degraded system by the time-budgeted
    /// [`crate::repair::repair_mapping`]
    /// ([`H2hConfig::repair_eval_budget`] attempted moves per tenant),
    /// its pinned weights are evicted — the next slice re-streams them
    /// over the degraded routes (re-admission) — and the SLO ledger
    /// records the degraded window
    /// ([`TenantServeStats::degraded_served`] /
    /// [`TenantServeStats::violations_degraded`]).
    ///
    /// The registry is snapshot-restored afterwards, so later calls
    /// are unaffected. With an empty plan this is exactly
    /// [`TenantRegistry::serve`], bit for bit — the no-fault identity
    /// contract of the fault subsystem.
    ///
    /// Repair failures no longer abort the run: a tenant whose repair
    /// strands a layer class with no live supporting board, or whose
    /// repaired footprint cannot be trimmed to the serve budget, is
    /// *parked* (gracefully shed — [`TenantServeStats::parks`]) and
    /// retried at every later transition.
    ///
    /// # Errors
    ///
    /// [`ServeError::Stalled`] when an unrecovered outage leaves every
    /// remaining request on tenants that can no longer serve (parked
    /// tenants, or non-resident tenants while the host NIC is down)
    /// with no further fault boundary ahead.
    ///
    /// # Panics
    ///
    /// Panics if the registry is empty.
    pub fn serve_with_faults(&mut self, plan: &FaultPlan) -> Result<ServeOutcome, ServeError> {
        self.serve_impl(self.config.serve_max_batch, plan, true)
    }

    /// The no-repair baseline: the identical fault timeline, but every
    /// transition only *evacuates* dead boards (repair budget 0) — the
    /// incumbent-on-degraded serving the budgeted repair is measured
    /// against.
    ///
    /// # Errors
    ///
    /// As for [`TenantRegistry::serve_with_faults`].
    pub fn serve_with_faults_unrepaired(
        &mut self,
        plan: &FaultPlan,
    ) -> Result<ServeOutcome, ServeError> {
        self.serve_impl(self.config.serve_max_batch, plan, false)
    }

    /// Packs this round's co-resident tenant set under the configured
    /// [`RoundPolicy`]. The default (`Knapsack`) keeps the historical
    /// bit-identical former: all backlogged tenants if they fit the
    /// budget together, otherwise a knapsack over per-tenant footprints
    /// (value = backlog + SLO urgency) with a per-board feasibility
    /// repair, returning ascending tenant indices. The ranked policies
    /// (`Edf`, `WeightedFair`) instead order candidates by `rank`
    /// (ascending, ties to admission order) and greedy-pack under the
    /// per-board budgets — the returned order is the *serve* order, so
    /// the most deadline-pressed (EDF) or least-attended (WFQ) tenant's
    /// slice runs first. Never empty when some tenant has backlog.
    fn form_round(&self, pending: &[usize], urgency: &[f64], rank: &[f64]) -> Vec<usize> {
        let n_accs = self.system.num_accs();
        let budgets: Vec<u64> =
            self.system.acc_ids().map(|a| self.budget_bytes(a).as_u64()).collect();
        let cands: Vec<usize> =
            (0..self.tenants.len()).filter(|i| pending[*i] > 0).collect();
        debug_assert!(!cands.is_empty(), "form_round needs backlog");
        let fits = |sel: &[usize]| {
            (0..n_accs).all(|a| {
                sel.iter().map(|i| self.tenants[*i].resident[a]).sum::<u64>() <= budgets[a]
            })
        };
        if self.config.serve_policy != RoundPolicy::Knapsack {
            // Ranked path: serve order = rank order. Greedy-pack under
            // the budgets; the front-ranked candidate always enters
            // (admission guarantees a lone tenant fits its budget).
            let mut ordered = cands;
            ordered.sort_by(|&a, &b| rank[a].total_cmp(&rank[b]).then(a.cmp(&b)));
            let mut used = vec![0u64; n_accs];
            let mut chosen = Vec::with_capacity(ordered.len());
            for i in ordered {
                let fits_i = (0..n_accs)
                    .all(|a| used[a] + self.tenants[i].resident[a] <= budgets[a]);
                if chosen.is_empty() || fits_i {
                    for (a, u) in used.iter_mut().enumerate() {
                        *u += self.tenants[i].resident[a];
                    }
                    chosen.push(i);
                }
            }
            return chosen;
        }
        if fits(&cands) {
            return cands;
        }
        // Knapsack over the total-footprint dimension…
        let items: Vec<Item> = cands
            .iter()
            .map(|&i| Item {
                id: i,
                weight: self.tenants[i].resident.iter().sum(),
                value: urgency[i],
            })
            .collect();
        let mut chosen = solve_auto(&items, budgets.iter().sum());
        chosen.sort_unstable();
        // …then a per-board repair: drop the lowest-urgency-density
        // tenant until every board fits (admission guarantees a single
        // tenant always does).
        while chosen.len() > 1 && !fits(&chosen) {
            let worst = chosen
                .iter()
                .copied()
                .min_by(|&a, &b| {
                    let da = urgency[a] / self.tenants[a].resident_total().as_u64().max(1) as f64;
                    let db = urgency[b] / self.tenants[b].resident_total().as_u64().max(1) as f64;
                    da.partial_cmp(&db).expect("urgency is finite").then(b.cmp(&a))
                })
                .expect("chosen is non-empty");
            chosen.retain(|&i| i != worst);
        }
        if chosen.is_empty() {
            // Defensive: fall back to the single most urgent tenant.
            let best = cands
                .iter()
                .copied()
                .max_by(|&a, &b| {
                    urgency[a].partial_cmp(&urgency[b]).expect("urgency is finite").then(b.cmp(&a))
                })
                .expect("candidates are non-empty");
            chosen.push(best);
        }
        chosen
    }

    /// Snapshot/serve/restore wrapper: a faulted run mutates tenant
    /// state (repaired mappings, reset memos, new residents); the
    /// snapshot puts everything back so the registry stays reusable
    /// and bit-identical for later calls. The no-fault path takes no
    /// snapshot and runs the historical loop unchanged.
    fn serve_impl(
        &mut self,
        max_batch: u32,
        plan: &FaultPlan,
        budgeted: bool,
    ) -> Result<ServeOutcome, ServeError> {
        let snapshot: Option<Vec<TenantSnapshot>> =
            (!plan.is_empty()).then(|| self.tenants.iter().map(TenantSnapshot::of).collect());
        let result = self.serve_inner(max_batch, plan, budgeted);
        if let Some(snap) = snapshot {
            for (t, s) in self.tenants.iter_mut().zip(snap) {
                s.restore(t);
            }
        }
        result
    }

    /// Applies one fault-state change mid-serve: rebuild the degraded
    /// system and, for every tenant, repair its mapping onto it
    /// (budget per [`H2hConfig::repair_eval_budget`], or
    /// evacuation-only when `budgeted` is false), re-enforce the serve
    /// budget, rebuild the incremental schedule and memo on the new
    /// fabric, and evict residency — the next slice re-streams the
    /// repaired placement's pinned weights. Returns the degraded
    /// system the following rounds are priced on (`None` once healthy
    /// again). Three refinements over the plain install:
    ///
    /// * **Repair wall time** — when
    ///   [`H2hConfig::repair_secs_per_move`] is set and the budgeted
    ///   search actually changed the placement, the searched mapping
    ///   does not take effect instantly: the tenant keeps serving on
    ///   the evacuation-only interim placement and the improvement is
    ///   *staged* to land `attempted_moves × repair_secs_per_move`
    ///   seconds later ([`TenantServeStats::repair_time_charged`]).
    ///   A newer transition drops pending stages — they were computed
    ///   against a fabric that no longer exists.
    /// * **Host-down residency** — while the host NIC is dead, a
    ///   tenant whose installed placement survives unchanged keeps
    ///   its residency: nothing needs restreaming, and restreaming
    ///   would be impossible anyway. An unchanged staged-repair
    ///   interim keeps it too — no weight moved; the genuine
    ///   re-stream is paid when the searched placement lands. Every
    ///   other install evicts.
    /// * **Graceful shedding** — a tenant whose repair or budget trim
    ///   fails on the shrunken fabric is parked (shed) instead of
    ///   failing the whole serve; every later transition retries it.
    #[allow(clippy::too_many_arguments)]
    fn apply_fault_transition(
        &mut self,
        state: &FaultState,
        budgeted: bool,
        now: f64,
        stats: &mut [TenantServeStats],
        counters: &mut ServeCounters,
        resident: &mut [bool],
        parked: &mut [bool],
        staged: &mut [Option<StagedRepair>],
    ) -> Option<SystemSpec> {
        counters.fault_transitions += 1;
        let degraded = (!state.is_healthy()).then(|| self.system.degrade(state));
        let cfg = self.config;
        let preset = PinPreset::new();
        for (i, t) in self.tenants.iter_mut().enumerate() {
            // Any stage computed against the previous fabric is stale.
            staged[i] = None;
            let sys: &SystemSpec = degraded.as_ref().unwrap_or(self.system);
            let ev = Evaluator::from_cache(&t.spec.model, sys, t.cache.clone());
            let budget =
                if budgeted { resolve_repair_budget(&cfg, &t.spec.model) } else { 0 };
            let rep = match repair_mapping(&ev, &cfg, &preset, &t.mapping, state, budget) {
                Ok(rep) => rep,
                Err(_) => {
                    // Shed: no live board can host some stranded layer.
                    counters.sheds += 1;
                    stats[i].parks += 1;
                    parked[i] = true;
                    resident[i] = false;
                    continue;
                }
            };
            counters.repair_evals += rep.stats.attempted_moves;
            let old_mapping = t.mapping.clone();
            let old_locality = t.locality.clone();
            // The search's wall time is charged whether or not it
            // found anything — the host CPU spent it either way.
            stats[i].repair_time_charged += rep.wall_time;
            let (mapping, locality) = if rep.wall_time > Seconds::ZERO
                && rep.mapping != old_mapping
            {
                // Stage the searched placement to land after its wall
                // time; serve meanwhile on the evacuation-only interim
                // (the same evacuation step, zero search budget).
                let interim = repair_mapping(&ev, &cfg, &preset, &old_mapping, state, 0)
                    .expect("evacuation succeeded under the larger budget");
                staged[i] = Some(StagedRepair {
                    lands_at: now + rep.wall_time.as_f64(),
                    mapping: rep.mapping,
                    locality: rep.locality,
                });
                counters.staged_repairs += 1;
                (interim.mapping, interim.locality)
            } else {
                (rep.mapping, rep.locality)
            };
            match install_placement(sys, &cfg, t, &mut stats[i], mapping, locality) {
                Ok(()) => {
                    counters.repairs += 1;
                    stats[i].repairs += 1;
                    let unchanged = t.mapping == old_mapping && t.locality == old_locality;
                    // Eviction: the installed placement's weights are
                    // not on the boards yet — its next slice pays the
                    // re-stream. Two exceptions keep residency for an
                    // *unchanged* placement: a down host cannot
                    // restream at all, and the staged-repair interim
                    // left every weight exactly where it was (the real
                    // move is paid when the searched placement lands).
                    if !(unchanged && (!state.host_is_up() || staged[i].is_some())) {
                        resident[i] = false;
                    }
                    parked[i] = false;
                }
                Err(_) => {
                    // Shed: the repaired footprint cannot be trimmed to
                    // the serve budget on the shrunken fabric.
                    counters.sheds += 1;
                    stats[i].parks += 1;
                    parked[i] = true;
                    resident[i] = false;
                    staged[i] = None;
                }
            }
        }
        degraded
    }

    fn serve_inner(
        &mut self,
        max_batch: u32,
        plan: &FaultPlan,
        budgeted: bool,
    ) -> Result<ServeOutcome, ServeError> {
        assert!(!self.tenants.is_empty(), "serve() needs at least one admitted tenant");
        let n = self.tenants.len();
        let n_accs = self.system.num_accs();
        let budgets: Vec<Bytes> = self.system.acc_ids().map(|a| self.budget_bytes(a)).collect();
        let acc_names: Vec<String> =
            self.system.acc_ids().map(|a| self.system.acc(a).meta().id.clone()).collect();

        let mut stats: Vec<TenantServeStats> = self
            .tenants
            .iter()
            .map(|t| TenantServeStats {
                name: t.spec.name.clone(),
                requests: t.spec.requests,
                served: 0,
                violations: 0,
                slo: t.spec.slo,
                ideal: t.ideal,
                attained_total: Seconds::ZERO,
                attained_max: Seconds::ZERO,
                latencies: LatencyLedger::default(),
                shed: 0,
                shed_doomed: 0,
                batches: 0,
                max_batch: 0,
                amortized_weight_time: Seconds::ZERO,
                weight_reloads: 0,
                reload_time: Seconds::ZERO,
                repairs: 0,
                degraded_served: 0,
                violations_degraded: 0,
                repair_time_charged: Seconds::ZERO,
                parks: 0,
            })
            .collect();
        let mut counters = ServeCounters::default();
        let mut peak = vec![0u64; n_accs];
        let mut served = vec![0usize; n];
        // Monotone per-tenant cursors over the arrival schedule: `now`
        // never moves backwards, so arrival counting is an exact
        // integer advance (`#{j : arrival(j) <= now}`) instead of the
        // old floor-of-rate estimate plus bidirectional correction.
        // `shed` requests left the queue without service (bounded-queue
        // drops and stall-point write-offs); a request is *done* once
        // served or shed.
        let mut arrived = vec![0usize; n];
        let mut shed = vec![0usize; n];
        let queue_cap = self.config.serve_queue_cap;
        let total: usize = self.tenants.iter().map(|t| t.spec.requests).sum();
        let mut done = 0usize;
        let mut now = 0.0f64;
        let budgets_u: Vec<u64> = budgets.iter().map(|b| b.as_u64()).collect();
        // Fault timeline state: boundaries still ahead, the condition
        // in force, and the degraded system rounds are priced on
        // (`None` while healthy). Empty plan → all of this is inert
        // and the loop below is the historical no-fault arithmetic.
        let boundaries = plan.boundaries();
        let mut next_boundary = 0usize;
        let mut fault_state = FaultState::healthy(n_accs);
        let mut fault_active = false;
        let mut degraded_sys: Option<SystemSpec> = None;
        let verify = self.config.serve_verify;
        // Deployment-time residency: admission-order greedy pack under
        // the shared budget. Weights loaded here are part of bring-up,
        // not the serving window (a single tenant is therefore always
        // resident from the start — the bit-identity contract).
        let mut resident = vec![false; n];
        {
            let mut used = vec![0u64; n_accs];
            for (slot, t) in resident.iter_mut().zip(self.tenants.iter()) {
                if (0..n_accs).all(|a| used[a] + t.resident[a] <= budgets_u[a]) {
                    for (a, u) in used.iter_mut().enumerate() {
                        *u += t.resident[a];
                    }
                    *slot = true;
                }
            }
        }
        // Fault-window tenant state: parked (shed) tenants sit out
        // rounds until a later transition re-admits them; staged
        // repairs wait out their modeled wall time before landing.
        // Both are per-run scratch, inert on no-fault paths.
        let mut parked = vec![false; n];
        let mut staged: Vec<Option<StagedRepair>> = (0..n).map(|_| None).collect();

        while done < total {
            // Fault boundaries crossed since the last round change the
            // fabric; the *latest* crossed boundary defines the state
            // (transitions that cancel out inside an idle gap — e.g. a
            // fully recovered outage nobody was serving through — are
            // skipped as the no-ops they are).
            let mut last_crossed = None;
            while next_boundary < boundaries.len() && event_reached(now, boundaries[next_boundary])
            {
                last_crossed = Some(boundaries[next_boundary]);
                next_boundary += 1;
            }
            if let Some(t_b) = last_crossed {
                let new_state = plan.state_at(Seconds::new(t_b), n_accs);
                if new_state != fault_state {
                    fault_state = new_state;
                    fault_active = !fault_state.is_healthy();
                    degraded_sys = self.apply_fault_transition(
                        &fault_state,
                        budgeted,
                        now,
                        &mut stats,
                        &mut counters,
                        &mut resident,
                        &mut parked,
                        &mut staged,
                    );
                }
            }
            let active_sys: &SystemSpec = degraded_sys.as_ref().unwrap_or(self.system);
            // Land staged repairs whose modeled wall time has elapsed:
            // install the searched placement on the current fabric and
            // evict (the improved placement's weights re-stream next
            // slice) unless the host-down unchanged-placement rule
            // keeps residency.
            for i in 0..n {
                if !staged[i].as_ref().is_some_and(|s| event_reached(now, s.lands_at)) {
                    continue;
                }
                let sr = staged[i].take().expect("a due stage exists");
                let cfg = self.config;
                let old_mapping = self.tenants[i].mapping.clone();
                let old_locality = self.tenants[i].locality.clone();
                let t = &mut self.tenants[i];
                match install_placement(active_sys, &cfg, t, &mut stats[i], sr.mapping, sr.locality)
                {
                    Ok(()) => {
                        let unchanged =
                            t.mapping == old_mapping && t.locality == old_locality;
                        if fault_state.host_is_up() || !unchanged {
                            resident[i] = false;
                        }
                        parked[i] = false;
                    }
                    Err(_) => {
                        counters.sheds += 1;
                        stats[i].parks += 1;
                        parked[i] = true;
                        resident[i] = false;
                    }
                }
            }
            let host_up = fault_state.host_is_up();
            // Backlog at round start: arrivals up to `now`, minus
            // everything already served or shed. The cursor advance is
            // integer-exact against the same `arrival(j)` values the
            // latency accounting uses — arrivals are compared with `<=`
            // and *no* epsilon slack (an epsilon here once pulled a
            // request in before its arrival, attaining less than the
            // ideal), so a request landing exactly on a fault boundary
            // is counted once, by the arrival cursor, never again by
            // the boundary clock.
            for (i, t) in self.tenants.iter().enumerate() {
                while arrived[i] < t.spec.requests && t.arrival(arrived[i]) <= now {
                    arrived[i] += 1;
                }
            }
            // Bounded queues: with a cap, overload sheds from the queue
            // *head* — under a latency SLO the oldest waiter is the
            // nearest deadline and therefore the least salvageable, so
            // head-drop is the value-ranked choice. `shed_doomed`
            // counts drops that were already past saving (even an
            // immediate ideal-latency slice would have violated).
            if queue_cap > 0 {
                for i in 0..n {
                    let t = &self.tenants[i];
                    while arrived[i] - served[i] - shed[i] > queue_cap {
                        let j = served[i] + shed[i];
                        let s = &mut stats[i];
                        s.shed += 1;
                        if now + t.ideal.as_f64() - t.arrival(j) > t.spec.slo.as_f64() {
                            s.shed_doomed += 1;
                        }
                        shed[i] += 1;
                        counters.requests_shed += 1;
                        done += 1;
                    }
                }
            }
            let pending: Vec<usize> =
                (0..n).map(|i| arrived[i] - served[i] - shed[i]).collect();
            // Serviceability gate: parked tenants are shelved until a
            // later transition re-admits them, and while the host NIC
            // is down only already-resident tenants can serve (a
            // swap-in would have to stream weights through the dead
            // host). Healthy runs never zero anything here.
            let mut pending = pending;
            let servable: Vec<bool> =
                (0..n).map(|i| !parked[i] && (host_up || resident[i])).collect();
            for i in 0..n {
                if !servable[i] {
                    pending[i] = 0;
                }
            }
            if pending.iter().all(|p| *p == 0) {
                // Idle: jump to the earliest outstanding servable
                // arrival. When unservable tenants hold the remaining
                // work, only a fault boundary can re-admit them, so
                // the jump may land there instead; if neither exists
                // the drain is deadlocked. Fully-servable runs keep
                // the historical next-arrival-only jump (bitwise).
                let next_arrival = (0..n)
                    .filter(|&i| servable[i] && served[i] + shed[i] < self.tenants[i].spec.requests)
                    .map(|i| self.tenants[i].arrival(served[i] + shed[i]))
                    .fold(f64::INFINITY, f64::min);
                let blocked = (0..n)
                    .any(|i| !servable[i] && served[i] + shed[i] < self.tenants[i].spec.requests);
                let next_b = if blocked {
                    boundaries.get(next_boundary).copied().unwrap_or(f64::INFINITY)
                } else {
                    f64::INFINITY
                };
                let next = next_arrival.min(next_b);
                if !next.is_finite() {
                    // Permanent blockage. With bounded queues the run
                    // degrades gracefully: write off the blocked
                    // tenants' remaining windows as shed (no future
                    // boundary can ever re-admit them) and keep
                    // draining whoever can still serve. The historical
                    // unbounded mode keeps the structural stall error.
                    if queue_cap > 0 {
                        let mut wrote_off = false;
                        for i in 0..n {
                            if servable[i] {
                                continue;
                            }
                            let t = &self.tenants[i];
                            while served[i] + shed[i] < t.spec.requests {
                                let j = served[i] + shed[i];
                                let s = &mut stats[i];
                                s.shed += 1;
                                if now + t.ideal.as_f64() - t.arrival(j) > t.spec.slo.as_f64() {
                                    s.shed_doomed += 1;
                                }
                                shed[i] += 1;
                                counters.requests_shed += 1;
                                done += 1;
                                wrote_off = true;
                            }
                        }
                        if wrote_off {
                            continue;
                        }
                    }
                    return Err(ServeError::Stalled {
                        at: Seconds::new(now),
                        unserved: total - done,
                        parked: parked.iter().filter(|p| **p).count(),
                        host_down: !host_up,
                    });
                }
                now = now.max(next);
                continue;
            }
            // Urgency = backlog + requests already doomed to violate
            // unless served immediately (arrived strictly before
            // `now + ideal - slo`, counted against the actual arrival
            // schedule — see [`Tenant::doomed_arrivals`]).
            let urgency: Vec<f64> = (0..n)
                .map(|i| {
                    let t = &self.tenants[i];
                    if pending[i] == 0 {
                        return 0.0;
                    }
                    let horizon = now + t.ideal.as_f64() - t.spec.slo.as_f64();
                    let doomed_arrivals = t.doomed_arrivals(horizon);
                    let at_risk =
                        doomed_arrivals.saturating_sub(served[i] + shed[i]).min(pending[i]);
                    (pending[i] + at_risk) as f64
                })
                .collect();
            // Ranked-policy keys (unused — and uncomputed — under the
            // default knapsack former): EDF ranks by the head-of-queue
            // deadline, weighted-fair by the virtual finish time of
            // the tenant's next service quantum.
            let rank: Vec<f64> = (0..n)
                .map(|i| {
                    let t = &self.tenants[i];
                    if pending[i] == 0 {
                        return f64::INFINITY;
                    }
                    match self.config.serve_policy {
                        RoundPolicy::Knapsack => 0.0,
                        RoundPolicy::Edf => {
                            t.arrival(served[i] + shed[i]) + t.spec.slo.as_f64()
                        }
                        RoundPolicy::WeightedFair => (served[i] + 1) as f64 / t.spec.rate_hz,
                    }
                })
                .collect();
            let selected = self.form_round(&pending, &urgency, &rank);
            // Residency transition: the selected tenants swap in
            // (evicted ones re-stream their pinned weights over
            // Ethernet before their slice); previous residents keep
            // their slot while it still fits next to the selected set,
            // in admission order.
            let was_resident = std::mem::replace(&mut resident, vec![false; n]);
            let mut used = vec![0u64; n_accs];
            for &i in &selected {
                for (a, u) in used.iter_mut().enumerate() {
                    *u += self.tenants[i].resident[a];
                }
                resident[i] = true;
            }
            for (i, slot) in resident.iter_mut().enumerate() {
                if was_resident[i]
                    && !*slot
                    && (0..n_accs)
                        .all(|a| used[a] + self.tenants[i].resident[a] <= budgets_u[a])
                {
                    for (a, u) in used.iter_mut().enumerate() {
                        *u += self.tenants[i].resident[a];
                    }
                    *slot = true;
                }
            }
            for (a, slot) in peak.iter_mut().enumerate() {
                *slot = (*slot).max(used[a]);
            }
            counters.rounds += 1;
            for &i in &selected {
                let k = (pending[i].min(max_batch as usize)) as u32;
                let reload = if was_resident[i] {
                    Seconds::ZERO
                } else {
                    counters.weight_reloads += 1;
                    stats[i].weight_reloads += 1;
                    // Each board's pinned share re-streams at that
                    // board's actual host-link rate (collapses to one
                    // scalar-rate transfer on a uniform star, bitwise;
                    // degraded routes during a fault window).
                    active_sys.topology().host_stream_time(
                        self.tenants[i]
                            .pinned_by_acc
                            .iter()
                            .enumerate()
                            .filter(|(_, b)| **b > 0)
                            .map(|(a, b)| (AccId::new(a), Bytes::new(*b))),
                    )
                };
                stats[i].reload_time += reload;
                let m =
                    slice_makespan_on(active_sys, verify, &mut self.tenants[i], k, &mut counters);
                let end = now + reload.as_f64() + m.as_f64();
                for _ in 0..k {
                    let j = served[i] + shed[i];
                    let latency = end - self.tenants[i].arrival(j);
                    let s = &mut stats[i];
                    s.served += 1;
                    s.attained_total += Seconds::new(latency);
                    s.attained_max = s.attained_max.max(Seconds::new(latency));
                    s.latencies.record(latency);
                    if latency > s.slo.as_f64() {
                        s.violations += 1;
                        if fault_active {
                            s.violations_degraded += 1;
                        }
                    }
                    if fault_active {
                        s.degraded_served += 1;
                    }
                    served[i] += 1;
                    done += 1;
                }
                let s = &mut stats[i];
                s.batches += 1;
                s.max_batch = s.max_batch.max(k);
                s.amortized_weight_time +=
                    self.tenants[i].weight_xfer_once * (k - 1) as f64;
                now = end;
            }
        }

        Ok(ServeOutcome {
            tenants: stats,
            makespan: Seconds::new(now),
            counters,
            policy: self.config.serve_policy,
            peak_resident: peak.into_iter().map(Bytes::new).collect(),
            budgets,
            acc_names,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use h2h_system::system::BandwidthClass;
    use h2h_system::trace::ArrivalTrace;

    fn spec(name: &str, model: ModelGraph, rate: f64, slo_s: f64, requests: usize) -> TenantSpec {
        TenantSpec::new(name, model, rate, Seconds::new(slo_s), requests)
    }

    #[test]
    fn bad_specs_are_refused() {
        let system = SystemSpec::standard(BandwidthClass::LowMinus);
        let mut reg = TenantRegistry::new(&system, H2hConfig::default());
        let m = h2h_model::zoo::mocap();
        assert!(matches!(
            reg.admit(spec("zero-rate", m.clone(), 0.0, 1.0, 4)),
            Err(ServeError::BadSpec { .. })
        ));
        assert!(matches!(
            reg.admit(spec("no-requests", m.clone(), 1.0, 1.0, 0)),
            Err(ServeError::BadSpec { .. })
        ));
        assert!(matches!(
            reg.admit(spec("zero-slo", m, 1.0, 0.0, 4)),
            Err(ServeError::BadSpec { .. })
        ));
        assert!(reg.is_empty());
    }

    #[test]
    fn admission_matches_the_offline_pipeline() {
        let system = SystemSpec::standard(BandwidthClass::LowMinus);
        let model = h2h_model::zoo::mocap();
        let offline = H2hMapper::new(&model, &system).run().unwrap();
        let mut reg = TenantRegistry::new(&system, H2hConfig::default());
        let id = reg.admit(spec("mocap", model, 2.0, 2.0, 6)).unwrap();
        let t = reg.tenant(id);
        assert_eq!(t.mapping(), &offline.mapping);
        assert_eq!(t.locality(), &offline.locality);
        assert_eq!(t.ideal_latency(), offline.final_latency());
        assert_eq!(t.trimmed_pins(), 0, "full budget must trim nothing");
    }

    #[test]
    fn single_tenant_serving_is_coherent_and_batches() {
        let system = SystemSpec::standard(BandwidthClass::LowMinus);
        let model = h2h_model::zoo::cnn_lstm();
        let cfg = H2hConfig { serve_verify: true, ..H2hConfig::default() };
        let mut reg = TenantRegistry::new(&system, cfg);
        // Arrivals far faster than the service rate force batching.
        reg.admit(spec("cnn", model, 200.0, 5.0, 24)).unwrap();
        let out = reg.serve();
        out.check_coherence().unwrap();
        assert_eq!(out.total_served(), 24);
        assert!(out.tenants[0].max_batch > 1, "backlog must trigger batching");
        assert!(out.counters.crosschecks > 0);
        assert_eq!(out.counters.crosscheck_mismatches, 0);
        // The naive reference pays weights per request and must drain
        // strictly slower.
        let naive = reg.serve_naive();
        naive.check_coherence().unwrap();
        assert!(
            out.makespan < naive.makespan,
            "batched {} must beat naive {}",
            out.makespan,
            naive.makespan
        );
        assert!(out.tenants[0].amortized_weight_time > Seconds::ZERO);
        assert_eq!(naive.tenants[0].amortized_weight_time, Seconds::ZERO);
        // A lone tenant is resident from bring-up and never evicted.
        assert_eq!(out.counters.weight_reloads, 0);
        assert_eq!(naive.counters.weight_reloads, 0);
    }

    #[test]
    fn budget_trim_fits_and_stays_consistent() {
        let system = SystemSpec::standard(BandwidthClass::LowMinus);
        let model = h2h_model::zoo::cnn_lstm();
        // A tight budget forces pin trimming at admission; verify-mode
        // additionally asserts (inside admit) that the trim delta's
        // ideal equals a full evaluation bitwise.
        let cfg = H2hConfig {
            serve_dram_budget_frac: 0.001,
            serve_verify: true,
            ..H2hConfig::default()
        };
        let mut reg = TenantRegistry::new(&system, cfg);
        match reg.admit(spec("tight", model.clone(), 4.0, 5.0, 8)) {
            Ok(id) => {
                let t = reg.tenant(id);
                assert!(t.trimmed_pins() > 0, "0.1% budget must trim pins");
                for acc in system.acc_ids() {
                    assert!(t.resident_bytes(acc) <= reg.budget_bytes(acc));
                }
                // Trimming pins can only slow the tenant down.
                let offline = H2hMapper::new(&model, &system).run().unwrap();
                assert!(t.ideal_latency() >= offline.final_latency());
                // The trimmed incremental state must still match a full
                // evaluation of the trimmed locality.
                let ev = Evaluator::new(&model, &system);
                let full = ev.evaluate(t.mapping(), t.locality()).makespan();
                assert_eq!(t.ideal_latency(), full, "delta trim diverged from full eval");
                let out = reg.serve();
                out.check_coherence().unwrap();
            }
            Err(ServeError::DramBudget { .. }) => {
                // Also acceptable: fusion buffers alone may exceed a
                // 0.1% budget. Nothing to serve then.
            }
            Err(e) => panic!("unexpected admission error: {e}"),
        }
    }

    #[test]
    fn oversubscribed_tenants_are_split_across_rounds() {
        // Two tenants that each fit the budget alone but not together:
        // the batch former must alternate them, keep the per-round
        // footprint under budget, and still serve everything.
        let system = SystemSpec::standard(BandwidthClass::LowMinus);
        let a = h2h_model::zoo::cnn_lstm();
        let b = h2h_model::zoo::mocap();
        let full_budget = H2hConfig::default();
        let mut probe = TenantRegistry::new(&system, full_budget);
        probe.admit(spec("a", a.clone(), 50.0, 10.0, 8)).unwrap();
        probe.admit(spec("b", b.clone(), 50.0, 10.0, 8)).unwrap();
        // Find a budget fraction that separates "fits alone" from
        // "fits together" on the most contended board.
        let mut frac = None;
        for acc in system.acc_ids() {
            let cap = system.acc(acc).dram_capacity().as_u64() as f64;
            let ra = probe.tenant(TenantId(0)).resident[acc.index()] as f64;
            let rb = probe.tenant(TenantId(1)).resident[acc.index()] as f64;
            if ra > 0.0 && rb > 0.0 {
                let f = (ra.max(rb) * 1.05 / cap).min(1.0);
                if ra + rb > f * cap {
                    frac = Some(f);
                    break;
                }
            }
        }
        let Some(frac) = frac else {
            // Zoo placements never contend on this system; the
            // oversubscription path is still covered by prop_serve.
            return;
        };
        let cfg = H2hConfig { serve_dram_budget_frac: frac, ..H2hConfig::default() };
        let mut reg = TenantRegistry::new(&system, cfg);
        reg.admit(spec("a", a, 50.0, 10.0, 8)).unwrap();
        reg.admit(spec("b", b, 50.0, 10.0, 8)).unwrap();
        let out = reg.serve();
        out.check_coherence().unwrap();
        assert_eq!(out.total_served(), 16);
        assert!(
            out.counters.rounds >= 2,
            "split tenants need at least two rounds, got {}",
            out.counters.rounds
        );
        // Alternation means evictions, and swap-ins are never free:
        // the returning tenant re-streams its pins over Ethernet.
        assert!(
            out.counters.weight_reloads > 0,
            "alternating tenants must pay reloads"
        );
        assert!(out.tenants.iter().any(|t| t.reload_time > Seconds::ZERO));
    }

    #[test]
    fn set_contract_rescales_without_remapping() {
        let system = SystemSpec::standard(BandwidthClass::LowMinus);
        let mut reg = TenantRegistry::new(&system, H2hConfig::default());
        let id = reg.admit(spec("m", h2h_model::zoo::mocap(), 1.0, 1.0, 1)).unwrap();
        let ideal = reg.tenant(id).ideal_latency();
        reg.set_contract(id, 8.0 / ideal.as_f64(), ideal * 16.0, 24).unwrap();
        let t = reg.tenant(id);
        assert_eq!(t.ideal_latency(), ideal, "contract changes must not touch the mapping");
        assert_eq!(t.spec().requests, 24);
        assert!(matches!(
            reg.set_contract(id, 0.0, Seconds::new(1.0), 4),
            Err(ServeError::BadSpec { .. })
        ));
        assert_eq!(reg.tenant(id).spec().requests, 24, "rejected contracts leave state alone");
        let out = reg.serve();
        out.check_coherence().unwrap();
        assert_eq!(out.total_served(), 24);
    }

    #[test]
    fn slice_memo_and_noop_counters_fire() {
        let system = SystemSpec::standard(BandwidthClass::LowMinus);
        let mut reg = TenantRegistry::new(&system, H2hConfig::default());
        reg.admit(spec("m", h2h_model::zoo::mocap(), 500.0, 60.0, 40)).unwrap();
        let out = reg.serve();
        out.check_coherence().unwrap();
        // 40 requests at batch ≤ 8 need ≥ 5 slices but only a handful
        // of distinct batch sizes — the memo must carry most slices.
        assert!(out.tenants[0].batches >= 5);
        assert!(out.counters.slice_cache_hits > 0, "repeated batch sizes must hit the memo");
        assert!(out.counters.slice_evals <= 8, "distinct batch sizes are few");
    }

    #[test]
    fn non_finite_slos_are_refused() {
        // NaN slipped past the old `slo <= ZERO` check (every
        // comparison with NaN is false) and +inf trivially passed it;
        // both must be typed admission errors, at admit and at
        // set_contract.
        let system = SystemSpec::standard(BandwidthClass::LowMinus);
        let mut reg = TenantRegistry::new(&system, H2hConfig::default());
        let m = h2h_model::zoo::mocap();
        // `Seconds::new` debug-asserts non-finite inputs away, but
        // arithmetic does not — scaling is how a NaN/inf SLO reaches a
        // contract in practice (e.g. `ideal * frac` with a bad knob).
        for bad in [f64::NAN, f64::INFINITY] {
            let s = TenantSpec::new("bad-slo", m.clone(), 1.0, Seconds::new(1.0) * bad, 4);
            assert!(matches!(reg.admit(s), Err(ServeError::BadSpec { .. })));
        }
        assert!(reg.is_empty());
        let id = reg.admit(spec("ok", m, 1.0, 1.0, 4)).unwrap();
        assert!(matches!(
            reg.set_contract(id, 1.0, Seconds::new(1.0) * f64::NAN, 4),
            Err(ServeError::BadSpec { .. })
        ));
        assert_eq!(reg.tenant(id).spec().slo, Seconds::new(1.0));
    }

    #[test]
    fn doomed_arrival_count_is_strict_at_integral_horizons() {
        let system = SystemSpec::standard(BandwidthClass::LowMinus);
        let mut reg = TenantRegistry::new(&system, H2hConfig::default());
        let id = reg.admit(spec("m", h2h_model::zoo::mocap(), 1.0, 1.0, 4)).unwrap();
        let t = reg.tenant(id);
        // Rate 1 Hz: arrivals at 0, 1, 2, 3. An exactly-integral
        // horizon of 2.0 dooms the arrivals strictly before it — 0 and
        // 1, not 2 (the old `floor(h·r + 1e-9) + 1` counted 3 here).
        assert_eq!(t.doomed_arrivals(2.0), 2);
        assert_eq!(t.doomed_arrivals(2.5), 3);
        assert_eq!(t.doomed_arrivals(0.0), 0);
        assert_eq!(t.doomed_arrivals(-1.0), 0);
        assert_eq!(t.doomed_arrivals(100.0), 4, "the count caps at the window");
    }

    #[test]
    fn poisson_and_trace_tenants_serve_coherently_and_replay() {
        let system = SystemSpec::standard(BandwidthClass::LowMinus);
        let mut reg = TenantRegistry::new(&system, H2hConfig::default());
        let m = h2h_model::zoo::mocap();
        reg.admit(
            spec("poisson", m.clone(), 50.0, 5.0, 30)
                .with_arrivals(ArrivalProcess::Poisson { seed: 42 }),
        )
        .unwrap();
        let tr = ArrivalTrace::new((0..30).map(|j| j as f64 * 0.01).collect()).unwrap();
        reg.admit(spec("trace", m, 50.0, 5.0, 30).with_arrivals(ArrivalProcess::Trace(tr)))
            .unwrap();
        let out = reg.serve();
        out.check_coherence().unwrap();
        assert_eq!(out.total_served(), 60);
        for t in &out.tenants {
            assert_eq!(t.latencies.count(), t.served);
            assert!(t.latencies.p50() <= t.latencies.p99());
        }
        // Sampled-at-admission schedules replay bitwise run to run
        // (the slice memo warms across serves, so only the ledgers and
        // the drain clock are compared — not the cache counters).
        let again = reg.serve();
        assert_eq!(out.tenants, again.tenants);
        assert_eq!(out.makespan, again.makespan);
    }

    #[test]
    fn contract_changes_refusing_to_materialize_leave_the_tenant_alone() {
        let system = SystemSpec::standard(BandwidthClass::LowMinus);
        let mut reg = TenantRegistry::new(&system, H2hConfig::default());
        let tr = ArrivalTrace::new(vec![0.0, 0.1, 0.2, 0.3]).unwrap();
        let id = reg
            .admit(
                spec("m", h2h_model::zoo::mocap(), 10.0, 5.0, 4)
                    .with_arrivals(ArrivalProcess::Trace(tr)),
            )
            .unwrap();
        // Growing the window past the trace length must refuse and
        // leave both the contract and the materialized schedule as
        // they were.
        assert!(matches!(
            reg.set_contract(id, 10.0, Seconds::new(5.0), 16),
            Err(ServeError::BadSpec { .. })
        ));
        assert_eq!(reg.tenant(id).spec().requests, 4);
        let out = reg.serve();
        out.check_coherence().unwrap();
        assert_eq!(out.total_served(), 4);
        // Swapping the process re-materializes against the contract.
        reg.set_arrivals(id, ArrivalProcess::Fixed).unwrap();
        assert_eq!(reg.tenant(id).arrival(3), 3.0 / 10.0);
    }

    #[test]
    fn ranked_policies_serve_everything_coherently() {
        let system = SystemSpec::standard(BandwidthClass::LowMinus);
        for policy in [RoundPolicy::Edf, RoundPolicy::WeightedFair] {
            let cfg = H2hConfig { serve_policy: policy, ..H2hConfig::default() };
            let mut reg = TenantRegistry::new(&system, cfg);
            reg.admit(spec("cnn", h2h_model::zoo::cnn_lstm(), 60.0, 8.0, 12)).unwrap();
            reg.admit(spec("mocap", h2h_model::zoo::mocap(), 60.0, 8.0, 12)).unwrap();
            let out = reg.serve();
            out.check_coherence().unwrap();
            assert_eq!(out.total_served(), 24);
            assert_eq!(out.policy, policy);
        }
    }

    #[test]
    fn bounded_queue_sheds_overload_and_stays_coherent() {
        let system = SystemSpec::standard(BandwidthClass::LowMinus);
        let cfg = H2hConfig { serve_queue_cap: 2, ..H2hConfig::default() };
        let mut reg = TenantRegistry::new(&system, cfg);
        // Arrivals far above the service rate against a 2-deep queue:
        // most of the window must be dropped at the head, and the
        // drops must reconcile with the served ledger exactly.
        let id = reg.admit(spec("m", h2h_model::zoo::mocap(), 1.0, 1.0, 1)).unwrap();
        let ideal = reg.tenant(id).ideal_latency();
        reg.set_contract(id, 50.0 / ideal.as_f64(), ideal * 4.0, 60).unwrap();
        let out = reg.serve();
        out.check_coherence().unwrap();
        let t = &out.tenants[0];
        assert!(t.shed > 0, "overload against a bounded queue must shed");
        assert!(t.served > 0, "the queue head that survives must still be served");
        assert_eq!(t.served + t.shed, 60);
        assert_eq!(out.counters.requests_shed, t.shed);
        assert!(t.shed_doomed <= t.shed);
    }

    #[test]
    fn permanent_total_outage_stalls_unbounded_and_sheds_bounded() {
        // Every board goes down for good before the first arrival. The
        // historical unbounded-queue mode must report the structural
        // stall; with a bounded queue the blocked window is written
        // off as shed and the accounting still reconciles.
        let system = SystemSpec::standard(BandwidthClass::LowMinus);
        let n_accs = system.num_accs();
        let mut plan = FaultPlan::empty();
        for a in 0..n_accs {
            plan = plan.with_event(h2h_system::fault::FaultEvent {
                acc: h2h_system::system::AccId::new(a),
                kind: h2h_system::fault::FaultKind::BoardDown,
                at: Seconds::new(1e-6),
                recover_at: None,
            });
        }
        let tr = ArrivalTrace::new((0..6).map(|j| 0.5 + j as f64 * 0.1).collect()).unwrap();
        let mk = |cap: usize| {
            let cfg = H2hConfig { serve_queue_cap: cap, ..H2hConfig::default() };
            let mut reg = TenantRegistry::new(&system, cfg);
            reg.admit(
                spec("m", h2h_model::zoo::mocap(), 10.0, 1.0, 6)
                    .with_arrivals(ArrivalProcess::Trace(tr.clone())),
            )
            .unwrap();
            reg
        };
        assert!(matches!(
            mk(0).serve_with_faults(&plan),
            Err(ServeError::Stalled { unserved: 6, .. })
        ));
        let out = mk(8).serve_with_faults(&plan).unwrap();
        out.check_coherence().unwrap();
        let t = &out.tenants[0];
        assert_eq!(t.served, 0, "an all-down fabric serves nothing");
        assert_eq!(t.shed, 6, "the whole window is written off");
        assert!(t.parks > 0, "the tenant must have been parked");
        assert_eq!(out.counters.requests_shed, 6);
    }

    #[test]
    fn arrival_exactly_on_a_fault_boundary_counts_once() {
        // A fault boundary placed bitwise on an arrival instant: the
        // arrival clock (compared exactly, no slack) and the
        // epsilon-slackened boundary clock must not double- or
        // zero-count the request. Everything still drains, once.
        let system = SystemSpec::standard(BandwidthClass::LowMinus);
        let mut reg = TenantRegistry::new(&system, H2hConfig::default());
        let id = reg.admit(spec("m", h2h_model::zoo::mocap(), 1.0, 1.0, 1)).unwrap();
        let ideal = reg.tenant(id).ideal_latency();
        let rate = 0.5 / ideal.as_f64();
        reg.set_contract(id, rate, ideal * 16.0, 6).unwrap();
        // The same quotient expression `FixedArrivals::arrival` uses.
        let boundary = 2.0 / rate;
        assert_eq!(boundary.to_bits(), reg.tenant(id).arrival(2).to_bits());
        let plan = FaultPlan::empty().with_event(h2h_system::fault::FaultEvent {
            acc: h2h_system::system::AccId::new(0),
            kind: h2h_system::fault::FaultKind::LinkDegraded { factor: 4.0 },
            at: Seconds::new(boundary),
            recover_at: None,
        });
        let out = reg.serve_with_faults(&plan).unwrap();
        out.check_coherence().unwrap();
        assert_eq!(out.tenants[0].served, 6, "every request exactly once");
        assert_eq!(out.counters.requests_shed, 0);
    }
}
