//! Parallel candidate scoring (ROADMAP: "Parallel candidate scoring" /
//! "Data-oriented evaluator hot path + whole-search parallelism").
//!
//! The search loops spend nearly all of their time scoring candidate
//! moves, and every candidate of a batch is scored against the *same*
//! current state — embarrassingly parallel once each evaluator owns its
//! own scratch. [`ScoringPool`] spawns scoped workers (via the offline
//! `rayon` shim's [`rayon::scope`]), each owning a
//! [`DeltaEngine::fork`] (shared read-only model/system data behind
//! `Arc`s, private mutable scratch) plus its own `Mapping` copy.
//!
//! # Work-stealing batches
//!
//! A batch is published as one shared [`rayon::deque::Injector`] of
//! `(candidate index, layer, destination)` jobs. Every lane — the
//! workers *and* the main engine — steals jobs until the queue is
//! empty, so an expensive candidate (a risky global replay) on one lane
//! never strands cheap candidates behind it the way a fixed round-robin
//! deal did. This matters for the **frontier batches** built by the
//! remap loop (see [`crate::remap`]): one batch spans the candidate
//! groups of many upcoming layers, with per-layer group sizes of 1–3,
//! so static dealing would leave most lanes idle.
//!
//! # Determinism (the commit protocol)
//!
//! Results are **bit-identical to the serial loop for every thread
//! count and any steal interleaving**, including the search statistics:
//!
//! 1. Candidates are indexed in their serial visit order; jobs carry
//!    their index, and results are keyed by it — never by thread
//!    completion order or steal order.
//! 2. Each lane scores transactionally — stage, record `(score,
//!    makespan, stat delta)`, reject — so a lane's engine always holds
//!    the current state, and a candidate's outcome does not depend on
//!    which lane scored it.
//! 3. The caller applies the serial decision rule over the indexed
//!    results (first improving candidate for the greedy remap loop;
//!    in-order Metropolis acceptance for the annealer) and absorbs the
//!    stat deltas of exactly the candidates the serial loop would have
//!    scored — speculative scoring beyond the accepted index is wasted
//!    wall-clock on an idle core, not a semantic difference.
//! 4. On accept, the move is committed on the main engine and
//!    broadcast to every worker, which replays it (stage + accept) on
//!    its fork; each engine's state stays bitwise equal to the main
//!    one because staging is deterministic in the state.
//!
//! Channels are per-worker request queues plus one shared result
//! channel; requests are FIFO per worker, so a broadcast commit is
//! always applied before any job of the next batch's injector is
//! stolen by that worker — no extra synchronization.
//!
//! # Phase profiling
//!
//! When [`crate::H2hConfig::profile_phases`] is on, each scored
//! candidate ships its [`PhaseProfile`] delta back with its outcome and
//! [`ScoringPool::score_batch`] absorbs **every** outcome's delta into
//! the main engine's profile (worker forks die with the scope, so their
//! accumulators would otherwise be lost). The profile therefore
//! approximates CPU-seconds summed across lanes — it is never part of
//! [`SearchStats`] and never compared across runs.

use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::Arc;

use h2h_model::graph::LayerId;
use h2h_system::mapping::Mapping;
use h2h_system::system::AccId;

use crate::delta::{DeltaEngine, PhaseProfile, SearchStats};

/// One scored candidate: its objective score, exact makespan, and the
/// search-stat delta its scoring produced (with `attempted_moves = 1`),
/// ready to be absorbed by the main engine if the serial loop would
/// have scored it. The delta carries every [`SearchStats`] counter —
/// including the risky-guard columns (`guards_total`/`guards_skipped`/
/// `guard_reverts_fast`) — so absorbing exactly the serially-visited
/// candidates keeps the merged stats bit-identical to the serial walk
/// for every thread count.
#[derive(Debug, Clone, Copy)]
pub struct CandidateOutcome {
    /// Objective score of the staged candidate (bitwise-equal to the
    /// serial scoring of the same candidate in the same state).
    pub score: f64,
    /// Exact makespan of the staged candidate.
    pub makespan: f64,
    /// Stat delta of scoring this one candidate.
    pub stats: SearchStats,
    /// Phase wall-clock delta of scoring this one candidate (all
    /// zeroes unless profiling is on). Unlike `stats` this is absorbed
    /// for *every* scored candidate, speculative or not — it measures
    /// work done, not work the serial loop would have done.
    pub profile: PhaseProfile,
}

/// Scores one candidate transactionally on `engine`, leaving the
/// engine's state, stats and profile untouched and returning the
/// outcome with per-candidate stat/profile deltas.
pub(crate) fn score_candidate(
    engine: &mut DeltaEngine<'_, '_>,
    mapping: &mut Mapping,
    layer: LayerId,
    to: AccId,
) -> CandidateOutcome {
    let saved = engine.stats;
    let saved_profile = engine.profile;
    engine.stats = SearchStats::default();
    let score = engine.stage_move(mapping, layer, to);
    let makespan = engine.staged_makespan();
    let mut stats = engine.stats;
    stats.attempted_moves = 1;
    engine.reject_staged(mapping);
    engine.stats = saved;
    let profile = engine.profile.delta_since(&saved_profile);
    engine.profile = saved_profile;
    CandidateOutcome { score, makespan, stats, profile }
}

/// Applies an accepted move to `engine` (stage + accept) without
/// perturbing its stats beyond the accept counter — the scoring stat
/// delta was already recorded by [`score_candidate`] on whichever lane
/// scored the winning candidate. Returns the committed score.
pub(crate) fn commit_move(
    engine: &mut DeltaEngine<'_, '_>,
    mapping: &mut Mapping,
    layer: LayerId,
    to: AccId,
) -> f64 {
    let saved = engine.stats;
    engine.stage_move(mapping, layer, to);
    let score = engine.accept_staged(mapping);
    engine.stats = saved;
    engine.stats.accepted_moves += 1;
    score
}

/// Scoring workers to spawn for `cfg`: the requested thread count
/// (minus the main lane), capped at the machine's available
/// parallelism unless the config oversubscribes — extra workers on a
/// saturated machine only add scheduling overhead, never change
/// results.
pub(crate) fn effective_workers(cfg: &crate::H2hConfig) -> usize {
    let requested = cfg.score_threads.max(1);
    let capped = if cfg.score_oversubscribe {
        requested
    } else {
        requested.min(
            std::thread::available_parallelism().map_or(1, std::num::NonZero::get),
        )
    };
    capped - 1
}

/// One work-stealing batch: indexed scoring jobs any lane may claim.
type JobQueue = rayon::deque::Injector<(usize, LayerId, AccId)>;

enum Request {
    /// Steal `(candidate index, layer, destination)` jobs from the
    /// shared queue until it drains.
    Score(Arc<JobQueue>),
    /// The main engine accepted this move: replay it.
    Commit(LayerId, AccId),
}

/// A scoped pool of scoring workers (see module docs for the
/// protocol). Dropping the pool closes the request channels and lets
/// the workers join at scope exit.
#[derive(Debug)]
pub struct ScoringPool {
    txs: Vec<Sender<Request>>,
    results: Receiver<(usize, CandidateOutcome)>,
    // Reusable result scratch (the hot loop should not allocate; only
    // the per-batch injector must, since it is shared across threads).
    slots: Vec<Option<CandidateOutcome>>,
}

impl ScoringPool {
    /// Spawns `workers` scoring threads into `scope`, each owning a
    /// fork of `engine` and a copy of `mapping` (both must be the
    /// current, unstaged search state).
    pub fn spawn<'scope, 'env, 'e: 'env, 'm: 'env>(
        scope: &rayon::Scope<'scope, 'env>,
        engine: &DeltaEngine<'e, 'm>,
        mapping: &Mapping,
        workers: usize,
    ) -> ScoringPool {
        let (result_tx, results) = channel();
        let mut txs = Vec::with_capacity(workers);
        for _ in 0..workers {
            let (tx, rx) = channel::<Request>();
            let mut worker_engine = engine.fork();
            let mut worker_mapping = mapping.clone();
            let worker_results: Sender<(usize, CandidateOutcome)> = result_tx.clone();
            scope.spawn(move || {
                while let Ok(req) = rx.recv() {
                    match req {
                        Request::Score(jobs) => {
                            while let rayon::deque::Steal::Success((idx, layer, to)) =
                                jobs.steal()
                            {
                                let out = score_candidate(
                                    &mut worker_engine,
                                    &mut worker_mapping,
                                    layer,
                                    to,
                                );
                                if worker_results.send((idx, out)).is_err() {
                                    return;
                                }
                            }
                        }
                        Request::Commit(layer, to) => {
                            commit_move(&mut worker_engine, &mut worker_mapping, layer, to);
                        }
                    }
                }
            });
            txs.push(tx);
        }
        ScoringPool { txs, results, slots: Vec::new() }
    }

    /// Number of scoring lanes (workers + the main engine).
    pub fn lanes(&self) -> usize {
        self.txs.len() + 1
    }

    /// Scores `cands` against the current state: the batch goes into a
    /// shared work-stealing queue and every lane — workers and the main
    /// engine alike — steals jobs until it drains. Fills `out` with one
    /// outcome per candidate, in candidate order (steal order never
    /// shows: results are keyed by candidate index). Worker profile
    /// deltas are absorbed into `engine.profile` here.
    pub fn score_batch(
        &mut self,
        engine: &mut DeltaEngine<'_, '_>,
        mapping: &mut Mapping,
        cands: &[(LayerId, AccId)],
        out: &mut Vec<CandidateOutcome>,
    ) {
        out.clear();
        self.slots.clear();
        self.slots.resize(cands.len(), None);
        let jobs: Arc<JobQueue> = Arc::new(rayon::deque::Injector::new());
        for (idx, &(layer, to)) in cands.iter().enumerate() {
            jobs.push((idx, layer, to));
        }
        // Publish the queue only after it is fully loaded: a worker
        // that drains it early would go idle for the rest of the batch,
        // costing wall-clock (never correctness).
        for tx in &self.txs {
            tx.send(Request::Score(Arc::clone(&jobs))).expect("scoring worker alive");
        }
        let mut scored_here = 0;
        while let rayon::deque::Steal::Success((idx, layer, to)) = jobs.steal() {
            self.slots[idx] = Some(score_candidate(engine, mapping, layer, to));
            scored_here += 1;
        }
        // Every job is stolen by exactly one lane, so the workers owe
        // precisely the complement of what the main lane scored.
        for _ in 0..cands.len() - scored_here {
            let (idx, outcome) = self.results.recv().expect("scoring worker alive");
            self.slots[idx] = Some(outcome);
        }
        for slot in self.slots.drain(..) {
            let outcome = slot.expect("every candidate scored");
            engine.profile.absorb(&outcome.profile);
            out.push(outcome);
        }
    }

    /// Broadcasts an accepted move to every worker (the caller commits
    /// it on the main engine itself).
    pub fn broadcast_commit(&self, layer: LayerId, to: AccId) {
        for tx in &self.txs {
            tx.send(Request::Commit(layer, to)).expect("scoring worker alive");
        }
    }
}

/// Serial-equivalent batch step for the greedy remap loop: scores
/// `cands` (through `pool` when present, inline otherwise), absorbs
/// the stat deltas of exactly the candidates the serial first-improving
/// scan would have attempted, and commits the first candidate that
/// improves on the engine's current score by more than
/// `accept_epsilon`. Returns `true` on accept (with `mapping` left
/// moved).
pub(crate) fn try_first_improving(
    engine: &mut DeltaEngine<'_, '_>,
    mapping: &mut Mapping,
    cands: &[(LayerId, AccId)],
    pool: Option<&mut ScoringPool>,
    outcomes: &mut Vec<CandidateOutcome>,
) -> bool {
    let eps = engine.config().accept_epsilon;
    match pool {
        Some(pool) if cands.len() > 1 => {
            let best = engine.score();
            pool.score_batch(engine, mapping, cands, outcomes);
            let winner = outcomes.iter().position(|o| o.score + eps < best);
            let attempted = winner.map_or(cands.len(), |w| w + 1);
            for outcome in &outcomes[..attempted] {
                engine.stats.absorb(&outcome.stats);
            }
            if let Some(w) = winner {
                let (layer, to) = cands[w];
                pool.broadcast_commit(layer, to);
                commit_move(engine, mapping, layer, to);
                true
            } else {
                false
            }
        }
        // Serial (or single candidate): the classic stage/accept-or-
        // reject walk — accepted candidates commit their own staging.
        // Workers, when present, must still see the accepted move or
        // their forks would drift from the main engine.
        mut pool => {
            for (layer, to) in cands {
                if engine.try_improving_move(mapping, *layer, *to) {
                    if let Some(pool) = pool.as_deref_mut() {
                        pool.broadcast_commit(*layer, *to);
                    }
                    return true;
                }
            }
            false
        }
    }
}
