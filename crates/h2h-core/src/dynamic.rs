//! Dynamic modality change (paper §4.5).
//!
//! Multi-sensor systems switch modalities on and off at runtime — a
//! health monitor disabling its motion stream, an AR headset muting
//! audio — sometimes several times per second. Remapping from scratch
//! would reload every pinned weight over Ethernet. The extension keeps a
//! session: each remap (a) *prioritizes* placing a layer on the
//! accelerator already buffering its weights (zero weight-transfer in
//! the step-1 objective) and (b) runs the *modified knapsack* whose
//! allocation is partially pre-determined by the carried-over weights.
//! The payoff metric is avoided reload traffic.

use std::collections::HashMap;

use h2h_model::graph::ModelGraph;
use h2h_model::tensor::DataType;
use h2h_model::units::{Bytes, Seconds};
use h2h_system::system::{AccId, SystemSpec};

use crate::config::H2hConfig;
use crate::pipeline::{H2hError, H2hMapper, H2hOutcome};
use crate::preset::PinPreset;

/// One dynamic remap result.
#[derive(Debug)]
pub struct DynamicOutcome {
    /// The full pipeline outcome for the new modality configuration.
    pub outcome: H2hOutcome,
    /// Weight bytes reused in place (no reload needed).
    pub reused: Bytes,
    /// Reused weight bytes per accelerator (indexed by
    /// `AccId::index()`), for per-link reload-time accounting.
    pub reused_by_acc: Vec<Bytes>,
    /// Weight bytes newly loaded into some accelerator's DRAM.
    pub reloaded: Bytes,
}

impl DynamicOutcome {
    /// Reconfiguration time avoided by weight reuse, with each board's
    /// share charged at that board's host-link rate (one scalar-rate
    /// transfer on a uniform star, bitwise).
    pub fn reload_time_saved(&self, system: &SystemSpec) -> Seconds {
        system.topology().host_stream_time(
            self.reused_by_acc
                .iter()
                .enumerate()
                .filter(|(_, b)| **b > Bytes::ZERO)
                .map(|(a, b)| (AccId::new(a), *b)),
        )
    }
}

/// A long-running mapping session that carries buffered weights across
/// modality changes. Layers are identified by *name* (stable across the
/// sub-models that [`ModelGraph::retain_modalities`] produces).
#[derive(Debug)]
pub struct DynamicSession<'s> {
    system: &'s SystemSpec,
    config: H2hConfig,
    /// layer name → (acc, weight bytes) currently resident.
    buffered: HashMap<String, (AccId, Bytes)>,
}

impl<'s> DynamicSession<'s> {
    /// Starts a session with nothing buffered.
    pub fn new(system: &'s SystemSpec, config: H2hConfig) -> Self {
        DynamicSession { system, config, buffered: HashMap::new() }
    }

    /// Bytes currently buffered across the system.
    pub fn buffered_bytes(&self) -> Bytes {
        self.buffered.values().map(|(_, b)| *b).sum()
    }

    /// Number of layers with resident weights.
    pub fn buffered_layers(&self) -> usize {
        self.buffered.len()
    }

    /// Maps a (new) modality configuration, reusing buffered weights
    /// where possible, and updates the session's residency state.
    ///
    /// # Errors
    ///
    /// Returns [`H2hError`] if the model cannot be mapped on the system.
    pub fn remap(&mut self, model: &ModelGraph) -> Result<DynamicOutcome, H2hError> {
        // Build the preset from carried-over residencies.
        let mut preset = PinPreset::new();
        for (id, layer) in model.layers() {
            if let Some((acc, _)) = self.buffered.get(layer.name()) {
                preset.insert(id, *acc);
            }
        }

        let outcome = H2hMapper::new(model, self.system)
            .with_config(self.config)
            .with_preset(preset.clone())
            .run()?;

        // Account reuse vs reload over the *new* pinned set.
        let mut reused = Bytes::ZERO;
        let mut reused_by_acc = vec![Bytes::ZERO; self.system.num_accs()];
        let mut reloaded = Bytes::ZERO;
        let mut next: HashMap<String, (AccId, Bytes)> = HashMap::new();
        for id in outcome.locality.pinned_layers() {
            let layer = model.layer(id);
            let acc = outcome.mapping.acc_of(id);
            let bytes = layer.weight_bytes(DataType::F32);
            if preset.is_buffered(id, acc) {
                reused += bytes;
                reused_by_acc[acc.index()] += bytes;
            } else {
                reloaded += bytes;
            }
            next.insert(layer.name().to_owned(), (acc, bytes));
        }
        self.buffered = next;

        Ok(DynamicOutcome { outcome, reused, reused_by_acc, reloaded })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use h2h_system::system::BandwidthClass;

    #[test]
    fn first_remap_loads_everything() {
        let system = SystemSpec::standard(BandwidthClass::LowMinus);
        let mut session = DynamicSession::new(&system, H2hConfig::default());
        let model = h2h_model::zoo::cnn_lstm();
        let out = session.remap(&model).unwrap();
        assert_eq!(out.reused, Bytes::ZERO, "cold start has nothing to reuse");
        assert!(out.reloaded > Bytes::ZERO);
        assert!(session.buffered_layers() > 0);
    }

    #[test]
    fn repeat_remap_reuses_weights() {
        let system = SystemSpec::standard(BandwidthClass::LowMinus);
        let mut session = DynamicSession::new(&system, H2hConfig::default());
        let model = h2h_model::zoo::cnn_lstm();
        session.remap(&model).unwrap();
        let again = session.remap(&model).unwrap();
        assert!(
            again.reused > Bytes::ZERO,
            "identical configuration must reuse buffered weights"
        );
        assert_eq!(
            again.reloaded,
            Bytes::ZERO,
            "identical configuration needs no reload"
        );
        assert!(again.reload_time_saved(&system) > Seconds::ZERO);
    }

    #[test]
    fn modality_toggle_reuses_surviving_streams() {
        let system = SystemSpec::standard(BandwidthClass::LowMinus);
        let mut session = DynamicSession::new(&system, H2hConfig::default());
        let full = h2h_model::zoo::cnn_lstm();
        // Start without the EMG sensor, then switch it on.
        let reduced = full.retain_modalities(&["video", "imu_wrist", "imu_ankle"]);
        reduced.validate().unwrap();
        session.remap(&reduced).unwrap();
        let grown = session.remap(&full).unwrap();
        assert!(
            grown.reused > Bytes::ZERO,
            "video/imu weights should survive the modality change"
        );
        // The EMG stream is new: something must load.
        assert!(grown.reloaded > Bytes::ZERO);
    }

    #[test]
    fn dynamic_latency_matches_static_quality() {
        // Reusing weights must not cost steady-state latency: the final
        // mapping should be as good as a cold H2H run (within 5%).
        let system = SystemSpec::standard(BandwidthClass::LowMinus);
        let model = h2h_model::zoo::mocap();
        let cold = H2hMapper::new(&model, &system).run().unwrap();
        let mut session = DynamicSession::new(&system, H2hConfig::default());
        session.remap(&model).unwrap();
        let warm = session.remap(&model).unwrap();
        let c = cold.final_latency().as_f64();
        let w = warm.outcome.final_latency().as_f64();
        assert!(w <= c * 1.05, "warm {w} vs cold {c}");
    }
}
