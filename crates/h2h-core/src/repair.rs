//! Time-budgeted mapping repair on a degraded fabric.
//!
//! When a [`h2h_system::fault::FaultPlan`] takes boards down or
//! degrades links mid-serve, the incumbent mapping is suddenly priced
//! on the wrong fabric — and layers on dead boards cannot run at all.
//! A full from-scratch remap recovers the best achievable latency but
//! costs a whole pipeline run; this module implements the middle
//! ground the paper's incremental machinery makes cheap:
//!
//! 1. **Evacuate**: every layer on a down board moves to the best live
//!    supporting accelerator (preferring boards that already host a
//!    graph neighbour, then fastest compute, then lowest id) — the
//!    minimal forced change.
//! 2. **Re-price**: the evacuated incumbent is evaluated on the
//!    degraded fabric (every route-crossing edge now pays the degraded
//!    per-route bandwidth) — the *incumbent-on-degraded* baseline.
//! 3. **Budgeted search**: a [`DeltaEngine`] pass loop identical in
//!    decision rule to step-4 remapping, but visiting fault-affected
//!    layers first and hard-capped at a **budget in attempted-move
//!    units** — a deterministic currency (no wall clocks), so repairs
//!    reproduce bit-identically across machines.
//!
//! [`scratch_remap`] prices the alternative: a full H2H pipeline run
//! on the live sub-system ([`SystemSpec::live_subsystem`]), translated
//! back to full-system accelerator ids. The fault acceptance suite
//! asserts the budgeted repair recovers ≥ 80 % of the scratch remap's
//! latency improvement at ≤ 10 % of its attempted moves on large zoo
//! models.

use h2h_model::graph::{LayerId, ModelGraph};
use h2h_model::units::Seconds;
use h2h_system::fault::FaultState;
use h2h_system::locality::LocalityState;
use h2h_system::mapping::Mapping;
use h2h_system::schedule::{Evaluator, Schedule};
use h2h_system::system::{AccId, SystemSpec};

use crate::activation_fusion::rebuild_locality;
use crate::config::H2hConfig;
use crate::delta::{DeltaEngine, SearchStats};
use crate::pipeline::{H2hError, H2hMapper};
use crate::preset::PinPreset;

/// Result of a budgeted repair.
#[derive(Debug)]
pub struct RepairOutcome {
    /// The repaired mapping (valid on the degraded system).
    pub mapping: Mapping,
    /// Locality state of the repaired mapping.
    pub locality: LocalityState,
    /// Schedule of the repaired mapping on the degraded fabric.
    pub schedule: Schedule,
    /// Layers forcibly moved off dead boards, in topological order.
    pub evacuated: Vec<LayerId>,
    /// Latency of the evacuated incumbent on the degraded fabric
    /// before any search — what serving would pay with no repair.
    pub incumbent_degraded: Seconds,
    /// Search counters; `attempted_moves` is the budget actually spent.
    pub stats: SearchStats,
    /// Modeled wall-clock cost of this repair:
    /// `stats.attempted_moves ×` [`H2hConfig::repair_secs_per_move`].
    /// Zero under the default instantaneous-repair model; when the knob
    /// is set, serving charges this window against the SLO ledgers of
    /// the rounds it displaces (see `TenantRegistry::serve_with_faults`
    /// in `h2h-core`).
    pub wall_time: Seconds,
}

impl RepairOutcome {
    /// Latency of the repaired mapping on the degraded fabric.
    pub fn repaired(&self) -> Seconds {
        self.schedule.makespan()
    }
}

/// Result of a from-scratch remap on the live sub-system.
#[derive(Debug)]
pub struct ScratchOutcome {
    /// The scratch mapping, translated back to full-system ids.
    pub mapping: Mapping,
    /// Its latency on the (full) degraded system.
    pub makespan: Seconds,
    /// Step-4 search counters of the scratch pipeline run.
    pub stats: SearchStats,
    /// Full [`Evaluator::evaluate`] calls billed across the *whole*
    /// scratch pipeline (step snapshots, fusion guard replays, remap
    /// engine, final re-pricing) — the evaluator-call bill the
    /// budgeted repair is measured against. The step-4 `stats` see
    /// only their own slice of this.
    pub pipeline_evals: usize,
}

/// Resolves [`H2hConfig::repair_eval_budget`]: `0` means the automatic
/// `max(16, 3 * num_layers / 2)` attempted-move budget — sized so the
/// priority-ordered search makes it through the fault-affected layers
/// more than once (the second pass is where hotspot drains unlock)
/// while staying well under half a from-scratch remap's search bill.
pub fn resolve_repair_budget(cfg: &H2hConfig, model: &ModelGraph) -> usize {
    if cfg.repair_eval_budget == 0 {
        (3 * model.num_layers() / 2).max(16)
    } else {
        cfg.repair_eval_budget
    }
}

/// Repairs `incumbent` for the fault condition `state`, spending at
/// most `budget` attempted delta moves.
///
/// `ev` must be an evaluator over the **degraded** system
/// ([`SystemSpec::degrade`] with the same `state`) — the repair prices
/// everything on the fabric that actually exists. With a healthy
/// `state` the evacuation is empty and (because step-4 remapping ran
/// the incumbent to a fixpoint of the same candidate structure) the
/// search accepts nothing: repair is a no-op.
///
/// # Errors
///
/// Returns [`H2hError::NoCapableAccelerator`] when a layer stranded on
/// a dead board has no live accelerator that supports its class.
pub fn repair_mapping(
    ev: &Evaluator<'_>,
    cfg: &H2hConfig,
    preset: &PinPreset,
    incumbent: &Mapping,
    state: &FaultState,
    budget: usize,
) -> Result<RepairOutcome, H2hError> {
    let model = ev.model();
    let system = ev.system();
    let mut mapping = incumbent.clone();

    // 1. Evacuate dead boards (topological order, deterministic).
    let evacuated = evacuate(ev, &mut mapping, state)?;

    // 2. Price the evacuated incumbent on the degraded fabric.
    let incumbent_loc = rebuild_locality(ev, &mapping, cfg, preset);
    let incumbent_degraded = ev.evaluate(&mapping, &incumbent_loc).makespan();

    // 3. Budgeted delta search, fault-affected layers first.
    let mut engine = DeltaEngine::new(ev, cfg, preset, &mapping);
    let order = repair_visit_order(model, &mapping, &evacuated, state);
    let mut passes = 0;
    let mut neighbours: Vec<AccId> = Vec::new();
    'outer: while passes < cfg.remap_max_passes {
        passes += 1;
        let mut improved = false;
        for &layer in &order {
            let current = mapping.acc_of(layer);
            neighbours.clear();
            neighbours.extend(
                model
                    .predecessors(layer)
                    .chain(model.successors(layer))
                    .filter_map(|n| mapping.get(n))
                    .filter(|acc| *acc != current),
            );
            neighbours.sort_unstable();
            neighbours.dedup();
            for &acc in &neighbours {
                if !state.acc_is_up(acc) || !system.acc(acc).supports(model.layer(layer)) {
                    continue;
                }
                if engine.stats.attempted_moves >= budget {
                    break 'outer;
                }
                if engine.try_improving_move(&mut mapping, layer, acc) {
                    improved = true;
                    break;
                }
            }
        }
        if !improved {
            break;
        }
    }

    let (locality, schedule, mut stats) = engine.finalize(&mapping);
    stats.passes = passes;
    // The incumbent pricing of step 2 is part of the repair's bill.
    stats.full_rebuilds += 1;
    stats.full_evals += 1;
    // The attempted-move counter is the deterministic currency; the
    // per-move cost converts it into modeled wall time (calibrated
    // against BENCH_search.json evaluator throughput).
    let wall_time = Seconds::new(stats.attempted_moves as f64 * cfg.repair_secs_per_move);
    Ok(RepairOutcome { mapping, locality, schedule, evacuated, incumbent_degraded, stats, wall_time })
}

/// Moves every layer on a down board to the best live supporting
/// accelerator: boards already hosting a graph neighbour first, then
/// fastest compute, then lowest id. Neighbour boards win over a
/// load-balanced spread because the fabric is communication-dominated
/// — severing co-locations costs more than a compute hotspot, and the
/// budgeted search that follows is better at spreading compute than at
/// re-discovering locality. Returns the moved layers in topological
/// order.
fn evacuate(
    ev: &Evaluator<'_>,
    mapping: &mut Mapping,
    state: &FaultState,
) -> Result<Vec<LayerId>, H2hError> {
    let model = ev.model();
    let system = ev.system();
    let mut evacuated = Vec::new();
    for id in model.topo_order() {
        if state.acc_is_up(mapping.acc_of(id)) {
            continue;
        }
        let layer = model.layer(id);
        let live_supporting = |acc: &AccId| {
            state.acc_is_up(*acc) && system.acc(*acc).supports(layer)
        };
        let pick = |accs: &mut dyn Iterator<Item = AccId>| -> Option<AccId> {
            accs.filter(live_supporting)
                .map(|acc| {
                    // Effective compute time: the cache stores healthy-speed
                    // times; a compute-degraded board pays its throttle, so
                    // the evacuation prefers unthrottled boards. (`* 1.0` is
                    // exact — healthy fabrics keep today's ordering bitwise.)
                    let t = ev.cache().time(id, acc).expect("supporting acc has a cost")
                        * system.compute_factor(acc);
                    (t, acc)
                })
                .min_by(|a, b| a.partial_cmp(b).expect("compute times are finite"))
                .map(|(_, acc)| acc)
        };
        // Prefer a board already hosting a neighbour (so the evacuation
        // severs as few co-locations as possible), then any live board.
        let mut near = model
            .predecessors(id)
            .chain(model.successors(id))
            .filter_map(|n| mapping.get(n));
        let dest = pick(&mut near).or_else(|| pick(&mut system.acc_ids()));
        match dest {
            Some(acc) => {
                mapping.set(id, acc);
                evacuated.push(id);
            }
            None => {
                return Err(H2hError::NoCapableAccelerator { layer: layer.name().to_string() })
            }
        }
    }
    Ok(evacuated)
}

/// Visit order of the repair search: fault-affected layers (evacuees,
/// layers on degraded-link or compute-throttled boards, and the graph
/// neighbours of both) in topological order, then everything else in
/// topological order — the budget goes where the fault hit first.
/// Host-scoped faults re-price every via-host route at once, so they
/// add no per-board priority: the plain topological order is already
/// the right sweep.
fn repair_visit_order(
    model: &ModelGraph,
    mapping: &Mapping,
    evacuated: &[LayerId],
    state: &FaultState,
) -> Vec<LayerId> {
    let mut priority = vec![false; model.id_bound()];
    let mark_with_neighbours = |id: LayerId, priority: &mut Vec<bool>| {
        priority[id.index()] = true;
        for n in model.predecessors(id).chain(model.successors(id)) {
            priority[n.index()] = true;
        }
    };
    for &id in evacuated {
        mark_with_neighbours(id, &mut priority);
    }
    let topo = model.topo_order();
    for &id in &topo {
        let acc = mapping.acc_of(id);
        if state.link_factor(acc) > 1.0 || state.compute_factor(acc) > 1.0 {
            mark_with_neighbours(id, &mut priority);
        }
    }
    topo.iter()
        .copied()
        .filter(|id| priority[id.index()])
        .chain(topo.iter().copied().filter(|id| !priority[id.index()]))
        .collect()
}

/// Full H2H pipeline on the live sub-system of `state`, translated
/// back to full-system accelerator ids and priced on the (full)
/// degraded system — the reference the budgeted repair competes with.
///
/// # Errors
///
/// Propagates pipeline errors (e.g. the surviving boards cannot run
/// some layer class).
///
/// # Panics
///
/// Panics if `state` downs every accelerator.
pub fn scratch_remap(
    model: &ModelGraph,
    system: &SystemSpec,
    state: &FaultState,
    cfg: &H2hConfig,
    preset: &PinPreset,
) -> Result<ScratchOutcome, H2hError> {
    let (sub_sys, live_ids) = system.live_subsystem(state);
    let mapper =
        H2hMapper::new(model, &sub_sys).with_config(*cfg).with_preset(preset.clone());
    let outcome = mapper.run()?;

    // Translate sub-system accelerator indices back to full-system ids
    // and re-price on the full degraded system (bit-identical fabric —
    // live_subsystem and degrade build the same routes for live pairs).
    let degraded = system.degrade(state);
    let ev = Evaluator::new(model, &degraded);
    let mut mapping = Mapping::new(model);
    for id in model.layer_ids() {
        mapping.set(id, live_ids[outcome.mapping.acc_of(id).index()]);
    }
    let locality = rebuild_locality(&ev, &mapping, cfg, preset);
    let makespan = ev.evaluate(&mapping, &locality).makespan();
    let pipeline_evals = mapper.evaluator().evals_performed() + ev.evals_performed();
    Ok(ScratchOutcome { mapping, makespan, stats: outcome.remap_stats, pipeline_evals })
}

#[cfg(test)]
mod tests {
    use super::*;
    use h2h_system::system::{BandwidthClass, SystemSpec};

    fn board_down(acc: usize, n: usize) -> FaultState {
        let mut s = FaultState::healthy(n);
        s.set_down(AccId::new(acc));
        s
    }

    #[test]
    fn repair_on_healthy_state_is_a_noop() {
        let model = h2h_model::zoo::mocap();
        let system = SystemSpec::standard(BandwidthClass::LowMinus);
        let cfg = H2hConfig::default();
        let preset = PinPreset::new();
        let outcome = H2hMapper::new(&model, &system).with_config(cfg).run().unwrap();
        let state = FaultState::healthy(system.num_accs());
        let degraded = system.degrade(&state);
        let ev = Evaluator::new(&model, &degraded);
        let rep = repair_mapping(&ev, &cfg, &preset, &outcome.mapping, &state, 10_000).unwrap();
        assert!(rep.evacuated.is_empty());
        assert_eq!(rep.mapping, outcome.mapping, "healthy repair must not move anything");
        assert_eq!(rep.stats.accepted_moves, 0);
        assert_eq!(
            rep.repaired().as_f64(),
            outcome.schedule.makespan().as_f64(),
            "healthy repair must reproduce the incumbent latency bitwise"
        );
    }

    #[test]
    fn evacuation_clears_dead_boards_and_budget_zero_only_evacuates() {
        let model = h2h_model::zoo::cnn_lstm();
        let system = SystemSpec::standard(BandwidthClass::LowMinus);
        let cfg = H2hConfig::default();
        let preset = PinPreset::new();
        let outcome = H2hMapper::new(&model, &system).with_config(cfg).run().unwrap();
        // Down the board hosting the most layers so the evacuation is
        // non-trivial.
        let mut load = vec![0usize; system.num_accs()];
        for id in model.layer_ids() {
            load[outcome.mapping.acc_of(id).index()] += 1;
        }
        let dead = load.iter().enumerate().max_by_key(|(_, l)| **l).unwrap().0;
        let state = board_down(dead, system.num_accs());
        let degraded = system.degrade(&state);
        let ev = Evaluator::new(&model, &degraded);
        let rep = repair_mapping(&ev, &cfg, &preset, &outcome.mapping, &state, 0).unwrap();
        assert_eq!(rep.evacuated.len(), load[dead]);
        assert_eq!(rep.stats.attempted_moves, 0, "budget 0 must not search");
        for id in model.layer_ids() {
            assert_ne!(rep.mapping.acc_of(id).index(), dead, "dead board must be empty");
        }
        rep.mapping.validate(&model, &degraded).unwrap();
        assert_eq!(
            rep.repaired().as_f64(),
            rep.incumbent_degraded.as_f64(),
            "with no search the repaired latency is the incumbent's"
        );
    }

    #[test]
    fn budgeted_repair_improves_on_the_evacuated_incumbent() {
        let model = h2h_model::zoo::casia_surf();
        let system = SystemSpec::standard(BandwidthClass::LowMinus);
        let cfg = H2hConfig::default();
        let preset = PinPreset::new();
        let outcome = H2hMapper::new(&model, &system).with_config(cfg).run().unwrap();
        let mut load = vec![0usize; system.num_accs()];
        for id in model.layer_ids() {
            load[outcome.mapping.acc_of(id).index()] += 1;
        }
        let dead = load.iter().enumerate().max_by_key(|(_, l)| **l).unwrap().0;
        let state = board_down(dead, system.num_accs());
        let degraded = system.degrade(&state);
        let ev = Evaluator::new(&model, &degraded);
        let budget = resolve_repair_budget(&cfg, &model);
        let rep = repair_mapping(&ev, &cfg, &preset, &outcome.mapping, &state, budget).unwrap();
        assert!(rep.stats.attempted_moves <= budget);
        assert!(
            rep.repaired() <= rep.incumbent_degraded,
            "search must not make the evacuated incumbent worse: {} vs {}",
            rep.repaired(),
            rep.incumbent_degraded
        );
        rep.mapping.validate(&model, &degraded).unwrap();
    }
}
