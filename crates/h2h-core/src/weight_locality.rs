//! Step 2 — weight-locality optimization (paper §4.2).
//!
//! For each accelerator, a knapsack packs layer weights into the local
//! DRAM budget (`M_acc`); pinned layers stop streaming weights over
//! the interconnect. Item value is the saved transfer time
//! `bytes · (1/BW_link − 1/BW_dram)` where `BW_link` is the board's
//! host-route bandwidth (the paper's single `BW_eth` on a uniform
//! star), so at equal density the solver maximizes pinned bytes — the
//! paper's "as much as possible" objective — and boards behind slow
//! links value their pins proportionally higher.
//! A [`PinPreset`] (dynamic modality change, §4.5) force-pins carried-
//! over weights before the knapsack packs what remains.

use h2h_model::tensor::DataType;
use h2h_model::units::Bytes;
use h2h_system::locality::LocalityState;
use h2h_system::mapping::Mapping;
use h2h_system::schedule::Evaluator;
use h2h_system::system::AccId;
use h2h_system::topology::Endpoint;

use crate::config::KnapsackKind;
use crate::knapsack::{solve_auto, solve_dp, solve_greedy, Item};
use crate::preset::PinPreset;

/// Runs the weight-locality pass on top of `base` (usually a fresh
/// zero-locality state) and returns the updated state.
pub fn weight_locality_opt(
    ev: &Evaluator<'_>,
    mapping: &Mapping,
    base: LocalityState,
    kind: KnapsackKind,
    preset: &PinPreset,
) -> LocalityState {
    let mut loc = base;
    let accs: Vec<AccId> = ev.system().acc_ids().collect();
    weight_locality_pass(ev, mapping, &mut loc, kind, preset, &accs);
    loc
}

/// The step-2 pass body, restricted to `accs`: forced preset pins for
/// layers mapped there, then the per-accelerator knapsack. Because both
/// stages are strictly per-accelerator, running this over a subset of
/// accelerators reproduces exactly what the full pass would decide for
/// them — the property the incremental search core's scoped rebuild
/// relies on, which is why both share this one body.
pub fn weight_locality_pass(
    ev: &Evaluator<'_>,
    mapping: &Mapping,
    loc: &mut LocalityState,
    kind: KnapsackKind,
    preset: &PinPreset,
    accs: &[AccId],
) {
    let model = ev.model();
    let system = ev.system();
    let topo = system.topology();

    // Forced pins first: weights already resident from a previous
    // configuration keep their slot as long as the layer still maps to
    // that accelerator.
    for (layer, acc) in preset.iter() {
        if accs.contains(&acc)
            && mapping.get(layer) == Some(acc)
            && model.layer(layer).has_weights()
        {
            // Capacity can refuse if the new configuration shrank the
            // budget; the knapsack below then competes for the slot.
            let _ = loc.try_pin(model, system, layer, acc);
        }
    }

    let mut ids = Vec::new();
    let mut items: Vec<Item> = Vec::new();
    for &acc in accs {
        let dram = system.acc(acc).dram_bandwidth().as_f64();
        // Weights stream from the host, so the saved time is priced at
        // this board's host-route bandwidth — boards behind slow links
        // value their pins proportionally higher.
        let eth = topo.path_bw(Endpoint::Host, Endpoint::Acc(acc)).as_f64();
        let saved_per_byte = 1.0 / eth - 1.0 / dram;
        if saved_per_byte <= 0.0 {
            // Every item would be priced at zero-or-negative value, and
            // all three solvers ignore those: nothing to pin.
            continue;
        }
        ids.clear();
        items.clear();
        let mut total: u64 = 0;
        // `weighted_layers` is the precomputed has-weights subset in
        // graph iteration order — the same items, in the same order,
        // the historical `model.layers()` filter produced.
        for &(id, bytes) in ev.weighted_layers() {
            if mapping.get(id) != Some(acc) || loc.is_pinned(id) {
                continue;
            }
            let bytes = bytes.as_u64();
            total += bytes;
            ids.push(id);
            items.push(Item {
                id: ids.len() - 1,
                weight: bytes,
                value: bytes as f64 * saved_per_byte,
            });
        }
        if items.is_empty() {
            continue;
        }
        let capacity = loc.dram_free(acc, system).as_u64();
        if total <= capacity && !matches!(kind, KnapsackKind::Dp) {
            // Everything fits: the greedy solver (which Auto picks here —
            // all items share the same exact density) selects every item
            // and returns the ids in input order, so pin directly and
            // skip the density sort. DP is excluded: its grid rounds
            // weights up, so "fits raw" does not imply "fits scaled".
            for idx in 0..ids.len() {
                let ok = loc.try_pin_bytes(system, ids[idx], acc, Bytes::new(items[idx].weight));
                debug_assert!(ok, "all-fit fast path: every pin fits by construction");
            }
            continue;
        }
        let chosen = match kind {
            KnapsackKind::Dp => solve_dp(&items, capacity),
            KnapsackKind::Greedy => solve_greedy(&items, capacity),
            KnapsackKind::Auto => solve_auto(&items, capacity),
        };
        for idx in chosen {
            // The item's knapsack weight *is* the layer's F32 weight
            // bytes, so the pin skips the model lookup.
            let ok = loc.try_pin_bytes(system, ids[idx], acc, Bytes::new(items[idx].weight));
            debug_assert!(ok, "knapsack selections must fit the DRAM budget");
        }
    }
}

/// Total weight bytes mapped to `acc` (reporting helper).
pub fn weight_bytes_on(ev: &Evaluator<'_>, mapping: &Mapping, acc: AccId) -> Bytes {
    ev.model()
        .layers()
        .filter(|(id, _)| mapping.get(*id) == Some(acc))
        .map(|(_, l)| l.weight_bytes(DataType::F32))
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use h2h_model::builder::ModelBuilder;
    use h2h_model::tensor::TensorShape;
    use h2h_system::system::AccId;
    use h2h_system::testutil::{const_system, ConstAccel};

    /// Three FC layers of 256 MiB each on a 512 MiB accelerator.
    fn setup() -> (h2h_model::ModelGraph, h2h_system::SystemSpec, Mapping) {
        let mut b = ModelBuilder::new("w");
        let i = b.input("i", TensorShape::Vector { features: 8192 });
        let f1 = b.fc("f1", i, 8192).unwrap();
        let f2 = b.fc("f2", f1, 8192).unwrap();
        b.fc("f3", f2, 8192).unwrap();
        let m = b.finish().unwrap();
        let sys = const_system(
            vec![ConstAccel::universal("u", 1e-3).with_dram(Bytes::from_mib(600))],
            1e6,
        );
        let mut map = Mapping::new(&m);
        for id in m.layer_ids() {
            map.set(id, AccId::new(0));
        }
        (m, sys, map)
    }

    #[test]
    fn pins_as_much_as_fits() {
        let (m, sys, map) = setup();
        let ev = Evaluator::new(&m, &sys);
        for kind in [KnapsackKind::Dp, KnapsackKind::Greedy, KnapsackKind::Auto] {
            let loc = weight_locality_opt(
                &ev,
                &map,
                LocalityState::new(&sys),
                kind,
                &PinPreset::new(),
            );
            // 600 MiB budget, 256 MiB items -> exactly 2 pinned.
            assert_eq!(loc.num_pinned(), 2, "{kind:?}");
            assert!(loc.total_pinned_bytes(&m) <= Bytes::from_mib(600));
        }
    }

    #[test]
    fn pinning_never_hurts_latency() {
        let (m, sys, map) = setup();
        let ev = Evaluator::new(&m, &sys);
        let before = ev.evaluate(&map, &LocalityState::new(&sys));
        let loc = weight_locality_opt(
            &ev,
            &map,
            LocalityState::new(&sys),
            KnapsackKind::Auto,
            &PinPreset::new(),
        );
        let after = ev.evaluate(&map, &loc);
        assert!(after.makespan() < before.makespan());
    }

    #[test]
    fn preset_pins_take_priority() {
        let (m, sys, map) = setup();
        let ev = Evaluator::new(&m, &sys);
        let ids = m.topo_order();
        // Force-pin f3 (which the plain knapsack would not prefer over
        // f1/f2 — all equal value, ties broken by order).
        let mut preset = PinPreset::new();
        preset.insert(ids[3], AccId::new(0));
        let loc = weight_locality_opt(
            &ev,
            &map,
            LocalityState::new(&sys),
            KnapsackKind::Auto,
            &preset,
        );
        assert!(loc.is_pinned(ids[3]), "preset layer must stay pinned");
        assert_eq!(loc.num_pinned(), 2);
    }

    #[test]
    fn preset_ignored_when_layer_moved_away() {
        let (m, sys, mut map) = setup();
        let sys2 = const_system(
            vec![
                ConstAccel::universal("u0", 1e-3).with_dram(Bytes::from_mib(600)),
                ConstAccel::universal("u1", 1e-3).with_dram(Bytes::from_mib(600)),
            ],
            1e6,
        );
        let ids = m.topo_order();
        // Preset says f3's weights live on acc 0, but f3 now maps to 1.
        for id in m.layer_ids() {
            map.set(id, AccId::new(1));
        }
        let ev = Evaluator::new(&m, &sys2);
        let mut preset = PinPreset::new();
        preset.insert(ids[3], AccId::new(0));
        let loc = weight_locality_opt(
            &ev,
            &map,
            LocalityState::new(&sys2),
            KnapsackKind::Auto,
            &preset,
        );
        // Nothing pinned on acc 0; knapsack fills acc 1 normally.
        assert_eq!(loc.dram_used(AccId::new(0)), Bytes::ZERO);
        assert_eq!(loc.num_pinned(), 2);
        let _ = sys;
    }
}
