//! # h2h-core — the H2H mapping algorithm
//!
//! The primary contribution of *H2H: Heterogeneous Model to
//! Heterogeneous System Mapping with Computation and Communication
//! Awareness* (DAC'22): a four-step mapper that places the layers of a
//! heterogeneous MMMT model onto a heterogeneous multi-accelerator
//! system, trading a little computation efficiency for large
//! communication savings.
//!
//! ```
//! use h2h_core::H2hMapper;
//! use h2h_system::system::{BandwidthClass, SystemSpec};
//!
//! let model = h2h_model::zoo::cnn_lstm();
//! let system = SystemSpec::standard(BandwidthClass::LowMinus);
//!
//! let outcome = H2hMapper::new(&model, &system).run()?;
//! println!(
//!     "baseline {} -> H2H {} ({:.0}% latency reduction)",
//!     outcome.baseline_latency(),
//!     outcome.final_latency(),
//!     outcome.latency_reduction() * 100.0
//! );
//! # Ok::<(), h2h_core::pipeline::H2hError>(())
//! ```
//!
//! The per-step passes are public — [`compute_map`], [`weight_locality`]
//! (with its [`knapsack`] solvers), [`activation_fusion`] and [`remap`] —
//! as are the comparison mappers in [`baseline`], the dynamic-modality
//! extension in [`dynamic`] (paper §4.5), and the multi-tenant batched
//! serving subsystem in [`serve`].

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod activation_fusion;
pub mod anneal;
pub mod arrivals;
pub mod baseline;
pub mod compute_map;
pub mod config;
pub mod delta;
pub mod dynamic;
pub mod knapsack;
pub mod parallel;
pub mod pipeline;
pub mod preset;
pub mod remap;
pub mod repair;
pub mod report;
pub mod serve;
pub mod weight_locality;

pub use arrivals::{ArrivalProcess, ArrivalSchedule, Arrivals};
pub use config::{H2hConfig, KnapsackKind, MapObjective, RoundPolicy, ScoreStrategy};
pub use delta::{DeltaEngine, PhaseProfile, SearchStats};
pub use parallel::ScoringPool;
pub use dynamic::{DynamicOutcome, DynamicSession};
pub use pipeline::{H2hError, H2hMapper, H2hOutcome, Step, StepSnapshot};
pub use preset::PinPreset;
pub use repair::{repair_mapping, scratch_remap, RepairOutcome, ScratchOutcome};
pub use serve::{
    ServeCounters, ServeError, ServeOutcome, TenantId, TenantRegistry, TenantServeStats,
    TenantSpec,
};
