//! Step 1 — computation-prioritized mapping (paper §4.1).
//!
//! Walks the model frontier by frontier ("nodes without predecessors"),
//! enumerating the group's accelerator assignments and keeping the one
//! with the smallest system-latency increment `ΔSys_latency`, under the
//! zero-data-locality assumption: every weight and activation streams
//! through the host's main memory.
//!
//! Because frontier waves coincide with ASAP rank levels, the incremental
//! schedule state maintained here reproduces exactly what the full
//! [`Evaluator`] computes for the same mapping — a property the tests
//! assert. Group enumeration is exact up to
//! [`H2hConfig::enumeration_cap`] combinations; wider groups fall back to
//! per-node greedy with the same objective.

use std::collections::HashSet;

use h2h_model::graph::LayerId;
use h2h_model::layer::LayerOp;
use h2h_model::tensor::DataType;
use h2h_model::units::{Bytes, Seconds};
use h2h_system::mapping::Mapping;
use h2h_system::schedule::Evaluator;
use h2h_system::system::AccId;
use h2h_system::topology::Endpoint;

use crate::config::H2hConfig;
use crate::pipeline::H2hError;
use crate::preset::PinPreset;

/// Recomputes the zero-locality duration rows of `group` —
/// `weights/link + Σ ifm/route + compute + ofm/link`, every transfer at
/// its topology route's effective bandwidth — against the
/// already-committed predecessor placements in `mapping` (unmapped
/// predecessors charge the host route, matching
/// [`Evaluator::layer_cost`]'s partial-mapping rule).
/// [`computation_prioritized`] calls this once per frontier wave, so
/// the table is filled lazily, each row exactly once, just before its
/// first read.
///
/// Weights and the OFM upload are charged on the accelerator's *host*
/// route (zero locality: weights stream from the host, results publish
/// back to it — on a non-uniform fabric the final evaluator may charge
/// a slower consumer route for the OFM, which remapping then corrects).
/// IFM edges are charged at the *actual* producer→consumer route —
/// predecessors are always placed before their consumers' frontier
/// wave — which is what steers transfer-heavy layers away from slow
/// links in step 1. The arithmetic shape — `weight + (ifm + comp +
/// ofm) * b`, IFM summed in predecessor order — is exactly the
/// historical scalar-table formula, so uniform fabrics reproduce it
/// bitwise.
///
/// With a [`PinPreset`] (dynamic modality change, §4.5), layers whose
/// weights are already buffered on an accelerator see a zero weight-
/// transfer term there — that is the "prioritize the layer mapping if
/// the layer's weights are already buffered" rule.
fn refresh_wave_durations(
    ev: &Evaluator<'_>,
    preset: &PinPreset,
    mapping: &Mapping,
    group: &[LayerId],
    dur: &mut [Vec<Option<Seconds>>],
) {
    let model = ev.model();
    let system = ev.system();
    let topo = system.topology();
    let b = ev.batch() as f64;
    for &id in group {
        let layer = model.layer(id);
        let is_input = matches!(layer.op(), LayerOp::Input { .. });
        let wbytes = layer.weight_bytes(DataType::F32);
        let obytes = layer.ofm_bytes(DataType::F32);
        for acc in system.acc_ids() {
            let Some(comp) = ev.cache().time(id, acc) else {
                dur[id.index()][acc.index()] = None;
                continue;
            };
            let here = Endpoint::Acc(acc);
            let host_bw = topo.path_bw(Endpoint::Host, here);
            let ifm: Seconds = model
                .predecessors(id)
                .map(|p| {
                    let src = if matches!(model.layer(p).op(), LayerOp::Input { .. }) {
                        Endpoint::Host
                    } else {
                        match mapping.get(p) {
                            Some(pa) => Endpoint::Acc(pa),
                            None => Endpoint::Host,
                        }
                    };
                    topo.path_bw(src, here)
                        .transfer_time(model.edge_bytes(p, id).expect("edge"))
                })
                .sum();
            let ofm = if is_input {
                Seconds::ZERO
            } else {
                host_bw.transfer_time(obytes)
            };
            let weight = if wbytes == Bytes::ZERO || preset.is_buffered(id, acc) {
                Seconds::ZERO
            } else {
                host_bw.transfer_time(wbytes)
            };
            // Weights amortize over the batch; activations and compute
            // repeat per request (matches Evaluator::with_batch).
            dur[id.index()][acc.index()] = Some(weight + (ifm + comp + ofm) * b);
        }
    }
}

/// Incremental schedule state shared by enumeration and greedy modes.
struct WaveState {
    finish: Vec<Seconds>,
    acc_ready: Vec<Seconds>,
    makespan: Seconds,
}

impl WaveState {
    /// Simulates assigning `group[i] → combo[i]` (in order) on top of the
    /// committed state; returns `(makespan, sum_of_finish)` without
    /// mutating anything.
    fn peek(
        &self,
        ev: &Evaluator<'_>,
        dur: &[Vec<Option<Seconds>>],
        group: &[LayerId],
        combo: &[AccId],
    ) -> (Seconds, Seconds) {
        let model = ev.model();
        let mut ready_scratch: Vec<(usize, Seconds)> = Vec::with_capacity(group.len());
        let mut makespan = self.makespan;
        let mut sum = Seconds::ZERO;
        for (layer, acc) in group.iter().zip(combo) {
            let d = dur[layer.index()][acc.index()].expect("candidate filtered to supported");
            let deps = model
                .predecessors(*layer)
                .map(|p| self.finish[p.index()])
                .fold(Seconds::ZERO, Seconds::max);
            // Accelerator availability includes earlier group members
            // placed on the same accelerator within this wave.
            let mut avail = self.acc_ready[acc.index()];
            for &(a, f) in &ready_scratch {
                if a == acc.index() {
                    avail = avail.max(f);
                }
            }
            let fin = deps.max(avail) + d;
            ready_scratch.push((acc.index(), fin));
            makespan = makespan.max(fin);
            sum += fin;
        }
        (makespan, sum)
    }

    /// Commits an assignment.
    fn commit(
        &mut self,
        ev: &Evaluator<'_>,
        dur: &[Vec<Option<Seconds>>],
        group: &[LayerId],
        combo: &[AccId],
        mapping: &mut Mapping,
    ) {
        let model = ev.model();
        for (layer, acc) in group.iter().zip(combo) {
            let d = dur[layer.index()][acc.index()].expect("supported");
            let deps = model
                .predecessors(*layer)
                .map(|p| self.finish[p.index()])
                .fold(Seconds::ZERO, Seconds::max);
            let start = deps.max(self.acc_ready[acc.index()]);
            let fin = start + d;
            self.finish[layer.index()] = fin;
            self.acc_ready[acc.index()] = fin;
            self.makespan = self.makespan.max(fin);
            mapping.set(*layer, *acc);
        }
    }
}

/// Runs step 1 and returns the mapping together with the modeled
/// zero-locality makespan (kept for consistency assertions).
///
/// # Errors
///
/// Returns [`H2hError::NoCapableAccelerator`] if some layer cannot run
/// anywhere in the system.
pub fn computation_prioritized(
    ev: &Evaluator<'_>,
    cfg: &H2hConfig,
    preset: &PinPreset,
) -> Result<(Mapping, Seconds), H2hError> {
    let model = ev.model();
    let system = ev.system();
    // Filled lazily, one frontier wave at a time (see
    // `refresh_wave_durations`); rows are only ever read after their
    // group's refresh.
    let mut dur: Vec<Vec<Option<Seconds>>> =
        vec![vec![None; system.num_accs()]; model.id_bound()];

    let mut mapping = Mapping::new(model);
    let mut mapped: HashSet<LayerId> = HashSet::new();
    let mut state = WaveState {
        finish: vec![Seconds::ZERO; model.id_bound()],
        acc_ready: vec![Seconds::ZERO; system.num_accs()],
        makespan: Seconds::ZERO,
    };

    while mapped.len() < model.num_layers() {
        let group = model.frontier(&mapped);
        debug_assert!(!group.is_empty(), "validated DAGs always have a frontier");

        // Fill the wave's duration rows against the now-committed
        // predecessor placements (per-route bandwidths).
        refresh_wave_durations(ev, preset, &mapping, &group, &mut dur);

        // Candidate accelerators per group member.
        let mut candidates: Vec<Vec<AccId>> = Vec::with_capacity(group.len());
        for layer in &group {
            let accs: Vec<AccId> = system
                .acc_ids()
                .filter(|a| dur[layer.index()][a.index()].is_some())
                .collect();
            if accs.is_empty() {
                return Err(H2hError::NoCapableAccelerator {
                    layer: model.layer(*layer).name().to_owned(),
                });
            }
            candidates.push(accs);
        }

        let combos: usize = candidates
            .iter()
            .map(|c| c.len())
            .try_fold(1usize, |acc, n| acc.checked_mul(n))
            .unwrap_or(usize::MAX);

        let chosen: Vec<AccId> = if combos <= cfg.enumeration_cap {
            // Exhaustive enumeration (odometer order → deterministic).
            let mut idx = vec![0usize; group.len()];
            let mut best: Option<(Seconds, Seconds, Vec<AccId>)> = None;
            loop {
                let combo: Vec<AccId> = idx
                    .iter()
                    .zip(&candidates)
                    .map(|(i, c)| c[*i])
                    .collect();
                let (mk, sum) = state.peek(ev, &dur, &group, &combo);
                let better = match &best {
                    None => true,
                    Some((bmk, bsum, _)) => {
                        mk < *bmk || (mk == *bmk && sum < *bsum)
                    }
                };
                if better {
                    best = Some((mk, sum, combo));
                }
                // Advance the odometer.
                let mut pos = 0;
                loop {
                    if pos == idx.len() {
                        break;
                    }
                    idx[pos] += 1;
                    if idx[pos] < candidates[pos].len() {
                        break;
                    }
                    idx[pos] = 0;
                    pos += 1;
                }
                if pos == idx.len() {
                    break;
                }
            }
            best.expect("at least one combo").2
        } else {
            // Greedy per node with the same Δ-latency objective.
            let mut combo: Vec<AccId> = Vec::with_capacity(group.len());
            for (i, layer) in group.iter().enumerate() {
                let mut best: Option<(Seconds, Seconds, AccId)> = None;
                for &acc in &candidates[i] {
                    let mut trial = combo.clone();
                    trial.push(acc);
                    let (mk, sum) = state.peek(ev, &dur, &group[..=i], &trial);
                    let better = match &best {
                        None => true,
                        Some((bmk, bsum, _)) => mk < *bmk || (mk == *bmk && sum < *bsum),
                    };
                    if better {
                        best = Some((mk, sum, acc));
                    }
                }
                let _ = layer;
                combo.push(best.expect("non-empty candidates").2);
            }
            combo
        };

        state.commit(ev, &dur, &group, &chosen, &mut mapping);
        mapped.extend(group);
    }

    Ok((mapping, state.makespan))
}

#[cfg(test)]
mod tests {
    use super::*;
    use h2h_model::builder::ModelBuilder;
    use h2h_model::tensor::TensorShape;
    use h2h_system::locality::LocalityState;
    use h2h_system::system::{BandwidthClass, SystemSpec};
    use h2h_system::testutil::{const_system, ConstAccel};

    #[test]
    fn internal_makespan_matches_full_evaluator() {
        // The incremental wave state must agree with the authoritative
        // scheduler for every zoo model.
        let sys = SystemSpec::standard(BandwidthClass::LowMinus);
        for model in h2h_model::zoo::all_models() {
            let ev = Evaluator::new(&model, &sys);
            let (mapping, internal) =
                computation_prioritized(&ev, &H2hConfig::default(), &PinPreset::new()).unwrap();
            mapping.validate(&model, &sys).unwrap();
            let full = ev.evaluate(&mapping, &LocalityState::new(&sys));
            let a = internal.as_f64();
            let b = full.makespan().as_f64();
            assert!(
                (a - b).abs() / b < 1e-9,
                "{}: incremental {a} vs evaluator {b}",
                model.name()
            );
        }
    }

    #[test]
    fn picks_the_faster_accelerator_for_compute() {
        // Two universal accelerators, one 10x faster; a single chain must
        // land entirely on the fast one (communication is identical).
        let mut b = ModelBuilder::new("chain");
        let i = b.input("i", TensorShape::Vector { features: 64 });
        let f1 = b.fc("f1", i, 64).unwrap();
        let f2 = b.fc("f2", f1, 64).unwrap();
        let _ = f2;
        let m = b.finish().unwrap();
        let sys = const_system(
            vec![ConstAccel::universal("slow", 1.0), ConstAccel::universal("fast", 0.1)],
            1e9,
        );
        let ev = Evaluator::new(&m, &sys);
        let (mapping, _) =
            computation_prioritized(&ev, &H2hConfig::default(), &PinPreset::new()).unwrap();
        for id in m.layer_ids() {
            assert_eq!(mapping.acc_of(id).index(), 1, "layer {id} not on fast acc");
        }
    }

    #[test]
    fn parallel_branches_spread_for_overlap() {
        // Two equal-cost accelerators and two independent heavy branches:
        // minimizing ΔSys_latency must use both accelerators.
        let mut b = ModelBuilder::new("par");
        let ia = b.input("ia", TensorShape::Vector { features: 8 });
        let ib = b.input("ib", TensorShape::Vector { features: 8 });
        let fa = b.fc("fa", ia, 8).unwrap();
        let fb = b.fc("fb", ib, 8).unwrap();
        let _ = (fa, fb);
        let m = b.finish().unwrap();
        let sys = const_system(
            vec![ConstAccel::universal("u0", 1.0), ConstAccel::universal("u1", 1.0)],
            1e9,
        );
        let ev = Evaluator::new(&m, &sys);
        let (mapping, makespan) =
            computation_prioritized(&ev, &H2hConfig::default(), &PinPreset::new()).unwrap();
        let used: std::collections::HashSet<usize> =
            m.layer_ids().map(|id| mapping.acc_of(id).index()).collect();
        assert_eq!(used.len(), 2, "both accelerators should be used");
        // Perfect overlap: 2 layers deep, 1 s each ≈ 2 s (+ tiny comm).
        assert!(makespan.as_f64() < 2.1, "makespan {makespan}");
    }

    #[test]
    fn greedy_fallback_matches_enumeration_on_small_groups() {
        let m = h2h_model::zoo::cnn_lstm();
        let sys = SystemSpec::standard(BandwidthClass::Mid);
        let ev = Evaluator::new(&m, &sys);
        let exhaustive = {
            let cfg = H2hConfig { enumeration_cap: 1_000_000, ..Default::default() };
            computation_prioritized(&ev, &cfg, &PinPreset::new()).unwrap().1
        };
        let greedy = {
            let cfg = H2hConfig { enumeration_cap: 0, ..Default::default() };
            computation_prioritized(&ev, &cfg, &PinPreset::new()).unwrap().1
        };
        // Greedy is a heuristic: allowed to be equal or slightly worse,
        // never better than the exhaustive optimum of the same objective.
        assert!(greedy.as_f64() >= exhaustive.as_f64() - 1e-9);
        assert!(
            greedy.as_f64() <= exhaustive.as_f64() * 1.25,
            "greedy {greedy} too far from exhaustive {exhaustive}"
        );
    }

    #[test]
    fn unmappable_layer_reports_error() {
        use h2h_model::layer::LayerClass;
        let mut b = ModelBuilder::new("lstm-only");
        let i = b.input("i", TensorShape::Sequence { steps: 8, features: 8 });
        b.lstm("l", i, 16, 1, false).unwrap();
        let m = b.finish().unwrap();
        // System whose only accelerator cannot run LSTM.
        let sys = const_system(
            vec![ConstAccel::universal("convs", 1.0)
                .with_classes(&[LayerClass::Conv, LayerClass::Aux])],
            1e9,
        );
        let ev = Evaluator::new(&m, &sys);
        let err = computation_prioritized(&ev, &H2hConfig::default(), &PinPreset::new());
        assert!(matches!(err, Err(H2hError::NoCapableAccelerator { .. })));
    }

    #[test]
    fn preset_pulls_layer_toward_buffered_weights() {
        // Two identical accelerators; a weighted layer whose weights are
        // buffered on acc 1 should map there (weight transfer saved).
        let mut b = ModelBuilder::new("buf");
        let i = b.input("i", TensorShape::Vector { features: 4096 });
        let f = b.fc("f", i, 4096).unwrap();
        let m = b.finish().unwrap();
        let sys = const_system(
            vec![ConstAccel::universal("u0", 0.5), ConstAccel::universal("u1", 0.5)],
            1e6, // slow ethernet: weight transfer dominates
        );
        let ev = Evaluator::new(&m, &sys);
        let mut preset = PinPreset::new();
        preset.insert(f, h2h_system::system::AccId::new(1));
        let (mapping, _) =
            computation_prioritized(&ev, &H2hConfig::default(), &preset).unwrap();
        assert_eq!(mapping.acc_of(f).index(), 1);
    }
}
