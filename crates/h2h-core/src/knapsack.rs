//! 0/1 knapsack solvers for the weight-locality step (paper §4.2:
//! "we propose to use the Knapsack algorithm to store, as much as
//! possible, weights in the accelerators' local DRAM").
//!
//! DRAM capacities are gigabytes while layer weights are kilobytes to
//! hundreds of megabytes, so the classic DP runs on a *scaled* capacity
//! grid: item weights are rounded **up** to the grid (so no solution can
//! oversubscribe the board) and the grid is sized to [`DP_GRID`] cells.
//! The greedy fallback sorts by value density — optimal when values are
//! proportional to weights (the paper's saved-transfer-time objective),
//! near-optimal otherwise.

/// Capacity grid cells used by the scaled DP.
const DP_GRID: u64 = 4096;

/// Largest item count the auto solver hands to the DP.
const DP_MAX_ITEMS: usize = 512;

/// One pinnable candidate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Item {
    /// Caller-side identifier (e.g. a dense layer index).
    pub id: usize,
    /// Weight in bytes.
    pub weight: u64,
    /// Benefit of selecting this item (e.g. saved transfer seconds).
    pub value: f64,
}

/// Exact (up to grid rounding) scaled dynamic-programming solver.
/// Returns the chosen item ids, in input order.
pub fn solve_dp(items: &[Item], capacity: u64) -> Vec<usize> {
    if capacity == 0 || items.is_empty() {
        return Vec::new();
    }
    // Grid cell size; weights round UP so feasibility is conservative.
    let cell = (capacity / DP_GRID).max(1);
    let cap_cells = (capacity / cell) as usize;
    let scaled: Vec<u64> = items.iter().map(|it| it.weight.div_ceil(cell)).collect();

    // dp[c] = best value at capacity c; keep[i][c] = item i taken at c.
    let mut dp = vec![0.0f64; cap_cells + 1];
    let mut keep = vec![vec![false; cap_cells + 1]; items.len()];
    for (i, item) in items.iter().enumerate() {
        let w = scaled[i] as usize;
        if w > cap_cells || item.value <= 0.0 {
            continue;
        }
        for c in (w..=cap_cells).rev() {
            let cand = dp[c - w] + item.value;
            if cand > dp[c] {
                dp[c] = cand;
                keep[i][c] = true;
            }
        }
    }
    // Backtrack.
    let mut c = cap_cells;
    let mut chosen = Vec::new();
    for i in (0..items.len()).rev() {
        if keep[i][c] {
            chosen.push(items[i].id);
            c -= scaled[i] as usize;
        }
    }
    chosen.reverse();
    chosen
}

/// Density-greedy solver: select by `value/weight` (then larger value)
/// while capacity lasts. Zero-weight items with positive value are
/// always taken.
pub fn solve_greedy(items: &[Item], capacity: u64) -> Vec<usize> {
    // Densities are memoized once: the comparator runs `O(n log n)`
    // times and the two float divides per call dominated the sort on
    // the search core's per-candidate hot path. The memoized value is
    // the exact same expression, so the order (and the selection) is
    // unchanged bitwise.
    let mut order: Vec<(f64, &Item)> = items
        .iter()
        .filter(|it| it.value > 0.0)
        .map(|it| (it.value / it.weight.max(1) as f64, it))
        .collect();
    order.sort_by(|a, b| {
        b.0.partial_cmp(&a.0)
            .unwrap()
            .then(b.1.value.partial_cmp(&a.1.value).unwrap())
            .then(a.1.id.cmp(&b.1.id))
    });
    let mut left = capacity;
    let mut chosen = Vec::new();
    for (_, it) in order {
        if it.weight <= left {
            left -= it.weight;
            chosen.push(it.id);
        }
    }
    chosen.sort_unstable();
    chosen
}

/// Auto solver: greedy when every item has (near-)identical value
/// density — there greedy is optimal and orders of magnitude cheaper,
/// and the paper's saved-transfer-time objective is exactly this case —
/// otherwise DP for small instances, greedy for large ones.
pub fn solve_auto(items: &[Item], capacity: u64) -> Vec<usize> {
    let mut min_d = f64::INFINITY;
    let mut max_d = 0.0f64;
    for it in items.iter().filter(|it| it.value > 0.0) {
        let d = it.value / it.weight.max(1) as f64;
        min_d = min_d.min(d);
        max_d = max_d.max(d);
    }
    let uniform_density = !max_d.is_finite() || max_d <= min_d * 1.001;
    if uniform_density || items.len() > DP_MAX_ITEMS {
        solve_greedy(items, capacity)
    } else {
        solve_dp(items, capacity)
    }
}

/// Total value of a selection (test/reporting helper).
pub fn selection_value(items: &[Item], chosen: &[usize]) -> f64 {
    items
        .iter()
        .filter(|it| chosen.contains(&it.id))
        .map(|it| it.value)
        .sum()
}

/// Total weight of a selection.
pub fn selection_weight(items: &[Item], chosen: &[usize]) -> u64 {
    items
        .iter()
        .filter(|it| chosen.contains(&it.id))
        .map(|it| it.weight)
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn items(list: &[(u64, f64)]) -> Vec<Item> {
        list.iter()
            .enumerate()
            .map(|(id, &(weight, value))| Item { id, weight, value })
            .collect()
    }

    #[test]
    fn dp_beats_greedy_on_classic_trap() {
        // Greedy by density takes the small dense item and misses the
        // optimal pair.
        let its = items(&[(6, 30.0), (5, 14.0), (5, 14.0)]);
        let dp = solve_dp(&its, 10);
        let greedy = solve_greedy(&its, 10);
        assert_eq!(selection_value(&its, &dp), 30.0);
        assert!(selection_value(&its, &greedy) <= 30.0);
        assert!(selection_weight(&its, &dp) <= 10);
    }

    #[test]
    fn dp_respects_capacity_after_scaling() {
        // Capacities far above the grid force cell > 1; rounding up must
        // keep every solution feasible.
        let its = items(&[
            (3_000_000_000, 3.0),
            (3_000_000_001, 3.0),
            (2_000_000_000, 2.0),
            (500_000_000, 1.0),
        ]);
        let cap = 8_000_000_000;
        let chosen = solve_dp(&its, cap);
        assert!(selection_weight(&its, &chosen) <= cap);
        assert!(selection_value(&its, &chosen) >= 5.0, "should pick ~7-8 GB worth");
    }

    #[test]
    fn greedy_is_optimal_for_proportional_values() {
        // Values proportional to weights (the paper's objective):
        // greedy by density = take in any order until full.
        let its = items(&[(100, 1.0), (200, 2.0), (300, 3.0), (50, 0.5)]);
        let g = solve_greedy(&its, 350);
        let d = solve_dp(&its, 350);
        assert_eq!(selection_value(&its, &g), selection_value(&its, &d));
        assert!(selection_weight(&its, &g) <= 350);
    }

    #[test]
    fn zero_capacity_selects_nothing() {
        let its = items(&[(1, 1.0)]);
        assert!(solve_dp(&its, 0).is_empty());
        assert!(solve_greedy(&its, 0).is_empty());
    }

    #[test]
    fn worthless_items_ignored() {
        let its = items(&[(10, 0.0), (10, -1.0), (10, 5.0)]);
        assert_eq!(solve_dp(&its, 100), vec![2]);
        assert_eq!(solve_greedy(&its, 100), vec![2]);
    }

    #[test]
    fn everything_fits_when_capacity_is_large() {
        let its = items(&[(10, 1.0), (20, 2.0), (30, 3.0)]);
        assert_eq!(solve_dp(&its, 1000), vec![0, 1, 2]);
        assert_eq!(solve_greedy(&its, 1000), vec![0, 1, 2]);
    }

    #[test]
    fn auto_switches_to_greedy_on_huge_instances() {
        let many: Vec<Item> = (0..600)
            .map(|id| Item { id, weight: 10, value: 1.0 })
            .collect();
        let chosen = solve_auto(&many, 100);
        assert_eq!(chosen.len(), 10);
    }

    #[test]
    fn dp_never_below_greedy() {
        // Pseudo-random instances: DP (exact up to scaling; cell=1 here)
        // must weakly dominate greedy.
        let mut seed = 0x2545F4914F6CDD1Du64;
        let mut next = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed
        };
        for _ in 0..50 {
            let its: Vec<Item> = (0..12)
                .map(|id| Item {
                    id,
                    weight: next() % 64 + 1,
                    value: (next() % 1000) as f64 / 10.0,
                })
                .collect();
            let cap = next() % 256 + 16;
            let dp = solve_dp(&its, cap);
            let gr = solve_greedy(&its, cap);
            assert!(selection_weight(&its, &dp) <= cap);
            assert!(selection_weight(&its, &gr) <= cap);
            assert!(
                selection_value(&its, &dp) >= selection_value(&its, &gr) - 1e-9,
                "dp {} < greedy {}",
                selection_value(&its, &dp),
                selection_value(&its, &gr)
            );
        }
    }
}
