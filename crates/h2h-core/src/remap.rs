//! Step 4 — data-locality-aware remapping (paper §4.4).
//!
//! For every layer, attempt to re-allocate it onto an accelerator where
//! one of its predecessors or successors already lives; re-run weight
//! locality and activation fusion (steps 2–3) for the tentative mapping;
//! accept the move iff the modeled end-to-end latency drops — trading a
//! little computation efficiency for a lot of communication. Loops until
//! a fixpoint (no accepted move in a full pass) or the configured pass
//! bound.
//!
//! The inner loop runs on the [`DeltaEngine`]: candidates are scored by
//! a scoped locality-rebuild replay plus cone-local schedule
//! propagation (paper §4.2's "update … without traversing the entire
//! graph"), through the strategy selected per candidate by
//! [`crate::config::ScoreStrategy`] (prefix-exact fast path, global
//! fusion replay — with risky guards dominance-pruned and rejected
//! toggles restored from the journal savepoint, see [`crate::delta`] —
//! or plain full evaluation; all bitwise-identical scores). Accepted
//! moves commit the delta state directly, producing final mappings
//! identical to the historical per-candidate full-re-evaluation loop
//! (kept below as [`data_locality_remapping_reference`] and asserted
//! equivalent by tests on every zoo model).
//!
//! With `score_threads > 1` candidate scoring fans out across a scoped
//! [`ScoringPool`] (one [`DeltaEngine::fork`] per worker) over the
//! **whole move frontier**: instead of batching one layer's 1–3
//! candidates at a time, the pooled walk flattens the candidate groups
//! of many upcoming layers into one work-stolen batch, scoring
//! speculatively past layers whose decision has not been made yet. The
//! decision rule stays serial — groups are resolved in visit order,
//! each taking its **first improving candidate in serial order**, and
//! everything scored beyond an accepted move is discarded (it was
//! scored against a stale state) and regenerated. The window starts at
//! the lane count (an accept costs the same wall-clock as the
//! per-layer batch it replaces) and doubles across fully-rejected
//! windows, so long rejection stretches — where greedy search spends
//! most of its time near convergence — keep every lane busy. Final
//! mappings, latencies *and search stats* are identical for every
//! thread count and window size (see `crate::parallel` for the commit
//! protocol); `cfg.frontier_min_candidates` gates the wide path, with
//! small windows falling back to the classic per-group step.

use h2h_system::locality::LocalityState;
use h2h_system::mapping::Mapping;
use h2h_system::schedule::{Evaluator, Schedule};
use h2h_system::system::AccId;

use h2h_model::graph::LayerId;

use crate::activation_fusion::rebuild_locality;
use crate::config::H2hConfig;
use crate::delta::{DeltaEngine, PhaseProfile, SearchStats};
use crate::parallel::{commit_move, try_first_improving, CandidateOutcome, ScoringPool};
use crate::preset::PinPreset;

/// Outcome of the remapping loop.
#[derive(Debug)]
pub struct RemapOutcome {
    /// Locality state of the accepted final mapping.
    pub locality: LocalityState,
    /// Schedule of the accepted final mapping.
    pub schedule: Schedule,
    /// Loop counters (passes, moves) and delta-vs-full evaluation
    /// instrumentation.
    pub stats: SearchStats,
    /// Per-phase wall-clock breakdown, zeroed unless
    /// [`H2hConfig::profile_phases`] is on (≈ CPU-seconds across
    /// scoring lanes; never part of the cross-run equality contract).
    pub profile: PhaseProfile,
}

impl RemapOutcome {
    /// Full passes executed.
    pub fn passes(&self) -> usize {
        self.stats.passes
    }

    /// Accepted moves.
    pub fn accepted_moves(&self) -> usize {
        self.stats.accepted_moves
    }

    /// Attempted moves (accepted + rejected).
    pub fn attempted_moves(&self) -> usize {
        self.stats.attempted_moves
    }
}

/// Runs the greedy remapping loop on the incremental delta engine,
/// mutating `mapping` in place. With `cfg.score_threads > 1` the
/// candidate scoring fans out across a scoped worker pool; results are
/// identical for every thread count.
pub fn data_locality_remapping(
    ev: &Evaluator<'_>,
    cfg: &H2hConfig,
    preset: &PinPreset,
    mapping: &mut Mapping,
) -> RemapOutcome {
    let mut engine = DeltaEngine::new(ev, cfg, preset, mapping);
    let workers = crate::parallel::effective_workers(cfg);
    let passes = if workers == 0 {
        remap_loop_serial(ev, cfg, &mut engine, mapping)
    } else {
        rayon::scope(|scope| {
            let mut pool = ScoringPool::spawn(scope, &engine, mapping, workers);
            remap_loop_frontier(ev, cfg, &mut engine, mapping, &mut pool)
        })
    };

    let profile = engine.profile;
    let (locality, schedule, mut stats) = engine.finalize(mapping);
    stats.passes = passes;
    RemapOutcome { locality, schedule, stats, profile }
}

/// Candidate destinations for one layer: accelerators hosting a
/// neighbour, in deterministic ascending-id order (sorted + deduped —
/// same order a `BTreeSet` would yield, without allocating per visit),
/// restricted to accelerators that support the layer. Appends
/// `(layer, acc)` pairs to `out` (callers building a frontier window
/// concatenate several layers' groups into one flat batch).
fn layer_candidates(
    model: &h2h_model::ModelGraph,
    system: &h2h_system::SystemSpec,
    mapping: &Mapping,
    layer: LayerId,
    neighbours: &mut Vec<AccId>,
    out: &mut Vec<(LayerId, AccId)>,
) {
    let current = mapping.acc_of(layer);
    neighbours.clear();
    neighbours.extend(
        model
            .predecessors(layer)
            .chain(model.successors(layer))
            .filter_map(|n| mapping.get(n))
            .filter(|acc| *acc != current),
    );
    neighbours.sort_unstable();
    neighbours.dedup();
    out.extend(
        neighbours
            .iter()
            .filter(|acc| system.acc(**acc).supports(model.layer(layer)))
            .map(|acc| (layer, *acc)),
    );
}

/// The serial pass loop: visit layers in topological order, gather each
/// layer's candidates, take the first improving move.
fn remap_loop_serial(
    ev: &Evaluator<'_>,
    cfg: &H2hConfig,
    engine: &mut DeltaEngine<'_, '_>,
    mapping: &mut Mapping,
) -> usize {
    let model = ev.model();
    let system = ev.system();
    let order = model.topo_order();
    let mut passes = 0;
    let mut neighbours: Vec<AccId> = Vec::new();
    let mut cands: Vec<(LayerId, AccId)> = Vec::new();
    let mut outcomes: Vec<CandidateOutcome> = Vec::new();
    while passes < cfg.remap_max_passes {
        passes += 1;
        let mut improved = false;
        for &layer in &order {
            cands.clear();
            layer_candidates(model, system, mapping, layer, &mut neighbours, &mut cands);
            if cands.is_empty() {
                continue;
            }
            // Greedy: take the first improving move, go to the next
            // layer.
            if try_first_improving(engine, mapping, &cands, None, &mut outcomes) {
                improved = true;
            }
        }
        if !improved {
            break;
        }
    }
    passes
}

/// The pooled pass loop: identical decisions to
/// [`remap_loop_serial`], but candidates are scored in
/// **frontier-wide work-stolen batches** spanning many upcoming
/// layers' candidate groups (see the module docs).
///
/// Within one window no state changes — the serial walk's `best` score
/// is constant across rejected groups — so all of the window's
/// candidates are scored against exactly the state the serial walk
/// would have scored them against. Groups then resolve strictly in
/// serial order: each absorbs the stat deltas of its serially-visited
/// prefix (everything before the first improving candidate, or the
/// whole group), and the first group with a winner commits it and
/// invalidates the rest of the window (those speculative outcomes are
/// discarded, their stats *not* absorbed — the serial walk never
/// scored them against this state). Hence mappings, latencies and
/// stats are bitwise independent of lane count and window size.
///
/// The window starts at the lane count and doubles each time an entire
/// window is rejected (resetting on accept), which bounds wasted
/// speculation near an accept to one window while giving rejection
/// stretches batch sizes big enough to keep every lane busy. Windows
/// smaller than `cfg.frontier_min_candidates` fall back to the classic
/// per-group protocol — with `frontier_min_candidates = usize::MAX`
/// this *is* the classic per-layer pooled walk.
fn remap_loop_frontier(
    ev: &Evaluator<'_>,
    cfg: &H2hConfig,
    engine: &mut DeltaEngine<'_, '_>,
    mapping: &mut Mapping,
    pool: &mut ScoringPool,
) -> usize {
    let model = ev.model();
    let system = ev.system();
    let order = model.topo_order();
    let base = pool.lanes().max(1);
    let mut passes = 0;
    let mut neighbours: Vec<AccId> = Vec::new();
    let mut flat: Vec<(LayerId, AccId)> = Vec::new();
    // One entry per layer with candidates in the current window:
    // (position in `order`, start..end range in `flat`).
    let mut groups: Vec<(usize, usize, usize)> = Vec::new();
    let mut outcomes: Vec<CandidateOutcome> = Vec::new();
    while passes < cfg.remap_max_passes {
        passes += 1;
        let mut improved = false;
        let mut pos = 0;
        let mut window = base;
        while pos < order.len() {
            // Assemble the window: whole candidate groups until the
            // target size is reached (the last group may overshoot) or
            // the pass runs out of layers.
            flat.clear();
            groups.clear();
            let mut j = pos;
            while j < order.len() && flat.len() < window {
                let start = flat.len();
                layer_candidates(model, system, mapping, order[j], &mut neighbours, &mut flat);
                if flat.len() > start {
                    groups.push((j, start, flat.len()));
                }
                j += 1;
            }
            if flat.is_empty() {
                pos = j;
                continue;
            }
            let accepted_at = if flat.len() < cfg.frontier_min_candidates {
                // Narrow window: classic per-group first-improving
                // steps (still pooled within each group).
                groups.iter().find_map(|&(gpos, start, end)| {
                    try_first_improving(
                        engine,
                        mapping,
                        &flat[start..end],
                        Some(&mut *pool),
                        &mut outcomes,
                    )
                    .then_some(gpos)
                })
            } else {
                // Wide path: score the whole frontier as one
                // work-stolen batch, then decide group by group.
                let best = engine.score();
                pool.score_batch(engine, mapping, &flat, &mut outcomes);
                groups.iter().find_map(|&(gpos, start, end)| {
                    let outs = &outcomes[start..end];
                    let winner =
                        outs.iter().position(|o| o.score + cfg.accept_epsilon < best);
                    let attempted = winner.map_or(outs.len(), |w| w + 1);
                    for outcome in &outs[..attempted] {
                        engine.stats.absorb(&outcome.stats);
                    }
                    winner.map(|w| {
                        let (layer, to) = flat[start + w];
                        pool.broadcast_commit(layer, to);
                        commit_move(engine, mapping, layer, to);
                        gpos
                    })
                })
            };
            match accepted_at {
                Some(gpos) => {
                    // Everything scored past the accepted group is
                    // stale speculation: drop it and regenerate from
                    // the next layer against the committed state.
                    improved = true;
                    pos = gpos + 1;
                    window = base;
                }
                None => {
                    pos = j;
                    window = window.saturating_mul(2);
                }
            }
        }
        if !improved {
            break;
        }
    }
    passes
}

/// The historical implementation: every candidate pays a full locality
/// rebuild and a full schedule evaluation. Kept as the semantic
/// reference the delta engine is asserted against (equivalence tests,
/// the `incremental` bench) — not used on the production search path.
pub fn data_locality_remapping_reference(
    ev: &Evaluator<'_>,
    cfg: &H2hConfig,
    preset: &PinPreset,
    mapping: &mut Mapping,
) -> RemapOutcome {
    let model = ev.model();
    let system = ev.system();

    let mut best_loc = rebuild_locality(ev, mapping, cfg, preset);
    let mut best = ev.evaluate(mapping, &best_loc);
    let mut best_score = cfg.objective.score(&best);
    let mut passes = 0;
    let mut accepted_moves = 0;
    let mut attempted_moves = 0;

    let order = model.topo_order();
    let mut neighbours: Vec<AccId> = Vec::new();
    while passes < cfg.remap_max_passes {
        passes += 1;
        let mut improved = false;
        for &layer in &order {
            let current = mapping.acc_of(layer);
            neighbours.clear();
            neighbours.extend(
                model
                    .predecessors(layer)
                    .chain(model.successors(layer))
                    .filter_map(|n| mapping.get(n))
                    .filter(|acc| *acc != current),
            );
            neighbours.sort_unstable();
            neighbours.dedup();
            for &acc in &neighbours {
                if !system.acc(acc).supports(model.layer(layer)) {
                    continue;
                }
                attempted_moves += 1;
                mapping.set(layer, acc);
                let loc = rebuild_locality(ev, mapping, cfg, preset);
                let sched = ev.evaluate(mapping, &loc);
                let score = cfg.objective.score(&sched);
                if score + cfg.accept_epsilon < best_score {
                    best = sched;
                    best_score = score;
                    best_loc = loc;
                    accepted_moves += 1;
                    improved = true;
                    break;
                }
                mapping.set(layer, current); // revert
            }
        }
        if !improved {
            break;
        }
    }

    let stats = SearchStats {
        attempted_moves,
        accepted_moves,
        passes,
        // Every attempt re-ran the full rebuild + evaluation (plus the
        // seed evaluation).
        full_evals: attempted_moves + 1,
        full_rebuilds: attempted_moves + 1,
        ..SearchStats::default()
    };
    RemapOutcome { locality: best_loc, schedule: best, stats, profile: PhaseProfile::default() }
}

#[cfg(test)]
mod tests {
    use super::*;
    use h2h_model::builder::ModelBuilder;
    use h2h_model::tensor::TensorShape;
    use h2h_system::testutil::{const_system, ConstAccel};

    /// A chain whose middle layer starts on the "wrong" accelerator:
    /// compute there is marginally faster but both neighbours live
    /// elsewhere and the activations are huge.
    fn setup() -> (h2h_model::ModelGraph, h2h_system::SystemSpec, Mapping) {
        let mut b = ModelBuilder::new("r");
        let i = b.input("i", TensorShape::Vector { features: 65536 });
        let f1 = b.fc("f1", i, 65536).unwrap();
        let f2 = b.fc("f2", f1, 65536).unwrap();
        let f3 = b.fc("f3", f2, 64).unwrap();
        let _ = f3;
        let m = b.finish().unwrap();
        // acc1 is slightly faster per layer; Ethernet is slow, so a
        // 256 KiB activation round-trip (~0.5 s) dwarfs the 10 ms
        // compute advantage.
        let sys = const_system(
            vec![
                ConstAccel::universal("u0", 0.05),
                ConstAccel::universal("u1", 0.04),
            ],
            1e6,
        );
        let ids = m.topo_order();
        let mut map = Mapping::new(&m);
        map.set(ids[0], AccId::new(0));
        map.set(ids[1], AccId::new(0));
        map.set(ids[2], AccId::new(1)); // the misplaced layer
        map.set(ids[3], AccId::new(0));
        (m, sys, map)
    }

    #[test]
    fn remap_colocates_the_fc_chain() {
        let (m, sys, mut map) = setup();
        let ev = Evaluator::new(&m, &sys);
        let cfg = H2hConfig::default();
        let ids = m.topo_order();
        let before = {
            let loc = rebuild_locality(&ev, &map, &cfg, &PinPreset::new());
            ev.evaluate(&map, &loc).makespan()
        };
        let out = data_locality_remapping(&ev, &cfg, &PinPreset::new(), &mut map);
        // The optimizer may gather the chain on either accelerator (the
        // mirror solutions tie up to compute speed); what matters is
        // that f1/f2/f3 end up together so both edges fuse.
        let accs: std::collections::HashSet<usize> =
            ids[1..].iter().map(|id| map.acc_of(*id).index()).collect();
        assert_eq!(accs.len(), 1, "f1/f2/f3 should co-locate, got {accs:?}");
        assert!(out.schedule.makespan() < before);
        assert!(out.accepted_moves() >= 1);
        assert!(out.passes() >= 1);
    }

    #[test]
    fn remapping_never_increases_latency() {
        // Invariant of the accept-only-if-better rule, checked on every
        // zoo model at the lowest bandwidth.
        use h2h_system::system::{BandwidthClass, SystemSpec};
        let sys = SystemSpec::standard(BandwidthClass::LowMinus);
        let cfg = H2hConfig::default();
        for model in h2h_model::zoo::all_models().into_iter().take(3) {
            let ev = Evaluator::new(&model, &sys);
            let (mut mapping, _) = crate::compute_map::computation_prioritized(
                &ev,
                &cfg,
                &PinPreset::new(),
            )
            .unwrap();
            let before = {
                let loc = rebuild_locality(&ev, &mapping, &cfg, &PinPreset::new());
                ev.evaluate(&mapping, &loc).makespan()
            };
            let out = data_locality_remapping(&ev, &cfg, &PinPreset::new(), &mut mapping);
            assert!(
                out.schedule.makespan() <= before,
                "{}: {} -> {}",
                model.name(),
                before,
                out.schedule.makespan()
            );
            mapping.validate(&model, &sys).unwrap();
        }
    }

    #[test]
    fn delta_loop_matches_reference_on_every_zoo_model() {
        // The acceptance contract of the incremental search core: final
        // mappings and latencies equal the historical per-candidate
        // full-re-evaluation implementation.
        use h2h_system::system::{BandwidthClass, SystemSpec};
        for bw in [BandwidthClass::LowMinus, BandwidthClass::Mid] {
            let sys = SystemSpec::standard(bw);
            let cfg = H2hConfig::default();
            for model in h2h_model::zoo::all_models() {
                let ev = Evaluator::new(&model, &sys);
                let (seed, _) = crate::compute_map::computation_prioritized(
                    &ev,
                    &cfg,
                    &PinPreset::new(),
                )
                .unwrap();
                let mut map_delta = seed.clone();
                let mut map_ref = seed;
                let out_delta =
                    data_locality_remapping(&ev, &cfg, &PinPreset::new(), &mut map_delta);
                let out_ref = data_locality_remapping_reference(
                    &ev,
                    &cfg,
                    &PinPreset::new(),
                    &mut map_ref,
                );
                let d = out_delta.schedule.makespan().as_f64();
                let r = out_ref.schedule.makespan().as_f64();
                assert!(
                    d <= r + 1e-12,
                    "{} at {}: delta {} vs reference {}",
                    model.name(),
                    bw.label(),
                    d,
                    r
                );
                assert_eq!(
                    map_delta,
                    map_ref,
                    "{} at {}: delta and reference mappings diverged",
                    model.name(),
                    bw.label()
                );
            }
        }
    }

    #[test]
    fn delta_loop_matches_reference_on_other_objectives() {
        // The non-latency objectives score through the resummed proxy
        // aggregates — assert they drive the same decisions as the
        // full-evaluation reference too.
        use crate::config::MapObjective;
        use h2h_system::system::{BandwidthClass, SystemSpec};
        let sys = SystemSpec::standard(BandwidthClass::LowMinus);
        for objective in [
            MapObjective::Energy,
            MapObjective::EnergyDelayProduct,
            MapObjective::Throughput,
        ] {
            let cfg = H2hConfig { objective, ..Default::default() };
            for model in [h2h_model::zoo::mocap(), h2h_model::zoo::cnn_lstm()] {
                let ev = Evaluator::new(&model, &sys);
                let (seed, _) = crate::compute_map::computation_prioritized(
                    &ev,
                    &cfg,
                    &PinPreset::new(),
                )
                .unwrap();
                let mut map_delta = seed.clone();
                let mut map_ref = seed;
                let out_delta =
                    data_locality_remapping(&ev, &cfg, &PinPreset::new(), &mut map_delta);
                let out_ref = data_locality_remapping_reference(
                    &ev,
                    &cfg,
                    &PinPreset::new(),
                    &mut map_ref,
                );
                assert_eq!(
                    map_delta,
                    map_ref,
                    "{} under {:?}: delta and reference mappings diverged",
                    model.name(),
                    objective
                );
                let d = cfg.objective.score(&out_delta.schedule);
                let r = cfg.objective.score(&out_ref.schedule);
                assert!(
                    d <= r + r.abs() * 1e-12,
                    "{} under {:?}: delta {} vs reference {}",
                    model.name(),
                    objective,
                    d,
                    r
                );
            }
        }
    }

    #[test]
    fn delta_loop_spends_far_fewer_full_evaluations() {
        // The perf contract: ≥5× fewer full schedule evaluations per
        // remap run than the one-per-attempt reference on VLocNet.
        use h2h_system::system::{BandwidthClass, SystemSpec};
        let sys = SystemSpec::standard(BandwidthClass::LowMinus);
        let cfg = H2hConfig::default();
        let model = h2h_model::zoo::vlocnet();
        let ev = Evaluator::new(&model, &sys);
        let (mut mapping, _) =
            crate::compute_map::computation_prioritized(&ev, &cfg, &PinPreset::new()).unwrap();
        let out = data_locality_remapping(&ev, &cfg, &PinPreset::new(), &mut mapping);
        assert!(
            out.stats.full_evals_saved_ratio() >= 5.0,
            "expected >=5x fewer full evals, got {:.2}x ({} attempts, {} full evals)",
            out.stats.full_evals_saved_ratio(),
            out.stats.attempted_moves,
            out.stats.full_evals
        );
        assert!(out.stats.delta_evals >= out.stats.attempted_moves);
        assert!(
            out.stats.max_propagated <= model.num_layers(),
            "propagation cone cannot exceed the graph"
        );
    }

    #[test]
    fn zero_passes_config_is_a_no_op() {
        let (m, sys, mut map) = setup();
        let ev = Evaluator::new(&m, &sys);
        let cfg = H2hConfig { remap_max_passes: 0, ..Default::default() };
        let before = map.clone();
        let out = data_locality_remapping(&ev, &cfg, &PinPreset::new(), &mut map);
        assert_eq!(map, before);
        assert_eq!(out.accepted_moves(), 0);
        assert_eq!(out.passes(), 0);
    }

    #[test]
    fn fixpoint_terminates_before_pass_bound() {
        let (m, sys, mut map) = setup();
        let ev = Evaluator::new(&m, &sys);
        let cfg = H2hConfig { remap_max_passes: 100, ..Default::default() };
        let out = data_locality_remapping(&ev, &cfg, &PinPreset::new(), &mut map);
        assert!(out.passes() < 100, "tiny model must converge quickly");
    }

    #[test]
    fn energy_objective_never_increases_energy() {
        use crate::config::MapObjective;
        use h2h_system::system::{BandwidthClass, SystemSpec};
        let model = h2h_model::zoo::mocap();
        let sys = SystemSpec::standard(BandwidthClass::LowMinus);
        let ev = Evaluator::new(&model, &sys);
        let cfg = H2hConfig { objective: MapObjective::Energy, ..Default::default() };
        let (mut mapping, _) = crate::compute_map::computation_prioritized(
            &ev,
            &cfg,
            &PinPreset::new(),
        )
        .unwrap();
        let before = {
            let loc = rebuild_locality(&ev, &mapping, &cfg, &PinPreset::new());
            ev.evaluate(&mapping, &loc).energy().total()
        };
        let out = data_locality_remapping(&ev, &cfg, &PinPreset::new(), &mut mapping);
        assert!(
            out.schedule.energy().total() <= before,
            "energy objective must not raise energy: {} -> {}",
            before,
            out.schedule.energy().total()
        );
    }

    #[test]
    fn throughput_objective_minimizes_the_bottleneck() {
        use crate::config::MapObjective;
        use h2h_system::system::{BandwidthClass, SystemSpec};
        let model = h2h_model::zoo::casia_surf();
        let sys = SystemSpec::standard(BandwidthClass::LowMinus);
        let run = |objective| {
            let cfg = H2hConfig { objective, ..Default::default() };
            crate::pipeline::H2hMapper::new(&model, &sys)
                .with_config(cfg)
                .run()
                .unwrap()
        };
        let lat_run = run(MapObjective::Latency);
        let thr_run = run(MapObjective::Throughput);
        assert!(
            thr_run.schedule.steady_state_throughput()
                >= lat_run.schedule.steady_state_throughput() - 1e-9,
            "throughput objective must not lose its own metric: {} vs {}",
            thr_run.schedule.steady_state_throughput(),
            lat_run.schedule.steady_state_throughput()
        );
        // Physics: pipelined throughput is at least one finished
        // inference per makespan.
        assert!(
            thr_run.schedule.steady_state_throughput()
                >= 1.0 / thr_run.final_latency().as_f64() - 1e-9
        );
    }

    #[test]
    fn energy_objective_trades_latency_for_joules() {
        use crate::config::MapObjective;
        use h2h_system::system::{BandwidthClass, SystemSpec};
        let model = h2h_model::zoo::cnn_lstm();
        let sys = SystemSpec::standard(BandwidthClass::LowMinus);
        let run = |objective| {
            let cfg = H2hConfig { objective, ..Default::default() };
            crate::pipeline::H2hMapper::new(&model, &sys)
                .with_config(cfg)
                .run()
                .unwrap()
        };
        let lat_run = run(MapObjective::Latency);
        let en_run = run(MapObjective::Energy);
        // Each objective wins (weakly) on its own metric.
        assert!(lat_run.final_latency() <= en_run.final_latency());
        assert!(en_run.final_energy() <= lat_run.final_energy());
    }
}
