//! Step 3 — activation-transfer optimization (paper §4.3).
//!
//! When two adjacent layers share an accelerator, the intermediate
//! IFM/OFM can stay in the accelerator's local DRAM ("activation
//! fusion") and the Ethernet round-trip through the host disappears.
//! Fusion buffers compete with pinned weights for DRAM capacity, so
//! candidates are processed largest-saving-first.

use h2h_model::graph::LayerId;
use h2h_model::layer::LayerOp;
use h2h_model::units::Bytes;
use h2h_system::locality::LocalityState;
use h2h_system::mapping::Mapping;
use h2h_system::schedule::Evaluator;

use crate::preset::PinPreset;
use crate::config::H2hConfig;
use crate::weight_locality::weight_locality_opt;

/// Marks capacity-feasible same-accelerator edges as fused, biggest
/// activation first. Edges from model inputs are skipped (the raw
/// modality tensor always streams from the host once).
///
/// Fusion is *makespan-guarded*: most fusions provably cannot hurt (the
/// consumer's Ethernet download becomes a DRAM read, and the producer
/// either already pays a DRAM write or drops its Ethernet upload
/// entirely), but an edge whose producer keeps other remote consumers
/// gains a fresh DRAM-write term on the — possibly critical — producer
/// while the saving lands on the consumer. Those risky candidates are
/// accepted only if the evaluated system latency does not increase,
/// preserving the pipeline's step-monotonicity invariant.
pub fn activation_fusion_opt(
    ev: &Evaluator<'_>,
    mapping: &Mapping,
    loc: &mut LocalityState,
) {
    let candidates = sorted_fusion_candidates(ev, mapping);
    fusion_pass(ev, mapping, loc, &candidates, &mut FullEvalOracle { ev, mapping });
}

/// Every fusable edge (non-input producer) in the pass's canonical
/// global order: activation bytes descending, ties by endpoint
/// indices. Mapping-independent — the incremental search core computes
/// it once and filters per candidate mapping;
/// [`sorted_fusion_candidates`] filters it for one mapping. Both share
/// this single definition of the order so they can never drift apart.
pub fn sorted_fusable_edges(model: &h2h_model::ModelGraph) -> Vec<(LayerId, LayerId, Bytes)> {
    let mut edges: Vec<(Bytes, LayerId, LayerId)> = model
        .edges()
        .filter(|(from, _, _)| {
            !matches!(model.layer(*from).op(), LayerOp::Input { .. })
        })
        .map(|(from, to, e)| (e.bytes(), from, to))
        .collect();
    edges.sort_by(|a, b| {
        b.0.cmp(&a.0)
            .then(a.1.index().cmp(&b.1.index()))
            .then(a.2.index().cmp(&b.2.index()))
    });
    // The byte volume rides along: capacity checks on the strip/replay
    // hot path read it from the candidate instead of re-scanning the
    // graph's edge storage per `try_fuse`.
    edges.into_iter().map(|(b, f, t)| (f, t, b)).collect()
}

/// The colocated fusion candidates of `mapping`, in the canonical
/// global order of [`sorted_fusable_edges`].
pub fn sorted_fusion_candidates(
    ev: &Evaluator<'_>,
    mapping: &Mapping,
) -> Vec<(LayerId, LayerId, Bytes)> {
    sorted_fusable_edges(ev.model())
        .into_iter()
        .filter(|(from, to, _)| {
            mapping.get(*from).is_some() && mapping.get(*from) == mapping.get(*to)
        })
        .collect()
}

/// How a [`fusion_pass`] run observes the schedule it is mutating.
///
/// The pass body is shared between the one-shot optimizer (guards
/// answered by full evaluations) and the incremental search core
/// (guards answered by the delta schedule, which is bitwise-equal), so
/// the two can never drift apart in candidate order or accept logic.
pub trait FusionOracle {
    /// Called after a non-risky fusion is accepted (capacity permitting).
    fn fused(&mut self, loc: &LocalityState, from: LayerId, to: LayerId);
    /// Called after a risky fusion is applied or reverted, so the
    /// oracle can resynchronize its schedule state.
    fn toggled(&mut self, loc: &LocalityState, from: LayerId, to: LayerId);
    /// Exact makespan of the mapping under `loc`.
    fn makespan(&mut self, loc: &LocalityState) -> h2h_model::units::Seconds;

    /// Offers the oracle the chance to resolve a risky candidate's
    /// makespan guard without the toggle/measure/maybe-revert replay.
    /// On `Some(accepted)` the guard is settled: the oracle has left
    /// `loc` in the decided state (edge fused on accept — with its cost
    /// refreshes staged — untouched on reject) and the pass moves on.
    /// On `None` the oracle must leave `loc` unchanged and the pass
    /// runs the full guard. Any resolution must reproduce the exact
    /// accept/reject decision the full guard would have made — prove
    /// it, or return `None`. The default (used by the one-shot
    /// full-evaluation optimizer, which has no incremental schedule to
    /// prove against) never resolves.
    fn resolve_guard(
        &mut self,
        loc: &mut LocalityState,
        from: LayerId,
        to: LayerId,
        acc: h2h_system::system::AccId,
        bytes: Bytes,
    ) -> Option<bool> {
        let _ = (loc, from, to, acc, bytes);
        None
    }

    /// Called right before a risky candidate's toggle is applied (after
    /// the `before` makespan read), so the oracle can mark a restore
    /// point for [`FusionOracle::guard_revert`].
    fn guard_begin(&mut self) {}

    /// Reverts the toggle applied since [`FusionOracle::guard_begin`]
    /// (the guard rejected; `loc` is already unfused). The default
    /// resynchronizes like any other toggle; oracles with a restore
    /// point can do better.
    fn guard_revert(&mut self, loc: &LocalityState, from: LayerId, to: LayerId) {
        self.toggled(loc, from, to);
    }

    /// The guard accepted: the toggle applied since
    /// [`FusionOracle::guard_begin`] stands; drop the restore point.
    fn guard_commit(&mut self) {}
}

struct FullEvalOracle<'e, 'm, 'a> {
    ev: &'e Evaluator<'m>,
    mapping: &'a Mapping,
}

impl FusionOracle for FullEvalOracle<'_, '_, '_> {
    fn fused(&mut self, _loc: &LocalityState, _from: LayerId, _to: LayerId) {}
    fn toggled(&mut self, _loc: &LocalityState, _from: LayerId, _to: LayerId) {}
    fn makespan(&mut self, loc: &LocalityState) -> h2h_model::units::Seconds {
        self.ev.evaluate(self.mapping, loc).makespan()
    }
}

/// The step-3 pass body over pre-ordered `candidates` (see module docs
/// for the accept rules). `oracle` supplies exact makespans for the
/// risky-candidate guard and observes every fusion toggle.
pub fn fusion_pass(
    ev: &Evaluator<'_>,
    mapping: &Mapping,
    loc: &mut LocalityState,
    candidates: &[(LayerId, LayerId, Bytes)],
    oracle: &mut dyn FusionOracle,
) {
    let model = ev.model();
    let system = ev.system();
    for &(from, to, bytes) in candidates {
        let acc = mapping.acc_of(from);
        let local = |s: &LayerId, loc: &LocalityState| {
            loc.is_fused(from, *s) && mapping.get(*s) == Some(acc)
        };
        // Producer-side cost analysis (see doc comment). The consumer
        // list comes from the evaluator's flat CSR row — the search
        // core replays this loop per scored candidate, and a petgraph
        // successor walk per edge dominated the pass body.
        let succs = ev.successors_flat(from);
        let already_pays_dram_write = succs.iter().any(|s| local(s, loc));
        let all_local_after = succs.iter().all(|s| *s == to || local(s, loc));
        let risky = !already_pays_dram_write && !all_local_after;
        if !risky {
            // Capacity-checked; refusal is fine (budget exhausted).
            if loc.try_fuse_bytes(system, from, to, acc, bytes) {
                oracle.fused(loc, from, to);
            }
            continue;
        }
        // Guard-dominance pruning: when the oracle can prove the
        // accept/reject outcome from local quantities, the whole
        // toggle/measure/maybe-revert replay below is skipped (same
        // decision, by proof).
        if oracle.resolve_guard(loc, from, to, acc, bytes).is_some() {
            continue;
        }
        let before = oracle.makespan(loc);
        if loc.try_fuse_bytes(system, from, to, acc, bytes) {
            oracle.guard_begin();
            oracle.toggled(loc, from, to);
            let after = oracle.makespan(loc);
            if after > before {
                loc.unfuse(model, from, to, acc);
                oracle.guard_revert(loc, from, to);
            } else {
                oracle.guard_commit();
            }
        }
    }
}

/// Rebuilds the full locality state for a mapping: forced pins + weight
/// knapsack (step 2), then activation fusion (step 3). This is the
/// "re-execute steps 2 and 3" primitive that every remapping attempt of
/// step 4 calls (paper §4.4).
pub fn rebuild_locality(
    ev: &Evaluator<'_>,
    mapping: &Mapping,
    cfg: &H2hConfig,
    preset: &PinPreset,
) -> LocalityState {
    let mut loc = LocalityState::new(ev.system());
    if cfg.enable_weight_locality {
        loc = weight_locality_opt(ev, mapping, loc, cfg.knapsack, preset);
    }
    if cfg.enable_activation_fusion {
        activation_fusion_opt(ev, mapping, &mut loc);
    }
    loc
}

#[cfg(test)]
mod tests {
    use super::*;
    use h2h_model::builder::ModelBuilder;
    use h2h_model::tensor::TensorShape;
    use h2h_system::system::AccId;
    use h2h_system::testutil::{const_system, ConstAccel};

    fn chain() -> h2h_model::ModelGraph {
        let mut b = ModelBuilder::new("c");
        let i = b.input("i", TensorShape::Vector { features: 1024 });
        let f1 = b.fc("f1", i, 1024).unwrap();
        let f2 = b.fc("f2", f1, 1024).unwrap();
        b.fc("f3", f2, 1024).unwrap();
        b.finish().unwrap()
    }

    #[test]
    fn fuses_colocated_edges_only() {
        let m = chain();
        let sys = const_system(
            vec![ConstAccel::universal("u0", 1e-3), ConstAccel::universal("u1", 1e-3)],
            1e6,
        );
        let ids = m.topo_order();
        let mut map = Mapping::new(&m);
        map.set(ids[0], AccId::new(0));
        map.set(ids[1], AccId::new(0));
        map.set(ids[2], AccId::new(0));
        map.set(ids[3], AccId::new(1));
        let ev = Evaluator::new(&m, &sys);
        let mut loc = LocalityState::new(&sys);
        activation_fusion_opt(&ev, &map, &mut loc);
        // f1->f2 co-located and fusable; input->f1 skipped (input edge);
        // f2->f3 crosses accelerators.
        assert!(loc.is_fused(ids[1], ids[2]));
        assert!(!loc.is_fused(ids[0], ids[1]));
        assert!(!loc.is_fused(ids[2], ids[3]));
        assert_eq!(loc.num_fused(), 1);
    }

    #[test]
    fn fusion_never_hurts_latency() {
        let m = chain();
        let sys = const_system(vec![ConstAccel::universal("u", 1e-3)], 1e6);
        let mut map = Mapping::new(&m);
        for id in m.layer_ids() {
            map.set(id, AccId::new(0));
        }
        let ev = Evaluator::new(&m, &sys);
        let before = ev.evaluate(&map, &LocalityState::new(&sys));
        let mut loc = LocalityState::new(&sys);
        activation_fusion_opt(&ev, &map, &mut loc);
        let after = ev.evaluate(&map, &loc);
        assert!(after.makespan() < before.makespan());
    }

    #[test]
    fn capacity_pressure_prefers_biggest_edges() {
        // Two fusable edges (4 KiB each) but DRAM room for ~one after a
        // big pinned weight: the larger edge (equal here -> first by id)
        // wins; with a tiny board, at least one fusion must be refused.
        let m = chain();
        let sys = const_system(
            vec![ConstAccel::universal("u", 1e-3).with_dram(Bytes::new(6 * 1024))],
            1e6,
        );
        let mut map = Mapping::new(&m);
        for id in m.layer_ids() {
            map.set(id, AccId::new(0));
        }
        let ev = Evaluator::new(&m, &sys);
        let mut loc = LocalityState::new(&sys);
        activation_fusion_opt(&ev, &map, &mut loc);
        // Edges f1->f2 and f2->f3 are 4 KiB each; 6 KiB budget fits one.
        assert_eq!(loc.num_fused(), 1);
    }

    #[test]
    fn rebuild_combines_both_passes() {
        let m = chain();
        let sys = const_system(vec![ConstAccel::universal("u", 1e-3)], 1e6);
        let mut map = Mapping::new(&m);
        for id in m.layer_ids() {
            map.set(id, AccId::new(0));
        }
        let ev = Evaluator::new(&m, &sys);
        let cfg = H2hConfig::default();
        let loc = rebuild_locality(&ev, &map, &cfg, &PinPreset::new());
        assert!(loc.num_pinned() > 0, "weights pinned");
        assert!(loc.num_fused() > 0, "activations fused");

        let off = H2hConfig {
            enable_weight_locality: false,
            enable_activation_fusion: false,
            ..cfg
        };
        let empty = rebuild_locality(&ev, &map, &off, &PinPreset::new());
        assert_eq!(empty.num_pinned(), 0);
        assert_eq!(empty.num_fused(), 0);
    }
}
