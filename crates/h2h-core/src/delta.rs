//! The incremental-evaluation search core (paper §4.2 / §4.4).
//!
//! Every H2H search loop asks the same question thousands of times:
//! *"if layer L moved to accelerator A, what would the system cost
//! be?"*. Historically each candidate re-ran the full knapsack +
//! fusion rebuild and a full `O(V+E)` list schedule. [`DeltaEngine`]
//! answers it incrementally instead:
//!
//! 1. **Scoped locality rebuild** — a move from accelerator `A` to `B`
//!    can only change the weight-knapsack inputs *of `A` and `B`*
//!    (knapsacks are per-accelerator), so only those two accelerators'
//!    pin sets are re-optimized; every other accelerator's pins are
//!    carried over unchanged.
//! 2. **Delta scheduling** — the tentative durations feed
//!    [`IncrementalSchedule`], which re-times only the affected cone
//!    (graph successors + same-accelerator queue successors) instead of
//!    the whole graph.
//!
//! The rebuild replay is *exact*: per-accelerator pin sets provably
//! cannot change off the two touched accelerators, and the fusion
//! pass — whose "risky" candidates are guarded by a global makespan
//! comparison — is replayed in its exact global order with the guard
//! answered by the incremental schedule, which is bitwise-equal to the
//! full evaluation it replaces (same per-layer costs from
//! [`Evaluator::layer_cost`], same recurrence). Accepted candidates
//! therefore commit the delta state directly; the only full
//! evaluations in a search run are the seed and the finalization, and
//! final mappings/latencies are identical to the historical
//! per-candidate full-re-evaluation implementations (asserted by
//! equivalence tests over the whole zoo).
//!
//! [`SearchStats`] counts delta vs full evaluations so the speedup is
//! observable (`h2h-bench` emits it as `BENCH_search.json`).

use std::collections::HashSet;

use serde::Serialize;

use h2h_model::graph::LayerId;
use h2h_model::units::Seconds;
use h2h_system::incremental::IncrementalSchedule;
use h2h_system::locality::LocalityState;
use h2h_system::mapping::Mapping;
use h2h_system::schedule::{Evaluator, Schedule};
use h2h_system::system::AccId;

use crate::activation_fusion::{
    fusion_pass, rebuild_locality, sorted_fusable_edges, FusionOracle,
};
use crate::config::H2hConfig;
use crate::preset::PinPreset;
use crate::weight_locality::weight_locality_pass;

/// Instrumentation of one search run: how often the delta engine
/// answered a candidate query versus how often a full evaluation was
/// needed, and how local the delta updates were.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize)]
pub struct SearchStats {
    /// Candidate moves scored by the delta engine.
    pub delta_evals: usize,
    /// Full `Evaluator::evaluate` calls on the search path.
    pub full_evals: usize,
    /// Full (all-accelerator) locality rebuilds.
    pub full_rebuilds: usize,
    /// Scoped (two-accelerator) locality rebuilds.
    pub scoped_rebuilds: usize,
    /// Total layers re-timed across all delta propagations.
    pub propagated_layers: usize,
    /// Largest single propagation cone.
    pub max_propagated: usize,
    /// Moves attempted by the search loop.
    pub attempted_moves: usize,
    /// Moves accepted.
    pub accepted_moves: usize,
    /// Full passes executed (remap loop only).
    pub passes: usize,
}

impl SearchStats {
    /// Full evaluations a per-candidate-full-re-evaluation
    /// implementation would have spent: one per attempted move (the
    /// historical inner loop), versus [`SearchStats::full_evals`]
    /// actually spent.
    pub fn full_evals_saved_ratio(&self) -> f64 {
        if self.full_evals == 0 {
            return self.attempted_moves as f64;
        }
        self.attempted_moves as f64 / self.full_evals as f64
    }

    /// Mean layers re-timed per delta evaluation.
    pub fn mean_propagated(&self) -> f64 {
        if self.delta_evals == 0 {
            return 0.0;
        }
        self.propagated_layers as f64 / self.delta_evals as f64
    }

    /// Accumulates another run's counters into this one.
    pub fn absorb(&mut self, other: &SearchStats) {
        self.delta_evals += other.delta_evals;
        self.full_evals += other.full_evals;
        self.full_rebuilds += other.full_rebuilds;
        self.scoped_rebuilds += other.scoped_rebuilds;
        self.propagated_layers += other.propagated_layers;
        self.max_propagated = self.max_propagated.max(other.max_propagated);
        self.attempted_moves += other.attempted_moves;
        self.accepted_moves += other.accepted_moves;
        self.passes += other.passes;
    }
}

fn note_propagation(stats: &mut SearchStats, touched: usize) {
    stats.propagated_layers += touched;
    stats.max_propagated = stats.max_propagated.max(touched);
}

/// The [`FusionOracle`] that answers the shared fusion pass's makespan
/// guards from the incremental schedule. Non-risky fusions batch their
/// cost refreshes in `pending`, flushed lazily right before a guard
/// reads the makespan (and once at the end via
/// [`DeltaOracle::flush`]).
struct DeltaOracle<'x, 'e, 'm> {
    ev: &'e Evaluator<'m>,
    mapping: &'x Mapping,
    inc: &'x mut IncrementalSchedule,
    stats: &'x mut SearchStats,
    pending: Vec<LayerId>,
}

impl DeltaOracle<'_, '_, '_> {
    fn flush(&mut self, loc: &LocalityState) {
        if self.pending.is_empty() {
            return;
        }
        let pending = std::mem::take(&mut self.pending);
        let seeds = self.inc.refresh_costs(self.ev, self.mapping, loc, pending);
        self.inc.propagate(self.ev.model(), &seeds);
        note_propagation(self.stats, self.inc.touched());
    }
}

impl FusionOracle for DeltaOracle<'_, '_, '_> {
    fn fused(&mut self, _loc: &LocalityState, from: LayerId, to: LayerId) {
        self.pending.push(from);
        self.pending.push(to);
    }

    fn toggled(&mut self, loc: &LocalityState, from: LayerId, to: LayerId) {
        let seeds = self.inc.refresh_costs(self.ev, self.mapping, loc, [from, to]);
        self.inc.propagate(self.ev.model(), &seeds);
        note_propagation(self.stats, self.inc.touched());
    }

    fn makespan(&mut self, loc: &LocalityState) -> Seconds {
        self.flush(loc);
        self.inc.makespan()
    }
}

/// Incremental candidate-move evaluator bound to one search run.
///
/// The engine always holds the exact state of the current mapping
/// (locality + the delta schedule mirroring it, with aggregates
/// resummed so every objective scores bitwise like a full evaluation).
/// Candidates are staged transactionally on top and either rolled back
/// or committed as the new current state.
#[derive(Debug)]
pub struct DeltaEngine<'e, 'm> {
    ev: &'e Evaluator<'m>,
    cfg: &'e H2hConfig,
    preset: &'e PinPreset,
    inc: IncrementalSchedule,
    locality: LocalityState,
    schedule: Schedule,
    score: f64,
    staged: Option<(LayerId, AccId)>,
    staged_locality: Option<LocalityState>,
    /// All non-input-producer edges pre-sorted by the fusion pass's
    /// global order (bytes desc, then endpoint indices) — the
    /// mapping-independent part of the candidate list, computed once.
    sorted_edges: Vec<(LayerId, LayerId)>,
    /// Evaluation counters for this run.
    pub stats: SearchStats,
}

impl<'e, 'm> DeltaEngine<'e, 'm> {
    /// Binds the engine to `mapping`'s exact state (one full rebuild +
    /// evaluation).
    pub fn new(
        ev: &'e Evaluator<'m>,
        cfg: &'e H2hConfig,
        preset: &'e PinPreset,
        mapping: &Mapping,
    ) -> Self {
        let mut stats = SearchStats::default();
        stats.full_rebuilds += 1;
        stats.full_evals += 1;
        let locality = rebuild_locality(ev, mapping, cfg, preset);
        let schedule = ev.evaluate(mapping, &locality);
        let score = cfg.objective.score(&schedule);
        let inc = IncrementalSchedule::new(ev, mapping, &locality);
        let sorted_edges = sorted_fusable_edges(ev.model());
        DeltaEngine {
            ev,
            cfg,
            preset,
            inc,
            locality,
            schedule,
            score,
            staged: None,
            staged_locality: None,
            sorted_edges,
            stats,
        }
    }

    /// Objective score of the current (exact) state.
    pub fn score(&self) -> f64 {
        self.score
    }

    /// Schedule of the last exactly evaluated state (the seed, or the
    /// last [`DeltaEngine::finalize`]d state). Trusted accepts advance
    /// the engine past this snapshot; call
    /// [`DeltaEngine::finalize`] for an up-to-date exact schedule.
    pub fn schedule(&self) -> &Schedule {
        &self.schedule
    }

    /// Locality of the current state (exact: the staged rebuild replay
    /// reproduces the full rebuild's decisions bitwise).
    pub fn locality(&self) -> &LocalityState {
        &self.locality
    }

    /// Re-evaluates the current state exactly (one full evaluation) and
    /// consumes the engine, yielding the final `(locality, schedule,
    /// stats)`.
    ///
    /// # Panics
    ///
    /// Panics if a candidate is still staged.
    pub fn finalize(mut self, mapping: &Mapping) -> (LocalityState, Schedule, SearchStats) {
        assert!(self.staged.is_none(), "finalize with a staged candidate");
        self.stats.full_evals += 1;
        let schedule = self.ev.evaluate(mapping, &self.locality);
        (self.locality, schedule, self.stats)
    }

    /// Stages the candidate "move `layer` to `to`": mutates `mapping`,
    /// performs the scoped locality rebuild for the two touched
    /// accelerators and delta-propagates the schedule. Returns the
    /// candidate's objective score (delta-exact). The candidate stays
    /// staged until [`DeltaEngine::reject_staged`] or
    /// [`DeltaEngine::accept_staged`].
    ///
    /// # Panics
    ///
    /// Panics if a candidate is already staged or `to` equals the
    /// layer's current accelerator.
    pub fn stage_move(&mut self, mapping: &mut Mapping, layer: LayerId, to: AccId) -> f64 {
        assert!(self.staged.is_none(), "candidate already staged");
        let from = mapping.acc_of(layer);
        assert_ne!(from, to, "staging a no-op move");
        self.stats.delta_evals += 1;
        self.stats.scoped_rebuilds += 1;
        self.staged = Some((layer, from));
        self.inc.begin();

        let model = self.ev.model();

        // Strip the pins charged to the two touched accelerators
        // (attribution uses the pre-move mapping): a move can only
        // change the per-accelerator knapsack inputs of its endpoints,
        // so every other accelerator's pin set is provably identical to
        // what a full rebuild would recompute and is carried over.
        //
        // Fusions are different: the activation-fusion pass guards
        // "risky" candidates with a *global* makespan comparison, so
        // any accelerator's fusion decisions can in principle flip when
        // the schedule changes. To keep the delta score exactly equal
        // to the full rebuild (and search decisions bitwise identical),
        // all fusions are stripped and the fusion pass below re-runs in
        // full — with its makespan guards answered by the incremental
        // schedule instead of full evaluations.
        let mut loc = self.locality.clone();
        let in_scope = |a: AccId| a == from || a == to;
        let stripped_pins: Vec<(LayerId, AccId)> = loc
            .pinned_layers()
            .filter_map(|l| mapping.get(l).filter(|a| in_scope(*a)).map(|a| (l, a)))
            .collect();
        let old_pins: HashSet<LayerId> = stripped_pins.iter().map(|(l, _)| *l).collect();
        for (l, a) in stripped_pins {
            loc.unpin(model, l, a);
        }
        let stripped_fusions: Vec<(LayerId, LayerId, AccId)> = loc
            .fused_edges()
            .filter_map(|(f, t)| mapping.get(f).map(|a| (f, t, a)))
            .collect();
        let mut fusion_dirty: Vec<LayerId> = Vec::new();
        for (f, t, a) in stripped_fusions {
            loc.unfuse(model, f, t, a);
            fusion_dirty.push(f);
            fusion_dirty.push(t);
        }

        // Apply the move.
        mapping.set(layer, to);
        let mut seeds = self.inc.move_layer(layer, to);

        // Scoped step 2: the shared `weight_locality_pass` body (preset
        // pins + per-accelerator knapsack) restricted to the two
        // touched accelerators.
        let mut scoped: Vec<AccId> = vec![from, to];
        scoped.sort_by_key(|a| a.index());
        if self.cfg.enable_weight_locality {
            weight_locality_pass(
                self.ev,
                mapping,
                &mut loc,
                self.cfg.knapsack,
                self.preset,
                &scoped,
            );
        }

        // Re-derive the costs of every layer whose terms can change:
        // the moved layer (new compute time / DRAM rate), layers whose
        // pin state differs between the stripped and re-run knapsacks,
        // and the endpoints of stripped fusions. Unchanged-pin layers
        // on the touched accelerators keep their exact costs — only
        // their start times can move, which propagation handles. The
        // delta state then mirrors the full evaluation of `(mapping,
        // pins-only locality)` bitwise.
        let new_pins: HashSet<LayerId> = loc
            .pinned_layers()
            .filter(|l| mapping.get(*l).is_some_and(in_scope))
            .collect();
        let mut dirty: Vec<LayerId> = vec![layer];
        dirty.extend(old_pins.symmetric_difference(&new_pins).copied());
        dirty.extend(fusion_dirty);
        seeds.extend(self.inc.refresh_costs(self.ev, mapping, &loc, dirty.iter().copied()));
        self.inc.propagate(model, &seeds);
        self.note_propagation();

        // Step 3 replay: the shared `fusion_pass` body over all
        // accelerators in the exact global candidate order of
        // `activation_fusion_opt`, with the makespan guard for risky
        // candidates answered by the delta schedule (bitwise-equal to
        // the full evaluation it replaces).
        if self.cfg.enable_activation_fusion {
            let sorted_edges = std::mem::take(&mut self.sorted_edges);
            let candidates: Vec<(LayerId, LayerId)> = sorted_edges
                .iter()
                .copied()
                .filter(|(f, t)| {
                    mapping.get(*f).is_some() && mapping.get(*f) == mapping.get(*t)
                })
                .collect();
            let mut oracle = DeltaOracle {
                ev: self.ev,
                mapping,
                inc: &mut self.inc,
                stats: &mut self.stats,
                pending: Vec::new(),
            };
            fusion_pass(self.ev, mapping, &mut loc, &candidates, &mut oracle);
            oracle.flush(&loc);
            self.sorted_edges = sorted_edges;
        }

        // A fresh in-order summation makes the proxy aggregates
        // bitwise-equal to a full evaluation's, so every objective's
        // score — not just latency — filters exactly.
        self.inc.resum_aggregates();
        self.staged_locality = Some(loc);
        self.cfg.objective.score_proxy(&self.inc.proxy())
    }

    fn note_propagation(&mut self) {
        note_propagation(&mut self.stats, self.inc.touched());
    }

    /// Makespan of the currently staged candidate (delta-exact given
    /// the scoped locality rebuild).
    pub fn staged_makespan(&self) -> f64 {
        self.inc.makespan().as_f64()
    }

    /// Rolls the staged candidate back, restoring `mapping` and the
    /// delta schedule to the current state.
    ///
    /// # Panics
    ///
    /// Panics if no candidate is staged.
    pub fn reject_staged(&mut self, mapping: &mut Mapping) {
        let (layer, from) = self.staged.take().expect("no staged candidate");
        self.staged_locality = None;
        mapping.set(layer, from);
        self.inc.rollback();
    }

    /// Commits the staged candidate: its replayed locality and delta
    /// schedule become the engine's current state (no full evaluation —
    /// the replay is exact by construction). Returns the committed
    /// objective score.
    ///
    /// # Panics
    ///
    /// Panics if no candidate is staged.
    pub fn accept_staged(&mut self) -> f64 {
        assert!(self.staged.take().is_some(), "no staged candidate");
        self.locality = self
            .staged_locality
            .take()
            .expect("staged candidate carries its locality");
        self.inc.commit();
        self.score = self.cfg.objective.score_proxy(&self.inc.proxy());
        self.stats.accepted_moves += 1;
        self.score
    }

    /// Greedy accept-if-better step: stages the move and accepts iff
    /// the candidate score improves on the current state by more than
    /// `accept_epsilon` — the same decision rule (over bitwise-equal
    /// scores) as the historical full-re-evaluation loop. Returns
    /// `true` on accept (with `mapping` left moved) and `false` on
    /// reject (with `mapping` restored).
    pub fn try_improving_move(
        &mut self,
        mapping: &mut Mapping,
        layer: LayerId,
        to: AccId,
    ) -> bool {
        self.stats.attempted_moves += 1;
        let best = self.score;
        let cand = self.stage_move(mapping, layer, to);
        if cand + self.cfg.accept_epsilon < best {
            self.accept_staged();
            true
        } else {
            self.reject_staged(mapping);
            false
        }
    }
}
