//! The incremental-evaluation search core (paper §4.2 / §4.4).
//!
//! Every H2H search loop asks the same question thousands of times:
//! *"if layer L moved to accelerator A, what would the system cost
//! be?"*. Historically each candidate re-ran the full knapsack +
//! fusion rebuild and a full `O(V+E)` list schedule. [`DeltaEngine`]
//! answers it incrementally instead:
//!
//! 1. **Scoped locality rebuild** — a move from accelerator `A` to `B`
//!    can only change the weight-knapsack inputs *of `A` and `B`*
//!    (knapsacks are per-accelerator), so only those two accelerators'
//!    pin sets are re-optimized; every other accelerator's pins are
//!    carried over unchanged.
//! 2. **Delta scheduling** — the tentative durations feed
//!    [`IncrementalSchedule`], which re-times only the affected cone
//!    (graph successors + same-accelerator queue successors) instead of
//!    the whole graph. Cost refreshes are *deferred*: they batch up and
//!    flush right before the first exact makespan read (or once at the
//!    end), so a layer stripped and re-fused within one candidate is
//!    re-derived once, not twice.
//!
//! # Scoring strategies (all bitwise-exact)
//!
//! The fusion pass guards "risky" candidates with a *global* makespan
//! comparison, so in general the staged rebuild must replay the fusion
//! pass over **all** accelerators in its exact global order (with the
//! guard answered by the incremental schedule, which is bitwise-equal
//! to the full evaluation it replaces). How a candidate is scored, by
//! [`ScoreStrategy`] and candidate shape:
//!
//! | Candidate shape | Path | Per-guard cost |
//! |---|---|---|
//! | no risky producer anywhere | prefix-exact scoped re-fusion | no guards at all |
//! | risky, ≤ `small_model_threshold` layers | plain full evaluation | n/a (one `O(V+E)` eval) |
//! | risky, large, guard **proven** by dominance | global replay, guard pruned | `O(1)` proof, deferred refresh |
//! | risky, large, guard unproven, accepted | global replay, toggle kept | one cone propagation |
//! | risky, large, guard unproven, rejected | global replay, toggle undone | one cone propagation + `O(cone)` journal restore |
//!
//! * **Prefix-exact fast path** — risky candidates only arise at
//!   producers with ≥ 2 consumers at least one of which is co-located.
//!   When the candidate mapping has *no* such producer anywhere, every
//!   fusion decision is a purely per-accelerator capacity rule, so
//!   untouched accelerators' fusion sets are carried over verbatim and
//!   only the two touched accelerators' candidates are re-fused — no
//!   global replay, no makespan guards. Chain-structured models (VFS,
//!   CNN-LSTM, MoCap) take this path for essentially every candidate.
//! * **Full-eval fallback** — on small models (≤
//!   [`crate::H2hConfig::small_model_threshold`] layers) a risky
//!   candidate is cheaper to score by a plain full rebuild +
//!   evaluation than by the global replay; the adaptive strategy does
//!   exactly that (and reseeds the delta state on accept).
//! * **Guard-dominance pruning** (large-model replay, on by default via
//!   [`crate::H2hConfig::enable_guard_dominance`]) — before a risky
//!   guard replays its toggle, [`DeltaOracle::resolve_guard`] tries to
//!   *prove* the accept/reject outcome from local quantities: the
//!   producer's new finish time is exactly computable, and when every
//!   reader of it absorbs the change (their starts already clear it)
//!   while the consumer's saving keeps its own finish bounded, the
//!   global comparison reduces to `new_finish ≤ makespan` — decided
//!   without touching the schedule. ResNet-like models resolve the
//!   large majority of their guards this way
//!   ([`SearchStats::guards_skipped`] / [`SearchStats::guards_total`]).
//! * **`O(cone)` guard reverts** — unproven guards still toggle and
//!   measure, but the toggle runs inside a journal savepoint
//!   ([`h2h_system::incremental::IncrementalSchedule::savepoint`]), so
//!   a rejected guard restores the touched set by replaying the
//!   recorded undo entries ([`SearchStats::guard_reverts_fast`])
//!   instead of paying a second cost-refresh + re-propagation.
//!
//! Accepted candidates commit the delta state directly; the only full
//! evaluations in a search run are the seed, the finalization and any
//! full-eval-fallback candidates, and final mappings/latencies are
//! identical to the historical per-candidate full-re-evaluation
//! implementations (asserted by equivalence tests over the whole zoo,
//! over every strategy, over scoring thread counts 1–8 and with
//! dominance pruning on or off).
//!
//! # Parallel scoring
//!
//! [`DeltaEngine::fork`] produces a cheap clone for a scoring worker:
//! the read-only model/system data (sorted fusable edges, multi-consumer
//! producer lists, topological priority inside [`IncrementalSchedule`],
//! DRAM capacity tables inside [`LocalityState`]) is shared behind
//! `Arc`s, and only the mutable scratch is copied. The commit protocol
//! lives in [`crate::parallel`]: workers score disjoint candidate
//! subsets transactionally (stage → record → reject) and the main
//! engine commits the winning move in deterministic candidate order.
//!
//! [`SearchStats`] counts delta vs full evaluations so the speedup is
//! observable (`h2h-bench` emits it as `BENCH_search.json`).

use std::sync::Arc;

use serde::Serialize;

use h2h_model::graph::LayerId;
use h2h_model::layer::LayerOp;
use h2h_model::units::{Bytes, Seconds};
use h2h_system::incremental::IncrementalSchedule;
use h2h_system::locality::LocalityState;
use h2h_system::mapping::Mapping;
use h2h_system::schedule::{Evaluator, Schedule};
use h2h_system::system::AccId;

use crate::activation_fusion::{
    fusion_pass, rebuild_locality, sorted_fusable_edges, FusionOracle,
};
use crate::config::{H2hConfig, ScoreStrategy};
use crate::preset::PinPreset;
use crate::weight_locality::weight_locality_pass;

/// Instrumentation of one search run: how often the delta engine
/// answered a candidate query versus how often a full evaluation was
/// needed, and how local the delta updates were.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize)]
pub struct SearchStats {
    /// Candidate moves scored by the delta engine.
    pub delta_evals: usize,
    /// Delta evaluations that took the prefix-exact fast path (no
    /// global fusion replay).
    pub prefix_evals: usize,
    /// Full `Evaluator::evaluate` calls on the search path.
    pub full_evals: usize,
    /// Full (all-accelerator) locality rebuilds.
    pub full_rebuilds: usize,
    /// Scoped (two-accelerator) locality rebuilds.
    pub scoped_rebuilds: usize,
    /// Total layers re-timed across all delta propagations.
    pub propagated_layers: usize,
    /// Individual propagation rounds executed (each re-times one
    /// affected cone).
    pub propagations: usize,
    /// Largest single propagation cone.
    pub max_propagated: usize,
    /// Risky fusion guards reached by the delta replay (each one the
    /// reference answers with a toggle + global makespan comparison).
    pub guards_total: usize,
    /// Risky guards whose outcome was *proven* by dominance, skipping
    /// the toggle/revert replay. Capacity-refused fusions (which also
    /// avoid the replay, trivially) are deliberately not counted, so a
    /// non-zero value always means the dominance proof itself fired —
    /// the CI gate relies on that.
    pub guards_skipped: usize,
    /// Rejected risky guards whose toggle was undone by the journal's
    /// `O(cone)` savepoint restore instead of a second re-propagation.
    pub guard_reverts_fast: usize,
    /// Moves attempted by the search loop.
    pub attempted_moves: usize,
    /// Moves accepted.
    pub accepted_moves: usize,
    /// Full passes executed (remap loop only).
    pub passes: usize,
}

impl SearchStats {
    /// Full evaluations a per-candidate-full-re-evaluation
    /// implementation would have spent: one per attempted move (the
    /// historical inner loop), versus [`SearchStats::full_evals`]
    /// actually spent.
    pub fn full_evals_saved_ratio(&self) -> f64 {
        if self.full_evals == 0 {
            return self.attempted_moves as f64;
        }
        self.attempted_moves as f64 / self.full_evals as f64
    }

    /// Mean layers re-timed per propagation round — the paper's
    /// locality-of-update measure, always ≤
    /// [`SearchStats::max_propagated`]. (A candidate evaluation may run
    /// several propagation rounds, so this is deliberately *not*
    /// normalized by [`SearchStats::delta_evals`]: doing so once
    /// inflated the "mean" far beyond the largest possible cone.)
    pub fn mean_propagated(&self) -> f64 {
        if self.propagations == 0 {
            return 0.0;
        }
        self.propagated_layers as f64 / self.propagations as f64
    }

    /// Accumulates another run's counters into this one.
    pub fn absorb(&mut self, other: &SearchStats) {
        self.delta_evals += other.delta_evals;
        self.prefix_evals += other.prefix_evals;
        self.full_evals += other.full_evals;
        self.full_rebuilds += other.full_rebuilds;
        self.scoped_rebuilds += other.scoped_rebuilds;
        self.propagated_layers += other.propagated_layers;
        self.propagations += other.propagations;
        self.max_propagated = self.max_propagated.max(other.max_propagated);
        self.guards_total += other.guards_total;
        self.guards_skipped += other.guards_skipped;
        self.guard_reverts_fast += other.guard_reverts_fast;
        self.attempted_moves += other.attempted_moves;
        self.accepted_moves += other.accepted_moves;
        self.passes += other.passes;
    }
}

fn note_propagation(stats: &mut SearchStats, touched: usize) {
    stats.propagated_layers += touched;
    stats.propagations += 1;
    stats.max_propagated = stats.max_propagated.max(touched);
}

/// Wall-clock breakdown of one engine's search time by phase, filled
/// only when [`H2hConfig::profile_phases`] is on (`bench_search
/// --profile`). Deliberately **not** part of [`SearchStats`]: the stat
/// counters are asserted bitwise-equal across thread counts and
/// strategies, while wall-clock numbers are machine- and run-specific.
/// When candidates are scored on worker lanes the per-lane deltas are
/// absorbed into the main engine's profile, so the totals approximate
/// *CPU seconds across all lanes*, not elapsed wall time.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize)]
pub struct PhaseProfile {
    /// Candidate scoring outside the other buckets: locality
    /// strip/rebuild replay, fusion-pass bookkeeping, full-eval
    /// fallbacks, staged-candidate rollback.
    pub scoring_s: f64,
    /// Deferred cost refresh + cone propagation rounds (the
    /// [`DeltaOracle`] flush/toggle paths and the prefix-path flush).
    pub propagate_s: f64,
    /// Risky-guard resolution: dominance proofs, toggle savepoints and
    /// `O(cone)` reverts.
    pub guard_s: f64,
    /// Committing accepted candidates into the engine state.
    pub commit_s: f64,
}

impl PhaseProfile {
    /// Sum of all buckets.
    pub fn total(&self) -> f64 {
        self.scoring_s + self.propagate_s + self.guard_s + self.commit_s
    }

    /// Accumulates another profile (e.g. a worker lane's delta).
    pub fn absorb(&mut self, other: &PhaseProfile) {
        self.scoring_s += other.scoring_s;
        self.propagate_s += other.propagate_s;
        self.guard_s += other.guard_s;
        self.commit_s += other.commit_s;
    }

    /// Bucket-wise difference `self - before` (for snapshotting one
    /// candidate's share out of a running accumulator).
    pub fn delta_since(&self, before: &PhaseProfile) -> PhaseProfile {
        PhaseProfile {
            scoring_s: self.scoring_s - before.scoring_s,
            propagate_s: self.propagate_s - before.propagate_s,
            guard_s: self.guard_s - before.guard_s,
            commit_s: self.commit_s - before.commit_s,
        }
    }
}

/// The [`FusionOracle`] that answers the shared fusion pass's makespan
/// guards from the incremental schedule. Cost refreshes (the staged
/// move itself, pin diffs, stripped and re-fused edge endpoints) batch
/// in `pending` and structural re-queue seeds in `pending_seeds`; both
/// are flushed lazily right before a guard reads the makespan (and once
/// at the end via [`DeltaOracle::flush`]), so layers stripped and
/// re-fused within one candidate are refreshed once, with their final
/// state.
///
/// Risky guards additionally go through [`FusionOracle::resolve_guard`]
/// dominance pruning (see [`DeltaOracle::resolve_guard`] for the proof
/// obligations) and, when the toggle replay does run, a journal
/// savepoint turns a rejected guard's revert into an `O(cone)` restore
/// instead of a second re-propagation.
struct DeltaOracle<'x, 'e, 'm> {
    ev: &'e Evaluator<'m>,
    mapping: &'x Mapping,
    inc: &'x mut IncrementalSchedule,
    stats: &'x mut SearchStats,
    pending: Vec<LayerId>,
    pending_seeds: Vec<LayerId>,
    /// Dominance pruning enabled ([`H2hConfig::enable_guard_dominance`]).
    dominance: bool,
    /// Restore point of the risky-guard toggle currently in flight.
    savepoint: Option<h2h_system::incremental::Savepoint>,
    /// Phase wall-clock accumulator, present iff profiling is on.
    profile: Option<&'x mut PhaseProfile>,
}

impl DeltaOracle<'_, '_, '_> {
    fn flush(&mut self, loc: &LocalityState) {
        let t0 = self.profile.is_some().then(std::time::Instant::now);
        if !self.pending.is_empty() {
            // Stripped-then-restored layers appear several times in the
            // batch; one refresh against the flush-time locality is the
            // same snapshot (and the same seeds), minus the repeat
            // `layer_cost` derivations.
            self.pending.sort_unstable();
            self.pending.dedup();
            self.inc.refresh_costs_into(
                self.ev,
                self.mapping,
                loc,
                self.pending.drain(..),
                &mut self.pending_seeds,
            );
        }
        // A batch whose refreshes all came back with identical durations
        // (and no structural seeds outstanding) moves nothing: skip the
        // zero-touch propagation round instead of counting it.
        if !self.pending_seeds.is_empty() {
            self.inc.propagate(&self.pending_seeds);
            self.pending_seeds.clear();
            note_propagation(self.stats, self.inc.touched());
        }
        if let (Some(t0), Some(p)) = (t0, self.profile.as_deref_mut()) {
            p.propagate_s += t0.elapsed().as_secs_f64();
        }
    }
}

impl FusionOracle for DeltaOracle<'_, '_, '_> {
    fn fused(&mut self, _loc: &LocalityState, from: LayerId, to: LayerId) {
        self.pending.push(from);
        self.pending.push(to);
    }

    fn toggled(&mut self, loc: &LocalityState, from: LayerId, to: LayerId) {
        let t0 = self.profile.is_some().then(std::time::Instant::now);
        // Toggles always follow a makespan read, so the batches are
        // drained and `pending_seeds` is free to reuse as the seed
        // buffer.
        debug_assert!(self.pending.is_empty() && self.pending_seeds.is_empty());
        self.inc.refresh_costs_into(
            self.ev,
            self.mapping,
            loc,
            [from, to],
            &mut self.pending_seeds,
        );
        self.inc.propagate(&self.pending_seeds);
        self.pending_seeds.clear();
        note_propagation(self.stats, self.inc.touched());
        if let (Some(t0), Some(p)) = (t0, self.profile.as_deref_mut()) {
            p.propagate_s += t0.elapsed().as_secs_f64();
        }
    }

    fn makespan(&mut self, loc: &LocalityState) -> Seconds {
        self.flush(loc);
        self.inc.makespan()
    }

    /// Dominance pruning for a risky guard. The reference semantics it
    /// must reproduce: accept the fusion iff the toggled schedule's
    /// makespan does not exceed the pre-toggle makespan.
    ///
    /// Toggling the `from → to` fusion changes exactly two durations —
    /// `from`'s (it gains a DRAM write; call its new duration `ndf` and
    /// its new finish `nf = start[from] + ndf`, both exactly computable
    /// because nothing upstream of `from` changes) and `to`'s (its IFM
    /// download becomes a DRAM read, `ndt`). The schedule recurrence
    /// `start = max(inputs); finish = start + dur` is monotone in every
    /// input *bitwise* (IEEE round-to-nearest `max`/`+` are monotone),
    /// so one induction over the recurrence order settles the guard
    /// when two local conditions hold:
    ///
    /// 1. **Absorption** — every reader of `from`'s finish other than
    ///    `to` (graph successors + the queue successor) already starts
    ///    at or after `nf`, so no start time outside `to`'s cone can
    ///    increase.
    /// 2. **Consumer slack** — `max(start[to], nf) + ndt ≤ finish[to]`:
    ///    an exact upper bound on `to`'s new finish (its other inputs
    ///    cannot increase, by 1.), so `to`'s cone only moves earlier.
    ///
    /// Under 1+2 every finish except `from`'s is bounded by its current
    /// value ≤ the current makespan, and `from`'s is exactly `nf`;
    /// hence the toggled makespan is `≤ before` iff `nf ≤ before` —
    /// accept — and `> before` (it *is* `nf`) otherwise — reject. Both
    /// outcomes are proven, not estimated, so the search decisions stay
    /// bit-identical to the full replay (asserted over the zoo by the
    /// equivalence suites). If either condition fails, `None` sends the
    /// pass down the full toggle/measure path.
    fn resolve_guard(
        &mut self,
        loc: &mut LocalityState,
        from: LayerId,
        to: LayerId,
        acc: AccId,
        bytes: Bytes,
    ) -> Option<bool> {
        self.stats.guards_total += 1;
        if !self.dominance {
            return None;
        }
        // The proof reads exact start/finish times, so the deferred
        // batches must land first — the same flush the reference pays
        // at this guard's `before` makespan read. Must happen before
        // the tentative fuse: pending layers refresh against the
        // pre-toggle locality. (Charged to `propagate_s`, not
        // `guard_s`: the reference pays the same flush.)
        self.flush(loc);
        let t0 = self.profile.is_some().then(std::time::Instant::now);
        let out = self.resolve_guard_inner(loc, from, to, acc, bytes);
        if let (Some(t0), Some(p)) = (t0, self.profile.as_deref_mut()) {
            p.guard_s += t0.elapsed().as_secs_f64();
        }
        out
    }

    fn guard_begin(&mut self) {
        let t0 = self.profile.is_some().then(std::time::Instant::now);
        debug_assert!(self.savepoint.is_none(), "risky guards never nest");
        self.savepoint = Some(self.inc.savepoint());
        if let (Some(t0), Some(p)) = (t0, self.profile.as_deref_mut()) {
            p.guard_s += t0.elapsed().as_secs_f64();
        }
    }

    fn guard_revert(&mut self, _loc: &LocalityState, _from: LayerId, _to: LayerId) {
        let t0 = self.profile.is_some().then(std::time::Instant::now);
        // The savepoint journal recorded the toggle's touched set
        // (costs, durations, start/finish times, aggregates); restoring
        // it is O(touched), replacing the reference's second refresh +
        // re-propagation — which would recompute exactly these values.
        let sp = self.savepoint.take().expect("guard_begin marks the restore point");
        self.inc.rollback_to(&sp);
        self.stats.guard_reverts_fast += 1;
        if let (Some(t0), Some(p)) = (t0, self.profile.as_deref_mut()) {
            p.guard_s += t0.elapsed().as_secs_f64();
        }
    }

    fn guard_commit(&mut self) {
        self.savepoint = None;
    }
}

impl DeltaOracle<'_, '_, '_> {
    /// The dominance-proof body of [`FusionOracle::resolve_guard`],
    /// factored out so the wrapper can charge it to
    /// [`PhaseProfile::guard_s`] as one span.
    fn resolve_guard_inner(
        &mut self,
        loc: &mut LocalityState,
        from: LayerId,
        to: LayerId,
        acc: AccId,
        bytes: Bytes,
    ) -> Option<bool> {
        if !loc.is_fused(from, to) && bytes > loc.dram_free(acc, self.ev.system()) {
            // Capacity-refused: the reference would measure `before`,
            // fail the same try_fuse and move on. No state changed;
            // only the makespan scan is saved. Not counted in
            // `guards_skipped` — that counter certifies the dominance
            // proof fired, and this branch never ran it.
            return Some(false);
        }
        // The toggle changes exactly one term on each endpoint: `from`
        // gains a DRAM write (OFM), `to`'s download becomes a DRAM read
        // (IFM). Everything else — weights, compute, the other
        // endpoint's untouched transfer side — is read from the costs
        // the pre-toggle flush just certified, so only the changed term
        // reruns the kernel, with the toggle itself priced as an
        // `extra_fused` overlay — no tentative fuse/unfuse churn on the
        // sorted fused-edge vector. Bitwise equal to the full recompute
        // (the specialized sums replay the same float ops in the same
        // order over the same locality view), which the debug
        // assertions below pin down against a real toggle.
        let ndf = self
            .ev
            .duration_new_ofm(self.mapping, loc, from, self.inc.cost_of(from), Some(to))
            .as_f64();
        let ndt = self
            .ev
            .duration_new_ifm(self.mapping, loc, to, self.inc.cost_of(to), Some(from))
            .as_f64();
        #[cfg(debug_assertions)]
        {
            assert!(loc.try_fuse_bytes(self.ev.system(), from, to, acc, bytes));
            assert_eq!(
                ndf.to_bits(),
                self.ev.layer_cost(self.mapping, loc, from).duration().as_f64().to_bits()
            );
            assert_eq!(
                ndt.to_bits(),
                self.ev.layer_cost(self.mapping, loc, to).duration().as_f64().to_bits()
            );
            assert!(loc.unfuse(self.ev.model(), from, to, acc));
        }
        let nf = self.inc.start_of(from).as_f64() + ndf;
        let start_of = |l: LayerId| self.inc.start_of(l).as_f64();
        let absorbed = self.ev.successors_flat(from).iter().all(|&s| s == to || nf <= start_of(s))
            && self
                .inc
                .queue_successor(from)
                .is_none_or(|q| q == to || nf <= start_of(q));
        if absorbed {
            let new_finish_to_bound = start_of(to).max(nf) + ndt;
            if new_finish_to_bound <= self.inc.finish_of(to).as_f64() {
                let accept = nf <= self.inc.makespan().as_f64();
                if accept {
                    // The overlay becomes real only now — a proven
                    // reject (and the unproven fall-through below)
                    // leaves `loc` untouched, where the pre-overlay
                    // proof paid a tentative fuse and its revert.
                    let ok = loc.try_fuse_bytes(self.ev.system(), from, to, acc, bytes);
                    debug_assert!(ok, "capacity was checked above");
                    // Exactly like a non-risky accept: the endpoints'
                    // refreshes defer to the next flush.
                    self.pending.push(from);
                    self.pending.push(to);
                }
                self.stats.guards_skipped += 1;
                return Some(accept);
            }
        }
        // Unproven: hand the untouched state back to the full guard.
        None
    }
}

/// Read-only per-(model, system) data shared by an engine and all its
/// scoring-worker forks.
#[derive(Debug)]
struct EngineShared {
    /// All non-input-producer edges pre-sorted by the fusion pass's
    /// global order (bytes desc, then endpoint indices) — the
    /// mapping-independent part of the candidate list, computed once.
    sorted_edges: Vec<(LayerId, LayerId, Bytes)>,
    /// Non-input producers with ≥ 2 consumers (and those consumers):
    /// the only places a "risky" fusion candidate can arise. The
    /// prefix-exact fast path applies exactly when no such producer is
    /// co-located with any of its consumers in the candidate mapping.
    multi_out: Vec<(LayerId, Vec<LayerId>)>,
}

/// The staged candidate: which layer moved, where it came from, and
/// whether it was scored through the delta schedule (transactional) or
/// a plain full evaluation.
#[derive(Debug, Clone, Copy)]
struct StagedMove {
    layer: LayerId,
    from: AccId,
    delta: bool,
}

/// Incremental candidate-move evaluator bound to one search run.
///
/// The engine always holds the exact state of the current mapping
/// (locality + the delta schedule mirroring it, with aggregates
/// resummed so every objective scores bitwise like a full evaluation).
/// Candidates are staged transactionally on top and either rolled back
/// or committed as the new current state.
///
/// `Clone` copies the mutable scratch and shares the read-only data;
/// use [`DeltaEngine::fork`] for scoring workers (it also zeroes the
/// stats, which workers report per candidate instead).
#[derive(Debug, Clone)]
pub struct DeltaEngine<'e, 'm> {
    ev: &'e Evaluator<'m>,
    cfg: &'e H2hConfig,
    preset: &'e PinPreset,
    inc: IncrementalSchedule,
    locality: LocalityState,
    schedule: Schedule,
    score: f64,
    staged: Option<StagedMove>,
    staged_locality: Option<LocalityState>,
    staged_schedule: Option<Schedule>,
    staged_makespan: f64,
    /// Resolved adaptive fallback: small models score risky candidates
    /// by full evaluation, large ones by the global replay.
    prefer_full: bool,
    shared: Arc<EngineShared>,
    // Reusable scratch for the staging hot path, kept across candidates
    // so steady-state scoring allocates nothing.
    spare_locality: Option<LocalityState>,
    scratch_costs: Vec<LayerId>,
    scratch_seeds: Vec<LayerId>,
    scratch_cands: Vec<(LayerId, LayerId, Bytes)>,
    scratch_pins: Vec<(LayerId, AccId)>,
    scratch_fusions: Vec<(LayerId, LayerId, AccId)>,
    /// Evaluation counters for this run.
    pub stats: SearchStats,
    /// Phase timers armed ([`H2hConfig::profile_phases`]).
    profile_enabled: bool,
    /// Wall-clock per-phase breakdown of this engine's work; stays
    /// zeroed unless profiling is on. Unlike [`DeltaEngine::stats`]
    /// this is never compared across runs.
    pub profile: PhaseProfile,
}

impl<'e, 'm> DeltaEngine<'e, 'm> {
    /// Binds the engine to `mapping`'s exact state (one full rebuild +
    /// evaluation).
    pub fn new(
        ev: &'e Evaluator<'m>,
        cfg: &'e H2hConfig,
        preset: &'e PinPreset,
        mapping: &Mapping,
    ) -> Self {
        let mut stats = SearchStats::default();
        stats.full_rebuilds += 1;
        stats.full_evals += 1;
        let model = ev.model();
        let locality = rebuild_locality(ev, mapping, cfg, preset);
        let schedule = ev.evaluate(mapping, &locality);
        let score = cfg.objective.score(&schedule);
        let inc = IncrementalSchedule::new(ev, mapping, &locality);
        let multi_out = model
            .layer_ids()
            .filter(|id| !matches!(model.layer(*id).op(), LayerOp::Input { .. }))
            .filter_map(|id| {
                let succs: Vec<LayerId> = model.successors(id).collect();
                (succs.len() >= 2).then_some((id, succs))
            })
            .collect();
        DeltaEngine {
            ev,
            cfg,
            preset,
            inc,
            locality,
            schedule,
            score,
            staged: None,
            staged_locality: None,
            staged_schedule: None,
            staged_makespan: 0.0,
            prefer_full: model.num_layers() <= cfg.small_model_threshold,
            shared: Arc::new(EngineShared {
                sorted_edges: sorted_fusable_edges(model),
                multi_out,
            }),
            spare_locality: None,
            scratch_costs: Vec::new(),
            scratch_seeds: Vec::new(),
            scratch_cands: Vec::new(),
            scratch_pins: Vec::new(),
            scratch_fusions: Vec::new(),
            stats,
            profile_enabled: cfg.profile_phases,
            profile: PhaseProfile::default(),
        }
    }

    /// Cheap clone for a scoring worker thread: shares the read-only
    /// `Arc`s, copies the mutable scratch, zeroes the stats (workers
    /// report per-candidate stat deltas back to the main engine).
    ///
    /// # Panics
    ///
    /// Panics if a candidate is staged.
    pub fn fork(&self) -> Self {
        assert!(self.staged.is_none(), "fork with a staged candidate");
        let mut fork = self.clone();
        fork.stats = SearchStats::default();
        fork.profile = PhaseProfile::default();
        fork
    }

    /// The configuration this engine scores under.
    pub(crate) fn config(&self) -> &H2hConfig {
        self.cfg
    }

    /// Objective score of the current (exact) state.
    pub fn score(&self) -> f64 {
        self.score
    }

    /// Schedule of the last exactly evaluated state (the seed, the last
    /// [`DeltaEngine::finalize`]d state, or the last accepted
    /// full-eval-fallback candidate). Trusted delta accepts advance the
    /// engine past this snapshot; call [`DeltaEngine::finalize`] for an
    /// up-to-date exact schedule.
    pub fn schedule(&self) -> &Schedule {
        &self.schedule
    }

    /// Locality of the current state (exact: the staged rebuild replay
    /// reproduces the full rebuild's decisions bitwise).
    pub fn locality(&self) -> &LocalityState {
        &self.locality
    }

    /// Re-evaluates the current state exactly (one full evaluation) and
    /// consumes the engine, yielding the final `(locality, schedule,
    /// stats)`.
    ///
    /// # Panics
    ///
    /// Panics if a candidate is still staged.
    pub fn finalize(mut self, mapping: &Mapping) -> (LocalityState, Schedule, SearchStats) {
        assert!(self.staged.is_none(), "finalize with a staged candidate");
        self.stats.full_evals += 1;
        let schedule = self.ev.evaluate(mapping, &self.locality);
        (self.locality, schedule, self.stats)
    }

    /// True when moving `layer` to `to` leaves a mapping in which some
    /// multi-consumer producer is co-located with one of its consumers —
    /// i.e. the fusion pass could see a "risky" candidate whose accept
    /// decision needs a global makespan guard. When false, the
    /// prefix-exact fast path applies.
    fn candidate_has_risky_fusion(
        &self,
        mapping: &Mapping,
        layer: LayerId,
        to: AccId,
    ) -> bool {
        let mapped = |l: LayerId| if l == layer { Some(to) } else { mapping.get(l) };
        self.shared.multi_out.iter().any(|(f, succs)| {
            let fa = mapped(*f);
            fa.is_some() && succs.iter().any(|s| mapped(*s) == fa)
        })
    }

    /// Stages the candidate "move `layer` to `to`": mutates `mapping`,
    /// scores the candidate through the strategy-selected path
    /// (prefix-exact scoped rebuild, global fusion replay, or plain
    /// full evaluation — all bitwise-identical scores) and returns the
    /// candidate's objective score. The candidate stays staged until
    /// [`DeltaEngine::reject_staged`] or [`DeltaEngine::accept_staged`].
    ///
    /// # Panics
    ///
    /// Panics if a candidate is already staged or `to` equals the
    /// layer's current accelerator.
    pub fn stage_move(&mut self, mapping: &mut Mapping, layer: LayerId, to: AccId) -> f64 {
        if !self.profile_enabled {
            return self.stage_move_inner(mapping, layer, to);
        }
        // The oracle charges its own propagate/guard spans while the
        // stage runs; scoring gets the remainder of the elapsed time.
        let inner_before = self.profile.propagate_s + self.profile.guard_s;
        let t0 = std::time::Instant::now();
        let score = self.stage_move_inner(mapping, layer, to);
        let inner = (self.profile.propagate_s + self.profile.guard_s) - inner_before;
        self.profile.scoring_s += (t0.elapsed().as_secs_f64() - inner).max(0.0);
        score
    }

    fn stage_move_inner(&mut self, mapping: &mut Mapping, layer: LayerId, to: AccId) -> f64 {
        assert!(self.staged.is_none(), "candidate already staged");
        let from = mapping.acc_of(layer);
        assert_ne!(from, to, "staging a no-op move");
        match self.cfg.strategy {
            ScoreStrategy::FullEval => self.stage_full(mapping, layer, from, to),
            ScoreStrategy::Replay => self.stage_delta(mapping, layer, from, to, false),
            ScoreStrategy::Adaptive => {
                if !self.candidate_has_risky_fusion(mapping, layer, to) {
                    self.stage_delta(mapping, layer, from, to, true)
                } else if self.prefer_full {
                    self.stage_full(mapping, layer, from, to)
                } else {
                    self.stage_delta(mapping, layer, from, to, false)
                }
            }
        }
    }

    /// Plain full evaluation of the candidate (reference semantics);
    /// the delta schedule is left untouched and reseeded on accept.
    fn stage_full(
        &mut self,
        mapping: &mut Mapping,
        layer: LayerId,
        from: AccId,
        to: AccId,
    ) -> f64 {
        self.stats.full_evals += 1;
        self.stats.full_rebuilds += 1;
        self.staged = Some(StagedMove { layer, from, delta: false });
        mapping.set(layer, to);
        let loc = rebuild_locality(self.ev, mapping, self.cfg, self.preset);
        let schedule = self.ev.evaluate(mapping, &loc);
        let score = self.cfg.objective.score(&schedule);
        self.staged_makespan = schedule.makespan().as_f64();
        self.staged_locality = Some(loc);
        self.staged_schedule = Some(schedule);
        score
    }

    /// Transactional delta scoring: scoped pin rebuild plus either the
    /// prefix-exact local re-fusion (`prefix`) or the global
    /// fusion-pass replay.
    fn stage_delta(
        &mut self,
        mapping: &mut Mapping,
        layer: LayerId,
        from: AccId,
        to: AccId,
        prefix: bool,
    ) -> f64 {
        self.stats.delta_evals += 1;
        self.stats.scoped_rebuilds += 1;
        if prefix {
            self.stats.prefix_evals += 1;
        }
        self.staged = Some(StagedMove { layer, from, delta: true });
        self.inc.begin();

        let model = self.ev.model();

        // Strip the pins charged to the two touched accelerators
        // (attribution uses the pre-move mapping): a move can only
        // change the per-accelerator knapsack inputs of its endpoints,
        // so every other accelerator's pin set is provably identical to
        // what a full rebuild would recompute and is carried over.
        let mut loc = match self.spare_locality.take() {
            Some(mut spare) => {
                spare.clone_from(&self.locality);
                spare
            }
            None => self.locality.clone(),
        };
        let in_scope = |a: AccId| a == from || a == to;
        // Deferred cost refreshes: the moved layer, stripped fusion
        // endpoints, (re-)pinned layers and re-fused endpoints
        // accumulate here and are re-derived lazily — at the first
        // exact makespan read, or once at the end when no guard fires —
        // with their final locality state, instead of once per
        // intermediate state. Duplicates and unchanged-state layers are
        // fine: a refresh whose cost comes out identical seeds nothing.
        let mut pending_costs = std::mem::take(&mut self.scratch_costs);
        pending_costs.clear();
        pending_costs.push(layer);
        // Per-route bandwidths make a layer's transfer terms depend on
        // its neighbours' placements: the move re-rates the IFM edges
        // of `layer`'s successors and the OFM upload of its
        // predecessors, so both sides join the deferred refresh. (On a
        // uniform fabric the refreshes come back with identical
        // durations and seed nothing.)
        pending_costs.extend(self.ev.predecessors_flat(layer));
        pending_costs.extend(self.ev.successors_flat(layer));
        self.scratch_pins.clear();
        self.scratch_pins.extend(
            loc.pinned_layers()
                .filter_map(|l| mapping.get(l).filter(|a| in_scope(*a)).map(|a| (l, a))),
        );
        for k in 0..self.scratch_pins.len() {
            let (l, a) = self.scratch_pins[k];
            loc.unpin(model, l, a);
            pending_costs.push(l);
        }

        // Fusions: the activation-fusion pass guards "risky" candidates
        // with a *global* makespan comparison, so in general any
        // accelerator's fusion decisions can flip when the schedule
        // changes — the replay strips them all and re-runs the pass in
        // its exact global order below. On the prefix fast path the
        // caller has proven no risky candidate exists anywhere, so
        // every fusion decision is a per-accelerator capacity rule:
        // only the two touched accelerators' fusions (charge
        // attribution: the producer's pre-move accelerator, which
        // co-location guarantees equals the consumer's) can change.
        if prefix {
            self.scratch_fusions.clear();
            self.scratch_fusions.extend(
                loc.fused_edges()
                    .filter_map(|(f, t)| mapping.get(f).map(|a| (f, t, a)))
                    .filter(|(_, _, a)| in_scope(*a)),
            );
            for k in 0..self.scratch_fusions.len() {
                let (f, t, a) = self.scratch_fusions[k];
                loc.unfuse(model, f, t, a);
                pending_costs.push(f);
                pending_costs.push(t);
            }
        } else {
            // The replay strips *every* fused edge; per-edge removal
            // from the sorted vec would be quadratic, so the bulk strip
            // refunds all recorded charges in one linear pass.
            pending_costs.extend(
                loc.fused_edges()
                    .filter(|(f, _)| mapping.get(*f).is_some())
                    .flat_map(|(f, t)| [f, t]),
            );
            loc.unfuse_all(mapping);
        }

        // Apply the move.
        mapping.set(layer, to);
        let mut pending_seeds = std::mem::take(&mut self.scratch_seeds);
        pending_seeds.clear();
        self.inc.move_layer_into(layer, to, &mut pending_seeds);

        // Scoped step 2: the shared `weight_locality_pass` body (preset
        // pins + per-accelerator knapsack) restricted to the two
        // touched accelerators.
        let mut scoped = [from, to];
        scoped.sort_by_key(|a| a.index());
        if self.cfg.enable_weight_locality {
            weight_locality_pass(
                self.ev,
                mapping,
                &mut loc,
                self.cfg.knapsack,
                self.preset,
                &scoped,
            );
        }
        // Every in-scope pin of the rebuilt state joins the refresh;
        // together with the stripped pins above this covers the pin
        // diff (re-deriving a pin whose state is unchanged is a no-op).
        pending_costs
            .extend(loc.pinned_layers().filter(|l| mapping.get(*l).is_some_and(in_scope)));

        let shared = self.shared.clone();
        if self.cfg.enable_activation_fusion && prefix {
            // Prefix-exact step 3: only the touched accelerators'
            // candidates are re-fused, in the canonical global order
            // restricted to them (per-accelerator budget consumption
            // order is preserved, and that is all a capacity-only
            // decision depends on). No makespan guards are needed: the
            // no-risky-candidate precondition makes every candidate's
            // accept rule unconditional-if-it-fits.
            let system = self.ev.system();
            for &(f, t, bytes) in &shared.sorted_edges {
                let fa = mapping.get(f);
                if fa.is_none() || fa != mapping.get(t) {
                    continue;
                }
                let acc = fa.expect("checked above");
                if !in_scope(acc) {
                    continue;
                }
                if loc.try_fuse_bytes(system, f, t, acc, bytes) {
                    pending_costs.push(f);
                    pending_costs.push(t);
                }
            }
        }
        if self.cfg.enable_activation_fusion && !prefix {
            // Step 3 replay: the shared `fusion_pass` body over all
            // accelerators in the exact global candidate order of
            // `activation_fusion_opt`, with the makespan guard for
            // risky candidates answered by the delta schedule
            // (bitwise-equal to the full evaluation it replaces).
            let mut candidates = std::mem::take(&mut self.scratch_cands);
            candidates.clear();
            candidates.extend(shared.sorted_edges.iter().copied().filter(|(f, t, _)| {
                mapping.get(*f).is_some() && mapping.get(*f) == mapping.get(*t)
            }));
            let mut oracle = DeltaOracle {
                ev: self.ev,
                mapping,
                inc: &mut self.inc,
                stats: &mut self.stats,
                pending: pending_costs,
                pending_seeds,
                dominance: self.cfg.enable_guard_dominance,
                savepoint: None,
                profile: self.profile_enabled.then_some(&mut self.profile),
            };
            fusion_pass(self.ev, mapping, &mut loc, &candidates, &mut oracle);
            oracle.flush(&loc);
            self.scratch_costs = oracle.pending;
            self.scratch_seeds = oracle.pending_seeds;
            self.scratch_cands = candidates;
        } else {
            // Prefix path (or fusion disabled): one deferred flush (a
            // layer refreshed once with its final state is the same
            // snapshot its duplicates would telescope to).
            let t0 = self.profile_enabled.then(std::time::Instant::now);
            pending_costs.sort_unstable();
            pending_costs.dedup();
            self.inc.refresh_costs_into(
                self.ev,
                mapping,
                &loc,
                pending_costs.drain(..),
                &mut pending_seeds,
            );
            self.inc.propagate(&pending_seeds);
            note_propagation(&mut self.stats, self.inc.touched());
            self.scratch_costs = pending_costs;
            self.scratch_seeds = pending_seeds;
            if let Some(t0) = t0 {
                self.profile.propagate_s += t0.elapsed().as_secs_f64();
            }
        }

        // A fresh in-order summation makes the proxy aggregates
        // bitwise-equal to a full evaluation's, so every objective's
        // score — not just latency — filters exactly.
        self.inc.resum_aggregates();
        self.staged_makespan = self.inc.makespan().as_f64();
        self.staged_locality = Some(loc);
        self.cfg.objective.score_proxy(&self.inc.proxy())
    }

    /// Makespan of the currently staged candidate (exact).
    pub fn staged_makespan(&self) -> f64 {
        self.staged_makespan
    }

    /// Rolls the staged candidate back, restoring `mapping` and the
    /// delta schedule to the current state.
    ///
    /// # Panics
    ///
    /// Panics if no candidate is staged.
    pub fn reject_staged(&mut self, mapping: &mut Mapping) {
        let t0 = self.profile_enabled.then(std::time::Instant::now);
        let staged = self.staged.take().expect("no staged candidate");
        // Recycle the staged locality's buffers for the next candidate.
        self.spare_locality = self.staged_locality.take();
        self.staged_schedule = None;
        mapping.set(staged.layer, staged.from);
        if staged.delta {
            self.inc.rollback();
        }
        if let Some(t0) = t0 {
            // Rollback is part of the transactional scoring cost.
            self.profile.scoring_s += t0.elapsed().as_secs_f64();
        }
    }

    /// Commits the staged candidate: its replayed locality and delta
    /// schedule become the engine's current state (a delta-staged
    /// candidate commits without any full evaluation — the replay is
    /// exact by construction; a full-eval-staged candidate reseeds the
    /// delta schedule from its already-evaluated state). `mapping` must
    /// be the mapping the candidate was staged on (still moved).
    /// Returns the committed objective score.
    ///
    /// # Panics
    ///
    /// Panics if no candidate is staged.
    pub fn accept_staged(&mut self, mapping: &Mapping) -> f64 {
        let t0 = self.profile_enabled.then(std::time::Instant::now);
        let staged = self.staged.take().expect("no staged candidate");
        let accepted = self
            .staged_locality
            .take()
            .expect("staged candidate carries its locality");
        self.spare_locality = Some(std::mem::replace(&mut self.locality, accepted));
        if staged.delta {
            self.inc.commit();
            self.staged_schedule = None;
        } else {
            self.schedule = self
                .staged_schedule
                .take()
                .expect("full-eval candidate carries its schedule");
            self.inc = IncrementalSchedule::new(self.ev, mapping, &self.locality);
        }
        self.score = self.cfg.objective.score_proxy(&self.inc.proxy());
        self.stats.accepted_moves += 1;
        if let Some(t0) = t0 {
            self.profile.commit_s += t0.elapsed().as_secs_f64();
        }
        self.score
    }

    /// Greedy accept-if-better step: stages the move and accepts iff
    /// the candidate score improves on the current state by more than
    /// `accept_epsilon` — the same decision rule (over bitwise-equal
    /// scores) as the historical full-re-evaluation loop. Returns
    /// `true` on accept (with `mapping` left moved) and `false` on
    /// reject (with `mapping` restored).
    pub fn try_improving_move(
        &mut self,
        mapping: &mut Mapping,
        layer: LayerId,
        to: AccId,
    ) -> bool {
        self.stats.attempted_moves += 1;
        let best = self.score;
        let cand = self.stage_move(mapping, layer, to);
        if cand + self.cfg.accept_epsilon < best {
            self.accept_staged(mapping);
            true
        } else {
            self.reject_staged(mapping);
            false
        }
    }
}

