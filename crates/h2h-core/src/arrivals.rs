//! Pluggable request-arrival processes for open-loop serving.
//!
//! The serving layer ([`crate::serve`]) drains each tenant's request
//! window against an *arrival schedule*: the time request `j` enters
//! the tenant's queue. Three processes are supported, all behind the
//! [`Arrivals`] trait so the round loop is process-agnostic:
//!
//! * **Fixed** ([`FixedArrivals`]) — the PR 4 deterministic clock,
//!   `arrival(j) = j / rate_hz`. This is the default and computes the
//!   *identical floating-point expression* the serve loop historically
//!   inlined, so deterministic serving stays bit-identical zoo-wide
//!   (the `serve_equiv` / `BENCH_serve.json` contracts).
//! * **Poisson** — seeded exponential inter-arrival gaps at the
//!   contract rate, sampled once at admission from the workspace's
//!   deterministic SplitMix64 shim (`rand`), so a given seed replays
//!   the same open-loop workload on every run.
//! * **Trace** — a recorded [`h2h_system::trace::ArrivalTrace`]
//!   replayed verbatim (absolute timestamps; the contract's `rate_hz`
//!   is ignored for timing and only scales SLO bookkeeping).
//!
//! [`ArrivalProcess`] is the *specification* (what a [`crate::serve::TenantSpec`]
//! carries, what `--arrivals fixed|poisson:SEED|trace:PATH` parses
//! into); [`ArrivalSchedule`] is the *materialization* a tenant
//! actually consults during the drain. Sampled processes materialize
//! to a validated monotone timestamp vector; the fixed process stays
//! closed-form.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use h2h_system::trace::ArrivalTrace;

/// A request-arrival process: monotone non-decreasing arrival times
/// for requests `0..requests`.
pub trait Arrivals {
    /// Arrival time (seconds) of request `j`. Only `j` below the
    /// materialized request window may be queried.
    fn arrival(&self, j: usize) -> f64;
}

/// The deterministic open-loop clock: `arrival(j) = j / rate_hz`,
/// bit-identical to the historical inline computation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FixedArrivals {
    /// Contract arrival rate (validated positive and finite).
    pub rate_hz: f64,
}

impl Arrivals for FixedArrivals {
    fn arrival(&self, j: usize) -> f64 {
        j as f64 / self.rate_hz
    }
}

/// A pre-sampled arrival schedule (Poisson draws or a trace prefix):
/// explicit timestamps, validated monotone at materialization.
#[derive(Debug, Clone, PartialEq)]
pub struct SampledArrivals {
    times: Vec<f64>,
}

impl SampledArrivals {
    /// The materialized timestamps.
    pub fn times(&self) -> &[f64] {
        &self.times
    }
}

impl Arrivals for SampledArrivals {
    fn arrival(&self, j: usize) -> f64 {
        self.times[j]
    }
}

/// What a tenant consults during the drain: the materialization of its
/// [`ArrivalProcess`] against its contract.
#[derive(Debug, Clone, PartialEq)]
pub enum ArrivalSchedule {
    /// Closed-form deterministic clock (the default process).
    Fixed(FixedArrivals),
    /// Explicit timestamps (Poisson / trace).
    Sampled(SampledArrivals),
}

impl Arrivals for ArrivalSchedule {
    fn arrival(&self, j: usize) -> f64 {
        match self {
            ArrivalSchedule::Fixed(f) => f.arrival(j),
            ArrivalSchedule::Sampled(s) => s.arrival(j),
        }
    }
}

/// Specification of a tenant's arrival process (what the CLI / bench
/// `--arrivals` grammar parses into and a `TenantSpec` carries).
#[derive(Debug, Clone, PartialEq, Default)]
pub enum ArrivalProcess {
    /// Deterministic `j / rate_hz` clock (default; bit-identical to
    /// the pre-streaming serve loop).
    #[default]
    Fixed,
    /// Seeded Poisson process at the contract rate: exponential
    /// inter-arrival gaps `-ln(1 - u) / rate_hz`, `u` drawn from
    /// SplitMix64 seeded with `seed`.
    Poisson {
        /// RNG seed; equal seeds replay equal workloads.
        seed: u64,
    },
    /// A recorded trace replayed verbatim (the contract window serves
    /// the first `requests` timestamps).
    Trace(ArrivalTrace),
}

impl ArrivalProcess {
    /// Stable label for reports and bench records (`fixed`,
    /// `poisson:SEED`, `trace(N)`).
    pub fn label(&self) -> String {
        match self {
            ArrivalProcess::Fixed => "fixed".into(),
            ArrivalProcess::Poisson { seed } => format!("poisson:{seed}"),
            ArrivalProcess::Trace(tr) => format!("trace({})", tr.len()),
        }
    }

    /// Parses the CLI grammar `fixed | poisson:SEED | trace:PATH`
    /// (the trace file is read and validated here).
    ///
    /// # Errors
    ///
    /// A human-readable reason on an unknown process name, an
    /// unparsable seed, or an unreadable/invalid trace file.
    pub fn parse(spec: &str) -> Result<Self, String> {
        if spec == "fixed" {
            return Ok(ArrivalProcess::Fixed);
        }
        if let Some(seed) = spec.strip_prefix("poisson:") {
            let seed: u64 = seed
                .parse()
                .map_err(|_| format!("poisson seed `{seed}` is not an unsigned integer"))?;
            return Ok(ArrivalProcess::Poisson { seed });
        }
        if let Some(path) = spec.strip_prefix("trace:") {
            let text = std::fs::read_to_string(path)
                .map_err(|e| format!("trace file `{path}`: {e}"))?;
            let tr = ArrivalTrace::parse(&text).map_err(|e| format!("trace `{path}`: {e}"))?;
            return Ok(ArrivalProcess::Trace(tr));
        }
        Err(format!(
            "unknown arrival process `{spec}` (expected fixed | poisson:SEED | trace:PATH)"
        ))
    }

    /// Materializes the process against a contract: the schedule for
    /// requests `0..requests` at `rate_hz`. Sampled schedules are
    /// validated monotone non-decreasing, finite and non-negative.
    ///
    /// # Errors
    ///
    /// When a trace holds fewer than `requests` arrivals. (Poisson
    /// sampling cannot fail for a validated contract: gaps are
    /// `-ln(1-u)/rate` with `u ∈ [0,1)`, always finite and ≥ 0.)
    pub fn materialize(&self, rate_hz: f64, requests: usize) -> Result<ArrivalSchedule, String> {
        debug_assert!(rate_hz > 0.0 && rate_hz.is_finite(), "contract validated upstream");
        match self {
            ArrivalProcess::Fixed => Ok(ArrivalSchedule::Fixed(FixedArrivals { rate_hz })),
            ArrivalProcess::Poisson { seed } => {
                let mut rng = StdRng::seed_from_u64(*seed);
                let mut t = 0.0f64;
                let mut times = Vec::with_capacity(requests);
                for _ in 0..requests {
                    let u = rng.next_f64();
                    t += -(1.0 - u).ln() / rate_hz;
                    times.push(t);
                }
                Ok(ArrivalSchedule::Sampled(SampledArrivals { times }))
            }
            ArrivalProcess::Trace(tr) => {
                Ok(ArrivalSchedule::Sampled(SampledArrivals { times: tr.prefix(requests)? }))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_matches_the_inline_expression_bitwise() {
        let rate = 37.25f64;
        let sched = ArrivalProcess::Fixed.materialize(rate, 100).unwrap();
        for j in 0..100usize {
            // The exact expression the serve loop historically inlined.
            assert_eq!(sched.arrival(j).to_bits(), (j as f64 / rate).to_bits());
        }
    }

    #[test]
    fn poisson_is_seeded_monotone_and_rate_scaled() {
        let a = ArrivalProcess::Poisson { seed: 7 }.materialize(10.0, 200).unwrap();
        let b = ArrivalProcess::Poisson { seed: 7 }.materialize(10.0, 200).unwrap();
        assert_eq!(a, b, "equal seeds must replay equal workloads");
        let c = ArrivalProcess::Poisson { seed: 8 }.materialize(10.0, 200).unwrap();
        assert_ne!(a, c, "different seeds must differ");
        let mut prev = 0.0;
        for j in 0..200 {
            let t = a.arrival(j);
            assert!(t.is_finite() && t >= prev, "arrival {j} = {t} not monotone");
            prev = t;
        }
        // Mean inter-arrival gap ≈ 1/rate over 200 draws (loose bound).
        let mean_gap = a.arrival(199) / 199.0;
        assert!((0.05..0.2).contains(&mean_gap), "mean gap {mean_gap} far from 0.1");
    }

    #[test]
    fn trace_prefix_replays_and_refuses_short_traces() {
        let tr = ArrivalTrace::new(vec![0.0, 0.5, 0.5, 2.0]).unwrap();
        let p = ArrivalProcess::Trace(tr.clone());
        let sched = p.materialize(100.0, 3).unwrap();
        assert_eq!(sched.arrival(2), 0.5);
        assert!(p.materialize(100.0, 5).is_err(), "short trace must refuse");
    }

    #[test]
    fn grammar_round_trips() {
        assert_eq!(ArrivalProcess::parse("fixed").unwrap(), ArrivalProcess::Fixed);
        assert_eq!(
            ArrivalProcess::parse("poisson:42").unwrap(),
            ArrivalProcess::Poisson { seed: 42 }
        );
        assert!(ArrivalProcess::parse("poisson:x").is_err());
        assert!(ArrivalProcess::parse("uniform").is_err());
        assert!(ArrivalProcess::parse("trace:/no/such/file").is_err());
        assert_eq!(ArrivalProcess::Poisson { seed: 9 }.label(), "poisson:9");
    }
}
