//! Tunables of the H2H mapping pipeline.

use serde::{Deserialize, Serialize};

/// Which knapsack solver the weight-locality step uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum KnapsackKind {
    /// Scaled dynamic programming (exact up to the scaling granularity).
    Dp,
    /// Density-greedy (value/weight order).
    Greedy,
    /// DP when the instance is small enough, greedy otherwise (default).
    Auto,
}

/// The quantity the remapping loop (step 4) minimizes.
///
/// The paper optimizes end-to-end latency and reports energy as a
/// by-product (Fig. 4); the other objectives are extensions for
/// deployments that pay for joules (the paper's §6 flexibility claim).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MapObjective {
    /// Minimize `Sys_latency` (the paper's objective; default).
    Latency,
    /// Minimize total modeled energy.
    Energy,
    /// Minimize the energy-delay product.
    EnergyDelayProduct,
    /// Maximize steady-state pipelined-serving throughput (minimize the
    /// bottleneck accelerator's busy time). Ties on the bottleneck are
    /// broken by latency so moves that only shuffle idle devices do not
    /// thrash.
    Throughput,
}

impl MapObjective {
    /// Scalar score of a schedule under this objective (lower is
    /// better).
    pub fn score(&self, schedule: &h2h_system::schedule::Schedule) -> f64 {
        self.score_parts(
            schedule.makespan().as_f64(),
            schedule.energy().total().as_f64(),
            schedule.bottleneck_busy().as_f64(),
        )
    }

    /// Scalar score from raw schedule quantities; lets the incremental
    /// delta engine score candidates from its running aggregates without
    /// materializing a full `Schedule`.
    pub fn score_parts(&self, makespan: f64, energy_total: f64, bottleneck_busy: f64) -> f64 {
        match self {
            MapObjective::Latency => makespan,
            MapObjective::Energy => energy_total,
            MapObjective::EnergyDelayProduct => makespan * energy_total,
            MapObjective::Throughput => bottleneck_busy + 1e-6 * makespan,
        }
    }

    /// Score of an incremental [`h2h_system::incremental::ScheduleProxy`].
    pub fn score_proxy(&self, proxy: &h2h_system::incremental::ScheduleProxy) -> f64 {
        self.score_parts(
            proxy.makespan.as_f64(),
            proxy.energy_total,
            proxy.bottleneck_busy.as_f64(),
        )
    }
}

/// Configuration of the four-step H2H mapper.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct H2hConfig {
    /// Maximum number of frontier-group assignments enumerated
    /// exhaustively in step 1; larger groups fall back to per-node
    /// greedy with the same Δ-latency objective (paper Algorithm 1
    /// enumerates "all possible mappings", which is `|accs|^|group|`
    /// and intractable verbatim for wide fusion waves).
    pub enumeration_cap: usize,
    /// Knapsack solver for weight locality (step 2).
    pub knapsack: KnapsackKind,
    /// Maximum full passes of the greedy remapping loop (step 4); the
    /// loop also stops at the paper's fixpoint criterion (no accepted
    /// move in a pass).
    pub remap_max_passes: usize,
    /// Enable step 2 (weight locality). Disabled only in ablations.
    pub enable_weight_locality: bool,
    /// Enable step 3 (activation fusion). Disabled only in ablations.
    pub enable_activation_fusion: bool,
    /// Enable step 4 (data-locality-aware remapping). Disabled only in
    /// ablations.
    pub enable_remapping: bool,
    /// Minimum absolute latency improvement (seconds) for a remapping
    /// move to be accepted, guarding against floating-point churn.
    pub accept_epsilon: f64,
    /// What step 4 minimizes (the paper: latency).
    pub objective: MapObjective,
}

impl Default for H2hConfig {
    fn default() -> Self {
        H2hConfig {
            enumeration_cap: 4096,
            knapsack: KnapsackKind::Auto,
            remap_max_passes: 8,
            enable_weight_locality: true,
            enable_activation_fusion: true,
            enable_remapping: true,
            accept_epsilon: 1e-9,
            objective: MapObjective::Latency,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_enables_all_steps() {
        let c = H2hConfig::default();
        assert!(c.enable_weight_locality);
        assert!(c.enable_activation_fusion);
        assert!(c.enable_remapping);
        assert!(c.enumeration_cap >= 1);
        assert!(c.remap_max_passes >= 1);
        assert_eq!(c.knapsack, KnapsackKind::Auto);
        assert_eq!(c.objective, MapObjective::Latency);
    }

    #[test]
    fn objective_scores_order_schedules() {
        // Scores must be consumable as "lower is better" for all
        // variants; checked on a real schedule pair in remap tests —
        // here just the arithmetic identity for EDP.
        use h2h_system::locality::LocalityState;
        use h2h_system::mapping::Mapping;
        use h2h_system::schedule::Evaluator;
        use h2h_system::system::{BandwidthClass, SystemSpec};
        let model = h2h_model::zoo::mocap();
        let system = SystemSpec::standard(BandwidthClass::Mid);
        let ev = Evaluator::new(&model, &system);
        let mut mapping = Mapping::new(&model);
        for (id, layer) in model.layers() {
            let acc = system.acc_ids().find(|a| system.acc(*a).supports(layer)).unwrap();
            mapping.set(id, acc);
        }
        let s = ev.evaluate(&mapping, &LocalityState::new(&system));
        let lat = MapObjective::Latency.score(&s);
        let en = MapObjective::Energy.score(&s);
        let edp = MapObjective::EnergyDelayProduct.score(&s);
        assert!((edp - lat * en).abs() < 1e-9 * edp.max(1.0));
    }
}
