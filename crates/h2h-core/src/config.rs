//! Tunables of the H2H mapping pipeline.
//!
//! # Topology knobs
//!
//! The interconnect fabric is *system* state, not pipeline
//! configuration: build a [`h2h_system::topology::Topology`] (uniform
//! star, per-link skewed star, or switched fabric with direct peer
//! links — CLI spec strings parse via
//! [`h2h_system::topology::Topology::parse`]) and attach it with
//! [`h2h_system::system::SystemSpec::with_topology`]. Every stage this
//! module configures — step-1 wave mapping, the weight knapsack's
//! value densities, fusion guards, delta scoring, serving reloads —
//! then charges transfers at the fabric's per-route effective
//! bandwidths automatically; no `H2hConfig` field selects a topology,
//! so one config struct serves every fabric and the uniform default
//! stays bit-identical to the paper's scalar `BW_acc` model.

use serde::{Deserialize, Serialize};

/// Which knapsack solver the weight-locality step uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum KnapsackKind {
    /// Scaled dynamic programming (exact up to the scaling granularity).
    Dp,
    /// Density-greedy (value/weight order).
    Greedy,
    /// DP when the instance is small enough, greedy otherwise (default).
    Auto,
}

/// The quantity the remapping loop (step 4) minimizes.
///
/// The paper optimizes end-to-end latency and reports energy as a
/// by-product (Fig. 4); the other objectives are extensions for
/// deployments that pay for joules (the paper's §6 flexibility claim).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MapObjective {
    /// Minimize `Sys_latency` (the paper's objective; default).
    Latency,
    /// Minimize total modeled energy.
    Energy,
    /// Minimize the energy-delay product.
    EnergyDelayProduct,
    /// Maximize steady-state pipelined-serving throughput (minimize the
    /// bottleneck accelerator's busy time). Ties on the bottleneck are
    /// broken by latency so moves that only shuffle idle devices do not
    /// thrash.
    Throughput,
}

impl MapObjective {
    /// Scalar score of a schedule under this objective (lower is
    /// better).
    pub fn score(&self, schedule: &h2h_system::schedule::Schedule) -> f64 {
        self.score_parts(
            schedule.makespan().as_f64(),
            schedule.energy().total().as_f64(),
            schedule.bottleneck_busy().as_f64(),
        )
    }

    /// Scalar score from raw schedule quantities; lets the incremental
    /// delta engine score candidates from its running aggregates without
    /// materializing a full `Schedule`.
    pub fn score_parts(&self, makespan: f64, energy_total: f64, bottleneck_busy: f64) -> f64 {
        match self {
            MapObjective::Latency => makespan,
            MapObjective::Energy => energy_total,
            MapObjective::EnergyDelayProduct => makespan * energy_total,
            MapObjective::Throughput => bottleneck_busy + 1e-6 * makespan,
        }
    }

    /// Score of an incremental [`h2h_system::incremental::ScheduleProxy`].
    pub fn score_proxy(&self, proxy: &h2h_system::incremental::ScheduleProxy) -> f64 {
        self.score_parts(
            proxy.makespan.as_f64(),
            proxy.energy_total,
            proxy.bottleneck_busy.as_f64(),
        )
    }
}

/// How the search loops (step-4 remapping, simulated annealing) score a
/// candidate layer move.
///
/// Every strategy produces **bit-identical search decisions** — they
/// differ only in how much work a candidate costs. The delta engine's
/// staged rebuild, its prefix-exact fast path and a plain full
/// evaluation all reproduce the same score for the same candidate (the
/// equivalence suites assert this over the whole zoo), so strategies
/// can be mixed freely per candidate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ScoreStrategy {
    /// Per-candidate adaptive (default): take the prefix-exact fast
    /// path when the candidate mapping has no risky fusion candidate
    /// (skipping the global fusion-pass replay entirely); otherwise
    /// fall back to a plain full evaluation for models at or below
    /// [`H2hConfig::small_model_threshold`] layers (where the replay
    /// overhead exceeds a full evaluation) and to the delta replay for
    /// larger models.
    Adaptive,
    /// Always the staged delta rebuild with the global fusion-pass
    /// replay (the pre-adaptive behavior; kept for benchmarking).
    Replay,
    /// Always a plain full locality rebuild + schedule evaluation per
    /// candidate (the reference behavior; kept for benchmarking).
    FullEval,
}

impl ScoreStrategy {
    /// Stable lowercase label (bench/report output).
    pub fn label(&self) -> &'static str {
        match self {
            ScoreStrategy::Adaptive => "adaptive",
            ScoreStrategy::Replay => "replay",
            ScoreStrategy::FullEval => "full-eval",
        }
    }
}

/// How a serving round picks and orders its co-resident tenant set
/// (see [`crate::serve`]). All policies respect the same per-board
/// DRAM budget; they differ in *whom* they favor when tenants cannot
/// all co-reside, and in what order selected slices execute.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum RoundPolicy {
    /// Urgency knapsack (default, the PR 4 batch former): value =
    /// backlog + requests already doomed to violate, packed by a
    /// knapsack over per-tenant footprints with a per-board repair;
    /// slices execute in admission order. Bit-identical to the
    /// pre-policy serve loop.
    #[default]
    Knapsack,
    /// Earliest deadline first: tenants ranked by their
    /// head-of-queue deadline (`arrival + slo`), greedily packed under
    /// the budget in rank order; slices execute in deadline order.
    Edf,
    /// Weighted fair queueing: tenants ranked by virtual finish time
    /// (`(served + 1) / rate_hz` — each tenant's share proportional to
    /// its contract rate), greedily packed and served in rank order.
    WeightedFair,
}

impl RoundPolicy {
    /// Stable lowercase label (bench/report/CLI).
    pub fn label(&self) -> &'static str {
        match self {
            RoundPolicy::Knapsack => "knapsack",
            RoundPolicy::Edf => "edf",
            RoundPolicy::WeightedFair => "wfair",
        }
    }

    /// Parses a CLI label (`knapsack | edf | wfair`).
    ///
    /// # Errors
    ///
    /// Names the unknown label and the accepted grammar.
    pub fn parse(s: &str) -> Result<Self, String> {
        match s {
            "knapsack" => Ok(RoundPolicy::Knapsack),
            "edf" => Ok(RoundPolicy::Edf),
            "wfair" => Ok(RoundPolicy::WeightedFair),
            other => Err(format!(
                "unknown round policy `{other}` (expected knapsack | edf | wfair)"
            )),
        }
    }
}

/// Configuration of the four-step H2H mapper.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct H2hConfig {
    /// Maximum number of frontier-group assignments enumerated
    /// exhaustively in step 1; larger groups fall back to per-node
    /// greedy with the same Δ-latency objective (paper Algorithm 1
    /// enumerates "all possible mappings", which is `|accs|^|group|`
    /// and intractable verbatim for wide fusion waves).
    pub enumeration_cap: usize,
    /// Knapsack solver for weight locality (step 2).
    pub knapsack: KnapsackKind,
    /// Maximum full passes of the greedy remapping loop (step 4); the
    /// loop also stops at the paper's fixpoint criterion (no accepted
    /// move in a pass).
    pub remap_max_passes: usize,
    /// Enable step 2 (weight locality). Disabled only in ablations.
    pub enable_weight_locality: bool,
    /// Enable step 3 (activation fusion). Disabled only in ablations.
    pub enable_activation_fusion: bool,
    /// Enable step 4 (data-locality-aware remapping). Disabled only in
    /// ablations.
    pub enable_remapping: bool,
    /// Minimum absolute latency improvement (seconds) for a remapping
    /// move to be accepted, guarding against floating-point churn.
    pub accept_epsilon: f64,
    /// What step 4 minimizes (the paper: latency).
    pub objective: MapObjective,
    /// How candidate moves are scored (see [`ScoreStrategy`]). All
    /// strategies make bit-identical search decisions.
    pub strategy: ScoreStrategy,
    /// Models with at most this many layers prefer a plain full
    /// evaluation over the delta replay when the prefix-exact fast path
    /// does not apply (calibrated on the zoo: below ~80 layers the
    /// global fusion-pass replay costs more than one full evaluation —
    /// see `BENCH_search.json`).
    pub small_model_threshold: usize,
    /// Resolve risky fusion guards by dominance pruning when the
    /// outcome is provable from local quantities (the producer's
    /// duration change absorbed by every reader of its finish time, the
    /// consumer's saving bounded by its own slack — see
    /// [`crate::delta`]'s module docs). Proven guards skip the global
    /// toggle/revert replay entirely; unproven guards still run it, so
    /// search decisions are bit-identical either way (asserted by the
    /// equivalence suites). Disabled only for benchmarking the pruning
    /// itself.
    pub enable_guard_dominance: bool,
    /// Worker threads for candidate scoring in the search loops
    /// (`1` = serial). Results, final mappings and search stats are
    /// identical for every thread count: candidates are scored on
    /// per-thread engine forks and committed in deterministic candidate
    /// order, never in thread completion order. Effective parallelism
    /// is capped at `std::thread::available_parallelism()` unless
    /// [`H2hConfig::score_oversubscribe`] is set.
    pub score_threads: usize,
    /// Honor [`H2hConfig::score_threads`] beyond the machine's
    /// available parallelism (oversubscription only adds scheduling
    /// overhead, never changes results — the equivalence tests set this
    /// to exercise the worker protocol on any machine).
    pub score_oversubscribe: bool,
    /// Minimum flattened candidate count before the pooled remap loop
    /// scores a *multi-layer* frontier window in one work-stolen batch
    /// (see [`crate::parallel`]); below it, each layer's candidates are
    /// batched separately (the PR 2 protocol). Decisions and stats are
    /// bit-identical either way — the threshold only trades wasted
    /// speculative scoring against fan-out latency, so small models and
    /// low lane counts stay on the cheaper per-layer path. `0` forces
    /// frontier windows everywhere; `usize::MAX` disables them.
    pub frontier_min_candidates: usize,
    /// Collect a per-phase wall-clock breakdown (candidate scoring vs
    /// schedule propagation vs guard resolution vs commit) on the delta
    /// engine ([`crate::delta::PhaseProfile`]). Off by default: the
    /// timers sit on the scoring hot path, and the profile is
    /// wall-clock — never part of [`crate::delta::SearchStats`] or any
    /// equivalence contract. `bench_search --profile` turns it on.
    pub profile_phases: bool,
    /// Largest number of queued requests one tenant may serve in a
    /// single slice of a multi-tenant serving round (see
    /// [`crate::serve`]). Weights are fetched once per slice
    /// ([`h2h_system::schedule::Evaluator::with_batch`] semantics), so a
    /// larger cap amortizes weight traffic further but holds the system
    /// longer per slice, raising the queueing delay of the *other*
    /// tenants — 8 balances the two on the zoo workloads. Must be ≥ 1.
    pub serve_max_batch: u32,
    /// Fraction of each accelerator's DRAM capacity that the serving
    /// layer may commit to resident tenant state (pinned weights +
    /// fusion buffers), in `(0, 1]` — values outside that range are
    /// rejected when the tenant registry is constructed. Admission
    /// trims a tenant's pin set
    /// (knapsack on saved transfer time) to fit this budget
    /// individually; the online batch former additionally keeps every
    /// *round's co-resident* footprint under it. `1.0` (default) hands
    /// serving the full board — single-tenant serving is then
    /// bit-identical to the offline pipeline because nothing is ever
    /// trimmed.
    pub serve_dram_budget_frac: f64,
    /// Evaluator-call budget for the fault-repair search
    /// ([`crate::repair::repair_mapping`]), in *attempted delta moves*
    /// — a deterministic unit, so repairs reproduce bit-identically
    /// across machines. `0` (default) picks an automatic budget of
    /// `max(16, 3 * num_layers / 2)` moves, a small fraction of a
    /// from-scratch remap's search bill while recovering most of its
    /// latency (asserted by the fault acceptance suite).
    pub repair_eval_budget: usize,
    /// Cross-check every freshly evaluated serving slice against a full
    /// [`h2h_system::schedule::Evaluator::evaluate`] of the same state
    /// (the incremental rebatch path must match it bitwise) and count
    /// mismatches in the serve counters. Off by default — it doubles
    /// slice-evaluation cost; benches and CI smoke turn it on.
    pub serve_verify: bool,
    /// Modeled wall-clock cost of one attempted repair move, in
    /// seconds — the repair wall-time model's single knob. A serve-time
    /// repair ([`crate::repair::repair_mapping`]) reports
    /// `attempted_moves × this` as its wall time
    /// ([`crate::repair::RepairOutcome::wall_time`]), and
    /// `serve_with_faults` charges that window against the serving
    /// clock: tenants keep serving on the evacuated-but-unrepaired
    /// mapping until the repair *lands*, and the window is recorded in
    /// each tenant's `repair_time_charged` ledger. `0.0` (default)
    /// is the historical instantaneous-repair model — repairs land at
    /// the fault boundary and nothing is charged, keeping PR 6 fault
    /// plans bit-identical. A realistic setting is a few tens of
    /// microseconds per move: `SearchStats` over the zoo put the
    /// step-4 delta engine at roughly 25–50 µs per attempted move on
    /// the `BENCH_search.json` reference machine (attempted moves /
    /// wall seconds), so `25e-6` models repair running on one host
    /// core concurrently with serving.
    pub repair_secs_per_move: f64,
    /// How serving rounds select and order their tenant set (see
    /// [`RoundPolicy`]). The default urgency knapsack is bit-identical
    /// to the pre-policy serve loop; EDF and weighted-fair are the
    /// open-loop alternatives `bench_serve --policy` sweeps.
    pub serve_policy: RoundPolicy,
    /// Bound on each tenant's request queue during open-loop serving.
    /// `0` (default) is the historical unbounded queue — every request
    /// is eventually served and an unrecovered outage stalls the drain
    /// ([`crate::serve::ServeError::Stalled`]). A positive cap `c`
    /// turns on overload shedding: whenever a tenant's backlog exceeds
    /// `c` at a round boundary, the *oldest* queued requests (those
    /// closest to — or past — their deadlines, i.e. the lowest-value
    /// work under a latency SLO) are shed until the backlog fits, and
    /// an unrecovered outage sheds the blocked tenants' remaining
    /// windows instead of stalling. Shed requests are ledgered
    /// per-tenant ([`crate::serve::TenantServeStats::shed`]), never
    /// silently dropped.
    pub serve_queue_cap: usize,
}

impl Default for H2hConfig {
    fn default() -> Self {
        H2hConfig {
            enumeration_cap: 4096,
            knapsack: KnapsackKind::Auto,
            remap_max_passes: 8,
            enable_weight_locality: true,
            enable_activation_fusion: true,
            enable_remapping: true,
            accept_epsilon: 1e-9,
            objective: MapObjective::Latency,
            strategy: ScoreStrategy::Adaptive,
            small_model_threshold: 80,
            enable_guard_dominance: true,
            score_threads: 1,
            score_oversubscribe: false,
            frontier_min_candidates: 16,
            profile_phases: false,
            serve_max_batch: 8,
            serve_dram_budget_frac: 1.0,
            repair_eval_budget: 0,
            serve_verify: false,
            repair_secs_per_move: 0.0,
            serve_policy: RoundPolicy::Knapsack,
            serve_queue_cap: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_enables_all_steps() {
        let c = H2hConfig::default();
        assert!(c.enable_weight_locality);
        assert!(c.enable_activation_fusion);
        assert!(c.enable_remapping);
        assert!(c.enable_guard_dominance);
        assert!(c.enumeration_cap >= 1);
        assert!(c.remap_max_passes >= 1);
        assert_eq!(c.knapsack, KnapsackKind::Auto);
        assert_eq!(c.objective, MapObjective::Latency);
        assert!(c.serve_max_batch >= 1);
        assert!(c.serve_dram_budget_frac > 0.0 && c.serve_dram_budget_frac <= 1.0);
        assert!(!c.serve_verify, "slice cross-checking is a bench/CI knob");
        assert_eq!(
            c.repair_secs_per_move, 0.0,
            "instantaneous repair is the default (PR 6 bit-identity)"
        );
        assert_eq!(
            c.serve_policy,
            RoundPolicy::Knapsack,
            "the urgency knapsack is the bit-identity default"
        );
        assert_eq!(c.serve_queue_cap, 0, "unbounded queues are the default");
        assert!(
            c.frontier_min_candidates >= 1,
            "frontier windows should not engage on single-candidate batches by default"
        );
        assert!(!c.profile_phases, "phase timers are a bench/CI knob");
    }

    #[test]
    fn round_policy_labels_round_trip() {
        for p in [RoundPolicy::Knapsack, RoundPolicy::Edf, RoundPolicy::WeightedFair] {
            assert_eq!(RoundPolicy::parse(p.label()).unwrap(), p);
        }
        assert!(RoundPolicy::parse("fifo").is_err());
    }

    #[test]
    fn objective_scores_order_schedules() {
        // Scores must be consumable as "lower is better" for all
        // variants; checked on a real schedule pair in remap tests —
        // here just the arithmetic identity for EDP.
        use h2h_system::locality::LocalityState;
        use h2h_system::mapping::Mapping;
        use h2h_system::schedule::Evaluator;
        use h2h_system::system::{BandwidthClass, SystemSpec};
        let model = h2h_model::zoo::mocap();
        let system = SystemSpec::standard(BandwidthClass::Mid);
        let ev = Evaluator::new(&model, &system);
        let mut mapping = Mapping::new(&model);
        for (id, layer) in model.layers() {
            let acc = system.acc_ids().find(|a| system.acc(*a).supports(layer)).unwrap();
            mapping.set(id, acc);
        }
        let s = ev.evaluate(&mapping, &LocalityState::new(&system));
        let lat = MapObjective::Latency.score(&s);
        let en = MapObjective::Energy.score(&s);
        let edp = MapObjective::EnergyDelayProduct.score(&s);
        assert!((edp - lat * en).abs() < 1e-9 * edp.max(1.0));
    }
}
